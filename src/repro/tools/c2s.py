"""``c2s`` — c2assembly: compile and disassemble (paper Fig. 6, step 3).

Drives the miniature compiler exactly the way the paper drives LLVM/GCC:
compile the prepared source with a profile's flags to a relocatable
object file (``-c -g`` — relocations and debug metadata preserved), then
disassemble it to the numeric text listing ``s2l`` will parse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..compiler.backends import compile_program
from ..compiler.disasm import disassemble
from ..compiler.lower import lower
from ..compiler.objfile import ObjectFile, link_layout
from ..compiler.profiles import CompilerProfile
from ..lang.ast import CLitmus


@dataclass
class C2SResult:
    """Everything c2s hands to s2l: the object file, its disassembly, and
    the state-mapping seed (observed local → machine register)."""

    obj: ObjectFile
    listing: Dict[str, List[str]]

    @property
    def state_mappings(self) -> Dict[str, Dict[str, str]]:
        return self.obj.debug.var_registers


def compile_and_disassemble(litmus: CLitmus, profile: CompilerProfile) -> C2SResult:
    """Compile a prepared C litmus test and disassemble the object file."""
    program = lower(litmus)
    unit = compile_program(program, profile)
    obj = link_layout(unit)
    return C2SResult(obj=obj, listing=disassemble(obj))
