"""Streaming test sources — lazy, shardable suppliers of C litmus tests.

``CampaignPlan(tests=...)`` historically required an eager, fully
materialised list.  A :class:`TestSource` is the streaming alternative:
an object that *yields* tests on demand, knows how to shard itself
deterministically, and can say (cheaply, when it can) how many tests it
holds.  Plans accept one in place of a test tuple, so arbitrarily large
generated suites cost nothing until a campaign actually runs them.

Shipped sources:

* :class:`DiySource` — lazy diy generation from a
  :class:`~repro.tools.diy.DiyConfig` (nothing is built until iterated);
* :class:`ListSource` — wrap an in-memory sequence;
* :class:`PaperSource` — the paper's figure tests by name;
* :class:`SuiteSource` / :func:`write_suite` — a JSONL corpus of printed
  litmus tests (the parse/print round-trip preserves content digests);
* :class:`StoreReplaySource` — replay the tests a stored campaign
  actually saw, filtered by verdict (e.g. re-run only the positives);
* :class:`MutationSource` — order/fence-weakening mutants of any seed
  source (:mod:`repro.tools.mutate`), deduplicated by content digest.

Invariants every source upholds (campaign sharding, store replay and
hunt dedup all rely on them):

* **determinism** — iterating a source twice yields the same tests in
  the same order, and the ``n`` shards of a source partition exactly
  the tests of the unsharded iteration (``shard(k, n)`` = every n-th
  test starting at the k-th), so shard reports merge back to the
  single-run report byte-for-byte;
* **digest preservation** — a test's :meth:`~repro.lang.ast.CLitmus.digest`
  is a pure function of its content, and the dump/load round-trip
  through :func:`write_suite`/:class:`SuiteSource` preserves it (the
  canonical printer guarantees this), so verdicts stored against a
  suite replay across processes, sessions and files;
* **laziness** — nothing is generated, parsed or mutated until the
  iterator advances, and only as far as the consumer pulls.
"""

from __future__ import annotations

import itertools
import json
import os
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

from ..core.errors import ReproError
from ..core.registry import Registry
from ..lang.ast import CLitmus
from .diy import DiyConfig, iter_generate
from .mutate import DEFAULT_OPERATORS, iter_mutants


class SuiteFormatError(ReproError, ValueError):
    """A malformed line in a JSONL suite or baseline file.

    Carries the offending file and 1-based line number — a corpus
    problem must name where to look, never surface as a bare
    ``json.JSONDecodeError`` with no file context.  Subclasses
    :class:`ValueError` so callers that caught the raw decode error's
    base class keep catching this.
    """

    def __init__(self, path: str, line: int, message: str) -> None:
        self.path = path
        self.line = line
        self.message = message
        super().__init__(f"{path}:{line}: {message}")


def iter_jsonl(
    path: Union[str, "os.PathLike[str]"]
) -> Iterator[Tuple[int, Dict[str, object]]]:
    """Stream ``(line number, record)`` pairs from a JSONL file.

    The shared reader behind :class:`SuiteSource` and the farm's
    baseline files, with the :class:`~repro.pipeline.store.CampaignStore`
    crash-tolerance contract: a torn *final* line (a crashed writer's
    partial append) is silently skipped, while a malformed line anywhere
    else — invalid JSON or a non-object — raises
    :class:`SuiteFormatError` naming the file and line.
    """
    fspath = os.fspath(path)
    #: a decode failure held back until we know whether it was the file's
    #: last line (torn write, tolerated) or an interior line (corrupt)
    pending: Optional[Tuple[int, str]] = None
    with open(fspath, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if pending is not None:
                raise SuiteFormatError(fspath, pending[0], pending[1])
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                pending = (lineno, f"invalid JSON ({exc.msg})")
                continue
            if not isinstance(record, dict):
                raise SuiteFormatError(
                    fspath, lineno,
                    f"expected a JSON object, got {type(record).__name__}",
                )
            yield lineno, record
    # a pending failure on the final line is a torn trailing write —
    # ignored, exactly like CampaignStore._load


class TestSource:
    """Base class of streaming test suppliers.

    Subclasses implement :meth:`iter_tests`; everything else (plain
    iteration, sharding, counting) has shared defaults.  ``shapes`` is
    the shape registry diy-style sources resolve names against — the
    campaign engine passes the session overlay, so sources can name
    session-private shapes.
    """

    def iter_tests(self, shapes: Optional[Registry] = None) -> Iterator[CLitmus]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[CLitmus]:
        return self.iter_tests()

    def count(self) -> Optional[int]:
        """How many tests this source yields, when knowable without
        generating them (``None`` otherwise)."""
        return None

    def shard(self, k: int, n: int) -> "TestSource":
        """The k-th of n deterministic partitions of this source."""
        if n < 1 or not 0 <= k < n:
            raise ValueError(f"bad shard ({k}, {n}): need 0 <= k < n")
        return _ShardSource(self, k, n)

    def describe(self) -> Dict[str, object]:
        return {"source": type(self).__name__, "count": self.count()}


class _ShardSource(TestSource):
    """Every n-th test of a base source, starting at the k-th."""

    def __init__(self, base: TestSource, k: int, n: int) -> None:
        self.base = base
        self.k = k
        self.n = n

    def iter_tests(self, shapes: Optional[Registry] = None) -> Iterator[CLitmus]:
        return itertools.islice(
            self.base.iter_tests(shapes=shapes), self.k, None, self.n
        )

    def count(self) -> Optional[int]:
        total = self.base.count()
        if total is None:
            return None
        return len(range(self.k, total, self.n))

    def describe(self) -> Dict[str, object]:
        meta = self.base.describe()
        meta["shard"] = [self.k, self.n]
        meta["count"] = self.count()
        return meta


class ListSource(TestSource):
    """An eager in-memory suite behind the streaming protocol."""

    def __init__(self, tests: Sequence[CLitmus]) -> None:
        self.tests = tuple(tests)

    def iter_tests(self, shapes: Optional[Registry] = None) -> Iterator[CLitmus]:
        return iter(self.tests)

    def count(self) -> int:
        return len(self.tests)


class DiySource(TestSource):
    """Lazy diy generation: tests are built as the iterator advances.

    A ``DiySource(DiyConfig(limit=10_000))`` costs nothing to construct
    and nothing to put in a plan; generation happens (and only as far as
    needed) when a consumer iterates.
    """

    def __init__(
        self, config: Optional[DiyConfig] = None,
        shapes: Optional[Registry] = None,
    ) -> None:
        self.config = config if config is not None else DiyConfig()
        self.shapes = shapes

    def iter_tests(self, shapes: Optional[Registry] = None) -> Iterator[CLitmus]:
        # an explicitly bound registry wins; otherwise the consumer's
        # (i.e. the session overlay the engine passes) applies
        registry = self.shapes if self.shapes is not None else shapes
        return iter_generate(self.config, shapes=registry)

    def describe(self) -> Dict[str, object]:
        return {
            "source": "DiySource",
            "count": None,
            "shapes": list(self.config.shapes),
            "limit": self.config.limit,
        }


class PaperSource(TestSource):
    """The paper's figure tests (:mod:`repro.papertests`), by name."""

    DEFAULT = ("fig1_exchange", "fig7_lb", "fig9_lb_plain", "fig10_mp_rmw",
               "fig11_lb3")

    def __init__(self, names: Sequence[str] = DEFAULT) -> None:
        self.names = tuple(names)

    def iter_tests(self, shapes: Optional[Registry] = None) -> Iterator[CLitmus]:
        from .. import papertests

        for name in self.names:
            factory = getattr(papertests, name, None)
            if factory is None:
                raise ValueError(
                    f"unknown paper test {name!r}; see repro.papertests"
                )
            yield factory()

    def count(self) -> int:
        return len(self.names)

    def describe(self) -> Dict[str, object]:
        return {"source": "PaperSource", "count": self.count(),
                "names": list(self.names)}


# --------------------------------------------------------------------------- #
# JSONL corpora
# --------------------------------------------------------------------------- #
def write_suite(
    tests: Iterable[CLitmus], path: Union[str, "os.PathLike[str]"]
) -> int:
    """Persist a test suite as a JSONL corpus (one test per line).

    Each line records the printed litmus source plus the content digest;
    :class:`SuiteSource` parses lines back lazily, and the canonical
    printer guarantees the round-trip preserves digests — so verdicts
    stored against these tests replay across the dump/load boundary.
    Returns the number of tests written.
    """
    from ..lang.printer import print_c_litmus

    count = 0
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        for test in tests:
            line = json.dumps(
                {"name": test.name, "digest": test.digest(),
                 "source": print_c_litmus(test)},
                sort_keys=True,
            )
            handle.write(line + "\n")
            count += 1
    return count


class SuiteSource(TestSource):
    """A JSONL corpus written by :func:`write_suite` (or by hand: any
    JSONL of ``{"source": <C litmus text>}`` objects), parsed lazily —
    one test per line, only as the iterator advances.

    Robustness contract (shared with the campaign store): a torn final
    line is skipped, any other malformed line raises
    :class:`SuiteFormatError` with the file and line number.
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"]) -> None:
        self.path = os.fspath(path)

    def iter_tests(self, shapes: Optional[Registry] = None) -> Iterator[CLitmus]:
        from ..lang.parser import parse_c_litmus

        for lineno, record in iter_jsonl(self.path):
            source = record.get("source")
            if not isinstance(source, str):
                raise SuiteFormatError(
                    self.path, lineno,
                    "suite record has no 'source' litmus text",
                )
            yield parse_c_litmus(source, name=str(record.get("name", "test")))

    def describe(self) -> Dict[str, object]:
        return {"source": "SuiteSource", "count": None, "path": self.path}


class StoreReplaySource(TestSource):
    """Replay the tests a stored campaign actually saw.

    Store records carry content digests, not test bodies, so replay
    cross-references a *corpus* (any other :class:`TestSource` — usually
    the diy config or suite file the campaign ran) against the store:
    only corpus tests whose digest appears in the store (optionally
    restricted to given ``verdicts``) are yielded.  The canonical use is
    re-running just the positives of a finished campaign under a new
    model or compiler epoch::

        replay = StoreReplaySource(store, DiySource(cfg),
                                   verdicts=("positive",))
    """

    def __init__(
        self,
        store,
        corpus: TestSource,
        verdicts: Optional[Sequence[str]] = None,
    ) -> None:
        self.store = store
        self.corpus = corpus
        self.verdicts = None if verdicts is None else tuple(verdicts)

    def _wanted_digests(self) -> frozenset:
        wanted = set()
        for record in self.store.records():
            if self.verdicts is not None:
                if record.get("verdict") not in self.verdicts:
                    continue
            wanted.add(str(record.get("digest", "")))
        return frozenset(wanted)

    def iter_tests(self, shapes: Optional[Registry] = None) -> Iterator[CLitmus]:
        wanted = self._wanted_digests()
        seen: set = set()
        for test in self.corpus.iter_tests(shapes=shapes):
            digest = test.digest()
            if digest in wanted and digest not in seen:
                seen.add(digest)
                yield test

    def describe(self) -> Dict[str, object]:
        return {
            "source": "StoreReplaySource",
            "count": None,
            "store": getattr(self.store, "path", None),
            "verdicts": None if self.verdicts is None else list(self.verdicts),
            "corpus": self.corpus.describe(),
        }


class MutationSource(TestSource):
    """Order/fence-weakening mutants of a seed source, lazily.

    Wraps any :class:`TestSource` (or an in-memory sequence) and yields
    every seed's single-site mutants under the named mutation operators
    (:mod:`repro.tools.mutate`), deduplicated by content digest across
    the whole stream — a mutant reachable from two seeds is yielded
    once.  ``include_seeds=True`` interleaves each seed before its
    mutants (the hunt campaign's round-0 + round-1 suite as one flat
    source); ``limit_per_seed`` caps the mutants taken per seed.

    Like every source, iteration is deterministic, so ``shard(k, n)``
    partitions the mutant stream exactly.
    """

    def __init__(
        self,
        seeds: Union[TestSource, Sequence[CLitmus]],
        operators: Optional[Sequence[str]] = None,
        include_seeds: bool = False,
        limit_per_seed: Optional[int] = None,
        registry: Optional[Registry] = None,
    ) -> None:
        self.seeds = seeds if isinstance(seeds, TestSource) else ListSource(seeds)
        self.operators = (
            tuple(operators) if operators is not None else DEFAULT_OPERATORS
        )
        self.include_seeds = include_seeds
        self.limit_per_seed = limit_per_seed
        self.registry = registry

    def iter_tests(self, shapes: Optional[Registry] = None) -> Iterator[CLitmus]:
        seen: set = set()
        for seed in self.seeds.iter_tests(shapes=shapes):
            if self.include_seeds:
                digest = seed.digest()
                if digest not in seen:
                    seen.add(digest)
                    yield seed
            taken = 0
            for mutation in iter_mutants(
                seed, operators=self.operators, registry=self.registry
            ):
                if self.limit_per_seed is not None and taken >= self.limit_per_seed:
                    break
                digest = mutation.digest
                if digest in seen:
                    continue
                seen.add(digest)
                taken += 1
                yield mutation.litmus

    def describe(self) -> Dict[str, object]:
        return {
            "source": "MutationSource",
            "count": None,
            "operators": list(self.operators),
            "include_seeds": self.include_seeds,
            "limit_per_seed": self.limit_per_seed,
            "seeds": self.seeds.describe(),
        }


def as_source(
    tests: Union[TestSource, Sequence[CLitmus], None],
    config: Optional[DiyConfig] = None,
) -> TestSource:
    """Coerce the plan's ``tests``/``config`` pair to one source."""
    if isinstance(tests, TestSource):
        return tests
    if tests is not None:
        return ListSource(tests)
    return DiySource(config if config is not None else DiyConfig())


__all__ = [
    "DiySource",
    "ListSource",
    "MutationSource",
    "PaperSource",
    "StoreReplaySource",
    "SuiteFormatError",
    "SuiteSource",
    "TestSource",
    "as_source",
    "iter_jsonl",
    "write_suite",
]
