"""``mcompare`` — outcome comparison with state mappings (Fig. 5, step 5).

Checks the paper's test relation::

    outcomes(herd(comp(S), M_C))  ⊆  outcomes(herd(S, M_S))     (test_tv)

after mapping compiled observables back to source names.  Differences are
classified exactly as in §IV-D:

* **positive** (+ve): compiled outcomes not allowed by the source —
  potential bugs;
* **negative** (-ve): source outcomes the compiled program has lost —
  expected, since optimisations and architecture models both constrain
  behaviour.

Undefined behaviour (data races) in the source makes every compiled
outcome acceptable — the paper ignores such false positives.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.execution import Outcome
from ..herd.simulator import SimulationResult


@dataclass(frozen=True)
class StateMapping:
    """Renames compiled observables to source observables.

    ``renames`` maps compiled outcome keys to source keys (identity when
    absent).  ``observables`` fixes the comparison domain: keys the
    *source* condition and shared state can see.  Compiled-side keys
    outside the domain (GOT slots, stack locations, scratch registers)
    are projected away.
    """

    observables: FrozenSet[str]
    renames: Tuple[Tuple[str, str], ...] = ()

    def apply(self, outcome: Outcome) -> Outcome:
        renamed = outcome.rename(dict(self.renames))
        data = renamed.as_dict()
        # missing observables read as zero (herd zero-initialises — the
        # paper's Fig. 9 deleted-local effect)
        complete = {name: data.get(name, 0) for name in self.observables}
        return Outcome.of(complete)


@dataclass
class ComparisonResult:
    """The verdict of one source-vs-compiled comparison."""

    test_name: str
    source_model: str
    target_model: str
    source_outcomes: FrozenSet[Outcome]
    target_outcomes: FrozenSet[Outcome]
    positive: FrozenSet[Outcome]
    negative: FrozenSet[Outcome]
    source_has_ub: bool = False

    @property
    def is_positive(self) -> bool:
        """A potential compiler bug: compiled ⊄ source (and no UB excuse)."""
        return bool(self.positive) and not self.source_has_ub

    @property
    def is_negative(self) -> bool:
        return not self.positive and bool(self.negative)

    @property
    def is_equal(self) -> bool:
        return not self.positive and not self.negative

    def verdict(self) -> str:
        if self.source_has_ub and self.positive:
            return "ub-masked"
        if self.is_positive:
            return "positive"
        if self.is_negative:
            return "negative"
        return "equal"

    def pretty(self) -> str:
        """The mcompare two-column log format of the artefact's Claim 1."""
        lines = [f"{self.test_name}: {self.verdict()}"]
        source = sorted(self.source_outcomes, key=lambda o: o.bindings)
        lines.append("  source outcomes:")
        lines.extend(f"    {o}" for o in source)
        lines.append("  compiled outcomes:")
        for outcome in sorted(self.target_outcomes, key=lambda o: o.bindings):
            marker = " <- NEW (positive difference)" if outcome in self.positive else ""
            lines.append(f"    {outcome}{marker}")
        return "\n".join(lines)


def default_mapping(
    shared_locations: Iterable[str], condition_observables: Iterable[str] = ()
) -> StateMapping:
    """The comparison domain: the litmus final state.

    That is the shared locations plus whatever thread-local observables
    the final-state condition names (``Pn:r``) — the same domain the
    litmus format records.  Compiler- and simulator-internal state
    (scratch registers, GOT slots, stack locations, unobserved locals)
    stays out of the comparison, as in the paper's def. II.2.
    """
    names: Set[str] = set(shared_locations) | set(condition_observables)
    return StateMapping(observables=frozenset(names))


def mcompare(
    source: SimulationResult,
    target: SimulationResult,
    mapping: Optional[StateMapping] = None,
    shared_locations: Iterable[str] = (),
    condition_observables: Iterable[str] = (),
) -> ComparisonResult:
    """Compare compiled outcomes against source outcomes (test_tv)."""
    if mapping is None:
        mapping = default_mapping(shared_locations, condition_observables)
    source_set = frozenset(mapping.apply(o) for o in source.outcomes)
    target_set = frozenset(mapping.apply(o) for o in target.outcomes)
    return ComparisonResult(
        test_name=source.test_name,
        source_model=source.model_name,
        target_model=target.model_name,
        source_outcomes=source_set,
        target_outcomes=target_set,
        positive=target_set - source_set,
        negative=source_set - target_set,
        source_has_ub=source.has_undefined_behaviour,
    )


# --------------------------------------------------------------------- #
# Baseline diffing (repro.farm): verdict records vs a blessed baseline.
# --------------------------------------------------------------------- #

#: record fields that legitimately vary run-to-run (wall-clock, cache
#: luck, artifact keys) — stripped before any baseline comparison.
VOLATILE_FIELDS = ("seconds", "artifacts", "source_reused", "source_simulated")

#: the outcome-set fields of tv and differential verdict records.
_OUTCOME_FIELDS = (
    "source_outcomes", "target_outcomes", "outcomes_a", "outcomes_b",
    "positive", "negative",
)

#: drift classes, in reporting order — new positives lead because they
#: are the farm's whole point (a verdict flip in the long tail).
DELTA_KINDS = (
    "new-positive", "lost-positive", "verdict-change", "outcome-change",
    "status-change", "field-change", "missing", "unexpected",
)


def baseline_view(record: Dict[str, object]) -> Dict[str, object]:
    """The stable projection of a verdict record (volatile fields gone)."""
    return {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}


def _canon(value: object) -> str:
    """An order-insensitive canonical form for outcome-set fields."""
    if isinstance(value, list):
        return json.dumps(
            sorted(json.dumps(item, sort_keys=True) for item in value)
        )
    return json.dumps(value, sort_keys=True)


@dataclass(frozen=True)
class BaselineDelta:
    """One divergence between a verdict record and its blessed baseline."""

    kind: str
    digest: str
    profile: str
    test: str
    detail: str

    def pretty(self) -> str:
        return (
            f"  [{self.kind}] {self.test} @ {self.profile}: {self.detail}"
            f" (digest {self.digest[:12]})"
        )


@dataclass
class BaselineDiff:
    """All drift between a run's verdict records and a blessed baseline."""

    label: str
    baseline_count: int
    current_count: int
    deltas: Tuple[BaselineDelta, ...]

    @property
    def has_drift(self) -> bool:
        return bool(self.deltas)

    def count(self, kind: str) -> int:
        return sum(1 for delta in self.deltas if delta.kind == kind)

    def pretty(self) -> str:
        """An mcompare-style drift report (new/lost positives up front)."""
        lines = [
            f"{self.label}: {self.current_count} records vs "
            f"{self.baseline_count} blessed"
        ]
        if not self.deltas:
            lines.append("  no drift")
            return "\n".join(lines)
        summary = ", ".join(
            f"{self.count(kind)} {kind}"
            for kind in DELTA_KINDS
            if self.count(kind)
        )
        lines.append(f"  DRIFT: {summary}")
        for kind in DELTA_KINDS:
            lines.extend(
                delta.pretty() for delta in self.deltas if delta.kind == kind
            )
        return "\n".join(lines)


def _classify(
    baseline: Dict[str, object], current: Dict[str, object]
) -> Optional[Tuple[str, str]]:
    """The (kind, detail) of one shared cell's drift, or ``None``."""
    if baseline.get("status") != current.get("status"):
        return (
            "status-change",
            f"status {baseline.get('status')!r} -> {current.get('status')!r}",
        )
    old_verdict = baseline.get("verdict")
    new_verdict = current.get("verdict")
    if old_verdict != new_verdict:
        if new_verdict == "positive":
            kind = "new-positive"
        elif old_verdict == "positive":
            kind = "lost-positive"
        else:
            kind = "verdict-change"
        return kind, f"verdict {old_verdict!r} -> {new_verdict!r}"
    changed_outcomes = [
        field
        for field in _OUTCOME_FIELDS
        if _canon(baseline.get(field)) != _canon(current.get(field))
    ]
    if changed_outcomes:
        return "outcome-change", f"outcome sets differ: {changed_outcomes}"
    changed_fields = sorted(
        field
        for field in set(baseline) | set(current)
        if field not in _OUTCOME_FIELDS
        and _canon(baseline.get(field)) != _canon(current.get(field))
    )
    if changed_fields:
        return "field-change", f"fields differ: {changed_fields}"
    return None


def diff_baselines(
    baseline_records: Iterable[Dict[str, object]],
    current_records: Iterable[Dict[str, object]],
    label: str = "baseline",
) -> BaselineDiff:
    """Diff verdict records against a blessed baseline, mcompare-style.

    Records are keyed by ``(digest, profile)`` — content identity plus
    the compiler profile — deliberately *not* the full store cell key,
    so a farm re-run under an overridden model (``--cmem``) still lines
    up against the blessed cells and reports verdict flips instead of a
    wall of missing/unexpected.  :data:`VOLATILE_FIELDS` are ignored.
    """

    def index(
        records: Iterable[Dict[str, object]],
    ) -> Dict[Tuple[str, str], Dict[str, object]]:
        return {
            (str(r.get("digest", "")), str(r.get("profile", ""))):
                baseline_view(r)
            for r in records
        }

    blessed = index(baseline_records)
    current = index(current_records)
    deltas: List[BaselineDelta] = []

    def describe(key: Tuple[str, str], record: Dict[str, object]) -> str:
        return str(record.get("test", key[0][:12]))

    for key in sorted(set(blessed) | set(current)):
        digest, profile = key
        if key not in current:
            record = blessed[key]
            deltas.append(BaselineDelta(
                "missing", digest, profile, describe(key, record),
                "blessed cell absent from this run",
            ))
            continue
        if key not in blessed:
            record = current[key]
            deltas.append(BaselineDelta(
                "unexpected", digest, profile, describe(key, record),
                f"cell not in baseline (verdict {record.get('verdict')!r})",
            ))
            continue
        drift = _classify(blessed[key], current[key])
        if drift is not None:
            kind, detail = drift
            deltas.append(BaselineDelta(
                kind, digest, profile, describe(key, current[key]), detail,
            ))
    return BaselineDiff(
        label=label,
        baseline_count=len(blessed),
        current_count=len(current),
        deltas=tuple(deltas),
    )
