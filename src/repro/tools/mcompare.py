"""``mcompare`` — outcome comparison with state mappings (Fig. 5, step 5).

Checks the paper's test relation::

    outcomes(herd(comp(S), M_C))  ⊆  outcomes(herd(S, M_S))     (test_tv)

after mapping compiled observables back to source names.  Differences are
classified exactly as in §IV-D:

* **positive** (+ve): compiled outcomes not allowed by the source —
  potential bugs;
* **negative** (-ve): source outcomes the compiled program has lost —
  expected, since optimisations and architecture models both constrain
  behaviour.

Undefined behaviour (data races) in the source makes every compiled
outcome acceptable — the paper ignores such false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from ..core.execution import Outcome
from ..herd.simulator import SimulationResult


@dataclass(frozen=True)
class StateMapping:
    """Renames compiled observables to source observables.

    ``renames`` maps compiled outcome keys to source keys (identity when
    absent).  ``observables`` fixes the comparison domain: keys the
    *source* condition and shared state can see.  Compiled-side keys
    outside the domain (GOT slots, stack locations, scratch registers)
    are projected away.
    """

    observables: FrozenSet[str]
    renames: Tuple[Tuple[str, str], ...] = ()

    def apply(self, outcome: Outcome) -> Outcome:
        renamed = outcome.rename(dict(self.renames))
        data = renamed.as_dict()
        # missing observables read as zero (herd zero-initialises — the
        # paper's Fig. 9 deleted-local effect)
        complete = {name: data.get(name, 0) for name in self.observables}
        return Outcome.of(complete)


@dataclass
class ComparisonResult:
    """The verdict of one source-vs-compiled comparison."""

    test_name: str
    source_model: str
    target_model: str
    source_outcomes: FrozenSet[Outcome]
    target_outcomes: FrozenSet[Outcome]
    positive: FrozenSet[Outcome]
    negative: FrozenSet[Outcome]
    source_has_ub: bool = False

    @property
    def is_positive(self) -> bool:
        """A potential compiler bug: compiled ⊄ source (and no UB excuse)."""
        return bool(self.positive) and not self.source_has_ub

    @property
    def is_negative(self) -> bool:
        return not self.positive and bool(self.negative)

    @property
    def is_equal(self) -> bool:
        return not self.positive and not self.negative

    def verdict(self) -> str:
        if self.source_has_ub and self.positive:
            return "ub-masked"
        if self.is_positive:
            return "positive"
        if self.is_negative:
            return "negative"
        return "equal"

    def pretty(self) -> str:
        """The mcompare two-column log format of the artefact's Claim 1."""
        lines = [f"{self.test_name}: {self.verdict()}"]
        source = sorted(self.source_outcomes, key=lambda o: o.bindings)
        lines.append("  source outcomes:")
        lines.extend(f"    {o}" for o in source)
        lines.append("  compiled outcomes:")
        for outcome in sorted(self.target_outcomes, key=lambda o: o.bindings):
            marker = " <- NEW (positive difference)" if outcome in self.positive else ""
            lines.append(f"    {outcome}{marker}")
        return "\n".join(lines)


def default_mapping(
    shared_locations: Iterable[str], condition_observables: Iterable[str] = ()
) -> StateMapping:
    """The comparison domain: the litmus final state.

    That is the shared locations plus whatever thread-local observables
    the final-state condition names (``Pn:r``) — the same domain the
    litmus format records.  Compiler- and simulator-internal state
    (scratch registers, GOT slots, stack locations, unobserved locals)
    stays out of the comparison, as in the paper's def. II.2.
    """
    names: Set[str] = set(shared_locations) | set(condition_observables)
    return StateMapping(observables=frozenset(names))


def mcompare(
    source: SimulationResult,
    target: SimulationResult,
    mapping: Optional[StateMapping] = None,
    shared_locations: Iterable[str] = (),
    condition_observables: Iterable[str] = (),
) -> ComparisonResult:
    """Compare compiled outcomes against source outcomes (test_tv)."""
    if mapping is None:
        mapping = default_mapping(shared_locations, condition_observables)
    source_set = frozenset(mapping.apply(o) for o in source.outcomes)
    target_set = frozenset(mapping.apply(o) for o in target.outcomes)
    return ComparisonResult(
        test_name=source.test_name,
        source_model=source.model_name,
        target_model=target.model_name,
        source_outcomes=source_set,
        target_outcomes=target_set,
        positive=target_set - source_set,
        negative=source_set - target_set,
        source_has_ub=source.has_undefined_behaviour,
    )
