"""The Telechat tool-chain: l2c, c2s, s2l, diy, mcompare (paper Fig. 6)."""

from .c2s import C2SResult, compile_and_disassemble
from .diy import (
    DEP_CHOICES,
    ORDER_CHOICES,
    VARIANT_CHOICES,
    DiyConfig,
    Shape,
    ShapeEvent,
    build_test,
    generate,
    get_shape,
    lb_chain,
    paper_config,
    sb_ring,
    shape_names,
    small_config,
)
from .diy import iter_generate
from .l2c import augment_locals, fuzz_variants, out_global, prepare
from .mcompare import ComparisonResult, StateMapping, default_mapping, mcompare
from .s2l import S2LStats, assembly_to_litmus, optimise_thread, parse_thread
from .sources import (
    DiySource,
    ListSource,
    PaperSource,
    StoreReplaySource,
    SuiteSource,
    TestSource,
    as_source,
    write_suite,
)

__all__ = [
    "C2SResult",
    "compile_and_disassemble",
    "DEP_CHOICES",
    "ORDER_CHOICES",
    "VARIANT_CHOICES",
    "DiyConfig",
    "Shape",
    "ShapeEvent",
    "build_test",
    "generate",
    "get_shape",
    "lb_chain",
    "paper_config",
    "sb_ring",
    "shape_names",
    "small_config",
    "augment_locals",
    "fuzz_variants",
    "out_global",
    "prepare",
    "ComparisonResult",
    "StateMapping",
    "default_mapping",
    "mcompare",
    "S2LStats",
    "assembly_to_litmus",
    "optimise_thread",
    "parse_thread",
    "DiySource",
    "ListSource",
    "PaperSource",
    "StoreReplaySource",
    "SuiteSource",
    "TestSource",
    "as_source",
    "iter_generate",
    "write_suite",
]
