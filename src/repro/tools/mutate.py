"""Mutation operators over C litmus tests — the hunt engine's move set.

The "fuzz S′" step of paper Fig. 6 (CCmutator-style [46] order
weakening) started life as a hard-coded loop in :mod:`repro.tools.l2c`.
This module promotes it onto the shared :class:`~repro.core.registry.Registry`
protocol: each *mutation operator* is a registered callable that, given a
test, yields every single-site application of one transformation —
weaken a store's memory order, weaken a fence, drop a fence outright —
and sessions can overlay private operators exactly like private models
or shapes (:meth:`repro.api.Session.register_mutation`).

Naming invariant: a mutant's name is derived from its *content* —
``<seed base>+<operator>.<digest prefix>`` — never from a running
counter.  The historical ``+m{len(variants)}`` suffix collided across
repeated ``fuzz_variants`` calls on renamed tests (two different mutants
could both be called ``LB001+m0``); digest-derived names cannot, and
every hunt cache keys by :meth:`~repro.lang.ast.CLitmus.digest` anyway,
so names stay purely cosmetic.

An operator is a callable ``(CLitmus) -> Iterator[Tuple[CLitmus, str]]``
yielding ``(mutated test, site description)`` pairs.  The mutated test's
name is a placeholder; :func:`iter_mutants` renames it canonically and
wraps it in a :class:`Mutation` carrying the lineage (seed digest,
operator, site) the hunt scheduler and store records preserve.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import ReproError
from ..core.registry import Registry
from ..core.events import MemoryOrder
from ..lang.ast import (
    Assign,
    AtomicLoad,
    AtomicRMW,
    AtomicStore,
    CExpr,
    CLitmus,
    CStmt,
    CThread,
    Decl,
    ExprStmt,
    Fence,
    PlainStore,
)


class MutationError(ReproError, KeyError):
    """An unknown mutation operator was named."""


#: the global mutation-operator registry; sessions overlay it.
MUTATIONS: Registry[Callable[[CLitmus], Iterator[Tuple[CLitmus, str]]]] = Registry(
    "mutation operator", error=MutationError
)

#: the order-weakening ladders, per access kind.  Loads have no release
#: half, stores no acquire half; fences may weaken through every rung.
_WEAKER_FENCE: Dict[MemoryOrder, Tuple[MemoryOrder, ...]] = {
    MemoryOrder.SC: (MemoryOrder.ACQ_REL, MemoryOrder.ACQ, MemoryOrder.REL,
                     MemoryOrder.RLX),
    MemoryOrder.ACQ_REL: (MemoryOrder.ACQ, MemoryOrder.REL, MemoryOrder.RLX),
    MemoryOrder.ACQ: (MemoryOrder.RLX,),
    MemoryOrder.REL: (MemoryOrder.RLX,),
}
_WEAKER_STORE: Dict[MemoryOrder, Tuple[MemoryOrder, ...]] = {
    MemoryOrder.SC: (MemoryOrder.REL, MemoryOrder.RLX),
    MemoryOrder.REL: (MemoryOrder.RLX,),
}
_WEAKER_LOAD: Dict[MemoryOrder, Tuple[MemoryOrder, ...]] = {
    MemoryOrder.SC: (MemoryOrder.ACQ, MemoryOrder.RLX),
    MemoryOrder.ACQ: (MemoryOrder.RLX,),
}
_WEAKER_RMW: Dict[MemoryOrder, Tuple[MemoryOrder, ...]] = {
    MemoryOrder.SC: (MemoryOrder.ACQ_REL, MemoryOrder.ACQ, MemoryOrder.REL,
                     MemoryOrder.RLX),
    MemoryOrder.ACQ_REL: (MemoryOrder.ACQ, MemoryOrder.REL, MemoryOrder.RLX),
    MemoryOrder.ACQ: (MemoryOrder.RLX,),
    MemoryOrder.REL: (MemoryOrder.RLX,),
}


def _with_stmt(
    litmus: CLitmus, t_index: int, s_index: int, stmt: Optional[CStmt]
) -> CLitmus:
    """A copy of ``litmus`` with one statement replaced (or, when ``stmt``
    is ``None``, dropped)."""
    thread = litmus.threads[t_index]
    body = list(thread.body)
    if stmt is None:
        del body[s_index]
    else:
        body[s_index] = stmt
    threads = list(litmus.threads)
    threads[t_index] = CThread(
        name=thread.name,
        params=thread.params,
        body=tuple(body),
        atomic_params=thread.atomic_params,
    )
    return CLitmus(
        name=litmus.name,
        init=dict(litmus.init),
        condition=litmus.condition,
        threads=tuple(threads),
        widths=dict(litmus.widths),
        const_locations=litmus.const_locations,
    )


def _sites(litmus: CLitmus) -> Iterator[Tuple[int, int, CStmt, str]]:
    """Every (thread index, statement index, statement, site label)."""
    for t_index, thread in enumerate(litmus.threads):
        for s_index, stmt in enumerate(thread.body):
            yield t_index, s_index, stmt, f"{thread.name}[{s_index}]"


def _rewrite_expr(expr: CExpr, new_expr: CExpr, stmt: CStmt) -> CStmt:
    """The statement ``stmt`` with its direct expression swapped."""
    if isinstance(stmt, (Decl, Assign, ExprStmt, PlainStore, AtomicStore)):
        return replace(stmt, expr=new_expr)
    raise TypeError(f"statement {stmt!r} carries no expression")


def _stmt_expr(stmt: CStmt) -> Optional[CExpr]:
    """The statement's direct expression, when it has one.  Litmus bodies
    keep atomic accesses at the top of a statement (``int r0 = load(...)``),
    so direct-expression rewriting covers the diy/paper corpus."""
    if isinstance(stmt, (Decl, Assign, ExprStmt, PlainStore, AtomicStore)):
        return stmt.expr
    return None


@MUTATIONS.register("weaken-store", doc="weaken an atomic store's memory order")
def weaken_store(litmus: CLitmus) -> Iterator[Tuple[CLitmus, str]]:
    for t, s, stmt, site in _sites(litmus):
        if isinstance(stmt, AtomicStore):
            for weaker in _WEAKER_STORE.get(stmt.order, ()):
                yield (
                    _with_stmt(litmus, t, s, replace(stmt, order=weaker)),
                    f"{site}:{stmt.order.name}->{weaker.name}",
                )


@MUTATIONS.register("weaken-load", doc="weaken an atomic load's memory order")
def weaken_load(litmus: CLitmus) -> Iterator[Tuple[CLitmus, str]]:
    for t, s, stmt, site in _sites(litmus):
        expr = _stmt_expr(stmt)
        if isinstance(expr, AtomicLoad):
            for weaker in _WEAKER_LOAD.get(expr.order, ()):
                yield (
                    _with_stmt(
                        litmus, t, s,
                        _rewrite_expr(expr, replace(expr, order=weaker), stmt),
                    ),
                    f"{site}:{expr.order.name}->{weaker.name}",
                )


@MUTATIONS.register("weaken-rmw", doc="weaken a read-modify-write's memory order")
def weaken_rmw(litmus: CLitmus) -> Iterator[Tuple[CLitmus, str]]:
    for t, s, stmt, site in _sites(litmus):
        expr = _stmt_expr(stmt)
        if isinstance(expr, AtomicRMW):
            for weaker in _WEAKER_RMW.get(expr.order, ()):
                yield (
                    _with_stmt(
                        litmus, t, s,
                        _rewrite_expr(expr, replace(expr, order=weaker), stmt),
                    ),
                    f"{site}:{expr.order.name}->{weaker.name}",
                )


@MUTATIONS.register("weaken-fence", doc="weaken a thread fence's memory order")
def weaken_fence(litmus: CLitmus) -> Iterator[Tuple[CLitmus, str]]:
    for t, s, stmt, site in _sites(litmus):
        if isinstance(stmt, Fence):
            for weaker in _WEAKER_FENCE.get(stmt.order, ()):
                yield (
                    _with_stmt(litmus, t, s, replace(stmt, order=weaker)),
                    f"{site}:{stmt.order.name}->{weaker.name}",
                )


@MUTATIONS.register("drop-fence", doc="delete a thread fence outright")
def drop_fence(litmus: CLitmus) -> Iterator[Tuple[CLitmus, str]]:
    for t, s, stmt, site in _sites(litmus):
        if isinstance(stmt, Fence):
            yield _with_stmt(litmus, t, s, None), f"{site}:drop {stmt.order.name}"


#: the order-weakening move set — what ``fuzz_variants`` and hunt
#: campaigns apply by default.  ``drop-fence`` changes statement counts,
#: so it stays opt-in (``mutations=(..., "drop-fence")``).
DEFAULT_OPERATORS: Tuple[str, ...] = (
    "weaken-store", "weaken-load", "weaken-rmw", "weaken-fence",
)


def mutant_name(seed: CLitmus, operator: str, digest: str) -> str:
    """The canonical mutant name: seed base + operator + content digest.

    The base strips any previous mutation suffix, so names stay flat
    across hunt generations (``LB001+weaken-fence.1a2b3c``, never
    ``LB001+m0+m3``); the digest prefix makes the name unique per
    *content*, so repeated calls — on renamed seeds included — can never
    hand two different mutants the same name.
    """
    base = seed.name.split("+", 1)[0]
    return f"{base}+{operator}.{digest[:6]}"


class Mutation:
    """One mutant plus the lineage the hunt scheduler and store keep."""

    __slots__ = ("litmus", "operator", "site", "seed_digest")

    def __init__(
        self, litmus: CLitmus, operator: str, site: str, seed_digest: str
    ) -> None:
        self.litmus = litmus
        self.operator = operator
        self.site = site
        self.seed_digest = seed_digest

    @property
    def digest(self) -> str:
        return self.litmus.digest()

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.litmus.name,
            "digest": self.digest,
            "operator": self.operator,
            "site": self.site,
            "seed_digest": self.seed_digest,
        }


def iter_mutants(
    litmus: CLitmus,
    operators: Optional[Sequence[str]] = None,
    registry: Optional[Registry] = None,
) -> Iterator[Mutation]:
    """Every single-site mutant of ``litmus`` under ``operators``.

    Operators resolve against ``registry`` (a session's overlay, or the
    global :data:`MUTATIONS`); unknown names raise the registry's
    did-you-mean error *before* any mutant is built.  Mutants that do not
    change the test's content (the operator reproduced the input) are
    filtered out, as are mutants that fail the litmuslint safety
    precheck (:func:`repro.analysis.check_mutant`) — an operator that
    disconnects the condition from the program would otherwise burn
    simulation budget on a vacuous test.  The caller deduplicates across
    seeds by digest.
    """
    from ..analysis import check_mutant

    reg = registry if registry is not None else MUTATIONS
    names = tuple(operators) if operators is not None else DEFAULT_OPERATORS
    ops = [(reg.resolve(name), reg.get(name)) for name in names]
    seed_digest = litmus.digest()
    for canonical, op in ops:
        for mutated, site in op(litmus):
            digest = mutated.digest()
            if digest == seed_digest:
                continue
            if check_mutant(mutated):
                continue  # ill-formed mutant: refuse the site
            named = replace(mutated, name=mutant_name(litmus, canonical, digest))
            yield Mutation(
                litmus=named, operator=canonical, site=site,
                seed_digest=seed_digest,
            )


def fuzz_variants(
    litmus: CLitmus,
    limit: int = 16,
    operators: Optional[Sequence[str]] = None,
    registry: Optional[Registry] = None,
) -> List[CLitmus]:
    """Single-mutation variants of a test (order weakening on loads,
    stores, RMWs and fences) — the Fig. 6 fuzz step, now over the
    operator registry.  Kept as the historical eager entry point; hunt
    campaigns use :func:`iter_mutants` (lazy, with lineage) instead."""
    return [
        mutation.litmus
        for mutation in itertools.islice(
            iter_mutants(litmus, operators=operators, registry=registry), limit
        )
    ]


__all__ = [
    "DEFAULT_OPERATORS",
    "MUTATIONS",
    "Mutation",
    "MutationError",
    "fuzz_variants",
    "iter_mutants",
    "mutant_name",
]
