"""``s2l`` — assembly2litmus: parse, bridge addresses, optimise (Fig. 6).

Three stages, mirroring §III-B/§III-D/§IV-E of the paper:

1. **Parse** the objdump listing back into instructions.
2. **Bridge** the numeric address view to the symbolic litmus view using
   the object file's symbol table and relocations: ``adrp x8, 0x13000``
   becomes a reference to ``got_x``, and offsets into multi-byte symbols
   resolve to (symbol, offset).  This is as accurate as the metadata the
   compiler provides — the paper's stated accuracy bound.
3. **Optimise** the assembly litmus test so herd-style simulation
   terminates in milliseconds instead of exploding (§IV-E):

   * ``ADRP; LDR(got); LDR/STR x ⇝ ADRP; LDR/STR x`` — GOT-indirection
     removal (the paper's headline rewrite),
   * stack spill/reload forwarding and dead-store removal,
   * dead address-materialisation cleanup.

   Every removed access targets a location no other thread can name, the
   paper's informal soundness argument: such accesses cannot affect — or
   be affected by — other threads' executions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from ..asm.isa.base import Instruction, Op, get_isa
from ..asm.litmus import AsmLitmus, AsmThread
from ..compiler.disasm import strip_listing
from ..compiler.objfile import ObjectFile
from ..core.errors import MappingError
from ..core.litmus import Condition


@dataclass
class S2LStats:
    """Optimisation accounting ("around 4 lines removed per access")."""

    parsed_instructions: int = 0
    removed_got_loads: int = 0
    removed_stack_accesses: int = 0
    removed_dead_movaddr: int = 0

    @property
    def total_removed(self) -> int:
        return (
            self.removed_got_loads
            + self.removed_stack_accesses
            + self.removed_dead_movaddr
        )


# --------------------------------------------------------------------------- #
# stage 1+2: parse and bridge
# --------------------------------------------------------------------------- #
def parse_thread(
    obj: ObjectFile, thread: str, lines: List[str]
) -> List[Instruction]:
    """Parse one thread's listing and resolve numeric addresses."""
    isa = get_isa(obj.arch)
    instructions = isa.parse_body(strip_listing(lines))
    resolved: List[Instruction] = []
    for instr in instructions:
        if instr.op is Op.MOVADDR and instr.symbol and instr.symbol.startswith("0x"):
            address = int(instr.symbol, 16) + instr.offset
            symbol = obj.symbol_at(address)
            if symbol is None:
                raise MappingError(
                    f"{thread}: address {address:#x} resolves to no symbol — "
                    f"missing metadata (paper §III-D accuracy bound)"
                )
            instr = replace(
                instr, symbol=symbol.name, offset=address - symbol.address
            )
        resolved.append(instr)
    return resolved


# --------------------------------------------------------------------------- #
# stage 3: the optimiser
# --------------------------------------------------------------------------- #
def _defs(instr: Instruction) -> Tuple[str, ...]:
    return tuple(r for r in (instr.dst, instr.dst2, instr.status) if r)


def _reg_uses(instr: Instruction) -> Tuple[str, ...]:
    return tuple(r for r in (instr.src1, instr.src2, instr.addr_reg) if r)


def fold_got_loads(
    instrs: List[Instruction], obj: ObjectFile, stats: S2LStats
) -> List[Instruction]:
    """``MOVADDR r, got_x ; LOAD r, [r]`` ⇝ ``MOVADDR r, x``.

    Sound because the GOT slot is written only by the (static) linker: the
    loaded value is always the address of ``x``, and no other thread can
    name the slot.
    """
    out: List[Instruction] = []
    i = 0
    while i < len(instrs):
        instr = instrs[i]
        if (
            instr.op is Op.MOVADDR
            and instr.symbol in obj.got_entries
            and i + 1 < len(instrs)
        ):
            nxt = instrs[i + 1]
            if (
                nxt.op is Op.LOAD
                and nxt.addr_reg == instr.dst
                and nxt.dst == instr.dst
                and nxt.offset == 0
            ):
                target = obj.got_entries[instr.symbol]
                out.append(replace(instr, symbol=target, text=""))
                stats.removed_got_loads += 1
                i += 2
                continue
        out.append(instr)
        i += 1
    return out


def forward_stack_traffic(
    instrs: List[Instruction], stats: S2LStats
) -> List[Instruction]:
    """Forward spill/reload pairs through registers; drop dead spills.

    Stack slots are thread-private (no other thread holds their address),
    so store→load forwarding within the thread preserves every outcome.
    Forwarding is segment-local: label and branch boundaries clear the
    tracked state, which keeps the rewrite trivially sound across joins.
    """
    # pass 1: replace reloads with register moves where possible
    forwarded: List[Instruction] = []
    slot_reg: Dict[int, str] = {}
    for instr in instrs:
        if instr.op in (Op.LABEL, Op.B, Op.BCOND, Op.CBZ, Op.CBNZ):
            slot_reg.clear()
            forwarded.append(instr)
            continue
        if instr.op is Op.STORE and instr.addr_reg == "sp" and instr.src1:
            slot_reg[instr.offset] = instr.src1
            forwarded.append(instr)
            continue
        if (
            instr.op is Op.LOAD
            and instr.addr_reg == "sp"
            and instr.offset in slot_reg
        ):
            source = slot_reg[instr.offset]
            if source == instr.dst:
                stats.removed_stack_accesses += 1
            else:
                forwarded.append(
                    Instruction(op=Op.MOV, dst=instr.dst, src1=source)
                )
                stats.removed_stack_accesses += 1
            continue
        for defined in _defs(instr):
            slot_reg = {k: v for k, v in slot_reg.items() if v != defined}
        forwarded.append(instr)
    # pass 2: drop stores to slots nobody reloads any more
    still_loaded: Set[int] = {
        instr.offset
        for instr in forwarded
        if instr.op is Op.LOAD and instr.addr_reg == "sp"
    }
    out: List[Instruction] = []
    for instr in forwarded:
        if (
            instr.op is Op.STORE
            and instr.addr_reg == "sp"
            and instr.offset not in still_loaded
        ):
            stats.removed_stack_accesses += 1
            continue
        out.append(instr)
    return out


def drop_dead_movaddr(
    instrs: List[Instruction], stats: S2LStats
) -> List[Instruction]:
    """Remove address materialisations whose register is never used."""
    out: List[Instruction] = []
    for index, instr in enumerate(instrs):
        if instr.op is Op.MOVADDR and instr.dst:
            used = False
            for later in instrs[index + 1 :]:
                if instr.dst in _reg_uses(later):
                    used = True
                    break
                if instr.dst in _defs(later):
                    break
            if not used:
                stats.removed_dead_movaddr += 1
                continue
        out.append(instr)
    return out


def optimise_thread(
    instrs: List[Instruction], obj: ObjectFile, stats: S2LStats
) -> List[Instruction]:
    """The full s2l optimisation pipeline for one thread."""
    instrs = fold_got_loads(instrs, obj, stats)
    instrs = forward_stack_traffic(instrs, stats)
    instrs = drop_dead_movaddr(instrs, stats)
    return instrs


# --------------------------------------------------------------------------- #
# litmus construction
# --------------------------------------------------------------------------- #
def assembly_to_litmus(
    obj: ObjectFile,
    condition: Condition,
    listing: Optional[Dict[str, List[str]]] = None,
    optimise: bool = True,
    stats: Optional[S2LStats] = None,
) -> AsmLitmus:
    """Construct an assembly litmus test from a disassembled object file.

    ``condition`` is the (possibly l2c-augmented) source condition;
    observables referencing registers are wired through the debug map.
    With ``optimise=False`` the raw compiled test is returned — the
    paper's non-terminating ``unoptimised.litmus`` configuration.
    """
    from ..compiler.disasm import disassemble

    stats = stats if stats is not None else S2LStats()
    listing = listing or disassemble(obj)

    init: Dict[str, int] = dict(obj.init)
    widths: Dict[str, int] = dict(obj.widths)
    layout = obj.layout()
    addr_locations: Dict[str, str] = {}
    private: List[str] = []
    for slot, target in obj.got_entries.items():
        init[slot] = layout[target]
        widths[slot] = 64
        addr_locations[slot] = target
        private.append(slot)
    regions: Dict[str, int] = {}
    threads: List[AsmThread] = []
    for name, lines in listing.items():
        instructions = parse_thread(obj, name, lines)
        stats.parsed_instructions += len(instructions)
        if optimise:
            instructions = optimise_thread(instructions, obj, stats)
        addr_env: Dict[str, str] = {}
        stack_symbol = obj.debug.stack_symbols.get(name)
        if stack_symbol is not None:
            addr_env["sp"] = stack_symbol
            regions[stack_symbol] = max(obj.stack_sizes.get(name, 0), 8)
        observed = {
            reg: local
            for local, reg in obj.debug.var_registers.get(name, {}).items()
        }
        threads.append(
            AsmThread(
                name=name,
                instructions=tuple(instructions),
                observed=observed,
                addr_env=addr_env,
            )
        )
    return AsmLitmus(
        name=obj.name,
        init=init,
        condition=condition,
        arch=obj.arch,
        threads=tuple(sorted(threads, key=lambda t: t.tid)),
        widths=widths,
        const_locations=obj.const_locations,
        layout=layout,
        addr_locations=addr_locations,
        private_locations=tuple(private),
        regions=regions,
    )
