"""``diy`` — litmus-test generation from communication shapes (paper §II-A).

The real diy [11] generates tests from *relaxation cycles* (``Rfe PodWR
Fre PodRW`` …).  We generate the same families from their shape names —
the classic two-to-four-thread communication patterns — crossed with the
decoration axes of the paper's Table III:

* **shapes**: MP, LB, SB, S, R, 2+2W, WRC, IRIW, and n-thread LB chains
  (``LB3`` is the paper's Fig. 11 test);
* **memory orders**: uniform relaxed / acquire-release / seq_cst, plus
  the non-atomic (racy) variants;
* **fences** between the two accesses of each thread;
* **dependencies** on read→write threads: none (po), data, control, and
  the both-arms control diamond (``ctrl2``) whose dependency GCC ``-O1``
  deletes on Armv7 (§IV-D);
* **RMW variants**: reads via ``fetch_add(x,0)``, writes via unused
  ``atomic_exchange`` (the Fig. 1 family) and unused ``fetch_add``
  (the Fig. 10 family).

Generation is deterministic: the same config always yields the same test
list, with diy-style names (``LB004``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.events import MemoryOrder
from ..core.litmus import Condition, LocEq, Prop, RegEq, conj
from ..core.registry import Registry
from ..lang.ast import (
    AtomicLoad,
    AtomicRMW,
    AtomicStore,
    BinExpr,
    CLitmus,
    CStmt,
    CThread,
    Decl,
    ExprStmt,
    Fence,
    If,
    IntLit,
    PlainLoad,
    PlainStore,
    Var,
)

_VARS = ("x", "y", "z", "w", "v", "u")


# --------------------------------------------------------------------------- #
# shape descriptions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShapeEvent:
    """One abstract access: ``R``/``W`` on variable index ``var``; for
    writes, the value written; for reads, the value the interesting
    outcome observes."""

    kind: str  # "R" | "W"
    var: int
    value: int


@dataclass(frozen=True)
class Shape:
    """An abstract litmus shape: per-thread access lists + the exists
    clause as (observable, value) pairs.  Observables are either
    ``("reg", tid, read_index, value)`` or ``("loc", var, value)``."""

    name: str
    threads: Tuple[Tuple[ShapeEvent, ...], ...]
    cond: Tuple[Tuple, ...]

    @property
    def num_vars(self) -> int:
        return 1 + max(e.var for t in self.threads for e in t)


def lb_chain(n: int) -> Shape:
    """The n-thread load-buffering chain: Ti reads x_i then writes
    x_{i+1}; the interesting outcome sees every read return 1.
    ``lb_chain(3)`` is the paper's Fig. 11 test."""
    threads = tuple(
        (ShapeEvent("R", i, 1), ShapeEvent("W", (i + 1) % n, 1))
        for i in range(n)
    )
    cond = tuple(("reg", i, 0, 1) for i in range(n))
    return Shape(f"LB{n}" if n != 2 else "LB", threads, cond)


def sb_ring(n: int) -> Shape:
    """The n-thread store-buffering ring: Ti writes x_i then reads
    x_{i+1}; the interesting outcome sees every read return 0."""
    threads = tuple(
        (ShapeEvent("W", i, 1), ShapeEvent("R", (i + 1) % n, 0))
        for i in range(n)
    )
    cond = tuple(("reg", i, 0, 0) for i in range(n))
    return Shape(f"SB{n}" if n != 2 else "SB", threads, cond)


#: the global shape registry, on the shared Registry protocol.  Keys are
#: normalised case-insensitively but listed by their display names.
SHAPES: Registry[Shape] = Registry("shape")


def _register(shape: Shape) -> Shape:
    SHAPES.register(shape.name, shape, display=shape.name,
                    threads=len(shape.threads))
    return shape


_register(lb_chain(2))
_register(lb_chain(3))
_register(lb_chain(4))
_register(sb_ring(2))
_register(sb_ring(3))
_register(
    Shape(
        "MP",
        (
            (ShapeEvent("W", 0, 1), ShapeEvent("W", 1, 1)),
            (ShapeEvent("R", 1, 1), ShapeEvent("R", 0, 0)),
        ),
        (("reg", 1, 0, 1), ("reg", 1, 1, 0)),
    )
)
_register(
    Shape(
        "S",
        (
            (ShapeEvent("W", 0, 2), ShapeEvent("W", 1, 1)),
            (ShapeEvent("R", 1, 1), ShapeEvent("W", 0, 1)),
        ),
        (("reg", 1, 0, 1), ("loc", 0, 2)),
    )
)
_register(
    Shape(
        "R",
        (
            (ShapeEvent("W", 0, 1), ShapeEvent("W", 1, 1)),
            (ShapeEvent("W", 1, 2), ShapeEvent("R", 0, 0)),
        ),
        (("loc", 1, 2), ("reg", 1, 0, 0)),
    )
)
_register(
    Shape(
        "2+2W",
        (
            (ShapeEvent("W", 0, 1), ShapeEvent("W", 1, 2)),
            (ShapeEvent("W", 1, 1), ShapeEvent("W", 0, 2)),
        ),
        (("loc", 0, 1), ("loc", 1, 1)),
    )
)
_register(
    Shape(
        "WRC",
        (
            (ShapeEvent("W", 0, 1),),
            (ShapeEvent("R", 0, 1), ShapeEvent("W", 1, 1)),
            (ShapeEvent("R", 1, 1), ShapeEvent("R", 0, 0)),
        ),
        (("reg", 1, 0, 1), ("reg", 2, 0, 1), ("reg", 2, 1, 0)),
    )
)
_register(
    Shape(
        # ISA2: message passing through a three-thread chain
        "ISA2",
        (
            (ShapeEvent("W", 0, 1), ShapeEvent("W", 1, 1)),
            (ShapeEvent("R", 1, 1), ShapeEvent("W", 2, 1)),
            (ShapeEvent("R", 2, 1), ShapeEvent("R", 0, 0)),
        ),
        (("reg", 1, 0, 1), ("reg", 2, 0, 1), ("reg", 2, 1, 0)),
    )
)
_register(
    Shape(
        # RWC (read-to-write causality): a reader between SB halves
        "RWC",
        (
            (ShapeEvent("W", 0, 1),),
            (ShapeEvent("R", 0, 1), ShapeEvent("R", 1, 0)),
            (ShapeEvent("W", 1, 1), ShapeEvent("R", 0, 0)),
        ),
        (("reg", 1, 0, 1), ("reg", 1, 1, 0), ("reg", 2, 0, 0)),
    )
)
_register(
    Shape(
        "IRIW",
        (
            (ShapeEvent("W", 0, 1),),
            (ShapeEvent("W", 1, 1),),
            (ShapeEvent("R", 0, 1), ShapeEvent("R", 1, 0)),
            (ShapeEvent("R", 1, 1), ShapeEvent("R", 0, 0)),
        ),
        (("reg", 2, 0, 1), ("reg", 2, 1, 0), ("reg", 3, 0, 1), ("reg", 3, 1, 0)),
    )
)


def shape_names() -> List[str]:
    return [SHAPES.get(name).name for name in SHAPES.names()]


def get_shape(name: str) -> Shape:
    return SHAPES.get(name)


# --------------------------------------------------------------------------- #
# decoration axes
# --------------------------------------------------------------------------- #
#: uniform memory-order assignments ("ar" = loads acquire, stores release).
ORDER_CHOICES = ("rlx", "ar", "sc")

#: dependency decorations for read→write threads.
DEP_CHOICES = ("po", "data", "ctrl", "ctrl2")

#: RMW variants.
VARIANT_CHOICES = ("load-store", "rmw-read", "xchg-write", "faa-first-unused")

_ORDER_MAP = {
    "rlx": (MemoryOrder.RLX, MemoryOrder.RLX),
    "ar": (MemoryOrder.ACQ, MemoryOrder.REL),
    "sc": (MemoryOrder.SC, MemoryOrder.SC),
}


@dataclass(frozen=True)
class DiyConfig:
    """Generation configuration — the analogue of ``c11.conf``."""

    shapes: Tuple[str, ...] = ("MP", "LB", "SB", "S", "R", "2+2W", "WRC")
    orders: Tuple[str, ...] = ("rlx", "sc")
    fences: Tuple[Optional[MemoryOrder], ...] = (
        None,
        MemoryOrder.RLX,
        MemoryOrder.ACQ_REL,
        MemoryOrder.SC,
    )
    deps: Tuple[str, ...] = ("po", "data", "ctrl", "ctrl2")
    variants: Tuple[str, ...] = ("load-store",)
    include_plain: bool = False
    limit: Optional[int] = None


def small_config() -> DiyConfig:
    """A laptop-scale config (a few dozen tests) for quick runs."""
    return DiyConfig(
        shapes=("MP", "LB", "SB"),
        orders=("rlx",),
        fences=(None, MemoryOrder.SC),
        deps=("po", "ctrl2"),
        variants=("load-store",),
    )


def paper_config() -> DiyConfig:
    """The scaled-down analogue of the paper's c11.conf campaign input."""
    return DiyConfig(
        shapes=("MP", "LB", "SB", "S", "R", "2+2W", "WRC", "IRIW"),
        orders=("rlx", "ar", "sc"),
        fences=(None, MemoryOrder.RLX, MemoryOrder.ACQ, MemoryOrder.REL,
                MemoryOrder.SC),
        deps=("po", "data", "ctrl", "ctrl2"),
        variants=("load-store", "rmw-read", "xchg-write", "faa-first-unused"),
        include_plain=True,
    )


# --------------------------------------------------------------------------- #
# test construction
# --------------------------------------------------------------------------- #
def _build_thread(
    tid: int,
    events: Tuple[ShapeEvent, ...],
    num_vars: int,
    order_choice: str,
    fence: Optional[MemoryOrder],
    dep: str,
    variant: str,
    atomic: bool,
    expected_reads: Dict[int, int],
) -> CThread:
    load_order, store_order = _ORDER_MAP[order_choice]
    body: List[CStmt] = []
    read_index = 0
    last_read_var: Optional[str] = None

    def make_read(event: ShapeEvent, reg: str) -> CStmt:
        loc = _VARS[event.var]
        if not atomic:
            return Decl(reg, PlainLoad(loc))
        if variant == "rmw-read":
            return Decl(reg, AtomicRMW("add", loc, IntLit(0), load_order))
        return Decl(reg, AtomicLoad(loc, load_order))

    def make_write(event: ShapeEvent, value_expr) -> CStmt:
        loc = _VARS[event.var]
        if not atomic:
            return PlainStore(loc, value_expr)
        if variant == "xchg-write":
            return ExprStmt(AtomicRMW("xchg", loc, value_expr, store_order))
        return AtomicStore(loc, value_expr, store_order)

    is_rw_thread = (
        len(events) == 2 and events[0].kind == "R" and events[1].kind == "W"
    )
    for position, event in enumerate(events):
        if position > 0:
            if is_rw_thread and dep != "po":
                pass  # the dependency itself orders; no fence
            elif fence is not None:
                body.append(Fence(fence))
        if event.kind == "R":
            reg = f"r{read_index}"
            if variant == "faa-first-unused" and position == 0 and atomic:
                # the Fig. 10 decoration: the first read becomes an unused
                # fetch_add, bumping the location's final value by 1
                body.append(
                    Decl(f"r{read_index}_rmw",
                         AtomicRMW("add", _VARS[event.var], IntLit(1),
                                   load_order))
                )
                read_index += 1
                last_read_var = None
                continue
            body.append(make_read(event, reg))
            expected_reads[read_index] = event.value
            last_read_var = reg
            read_index += 1
            continue
        # a write
        value_expr = IntLit(event.value)
        if is_rw_thread and position == 1 and last_read_var is not None:
            if dep == "data":
                # write the read value itself: a true data dependency
                # (constant-folding cannot remove it)
                value_expr = Var(last_read_var)
            elif dep == "ctrl":
                body.append(
                    If(
                        BinExpr("==", Var(last_read_var),
                                IntLit(expected_reads.get(read_index - 1, 1))),
                        (make_write(event, IntLit(event.value)),),
                    )
                )
                continue
            elif dep == "ctrl2":
                # the both-arms diamond: same store on each path — a pure
                # control dependency that identical-branch merging deletes
                body.append(
                    If(
                        BinExpr("==", Var(last_read_var),
                                IntLit(expected_reads.get(read_index - 1, 1))),
                        (make_write(event, IntLit(event.value)),),
                        (make_write(event, IntLit(event.value)),),
                    )
                )
                continue
        body.append(make_write(event, value_expr))

    params = tuple(_VARS[:num_vars])
    return CThread(
        name=f"P{tid}",
        params=params,
        body=tuple(body),
        atomic_params=params if atomic else (),
    )


def _build_condition(shape: Shape, variant: str, dep: str) -> Condition:
    props: List[Prop] = []
    for entry in shape.cond:
        if entry[0] == "reg":
            _, tid, read_index, value = entry
            props.append(RegEq(f"P{tid}", f"r{read_index}", value))
        else:
            _, var, value = entry
            if variant == "faa-first-unused":
                # every reading thread's first read became a fetch_add(+1)
                # on its variable; the final value of that variable rises
                value = value + sum(
                    1
                    for thread in shape.threads
                    if thread and thread[0].kind == "R" and thread[0].var == var
                )
            props.append(LocEq(_VARS[var], value))
    if variant == "faa-first-unused":
        # condition on the bumped locations replaces deleted registers
        extra: List[Prop] = []
        for tid, thread in enumerate(shape.threads):
            if thread and thread[0].kind == "R":
                var = thread[0].var
                already = any(
                    entry[0] == "loc" and entry[1] == var for entry in shape.cond
                )
                if not already:
                    base_final = _final_value(shape, var)
                    extra.append(LocEq(_VARS[var], base_final + 1))
        props = [
            p for p in props
            if not (isinstance(p, RegEq) and p.reg.endswith("0") and _first_read_reg(shape, p))
        ] + extra
    return Condition("exists", conj(props))


def _first_read_reg(shape: Shape, prop: RegEq) -> bool:
    """Is this RegEq observing a thread's *first* read (deleted by the
    faa-first-unused decoration)?"""
    tid = int(prop.thread[1:])
    thread = shape.threads[tid]
    return bool(thread) and thread[0].kind == "R" and prop.reg == "r0"


def _final_value(shape: Shape, var: int) -> int:
    """The final value of ``var`` in the interesting outcome (the last
    write in the shape's intended coherence order; 0 if never written)."""
    values = [e.value for t in shape.threads for e in t
              if e.kind == "W" and e.var == var]
    return max(values) if values else 0


def build_test(
    shape: Shape,
    order_choice: str = "rlx",
    fence: Optional[MemoryOrder] = None,
    dep: str = "po",
    variant: str = "load-store",
    atomic: bool = True,
    name: Optional[str] = None,
) -> CLitmus:
    """Instantiate one decorated litmus test from a shape."""
    expected_reads: Dict[int, int] = {}
    threads = tuple(
        _build_thread(tid, events, shape.num_vars, order_choice, fence, dep,
                      variant, atomic, expected_reads)
        for tid, events in enumerate(shape.threads)
    )
    init = {_VARS[i]: 0 for i in range(shape.num_vars)}
    condition = _build_condition(shape, variant, dep)
    return CLitmus(
        name=name or shape.name,
        init=init,
        condition=condition,
        threads=threads,
    )


def iter_generate(
    config: DiyConfig, shapes: Optional[Registry] = None
) -> Iterator[CLitmus]:
    """Lazily enumerate the configured test family, deterministically.

    The streaming form of :func:`generate`: each test is built only when
    the iterator is advanced, so a 10k-test configuration behind a
    :class:`~repro.tools.sources.DiySource` costs nothing until (and
    proportionally to how far) it is consumed.

    ``shapes`` selects the shape registry the config's names resolve
    against (defaults to the global one) — sessions pass their overlay so
    privately registered shapes generate without touching globals.
    """
    shape_registry = shapes if shapes is not None else SHAPES
    emitted = 0
    counters: Dict[str, int] = {}
    atomic_choices = (True, False) if config.include_plain else (True,)
    for shape_name in config.shapes:
        shape = shape_registry.get(shape_name)
        has_rw = any(
            len(t) == 2 and t[0].kind == "R" and t[1].kind == "W"
            for t in shape.threads
        )
        for order_choice, fence, dep, variant, atomic in itertools.product(
            config.orders, config.fences, config.deps, config.variants,
            atomic_choices,
        ):
            if dep != "po" and not has_rw:
                continue  # dependency decorations need a read→write thread
            if dep != "po" and fence is not None:
                continue  # dependency replaces the fence slot
            if not atomic and variant != "load-store":
                continue  # RMW variants are atomic by nature
            if variant == "faa-first-unused" and not any(
                t and t[0].kind == "R" for t in shape.threads
            ):
                continue
            counters[shape_name] = counters.get(shape_name, 0) + 1
            name = f"{shape_name}{counters[shape_name]:03d}"
            yield build_test(shape, order_choice, fence, dep, variant, atomic,
                             name=name)
            emitted += 1
            if config.limit is not None and emitted >= config.limit:
                return


def generate(
    config: DiyConfig, shapes: Optional[Registry] = None
) -> List[CLitmus]:
    """Enumerate the configured test family, deterministically (the
    eager form of :func:`iter_generate`)."""
    return list(iter_generate(config, shapes=shapes))
