"""``l2c`` — litmus2c: prepare a C litmus test for compilation (Fig. 6).

Two responsibilities:

1. **Local-variable augmentation** (§IV-B).  C/C++ models allow compilers
   to delete unused thread-local data, which erases exactly the
   observables litmus conditions need (Fig. 9) and masks the Fig. 1 /
   Fig. 10 heisenbugs.  The augmentation appends, at the end of each
   thread, a plain store of every observed local into a fresh global
   ``out_Pn_r``, and rewrites the initial state and the final-state
   condition to use those globals.  The original code under test is
   unchanged — only the constraint "local data persists" is added.
   The augmentation is optional (``augment_locals=False``) so that
   thread-local optimisations themselves can be tested, reproducing the
   Fig. 9 deletion.

2. **Mutation fuzzing** (the optional "fuzz S′" of Fig. 6): order- and
   fence-weakening mutations that enlarge a test family, in the spirit of
   CCmutator [46].
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..core.events import MemoryOrder
from ..core.litmus import And, Condition, LocEq, Not, Or, Prop, RegEq, TrueProp
from ..lang.ast import (
    AtomicLoad,
    AtomicRMW,
    AtomicStore,
    CLitmus,
    CStmt,
    CThread,
    Fence,
    PlainStore,
    Var,
)


def out_global(thread: str, local: str) -> str:
    """The global that persists ``thread``'s local ``local``."""
    return f"out_{thread}_{local}"


def _rewrite_prop(prop: Prop, renames: Dict[Tuple[str, str], str]) -> Prop:
    if isinstance(prop, RegEq):
        key = (prop.thread, prop.reg)
        if key in renames:
            return LocEq(renames[key], prop.value)
        return prop
    if isinstance(prop, And):
        return And(_rewrite_prop(prop.left, renames), _rewrite_prop(prop.right, renames))
    if isinstance(prop, Or):
        return Or(_rewrite_prop(prop.left, renames), _rewrite_prop(prop.right, renames))
    if isinstance(prop, Not):
        return Not(_rewrite_prop(prop.inner, renames))
    return prop


def augment_locals(litmus: CLitmus) -> CLitmus:
    """Persist observed locals into ``out_*`` globals (paper §IV-B).

    Returns a new litmus test whose condition references the globals; the
    observable set becomes a pure final-memory predicate, which survives
    compilation because global stores cannot be deleted.
    """
    renames: Dict[Tuple[str, str], str] = {}
    observed = litmus.locals_read_in_condition()
    new_threads: List[CThread] = []
    new_init = dict(litmus.init)
    for thread in litmus.threads:
        extra: List[CStmt] = []
        for local in sorted(observed.get(thread.name, ())):
            global_name = out_global(thread.name, local)
            renames[(thread.name, local)] = global_name
            new_init[global_name] = 0
            extra.append(PlainStore(loc=global_name, expr=Var(local)))
        new_threads.append(
            CThread(
                name=thread.name,
                params=thread.params,
                body=tuple(thread.body) + tuple(extra),
                atomic_params=thread.atomic_params,
            )
        )
    condition = Condition(
        litmus.condition.quantifier,
        _rewrite_prop(litmus.condition.prop, renames),
    )
    return CLitmus(
        name=litmus.name,
        init=new_init,
        condition=condition,
        threads=tuple(new_threads),
        widths=dict(litmus.widths),
        const_locations=litmus.const_locations,
    )


def prepare(litmus: CLitmus, augment: bool = True) -> CLitmus:
    """The l2c entry point: S → S′ ready for compilation."""
    return augment_locals(litmus) if augment else litmus


# --------------------------------------------------------------------------- #
# mutation fuzzing (optional step of Fig. 6)
# --------------------------------------------------------------------------- #
#: order-weakening ladder used by the fuzzer.
_WEAKER: Dict[MemoryOrder, Tuple[MemoryOrder, ...]] = {
    MemoryOrder.SC: (MemoryOrder.ACQ_REL, MemoryOrder.ACQ, MemoryOrder.REL,
                     MemoryOrder.RLX),
    MemoryOrder.ACQ_REL: (MemoryOrder.ACQ, MemoryOrder.REL, MemoryOrder.RLX),
    MemoryOrder.ACQ: (MemoryOrder.RLX,),
    MemoryOrder.REL: (MemoryOrder.RLX,),
}


def _mutate_stmt(stmt: CStmt) -> List[CStmt]:
    """All single-statement order weakenings."""
    out: List[CStmt] = []
    if isinstance(stmt, AtomicStore):
        for weaker in _WEAKER.get(stmt.order, ()):
            out.append(replace(stmt, order=weaker))
    elif isinstance(stmt, Fence):
        for weaker in _WEAKER.get(stmt.order, ()):
            out.append(replace(stmt, order=weaker))
    return out


def fuzz_variants(litmus: CLitmus, limit: int = 16) -> List[CLitmus]:
    """Single-mutation variants of a test (order weakening on stores and
    fences).  Each variant exercises a different compiler mapping while
    keeping the final-state condition meaningful."""
    variants: List[CLitmus] = []
    for t_index, thread in enumerate(litmus.threads):
        for s_index, stmt in enumerate(thread.body):
            for mutated in _mutate_stmt(stmt):
                body = list(thread.body)
                body[s_index] = mutated
                threads = list(litmus.threads)
                threads[t_index] = CThread(
                    name=thread.name,
                    params=thread.params,
                    body=tuple(body),
                    atomic_params=thread.atomic_params,
                )
                variants.append(
                    CLitmus(
                        name=f"{litmus.name}+m{len(variants)}",
                        init=dict(litmus.init),
                        condition=litmus.condition,
                        threads=tuple(threads),
                        widths=dict(litmus.widths),
                        const_locations=litmus.const_locations,
                    )
                )
                if len(variants) >= limit:
                    return variants
    return variants
