"""``l2c`` — litmus2c: prepare a C litmus test for compilation (Fig. 6).

Two responsibilities:

1. **Local-variable augmentation** (§IV-B).  C/C++ models allow compilers
   to delete unused thread-local data, which erases exactly the
   observables litmus conditions need (Fig. 9) and masks the Fig. 1 /
   Fig. 10 heisenbugs.  The augmentation appends, at the end of each
   thread, a plain store of every observed local into a fresh global
   ``out_Pn_r``, and rewrites the initial state and the final-state
   condition to use those globals.  The original code under test is
   unchanged — only the constraint "local data persists" is added.
   The augmentation is optional (``augment_locals=False``) so that
   thread-local optimisations themselves can be tested, reproducing the
   Fig. 9 deletion.

2. **Mutation fuzzing** (the optional "fuzz S′" of Fig. 6): order- and
   fence-weakening mutations that enlarge a test family, in the spirit of
   CCmutator [46].
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.litmus import And, Condition, LocEq, Not, Or, Prop, RegEq
from ..lang.ast import CLitmus, CStmt, CThread, PlainStore, Var


def out_global(thread: str, local: str) -> str:
    """The global that persists ``thread``'s local ``local``."""
    return f"out_{thread}_{local}"


def _rewrite_prop(prop: Prop, renames: Dict[Tuple[str, str], str]) -> Prop:
    if isinstance(prop, RegEq):
        key = (prop.thread, prop.reg)
        if key in renames:
            return LocEq(renames[key], prop.value)
        return prop
    if isinstance(prop, And):
        return And(_rewrite_prop(prop.left, renames), _rewrite_prop(prop.right, renames))
    if isinstance(prop, Or):
        return Or(_rewrite_prop(prop.left, renames), _rewrite_prop(prop.right, renames))
    if isinstance(prop, Not):
        return Not(_rewrite_prop(prop.inner, renames))
    return prop


def augment_locals(litmus: CLitmus) -> CLitmus:
    """Persist observed locals into ``out_*`` globals (paper §IV-B).

    Returns a new litmus test whose condition references the globals; the
    observable set becomes a pure final-memory predicate, which survives
    compilation because global stores cannot be deleted.
    """
    renames: Dict[Tuple[str, str], str] = {}
    observed = litmus.locals_read_in_condition()
    new_threads: List[CThread] = []
    new_init = dict(litmus.init)
    for thread in litmus.threads:
        extra: List[CStmt] = []
        for local in sorted(observed.get(thread.name, ())):
            global_name = out_global(thread.name, local)
            renames[(thread.name, local)] = global_name
            new_init[global_name] = 0
            extra.append(PlainStore(loc=global_name, expr=Var(local)))
        new_threads.append(
            CThread(
                name=thread.name,
                params=thread.params,
                body=tuple(thread.body) + tuple(extra),
                atomic_params=thread.atomic_params,
            )
        )
    condition = Condition(
        litmus.condition.quantifier,
        _rewrite_prop(litmus.condition.prop, renames),
    )
    return CLitmus(
        name=litmus.name,
        init=new_init,
        condition=condition,
        threads=tuple(new_threads),
        widths=dict(litmus.widths),
        const_locations=litmus.const_locations,
    )


def prepare(litmus: CLitmus, augment: bool = True) -> CLitmus:
    """The l2c entry point: S → S′ ready for compilation."""
    return augment_locals(litmus) if augment else litmus


# --------------------------------------------------------------------------- #
# mutation fuzzing (optional step of Fig. 6)
# --------------------------------------------------------------------------- #
# The fuzzer grew into the mutation-operator registry of
# :mod:`repro.tools.mutate` (hunt campaigns schedule over it with lineage
# and digest-based dedup); ``fuzz_variants`` stays importable from here
# as the historical eager entry point.
from .mutate import fuzz_variants  # noqa: E402,F401
