"""Symbolic semantics of assembly litmus threads.

The assembly analogue of :mod:`repro.lang.semantics`: walks a thread's
instruction list, producing :class:`~repro.herd.templates.ThreadPath`
objects whose events carry *architecture tags* (``A``, ``Q``, ``L``,
``X``, ``DMB.SY`` …) instead of C11 memory orders.  The architecture Cat
models consume these tags.

Design notes mirroring the paper:

* **RMWs.** ``AMO`` instructions (LSE atomics, x86 locked ops, RISC-V
  AMOs) produce a read+write pair linked by ``rmw``.  When the
  destination register is a zero register (``LDADD …, xzr`` aliasing
  ``STADD``) the read is tagged ``NORET`` — it still participates in
  atomicity but is *not* ordered by ``DMB LD`` / acquire fences, which is
  precisely the mechanism of the paper's Fig. 1 and Fig. 10 bugs.
* **Exclusives.** ``LDX``/``STX`` pairs are modelled success-only: the
  status register becomes 0 and the pair is linked by ``rmw``.  Retry
  loops therefore execute exactly once; the outcome set is unchanged
  because a failed reservation writes nothing.
* **Address traffic.** ``MOVADDR`` materialises a symbol's address
  without touching memory (ADRP+ADD); loads from *address locations*
  (GOT slots) are genuine read events whose loaded value the interpreter
  also tracks symbolically as an address.  This reproduces the event
  inflation behind the paper's §IV-E state explosion.
* **128-bit pairs.** ``LOADPAIR``/``STOREPAIR`` access a single 128-bit
  location; the two 64-bit registers hold the low and high halves.  The
  wrong-endian store bug [39] manifests as the *compiler* swapping the
  register operands, not as a semantics switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.errors import SimulationError
from ..core.events import EventKind
from ..core.expr import BinOp, Const, Expr, ReadVal, is_constant
from ..herd.templates import EventTemplate, PathConstraint, ThreadPath, ThreadProgram
from .isa.base import Instruction, Op
from .litmus import AsmLitmus, AsmThread

#: Registers that read as zero and discard writes, across all modelled ISAs.
ZERO_REGISTERS = frozenset({"xzr", "wzr", "zero", "x0/riscv"})

_LOW64 = (1 << 64) - 1

#: Cap on interpreted instructions per path: the analogue of herd's fixed
#: loop unroll factor (paper §I: "fixed loop unroll factor, no recursion").
DEFAULT_STEP_BUDGET = 512


def _is_zero_reg(name: Optional[str]) -> bool:
    return name is not None and name in ZERO_REGISTERS


@dataclass
class _AsmState:
    """Mutable exploration state for one path prefix."""

    regs: Dict[str, Expr]
    addrs: Dict[str, Tuple[str, int]]
    flags: Optional[Tuple[Expr, Expr]]
    templates: List[EventTemplate]
    constraints: List[PathConstraint]
    ctrl: FrozenSet[int]
    pc: int
    steps: int
    next_placeholder: int
    pending_exclusive: Optional[Tuple[str, int]]  # (location, template index)

    def fork(self) -> "_AsmState":
        return _AsmState(
            regs=dict(self.regs),
            addrs=dict(self.addrs),
            flags=self.flags,
            templates=list(self.templates),
            constraints=list(self.constraints),
            ctrl=self.ctrl,
            pc=self.pc,
            steps=self.steps,
            next_placeholder=self.next_placeholder,
            pending_exclusive=self.pending_exclusive,
        )


class AsmThreadElaborator:
    """Explodes one assembly thread into its control-flow paths."""

    def __init__(
        self,
        thread: AsmThread,
        litmus: AsmLitmus,
        step_budget: int = DEFAULT_STEP_BUDGET,
    ) -> None:
        self.thread = thread
        self.litmus = litmus
        self.step_budget = step_budget
        self.labels: Dict[str, int] = {}
        for index, instr in enumerate(thread.instructions):
            if instr.op is Op.LABEL and instr.label:
                if instr.label in self.labels:
                    raise SimulationError(
                        f"duplicate label {instr.label!r} in {thread.name}"
                    )
                self.labels[instr.label] = index

    # ------------------------------------------------------------------ #
    def run(self) -> ThreadProgram:
        initial = _AsmState(
            regs={},
            addrs={reg: (sym, 0) for reg, sym in self.thread.addr_env.items()},
            flags=None,
            templates=[],
            constraints=[],
            ctrl=frozenset(),
            pc=0,
            steps=0,
            next_placeholder=0,
            pending_exclusive=None,
        )
        finished: List[_AsmState] = []
        self._explore(initial, finished)
        if not finished:
            raise SimulationError(
                f"thread {self.thread.name}: no path finished within "
                f"{self.step_budget} steps (unbounded loop?)"
            )
        paths = []
        for state in finished:
            finals: Dict[str, Expr] = {}
            for reg, name in self.thread.observed.items():
                finals[name] = state.regs.get(reg, Const(0))
            paths.append(
                ThreadPath(
                    thread_name=self.thread.name,
                    templates=tuple(state.templates),
                    constraints=tuple(state.constraints),
                    finals=finals,
                )
            )
        return ThreadProgram(name=self.thread.name, tid=self.thread.tid, paths=tuple(paths))

    # ------------------------------------------------------------------ #
    def _explore(self, state: _AsmState, finished: List[_AsmState]) -> None:
        work = [state]
        while work:
            st = work.pop()
            done = False
            while not done:
                if st.pc >= len(self.thread.instructions):
                    finished.append(st)
                    done = True
                    break
                if st.steps >= self.step_budget:
                    # unbounded loop: drop this path (herd's bounded unroll)
                    done = True
                    break
                instr = self.thread.instructions[st.pc]
                st.steps += 1
                branches = self._step(instr, st)
                if branches is None:
                    continue  # _step advanced st.pc itself
                if not branches:
                    finished.append(st)
                    done = True
                    break
                st = branches[0]
                work.extend(branches[1:])

    # ------------------------------------------------------------------ #
    # instruction dispatch: returns None when ``state`` continues in place,
    # a list of successor states when control flow forks, [] on RET.
    # ------------------------------------------------------------------ #
    def _step(self, instr: Instruction, state: _AsmState) -> Optional[List[_AsmState]]:
        op = instr.op
        if op in (Op.LABEL, Op.NOP):
            state.pc += 1
            return None
        if op is Op.RET:
            return []
        if op is Op.MOVI:
            self._set_reg(state, instr.dst, Const(instr.imm or 0))
            state.addrs.pop(instr.dst, None)
            state.pc += 1
            return None
        if op is Op.MOVADDR:
            if instr.symbol is None:
                raise SimulationError("movaddr without a symbol")
            state.addrs[instr.dst] = (instr.symbol, instr.offset)
            self._set_reg(
                state,
                instr.dst,
                Const(self.litmus.layout.get(instr.symbol, 0) + instr.offset),
            )
            state.pc += 1
            return None
        if op is Op.MOV:
            self._set_reg(state, instr.dst, self._reg(state, instr.src1))
            if instr.src1 in state.addrs:
                state.addrs[instr.dst] = state.addrs[instr.src1]
            else:
                state.addrs.pop(instr.dst, None)
            state.pc += 1
            return None
        if op is Op.ALU:
            self._exec_alu(instr, state)
            state.pc += 1
            return None
        if op is Op.CMP:
            left = self._reg(state, instr.src1)
            right = (
                Const(instr.imm) if instr.src2 is None else self._reg(state, instr.src2)
            )
            state.flags = (left, right)
            state.pc += 1
            return None
        if op is Op.B:
            state.pc = self._target(instr)
            return None
        if op is Op.BCOND:
            if instr.src1 is not None:
                # fused compare-and-branch (RISC-V beq/bne, MIPS beq/bne)
                left = self._reg(state, instr.src1)
                right = (
                    self._reg(state, instr.src2)
                    if instr.src2 is not None
                    else Const(instr.imm or 0)
                )
            elif state.flags is not None:
                left, right = state.flags
            else:
                raise SimulationError("conditional branch with no preceding cmp")
            cond = BinOp(_COND_OPS[instr.cond], left, right).substitute({})
            return self._branch(instr, state, cond)
        if op in (Op.CBZ, Op.CBNZ):
            reg = self._reg(state, instr.src1)
            cmp_op = "==" if op is Op.CBZ else "!="
            cond = BinOp(cmp_op, reg, Const(0)).substitute({})
            return self._branch(instr, state, cond)
        if op is Op.FENCE:
            state.templates.append(
                EventTemplate(
                    kind=EventKind.FENCE,
                    tags=instr.fence_tags,
                    ctrl_deps=state.ctrl,
                )
            )
            state.pc += 1
            return None
        if op is Op.LOAD:
            self._exec_load(instr, state)
            state.pc += 1
            return None
        if op is Op.STORE:
            self._exec_store(instr, state)
            state.pc += 1
            return None
        if op is Op.LOADPAIR:
            self._exec_load_pair(instr, state)
            state.pc += 1
            return None
        if op is Op.STOREPAIR:
            self._exec_store_pair(instr, state)
            state.pc += 1
            return None
        if op is Op.AMO:
            self._exec_amo(instr, state)
            state.pc += 1
            return None
        if op is Op.LDX:
            self._exec_ldx(instr, state)
            state.pc += 1
            return None
        if op is Op.STX:
            self._exec_stx(instr, state)
            state.pc += 1
            return None
        raise SimulationError(f"cannot interpret instruction {instr!r}")

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _reg(self, state: _AsmState, name: Optional[str]) -> Expr:
        if name is None:
            raise SimulationError("instruction missing a source register")
        if _is_zero_reg(name):
            return Const(0)
        return state.regs.get(name, Const(0))

    def _set_reg(self, state: _AsmState, name: Optional[str], value: Expr) -> None:
        if name is None or _is_zero_reg(name):
            return
        state.regs[name] = value

    def _target(self, instr: Instruction) -> int:
        if instr.label is None or instr.label not in self.labels:
            raise SimulationError(
                f"branch to unknown label {instr.label!r} in {self.thread.name}"
            )
        return self.labels[instr.label]

    def _branch(
        self, instr: Instruction, state: _AsmState, cond: Expr
    ) -> List[_AsmState]:
        taken_pc = self._target(instr)
        if is_constant(cond):
            state.pc = taken_pc if cond.eval({}) else state.pc + 1
            return [state]
        taken = state.fork()
        taken.constraints.append(PathConstraint(cond, True))
        taken.ctrl = taken.ctrl | cond.reads()
        taken.pc = taken_pc
        fall = state
        fall.constraints.append(PathConstraint(cond, False))
        fall.ctrl = fall.ctrl | cond.reads()
        fall.pc += 1
        return [fall, taken]

    def _exec_alu(self, instr: Instruction, state: _AsmState) -> None:
        left = self._reg(state, instr.src1)
        right = (
            Const(instr.imm or 0) if instr.src2 is None else self._reg(state, instr.src2)
        )
        op = _ALU_OPS[instr.alu_op]
        self._set_reg(state, instr.dst, BinOp(op, left, right).substitute({}))
        # pointer arithmetic keeps the symbolic address view alive
        if (
            instr.src1 in state.addrs
            and instr.alu_op in ("add", "sub")
            and instr.src2 is None
        ):
            symbol, offset = state.addrs[instr.src1]
            delta = instr.imm or 0
            if instr.alu_op == "sub":
                delta = -delta
            state.addrs[instr.dst] = (symbol, offset + delta)
        elif instr.dst in state.addrs and instr.dst != instr.src1:
            state.addrs.pop(instr.dst, None)

    def _resolve(self, instr: Instruction, state: _AsmState) -> Tuple[str, FrozenSet[int]]:
        """Resolve a memory operand to a symbolic location.

        Returns the location plus the *address dependencies*: the read
        placeholders the address register's value derives from (non-empty
        when the address came out of memory, e.g. a GOT load).
        """
        if instr.addr_reg is None:
            raise SimulationError(f"memory access without address register: {instr!r}")
        if instr.addr_reg not in state.addrs:
            raise SimulationError(
                f"{self.thread.name}: register {instr.addr_reg!r} holds no "
                f"known address at {instr.text or instr.op.value!r}"
            )
        symbol, base_offset = state.addrs[instr.addr_reg]
        offset = base_offset + instr.offset
        if symbol in self.litmus.regions:
            # a private multi-slot region (a thread stack): every offset is
            # its own derived location
            if not 0 <= offset < self.litmus.regions[symbol]:
                raise SimulationError(
                    f"access at offset {offset} outside region {symbol!r}"
                )
            loc = f"{symbol}+{offset}" if offset else symbol
        elif offset == 0:
            loc = symbol
        else:
            address = self.litmus.address_of(symbol) + offset
            loc, rest = self.litmus.symbol_at(address)
            if rest != 0:
                raise SimulationError(
                    f"misaligned access into {loc!r} (offset {rest})"
                )
        addr_value = state.regs.get(instr.addr_reg, Const(0))
        return loc, addr_value.reads()

    def _access_tags(self, instr: Instruction, *extra: str) -> FrozenSet[str]:
        tags = set(extra)
        if instr.acquire:
            tags.add("A")
        if instr.acquire_pc:
            tags.add("Q")
        if instr.release:
            tags.add("L")
        if instr.exclusive:
            tags.add("X")
        return frozenset(tags)

    def _emit_read(
        self,
        state: _AsmState,
        loc: str,
        width: int,
        tags: FrozenSet[str],
        addr_deps: FrozenSet[int],
    ) -> Expr:
        if self.litmus.is_const(loc):
            tags = tags | {"CONST"}
        placeholder = state.next_placeholder
        state.next_placeholder += 1
        state.templates.append(
            EventTemplate(
                kind=EventKind.READ,
                loc=loc,
                placeholder=placeholder,
                tags=tags,
                addr_deps=addr_deps,
                ctrl_deps=state.ctrl,
                width=width,
            )
        )
        return ReadVal(placeholder)

    def _emit_write(
        self,
        state: _AsmState,
        loc: str,
        value: Expr,
        width: int,
        tags: FrozenSet[str],
        addr_deps: FrozenSet[int],
        rmw_with_prev: bool = False,
        rmw_read_pos: Optional[int] = None,
    ) -> None:
        if self.litmus.is_const(loc):
            tags = tags | {"CONST"}
        state.templates.append(
            EventTemplate(
                kind=EventKind.WRITE,
                loc=loc,
                value_expr=value,
                tags=tags,
                addr_deps=addr_deps,
                ctrl_deps=state.ctrl,
                width=width,
                rmw_with_prev=rmw_with_prev,
                rmw_read_pos=rmw_read_pos,
            )
        )

    # ------------------------------------------------------------------ #
    # memory instructions
    # ------------------------------------------------------------------ #
    def _exec_load(self, instr: Instruction, state: _AsmState) -> None:
        loc, addr_deps = self._resolve(instr, state)
        value = self._emit_read(
            state, loc, self.litmus.width_of(loc), self._access_tags(instr), addr_deps
        )
        self._set_reg(state, instr.dst, value)
        if loc in self.litmus.addr_locations:
            # a GOT slot: the loaded value is the address of another symbol
            state.addrs[instr.dst] = (self.litmus.addr_locations[loc], 0)
        else:
            state.addrs.pop(instr.dst, None)

    def _exec_store(self, instr: Instruction, state: _AsmState) -> None:
        loc, addr_deps = self._resolve(instr, state)
        value = (
            Const(instr.imm) if instr.src1 is None else self._reg(state, instr.src1)
        )
        self._emit_write(
            state, loc, value, self.litmus.width_of(loc), self._access_tags(instr), addr_deps
        )

    def _exec_load_pair(self, instr: Instruction, state: _AsmState) -> None:
        loc, addr_deps = self._resolve(instr, state)
        old = self._emit_read(state, loc, 128, self._access_tags(instr), addr_deps)
        self._set_reg(state, instr.dst, BinOp("&", old, Const(_LOW64)).substitute({}))
        self._set_reg(state, instr.dst2, BinOp(">>", old, Const(64)).substitute({}))
        state.addrs.pop(instr.dst, None)
        state.addrs.pop(instr.dst2, None)

    def _exec_store_pair(self, instr: Instruction, state: _AsmState) -> None:
        loc, addr_deps = self._resolve(instr, state)
        low = self._reg(state, instr.src1)
        high = self._reg(state, instr.src2)
        value = BinOp(
            "|", low, BinOp("<<", high, Const(64))
        ).substitute({})
        self._emit_write(state, loc, value, 128, self._access_tags(instr), addr_deps)

    def _exec_amo(self, instr: Instruction, state: _AsmState) -> None:
        loc, addr_deps = self._resolve(instr, state)
        width = self.litmus.width_of(loc)
        noret = instr.dst is None or _is_zero_reg(instr.dst)
        read_tags = {"RMW-R", "X"}
        if instr.acquire:
            read_tags.add("A")
        if instr.acquire_pc:
            read_tags.add("Q")
        if noret:
            read_tags.add("NORET")
        old = self._emit_read(state, loc, width, frozenset(read_tags), addr_deps)
        operand = (
            Const(instr.imm or 0) if instr.src1 is None else self._reg(state, instr.src1)
        )
        new = _AMO_OPS[instr.amo_kind](old, operand)
        if not isinstance(new, Const):
            new = new.substitute({})
        write_tags = {"RMW-W", "X"}
        if instr.release:
            write_tags.add("L")
        self._emit_write(
            state, loc, new, width, frozenset(write_tags), addr_deps, rmw_with_prev=True
        )
        self._set_reg(state, instr.dst, old)

    def _exec_ldx(self, instr: Instruction, state: _AsmState) -> None:
        loc, addr_deps = self._resolve(instr, state)
        tags = self._access_tags(instr, "X", "RMW-R")
        if instr.op is Op.LDX and instr.width == 128:
            old = self._emit_read(state, loc, 128, tags, addr_deps)
            self._set_reg(state, instr.dst, BinOp("&", old, Const(_LOW64)).substitute({}))
            self._set_reg(state, instr.dst2, BinOp(">>", old, Const(64)).substitute({}))
        else:
            old = self._emit_read(
                state, loc, self.litmus.width_of(loc), tags, addr_deps
            )
            self._set_reg(state, instr.dst, old)
        state.pending_exclusive = (loc, len(state.templates) - 1)

    def _exec_stx(self, instr: Instruction, state: _AsmState) -> None:
        loc, addr_deps = self._resolve(instr, state)
        if state.pending_exclusive is None or state.pending_exclusive[0] != loc:
            raise SimulationError(
                f"{self.thread.name}: store-exclusive to {loc!r} without a "
                f"matching load-exclusive"
            )
        _, read_pos = state.pending_exclusive
        if instr.width == 128:
            low = self._reg(state, instr.src1)
            high = self._reg(state, instr.src2)
            value: Expr = BinOp("|", low, BinOp("<<", high, Const(64))).substitute({})
            width = 128
        else:
            value = self._reg(state, instr.src1)
            width = self.litmus.width_of(loc)
        tags = self._access_tags(instr, "X", "RMW-W")
        self._emit_write(
            state, loc, value, width, tags, addr_deps, rmw_read_pos=read_pos
        )
        state.pending_exclusive = None
        # Success-only modelling: the reservation always succeeds.  The
        # status convention is per-ISA (AArch64/Armv7 write 0 on success,
        # MIPS SC writes 1); ``instr.imm`` carries the success value.
        # PPC's stwcx. reports through CR0 instead of a register: model
        # that as an "equal" flags state so a following bne falls through.
        if instr.status is None:
            state.flags = (Const(0), Const(0))
        else:
            self._set_reg(state, instr.status, Const(instr.imm or 0))


_COND_OPS = {
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
}

_ALU_OPS = {
    "add": "+",
    "sub": "-",
    "and": "&",
    "or": "|",
    "xor": "^",
    "lsl": "<<",
    "lsr": ">>",
    "mul": "*",
}

_AMO_OPS = {
    "add": lambda old, v: BinOp("+", old, v),
    "sub": lambda old, v: BinOp("-", old, v),
    "or": lambda old, v: BinOp("|", old, v),
    "and": lambda old, v: BinOp("&", old, v),
    "xor": lambda old, v: BinOp("^", old, v),
    "swap": lambda old, v: v,
}


def elaborate_asm(
    litmus: AsmLitmus, step_budget: int = DEFAULT_STEP_BUDGET
) -> List[ThreadProgram]:
    """Produce the per-thread path sets of an assembly litmus test."""
    return [
        AsmThreadElaborator(t, litmus, step_budget=step_budget).run()
        for t in litmus.threads
    ]
