"""Intel x86-64 syntax (Intel operand order) for the modelled subset.

x86-TSO keeps all orderings except write→read, so compilers map C11
loads/stores to plain MOVs; only seq_cst stores need an XCHG (or
MOV+MFENCE).  Locked RMWs (``lock xadd``, ``xchg``…) carry the ``X`` tag,
which the TSO Cat model treats as a full fence.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .base import Instruction, Isa, IsaError, Op, register_isa

_MEM_RE = re.compile(
    r"(?:(?P<width>byte|word|dword|qword)\s+ptr\s+)?"
    r"\[\s*(?P<base>\w+)\s*(?:\+\s*(?P<off>\d+)\s*)?\]",
    re.IGNORECASE,
)
_LEA_RE = re.compile(
    r"\[\s*rip\s*\+\s*(?P<sym>0x[0-9a-fA-F]+|[A-Za-z_][\w.]*)\s*(?:\+\s*(?P<off>\d+))?\]"
)

_WIDTH_NAME = {8: "byte", 16: "word", 32: "dword", 64: "qword"}
_NAME_WIDTH = {v: k for k, v in _WIDTH_NAME.items()}

_ALU_PRINT = {
    "add": "add", "sub": "sub", "and": "and", "or": "or",
    "xor": "xor", "lsl": "shl", "lsr": "shr", "mul": "imul",
}
_ALU_PARSE = {v: k for k, v in _ALU_PRINT.items()}

_JCC_PRINT = {"eq": "je", "ne": "jne", "lt": "jl", "le": "jle", "gt": "jg", "ge": "jge"}
_JCC_PARSE = {v: k for k, v in _JCC_PRINT.items()}

#: lock-prefixed RMW mnemonics without a result (memory-destination form).
_LOCK_NORESULT = {"add": "add", "sub": "sub", "or": "or", "and": "and", "xor": "xor"}


def _mem(instr: Instruction) -> str:
    width = _WIDTH_NAME.get(instr.width, "dword")
    inner = f"[{instr.addr_reg}+{instr.offset}]" if instr.offset else f"[{instr.addr_reg}]"
    return f"{width} ptr {inner}"


class X86(Isa):
    """The x86-64 ISA front (Intel syntax)."""

    name = "x86_64"
    zero_reg = ""
    value_regs = ("eax", "ecx", "edx", "r10d", "r11d", "ebx")
    addr_regs = ("r8", "r9", "r12", "r13")
    param_regs = ("rdi", "rsi", "rdx", "rcx")

    # ------------------------------------------------------------------ #
    def print_instruction(self, instr: Instruction) -> str:
        op = instr.op
        if op is Op.LABEL:
            return f"{instr.label}:"
        if op is Op.NOP:
            return "nop"
        if op is Op.RET:
            return "ret"
        if op is Op.MOVI:
            return f"mov {instr.dst}, {instr.imm}"
        if op is Op.MOVADDR:
            suffix = f"+{instr.offset}" if instr.offset else ""
            return f"lea {instr.dst}, [rip+{instr.symbol}{suffix}]"
        if op is Op.MOV:
            return f"mov {instr.dst}, {instr.src1}"
        if op is Op.ALU:
            # two-operand x86 form: dst must equal src1
            rhs = str(instr.imm) if instr.src2 is None else instr.src2
            return f"{_ALU_PRINT[instr.alu_op]} {instr.dst}, {rhs}"
        if op is Op.CMP:
            rhs = str(instr.imm) if instr.src2 is None else instr.src2
            return f"cmp {instr.src1}, {rhs}"
        if op is Op.BCOND:
            return f"{_JCC_PRINT[instr.cond]} {instr.label}"
        if op is Op.B:
            return f"jmp {instr.label}"
        if op is Op.FENCE:
            if instr.fence_tags == frozenset({"MFENCE"}):
                return "mfence"
            raise IsaError(f"unprintable fence tags {set(instr.fence_tags)}")
        if op is Op.LOAD:
            return f"mov {instr.dst}, {_mem(instr)}"
        if op is Op.STORE:
            src = str(instr.imm) if instr.src1 is None else instr.src1
            return f"mov {_mem(instr)}, {src}"
        if op is Op.AMO:
            return self._print_amo(instr)
        raise IsaError(f"cannot print {instr!r} for x86_64")

    def _print_amo(self, instr: Instruction) -> str:
        if instr.amo_kind == "swap":
            return f"xchg {instr.dst}, {_mem(instr)}"
        if instr.amo_kind == "add" and instr.dst is not None:
            return f"lock xadd {_mem(instr)}, {instr.src1}"
        if instr.dst is None and instr.amo_kind in _LOCK_NORESULT:
            src = str(instr.imm) if instr.src1 is None else instr.src1
            return f"lock {_LOCK_NORESULT[instr.amo_kind]} {_mem(instr)}, {src}"
        raise IsaError(
            f"x86 cannot express a {instr.amo_kind} RMW returning the old value "
            f"without a cmpxchg loop"
        )

    # ------------------------------------------------------------------ #
    def parse_line(self, text: str) -> Instruction:
        text = text.strip()
        if text.endswith(":"):
            return Instruction(op=Op.LABEL, label=text[:-1], text=text)
        lowered = text.lower()
        if lowered.startswith("lock "):
            return self._parse_locked(text[5:].strip()).with_text(text)
        mnem, _, rest = text.partition(" ")
        mnem = mnem.lower()
        ops = _split(rest)
        return self._parse_mnemonic(mnem, ops, text).with_text(text)

    def _parse_mnemonic(self, mnem: str, ops: List[str], text: str) -> Instruction:
        if mnem == "nop":
            return Instruction(op=Op.NOP)
        if mnem == "ret":
            return Instruction(op=Op.RET)
        if mnem == "mfence":
            return Instruction(op=Op.FENCE, fence_tags=frozenset({"MFENCE"}))
        if mnem == "jmp":
            return Instruction(op=Op.B, label=ops[0])
        if mnem in _JCC_PARSE:
            return Instruction(op=Op.BCOND, cond=_JCC_PARSE[mnem], label=ops[0])
        if mnem == "lea":
            match = _LEA_RE.fullmatch(ops[1])
            if not match:
                raise IsaError(f"bad lea operand {ops[1]!r}")
            return Instruction(op=Op.MOVADDR, dst=ops[0], symbol=match.group("sym"),
                               offset=int(match.group("off") or 0))
        if mnem == "cmp":
            if ops[1].lstrip("-").isdigit():
                return Instruction(op=Op.CMP, src1=ops[0], imm=int(ops[1]))
            return Instruction(op=Op.CMP, src1=ops[0], src2=ops[1])
        if mnem == "xchg":
            width, base, off = _parse_mem(ops[1])
            return Instruction(op=Op.AMO, amo_kind="swap", dst=ops[0], src1=ops[0],
                               addr_reg=base, offset=off, exclusive=True, width=width)
        if mnem == "mov":
            mem_dst = _MEM_RE.fullmatch(ops[0])
            mem_src = _MEM_RE.fullmatch(ops[1])
            if mem_dst:
                width, base, off = _parse_mem(ops[0])
                if ops[1].lstrip("-").isdigit():
                    return Instruction(op=Op.STORE, imm=int(ops[1]), addr_reg=base,
                                       offset=off, width=width)
                return Instruction(op=Op.STORE, src1=ops[1], addr_reg=base,
                                   offset=off, width=width)
            if mem_src:
                width, base, off = _parse_mem(ops[1])
                return Instruction(op=Op.LOAD, dst=ops[0], addr_reg=base,
                                   offset=off, width=width)
            if ops[1].lstrip("-").isdigit():
                return Instruction(op=Op.MOVI, dst=ops[0], imm=int(ops[1]))
            return Instruction(op=Op.MOV, dst=ops[0], src1=ops[1])
        if mnem in _ALU_PARSE:
            if ops[1].lstrip("-").isdigit():
                return Instruction(op=Op.ALU, dst=ops[0], src1=ops[0],
                                   imm=int(ops[1]), alu_op=_ALU_PARSE[mnem])
            return Instruction(op=Op.ALU, dst=ops[0], src1=ops[0], src2=ops[1],
                               alu_op=_ALU_PARSE[mnem])
        raise IsaError(f"unknown x86 instruction {text!r}")

    def _parse_locked(self, rest: str) -> Instruction:
        mnem, _, operands = rest.partition(" ")
        mnem = mnem.lower()
        ops = _split(operands)
        if mnem == "xadd":
            width, base, off = _parse_mem(ops[0])
            return Instruction(op=Op.AMO, amo_kind="add", dst=ops[1], src1=ops[1],
                               addr_reg=base, offset=off, exclusive=True, width=width)
        for kind, name in _LOCK_NORESULT.items():
            if mnem == name:
                width, base, off = _parse_mem(ops[0])
                if ops[1].lstrip("-").isdigit():
                    return Instruction(op=Op.AMO, amo_kind=kind, imm=int(ops[1]),
                                       addr_reg=base, offset=off, exclusive=True,
                                       width=width)
                return Instruction(op=Op.AMO, amo_kind=kind, src1=ops[1],
                                   addr_reg=base, offset=off, exclusive=True,
                                   width=width)
        raise IsaError(f"unknown locked instruction {rest!r}")


def _split(rest: str) -> List[str]:
    ops: List[str] = []
    depth = 0
    current = ""
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            ops.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        ops.append(current.strip())
    return ops


def _parse_mem(token: str) -> Tuple[int, str, int]:
    match = _MEM_RE.fullmatch(token.strip())
    if not match:
        raise IsaError(f"bad memory operand {token!r}")
    width = _NAME_WIDTH.get((match.group("width") or "dword").lower(), 32)
    return width, match.group("base"), int(match.group("off") or 0)


ISA = register_isa(X86())
