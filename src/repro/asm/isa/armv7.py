"""Armv7-A (32-bit) syntax for the modelled subset.

Armv7 has no single-copy-atomic acquire/release instructions: compilers
bracket accesses with ``dmb ish`` barriers and implement RMWs with
LDREX/STREX loops.  ``dmb ish`` events carry the ``DMB.ISH`` tag — the tag
the paper's model fix [35] added to the unofficial Armv7 Cat model.

``ldr r4, =sym`` is the classic literal-pool address pseudo-instruction;
it stands for the MOVW/MOVT pair and does not touch memory.
"""

from __future__ import annotations

from typing import List, Tuple

from .aarch64 import _imm, _parse_mem, _split_operands
from .base import Instruction, Isa, IsaError, Op, register_isa

_ALU_PRINT = {
    "add": "add", "sub": "sub", "and": "and", "or": "orr",
    "xor": "eor", "lsl": "lsl", "lsr": "lsr", "mul": "mul",
}
_ALU_PARSE = {v: k for k, v in _ALU_PRINT.items()}

_FENCE_PRINT = {
    frozenset({"DMB.ISH"}): "dmb ish",
    frozenset({"DMB"}): "dmb sy",
    frozenset({"DSB"}): "dsb sy",
    frozenset({"ISB"}): "isb",
}
_FENCE_PARSE = {v: k for k, v in _FENCE_PRINT.items()}

_CONDS = ("eq", "ne", "lt", "le", "gt", "ge")


class Armv7(Isa):
    """The Armv7-A ISA front (A32 encoding)."""

    name = "armv7"
    zero_reg = ""
    value_regs = ("r4", "r5", "r6", "r7", "r8", "r9")
    addr_regs = ("r10", "r11", "r12", "r14")
    param_regs = ("r0", "r1", "r2", "r3")

    # ------------------------------------------------------------------ #
    def print_instruction(self, instr: Instruction) -> str:
        op = instr.op
        if op is Op.LABEL:
            return f"{instr.label}:"
        if op is Op.NOP:
            return "nop"
        if op is Op.RET:
            return "bx lr"
        if op is Op.MOVI:
            return f"mov {instr.dst}, #{instr.imm}"
        if op is Op.MOVADDR:
            suffix = f"+{instr.offset}" if instr.offset else ""
            return f"ldr {instr.dst}, ={instr.symbol}{suffix}"
        if op is Op.MOV:
            return f"mov {instr.dst}, {instr.src1}"
        if op is Op.ALU:
            rhs = f"#{instr.imm}" if instr.src2 is None else instr.src2
            return f"{_ALU_PRINT[instr.alu_op]} {instr.dst}, {instr.src1}, {rhs}"
        if op is Op.CMP:
            rhs = f"#{instr.imm}" if instr.src2 is None else instr.src2
            return f"cmp {instr.src1}, {rhs}"
        if op is Op.BCOND:
            return f"b{instr.cond} {instr.label}"
        if op is Op.B:
            return f"b {instr.label}"
        if op is Op.FENCE:
            try:
                return _FENCE_PRINT[instr.fence_tags]
            except KeyError:
                raise IsaError(f"unprintable fence tags {set(instr.fence_tags)}")
        if op is Op.LOAD:
            return f"ldr {instr.dst}, {_mem(instr)}"
        if op is Op.STORE:
            return f"str {instr.src1}, {_mem(instr)}"
        if op is Op.LDX:
            return f"ldrex {instr.dst}, {_mem(instr)}"
        if op is Op.STX:
            return f"strex {instr.status}, {instr.src1}, {_mem(instr)}"
        raise IsaError(f"cannot print {instr!r} for armv7")

    # ------------------------------------------------------------------ #
    def parse_line(self, text: str) -> Instruction:
        text = text.strip()
        if text.endswith(":"):
            return Instruction(op=Op.LABEL, label=text[:-1], text=text)
        mnem, _, rest = text.partition(" ")
        mnem = mnem.lower()
        ops = _split_operands(rest)
        instr = self._parse_mnemonic(mnem, ops, text)
        return instr.with_text(text)

    def _parse_mnemonic(self, mnem: str, ops: List[str], text: str) -> Instruction:
        if mnem == "nop":
            return Instruction(op=Op.NOP)
        if mnem == "bx" and ops and ops[0] == "lr":
            return Instruction(op=Op.RET)
        if mnem == "isb":
            return Instruction(op=Op.FENCE, fence_tags=frozenset({"ISB"}))
        if mnem in ("dmb", "dsb"):
            key = f"{mnem} {ops[0].lower() if ops else 'sy'}"
            if key not in _FENCE_PARSE:
                raise IsaError(f"unknown barrier {text!r}")
            return Instruction(op=Op.FENCE, fence_tags=_FENCE_PARSE[key])
        if mnem == "mov":
            if ops[1].startswith("#"):
                return Instruction(op=Op.MOVI, dst=ops[0], imm=_imm(ops[1]))
            return Instruction(op=Op.MOV, dst=ops[0], src1=ops[1])
        if mnem == "ldr" and ops[1].startswith("="):
            symbol, offset = _lit_sym(ops[1][1:])
            return Instruction(op=Op.MOVADDR, dst=ops[0], symbol=symbol, offset=offset)
        if mnem in _ALU_PARSE:
            if ops[2].startswith("#"):
                return Instruction(op=Op.ALU, dst=ops[0], src1=ops[1],
                                   imm=_imm(ops[2]), alu_op=_ALU_PARSE[mnem])
            return Instruction(op=Op.ALU, dst=ops[0], src1=ops[1], src2=ops[2],
                               alu_op=_ALU_PARSE[mnem])
        if mnem == "cmp":
            if ops[1].startswith("#"):
                return Instruction(op=Op.CMP, src1=ops[0], imm=_imm(ops[1]))
            return Instruction(op=Op.CMP, src1=ops[0], src2=ops[1])
        if mnem == "b":
            return Instruction(op=Op.B, label=ops[0])
        if mnem.startswith("b") and mnem[1:] in _CONDS:
            return Instruction(op=Op.BCOND, cond=mnem[1:], label=ops[0])
        if mnem == "ldr":
            base, off = _parse_mem(ops[1])
            return Instruction(op=Op.LOAD, dst=ops[0], addr_reg=base, offset=off)
        if mnem == "str":
            base, off = _parse_mem(ops[1])
            return Instruction(op=Op.STORE, src1=ops[0], addr_reg=base, offset=off)
        if mnem == "ldrex":
            base, off = _parse_mem(ops[1])
            return Instruction(op=Op.LDX, dst=ops[0], addr_reg=base, offset=off,
                               exclusive=True)
        if mnem == "strex":
            base, off = _parse_mem(ops[2])
            return Instruction(op=Op.STX, status=ops[0], src1=ops[1],
                               addr_reg=base, offset=off, exclusive=True)
        raise IsaError(f"unknown armv7 instruction {text!r}")


def _mem(instr: Instruction) -> str:
    if instr.offset:
        return f"[{instr.addr_reg}, #{instr.offset}]"
    return f"[{instr.addr_reg}]"


def _lit_sym(token: str) -> Tuple[str, int]:
    if "+" in token:
        symbol, _, offset = token.partition("+")
        return symbol.strip(), int(offset, 0)
    return token.strip(), 0


ISA = register_isa(Armv7())
