"""Per-architecture instruction syntax modules."""

from .base import Instruction, Isa, IsaError, Op, get_isa, list_isas, register_isa

__all__ = [
    "Instruction",
    "Isa",
    "IsaError",
    "Op",
    "get_isa",
    "list_isas",
    "register_isa",
]
