"""Armv8 AArch64 syntax: printing and parsing of the modelled subset.

Covers the instructions our compiler back-end emits and the paper's bug
studies use: LDR/STR (+LDAR/STLR/LDAPR), exclusives (LDXR/STXR and the
128-bit LDXP/STXP), LSE atomics (LDADD/LDEOR/LDSET/LDCLR/SWP and their
ST-form aliases), pairs (LDP/STP), barriers (DMB ISH/ISHLD/ISHST, ISB),
moves, ALU, compare and branch.

``adrp x8, sym`` here stands for the fused ADRP+ADD (or ADRP+LDR-from-GOT
when followed by a load from the GOT slot) address-materialisation
sequence the paper's §IV-E optimisation targets.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .base import Instruction, Isa, IsaError, Op, register_isa

_MEM_RE = re.compile(r"\[\s*(?P<base>\w+)\s*(?:,\s*#(?P<off>-?\d+)\s*)?\]")

#: LSE base mnemonic per AMO kind (ld-form).
_AMO_BASE = {"add": "ldadd", "or": "ldset", "and": "ldclr", "xor": "ldeor"}
_AMO_KIND = {v: k for k, v in _AMO_BASE.items()}
_ST_BASE = {"add": "stadd", "or": "stset", "and": "stclr", "xor": "steor"}
_ST_KIND = {v: k for k, v in _ST_BASE.items()}

_ALU_PRINT = {
    "add": "add",
    "sub": "sub",
    "and": "and",
    "or": "orr",
    "xor": "eor",
    "lsl": "lsl",
    "lsr": "lsr",
    "mul": "mul",
}
_ALU_PARSE = {v: k for k, v in _ALU_PRINT.items()}

_FENCE_PRINT = {
    frozenset({"DMB.SY"}): "dmb ish",
    frozenset({"DMB.LD"}): "dmb ishld",
    frozenset({"DMB.ST"}): "dmb ishst",
    frozenset({"ISB"}): "isb",
}
_FENCE_PARSE = {v: k for k, v in _FENCE_PRINT.items()}


def _reg_width(reg: Optional[str]) -> int:
    if reg and reg[0] in ("x",) or reg in ("xzr",):
        return 64
    return 32


def _mem(instr: Instruction) -> str:
    if instr.offset:
        return f"[{instr.addr_reg}, #{instr.offset}]"
    return f"[{instr.addr_reg}]"


class AArch64(Isa):
    """The AArch64 ISA front."""

    name = "aarch64"
    zero_reg = "xzr"
    value_regs = ("w12", "w13", "w14", "w15", "w16", "w17", "w19", "w20")
    addr_regs = ("x8", "x9", "x10", "x11")
    param_regs = ("x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7")

    # ------------------------------------------------------------------ #
    # printing
    # ------------------------------------------------------------------ #
    def print_instruction(self, instr: Instruction) -> str:
        op = instr.op
        if op is Op.LABEL:
            return f"{instr.label}:"
        if op is Op.NOP:
            return "nop"
        if op is Op.RET:
            return "ret"
        if op is Op.MOVI:
            return f"mov {instr.dst}, #{instr.imm}"
        if op is Op.MOVADDR:
            suffix = f"+{instr.offset}" if instr.offset else ""
            return f"adrp {instr.dst}, {instr.symbol}{suffix}"
        if op is Op.MOV:
            return f"mov {instr.dst}, {instr.src1}"
        if op is Op.ALU:
            rhs = f"#{instr.imm}" if instr.src2 is None else instr.src2
            return f"{_ALU_PRINT[instr.alu_op]} {instr.dst}, {instr.src1}, {rhs}"
        if op is Op.CMP:
            rhs = f"#{instr.imm}" if instr.src2 is None else instr.src2
            return f"cmp {instr.src1}, {rhs}"
        if op is Op.BCOND:
            return f"b.{instr.cond} {instr.label}"
        if op is Op.CBZ:
            return f"cbz {instr.src1}, {instr.label}"
        if op is Op.CBNZ:
            return f"cbnz {instr.src1}, {instr.label}"
        if op is Op.B:
            return f"b {instr.label}"
        if op is Op.FENCE:
            try:
                return _FENCE_PRINT[instr.fence_tags]
            except KeyError:
                raise IsaError(f"unprintable fence tags {set(instr.fence_tags)}")
        if op is Op.LOAD:
            mnem = "ldapr" if instr.acquire_pc else ("ldar" if instr.acquire else "ldr")
            return f"{mnem} {instr.dst}, {_mem(instr)}"
        if op is Op.STORE:
            mnem = "stlr" if instr.release else "str"
            return f"{mnem} {instr.src1}, {_mem(instr)}"
        if op is Op.LOADPAIR:
            return f"ldp {instr.dst}, {instr.dst2}, {_mem(instr)}"
        if op is Op.STOREPAIR:
            return f"stp {instr.src1}, {instr.src2}, {_mem(instr)}"
        if op is Op.LDX:
            if instr.width == 128:
                mnem = "ldaxp" if instr.acquire else "ldxp"
                return f"{mnem} {instr.dst}, {instr.dst2}, {_mem(instr)}"
            mnem = "ldaxr" if instr.acquire else "ldxr"
            return f"{mnem} {instr.dst}, {_mem(instr)}"
        if op is Op.STX:
            if instr.width == 128:
                mnem = "stlxp" if instr.release else "stxp"
                return f"{mnem} {instr.status}, {instr.src1}, {instr.src2}, {_mem(instr)}"
            mnem = "stlxr" if instr.release else "stxr"
            return f"{mnem} {instr.status}, {instr.src1}, {_mem(instr)}"
        if op is Op.AMO:
            return self._print_amo(instr)
        raise IsaError(f"cannot print {instr!r} for aarch64")

    def _print_amo(self, instr: Instruction) -> str:
        suffix = ("a" if instr.acquire else "") + ("l" if instr.release else "")
        no_result = instr.dst is None or instr.dst in ("xzr", "wzr")
        if instr.amo_kind == "swap":
            dst = instr.dst or "wzr"
            return f"swp{suffix} {instr.src1}, {dst}, {_mem(instr)}"
        if no_result:
            # the ST<OP> alias: LDADD with an XZR destination (paper Fig. 10)
            st_suffix = "l" if instr.release else ""
            return f"{_ST_BASE[instr.amo_kind]}{st_suffix} {instr.src1}, {_mem(instr)}"
        base = _AMO_BASE[instr.amo_kind]
        return f"{base}{suffix} {instr.src1}, {instr.dst}, {_mem(instr)}"

    # ------------------------------------------------------------------ #
    # parsing
    # ------------------------------------------------------------------ #
    def parse_line(self, text: str) -> Instruction:
        text = text.strip()
        if text.endswith(":"):
            return Instruction(op=Op.LABEL, label=text[:-1], text=text)
        mnem, _, rest = text.partition(" ")
        mnem = mnem.lower()
        ops = _split_operands(rest)
        instr = self._parse_mnemonic(mnem, ops, text)
        return instr.with_text(text)

    def _parse_mnemonic(self, mnem: str, ops: List[str], text: str) -> Instruction:
        if mnem == "nop":
            return Instruction(op=Op.NOP)
        if mnem == "ret":
            return Instruction(op=Op.RET)
        if mnem == "isb":
            return Instruction(op=Op.FENCE, fence_tags=frozenset({"ISB"}))
        if mnem == "dmb":
            key = f"dmb {ops[0].lower()}"
            if key not in _FENCE_PARSE:
                raise IsaError(f"unknown barrier {text!r}")
            return Instruction(op=Op.FENCE, fence_tags=_FENCE_PARSE[key])
        if mnem == "mov":
            if ops[1].startswith("#"):
                return Instruction(op=Op.MOVI, dst=ops[0], imm=_imm(ops[1]),
                                   width=_reg_width(ops[0]))
            return Instruction(op=Op.MOV, dst=ops[0], src1=ops[1])
        if mnem == "adrp":
            symbol, offset = _sym_offset(ops[1])
            return Instruction(op=Op.MOVADDR, dst=ops[0], symbol=symbol, offset=offset)
        if mnem in _ALU_PARSE:
            if ops[2].startswith("#"):
                return Instruction(op=Op.ALU, dst=ops[0], src1=ops[1],
                                   imm=_imm(ops[2]), alu_op=_ALU_PARSE[mnem])
            return Instruction(op=Op.ALU, dst=ops[0], src1=ops[1], src2=ops[2],
                               alu_op=_ALU_PARSE[mnem])
        if mnem == "cmp":
            if ops[1].startswith("#"):
                return Instruction(op=Op.CMP, src1=ops[0], imm=_imm(ops[1]))
            return Instruction(op=Op.CMP, src1=ops[0], src2=ops[1])
        if mnem.startswith("b.") and len(mnem) == 4:
            return Instruction(op=Op.BCOND, cond=mnem[2:], label=ops[0])
        if mnem == "cbz":
            return Instruction(op=Op.CBZ, src1=ops[0], label=ops[1])
        if mnem == "cbnz":
            return Instruction(op=Op.CBNZ, src1=ops[0], label=ops[1])
        if mnem == "b":
            return Instruction(op=Op.B, label=ops[0])
        if mnem in ("ldr", "ldar", "ldapr"):
            base, off = _parse_mem(ops[1])
            return Instruction(
                op=Op.LOAD, dst=ops[0], addr_reg=base, offset=off,
                acquire=(mnem == "ldar"), acquire_pc=(mnem == "ldapr"),
                width=_reg_width(ops[0]),
            )
        if mnem in ("str", "stlr"):
            base, off = _parse_mem(ops[1])
            return Instruction(
                op=Op.STORE, src1=ops[0], addr_reg=base, offset=off,
                release=(mnem == "stlr"), width=_reg_width(ops[0]),
            )
        if mnem in ("ldxr", "ldaxr"):
            base, off = _parse_mem(ops[1])
            return Instruction(
                op=Op.LDX, dst=ops[0], addr_reg=base, offset=off,
                acquire=(mnem == "ldaxr"), exclusive=True,
                width=_reg_width(ops[0]),
            )
        if mnem in ("stxr", "stlxr"):
            base, off = _parse_mem(ops[2])
            return Instruction(
                op=Op.STX, status=ops[0], src1=ops[1], addr_reg=base, offset=off,
                release=(mnem == "stlxr"), exclusive=True,
                width=_reg_width(ops[1]),
            )
        if mnem in ("ldp",):
            base, off = _parse_mem(ops[2])
            return Instruction(op=Op.LOADPAIR, dst=ops[0], dst2=ops[1],
                               addr_reg=base, offset=off, width=128)
        if mnem in ("stp",):
            base, off = _parse_mem(ops[2])
            return Instruction(op=Op.STOREPAIR, src1=ops[0], src2=ops[1],
                               addr_reg=base, offset=off, width=128)
        if mnem in ("ldxp", "ldaxp"):
            base, off = _parse_mem(ops[2])
            return Instruction(
                op=Op.LDX, dst=ops[0], dst2=ops[1], addr_reg=base, offset=off,
                acquire=(mnem == "ldaxp"), exclusive=True, width=128,
            )
        if mnem in ("stxp", "stlxp"):
            base, off = _parse_mem(ops[3])
            return Instruction(
                op=Op.STX, status=ops[0], src1=ops[1], src2=ops[2],
                addr_reg=base, offset=off, release=(mnem == "stlxp"),
                exclusive=True, width=128,
            )
        amo = self._parse_amo(mnem, ops)
        if amo is not None:
            return amo
        raise IsaError(f"unknown aarch64 instruction {text!r}")

    def _parse_amo(self, mnem: str, ops: List[str]) -> Optional[Instruction]:
        if mnem.startswith("swp"):
            suffix = mnem[3:]
            if suffix not in ("", "a", "l", "al"):
                return None
            base_reg, off = _parse_mem(ops[2])
            return Instruction(
                op=Op.AMO, amo_kind="swap", src1=ops[0], dst=ops[1],
                addr_reg=base_reg, offset=off,
                acquire="a" in suffix, release="l" in suffix,
                width=_reg_width(ops[1]),
            )
        for base, kind in _AMO_KIND.items():
            if mnem.startswith(base):
                suffix = mnem[len(base):]
                if suffix not in ("", "a", "l", "al"):
                    continue
                base_reg, off = _parse_mem(ops[2])
                return Instruction(
                    op=Op.AMO, amo_kind=kind, src1=ops[0], dst=ops[1],
                    addr_reg=base_reg, offset=off,
                    acquire="a" in suffix, release="l" in suffix,
                    width=_reg_width(ops[1]),
                )
        for base, kind in _ST_KIND.items():
            if mnem.startswith(base):
                suffix = mnem[len(base):]
                if suffix not in ("", "l"):
                    continue
                base_reg, off = _parse_mem(ops[1])
                return Instruction(
                    op=Op.AMO, amo_kind=kind, src1=ops[0], dst=None,
                    addr_reg=base_reg, offset=off, release=(suffix == "l"),
                    width=_reg_width(ops[0]),
                )
        return None


def _split_operands(rest: str) -> List[str]:
    """Split operands at top-level commas, keeping ``[x8, #4]`` together."""
    ops: List[str] = []
    depth = 0
    current = ""
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            ops.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        ops.append(current.strip())
    return ops


def _imm(token: str) -> int:
    return int(token.lstrip("#"), 0)


def _parse_mem(token: str) -> Tuple[str, int]:
    match = _MEM_RE.fullmatch(token.strip())
    if not match:
        raise IsaError(f"bad memory operand {token!r}")
    return match.group("base"), int(match.group("off") or 0)


def _sym_offset(token: str) -> Tuple[str, int]:
    if "+" in token:
        symbol, _, offset = token.partition("+")
        return symbol.strip(), int(offset, 0)
    return token.strip(), 0


ISA = register_isa(AArch64())
