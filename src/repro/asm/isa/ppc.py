"""IBM PowerPC (64-bit) syntax for the modelled subset.

PowerPC orders through ``sync`` (full), ``lwsync`` (lightweight) and
``isync`` (with a control dependency); RMWs are LWARX/STWCX. loops.
``stwcx.`` reports success through condition register CR0, so it has no
status register here — the semantics models success by setting the flags
to "equal", which makes the following ``bne`` retry branch fall through.

``la r9, sym`` stands for the TOC-relative ADDIS/ADDI address
materialisation pair.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .base import Instruction, Isa, IsaError, Op, register_isa

_MEM_RE = re.compile(r"(?P<off>-?\d+)?\(\s*(?P<base>\w+)\s*\)")

_ALU_PRINT = {
    "add": "add", "sub": "subf", "and": "and", "or": "or",
    "xor": "xor", "lsl": "slw", "lsr": "srw", "mul": "mullw",
}
_ALU_PARSE = {v: k for k, v in _ALU_PRINT.items()}

_FENCE_PRINT = {
    frozenset({"SYNC"}): "sync",
    frozenset({"LWSYNC"}): "lwsync",
    frozenset({"ISYNC"}): "isync",
    frozenset({"EIEIO"}): "eieio",
}
_FENCE_PARSE = {v: k for k, v in _FENCE_PRINT.items()}

_BC_PRINT = {"eq": "beq", "ne": "bne", "lt": "blt", "le": "ble", "gt": "bgt", "ge": "bge"}
_BC_PARSE = {v: k for k, v in _BC_PRINT.items()}

#: immediate ALU mnemonics; `sub imm` becomes addi with a negated value.
_ALU_IMM = {"add": "addi", "and": "andi.", "or": "ori", "xor": "xori",
            "lsl": "slwi", "lsr": "srwi"}
_ALU_IMM_PARSE = {v: k for k, v in _ALU_IMM.items()}


def _print_alu_imm(instr: Instruction) -> str:
    if instr.alu_op == "sub":
        return f"addi {instr.dst}, {instr.src1}, {-(instr.imm or 0)}"
    if instr.alu_op not in _ALU_IMM:
        raise IsaError(f"ppc has no immediate form for {instr.alu_op}")
    return f"{_ALU_IMM[instr.alu_op]} {instr.dst}, {instr.src1}, {instr.imm}"


def _mem(instr: Instruction) -> str:
    return f"{instr.offset or 0}({instr.addr_reg})"


class Ppc(Isa):
    """The PowerPC64 ISA front."""

    name = "ppc64"
    zero_reg = ""
    value_regs = ("r14", "r15", "r16", "r17", "r18", "r19")
    addr_regs = ("r7", "r8", "r9", "r10")
    param_regs = ("r3", "r4", "r5", "r6")

    # ------------------------------------------------------------------ #
    def print_instruction(self, instr: Instruction) -> str:
        op = instr.op
        if op is Op.LABEL:
            return f"{instr.label}:"
        if op is Op.NOP:
            return "nop"
        if op is Op.RET:
            return "blr"
        if op is Op.MOVI:
            return f"li {instr.dst}, {instr.imm}"
        if op is Op.MOVADDR:
            suffix = f"+{instr.offset}" if instr.offset else ""
            return f"la {instr.dst}, {instr.symbol}{suffix}"
        if op is Op.MOV:
            return f"mr {instr.dst}, {instr.src1}"
        if op is Op.ALU:
            if instr.src2 is None:
                return _print_alu_imm(instr)
            return f"{_ALU_PRINT[instr.alu_op]} {instr.dst}, {instr.src1}, {instr.src2}"
        if op is Op.CMP:
            if instr.src2 is None:
                return f"cmpwi {instr.src1}, {instr.imm}"
            return f"cmpw {instr.src1}, {instr.src2}"
        if op is Op.BCOND:
            return f"{_BC_PRINT[instr.cond]} {instr.label}"
        if op is Op.B:
            return f"b {instr.label}"
        if op is Op.FENCE:
            try:
                return _FENCE_PRINT[instr.fence_tags]
            except KeyError:
                raise IsaError(f"unprintable fence tags {set(instr.fence_tags)}")
        if op is Op.LOAD:
            mnem = "ld" if instr.width == 64 else "lwz"
            return f"{mnem} {instr.dst}, {_mem(instr)}"
        if op is Op.STORE:
            mnem = "std" if instr.width == 64 else "stw"
            return f"{mnem} {instr.src1}, {_mem(instr)}"
        if op is Op.LDX:
            mnem = "ldarx" if instr.width == 64 else "lwarx"
            return f"{mnem} {instr.dst}, 0, {instr.addr_reg}"
        if op is Op.STX:
            mnem = "stdcx." if instr.width == 64 else "stwcx."
            return f"{mnem} {instr.src1}, 0, {instr.addr_reg}"
        raise IsaError(f"cannot print {instr!r} for ppc64")

    # ------------------------------------------------------------------ #
    def parse_line(self, text: str) -> Instruction:
        text = text.strip()
        if text.endswith(":") and not text.endswith("cx."):
            return Instruction(op=Op.LABEL, label=text[:-1], text=text)
        lowered = text.lower()
        if lowered in _FENCE_PARSE:
            return Instruction(op=Op.FENCE, fence_tags=_FENCE_PARSE[lowered], text=text)
        mnem, _, rest = text.partition(" ")
        mnem = mnem.lower()
        ops = [o.strip() for o in rest.split(",")] if rest else []
        return self._parse_mnemonic(mnem, ops, text).with_text(text)

    def _parse_mnemonic(self, mnem: str, ops: List[str], text: str) -> Instruction:
        if mnem == "nop":
            return Instruction(op=Op.NOP)
        if mnem == "blr":
            return Instruction(op=Op.RET)
        if mnem == "li":
            return Instruction(op=Op.MOVI, dst=ops[0], imm=int(ops[1], 0))
        if mnem == "la":
            symbol, offset = _sym_offset(ops[1])
            return Instruction(op=Op.MOVADDR, dst=ops[0], symbol=symbol, offset=offset)
        if mnem == "mr":
            return Instruction(op=Op.MOV, dst=ops[0], src1=ops[1])
        if mnem in _ALU_IMM_PARSE:
            return Instruction(op=Op.ALU, dst=ops[0], src1=ops[1],
                               imm=int(ops[2], 0), alu_op=_ALU_IMM_PARSE[mnem])
        if mnem in _ALU_PARSE:
            return Instruction(op=Op.ALU, dst=ops[0], src1=ops[1], src2=ops[2],
                               alu_op=_ALU_PARSE[mnem])
        if mnem == "cmpwi":
            return Instruction(op=Op.CMP, src1=ops[0], imm=int(ops[1], 0))
        if mnem == "cmpw":
            return Instruction(op=Op.CMP, src1=ops[0], src2=ops[1])
        if mnem == "b":
            return Instruction(op=Op.B, label=ops[0])
        if mnem in _BC_PARSE:
            return Instruction(op=Op.BCOND, cond=_BC_PARSE[mnem], label=ops[0])
        if mnem in ("lwz", "ld"):
            base, off = _parse_mem(ops[1])
            return Instruction(op=Op.LOAD, dst=ops[0], addr_reg=base, offset=off,
                               width=64 if mnem == "ld" else 32)
        if mnem in ("stw", "std"):
            base, off = _parse_mem(ops[1])
            return Instruction(op=Op.STORE, src1=ops[0], addr_reg=base, offset=off,
                               width=64 if mnem == "std" else 32)
        if mnem in ("lwarx", "ldarx"):
            return Instruction(op=Op.LDX, dst=ops[0], addr_reg=ops[2],
                               exclusive=True, width=64 if mnem == "ldarx" else 32)
        if mnem in ("stwcx.", "stdcx."):
            return Instruction(op=Op.STX, src1=ops[0], addr_reg=ops[2],
                               exclusive=True, width=64 if mnem == "stdcx." else 32)
        raise IsaError(f"unknown ppc instruction {text!r}")


def _parse_mem(token: str) -> Tuple[str, int]:
    match = _MEM_RE.fullmatch(token.strip())
    if not match:
        raise IsaError(f"bad memory operand {token!r}")
    return match.group("base"), int(match.group("off") or 0)


def _sym_offset(token: str) -> Tuple[str, int]:
    if "+" in token:
        symbol, _, offset = token.partition("+")
        return symbol.strip(), int(offset, 0)
    return token.strip(), 0


ISA = register_isa(Ppc())
