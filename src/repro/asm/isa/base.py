"""Architecture-neutral instruction representation.

Every ISA we model (AArch64, Armv7, x86-64, RISC-V, PowerPC, MIPS) lowers
to the same small operation vocabulary; the per-ISA modules provide
mnemonic syntax (printing and parsing, for the objdump/s2l round trip) and
builder helpers used by the compiler back-ends.

Memory-ordering attributes live on the instruction (``acquire``,
``acquire_pc``, ``release``, ``exclusive``, ``fence_tags``) and are turned
into event tags by :mod:`repro.asm.semantics`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

from ...core.registry import Registry


class Op(enum.Enum):
    """The unified micro-operation set."""

    LABEL = "label"        # a branch target
    MOVI = "movi"          # rd := imm
    MOVADDR = "movaddr"    # rd := &symbol   (address materialisation)
    MOV = "mov"            # rd := rs
    ALU = "alu"            # rd := rs1 <alu_op> rs2/imm
    CMP = "cmp"            # set flags from rs1 ? rs2/imm
    BCOND = "bcond"        # conditional branch on flags (or rs1 ? rs2)
    CBZ = "cbz"            # branch if rs == 0
    CBNZ = "cbnz"          # branch if rs != 0
    B = "b"                # unconditional branch
    LOAD = "load"          # rd := [ra + off]
    STORE = "store"        # [ra + off] := rs
    LOADPAIR = "loadpair"  # rd,rd2 := [ra]       (128-bit)
    STOREPAIR = "storepair"  # [ra] := rs,rs2     (128-bit)
    FENCE = "fence"        # memory barrier
    AMO = "amo"            # atomic rd := [ra]; [ra] := old <op> rs
    LDX = "ldx"            # load-exclusive
    STX = "stx"            # store-exclusive (status := 0 on success)
    NOP = "nop"
    RET = "ret"


#: ALU operations understood by the semantics.
ALU_OPS = ("add", "sub", "and", "or", "xor", "lsl", "lsr", "mul")

#: Branch conditions.
CONDS = ("eq", "ne", "lt", "le", "gt", "ge")

#: AMO kinds (matching the C11 RMW kinds).
AMO_KINDS = ("add", "sub", "or", "and", "xor", "swap")


@dataclass(frozen=True)
class Instruction:
    """One machine instruction in the unified representation.

    ``text`` carries the architecture syntax as produced by the
    disassembler; it is display-only and never interpreted.
    """

    op: Op
    dst: Optional[str] = None
    dst2: Optional[str] = None        # second destination (LOADPAIR)
    src1: Optional[str] = None
    src2: Optional[str] = None
    imm: Optional[int] = None
    symbol: Optional[str] = None      # MOVADDR target / literal symbol
    label: Optional[str] = None       # branch target or LABEL name
    addr_reg: Optional[str] = None    # base register of a memory access
    offset: int = 0                   # immediate offset of a memory access
    width: int = 32
    alu_op: str = ""
    cond: str = ""
    amo_kind: str = ""
    acquire: bool = False             # tag A (LDAR, LDAXR, LDADDA…)
    acquire_pc: bool = False          # tag Q (LDAPR — Armv8.3 RCpc)
    release: bool = False             # tag L (STLR, STLXR, LDADDL…)
    exclusive: bool = False           # tag X (exclusives, x86 locked ops)
    status: Optional[str] = None      # STX success register
    fence_tags: FrozenSet[str] = frozenset()
    text: str = ""

    def with_text(self, text: str) -> "Instruction":
        return replace(self, text=text)

    @property
    def is_branch(self) -> bool:
        return self.op in (Op.BCOND, Op.CBZ, Op.CBNZ, Op.B)

    @property
    def is_memory_access(self) -> bool:
        return self.op in (
            Op.LOAD,
            Op.STORE,
            Op.LOADPAIR,
            Op.STOREPAIR,
            Op.AMO,
            Op.LDX,
            Op.STX,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text or f"{self.op.value} {self.dst or ''}"


def label(name: str) -> Instruction:
    return Instruction(op=Op.LABEL, label=name, text=f"{name}:")


def nop() -> Instruction:
    return Instruction(op=Op.NOP, text="nop")


class IsaError(ValueError):
    """An ISA module rejected a mnemonic or operand."""


class Isa:
    """Per-architecture syntax and register conventions.

    Concrete subclasses (one per modelled architecture) provide mnemonic
    printing and parsing — the objdump / ``s2l`` round trip of the paper's
    Fig. 6 — plus the register conventions the compiler back-ends use.
    """

    #: registry key and the litmus ``arch`` field value.
    name: str = ""
    #: the always-zero register, or "" when the ISA has none (x86, Armv7).
    zero_reg: str = ""
    #: caller-saved registers codegen may use for values, in allocation order.
    value_regs: Tuple[str, ...] = ()
    #: registers codegen may use to hold addresses.
    addr_regs: Tuple[str, ...] = ()
    #: registers that carry the (up to 8) pointer arguments, in order.
    param_regs: Tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    def print_instruction(self, instr: Instruction) -> str:
        """Render ``instr`` in this architecture's assembly syntax."""
        raise NotImplementedError

    def parse_line(self, text: str) -> Instruction:
        """Parse one line of this architecture's assembly syntax."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def render(self, instr: Instruction) -> Instruction:
        """Attach the printed syntax to ``instr.text``."""
        return instr.with_text(self.print_instruction(instr))

    def parse_body(self, lines: "list[str]") -> "list[Instruction]":
        """Parse an instruction sequence, skipping blanks and comments."""
        out = []
        for line in lines:
            stripped = line.split("//")[0].split(";#")[0].strip()
            if not stripped:
                continue
            out.append(self.parse_line(stripped))
        return out


#: the global ISA registry, on the shared protocol of
#: :class:`repro.core.registry.Registry` (did-you-mean errors, overlays).
ISAS: "Registry[Isa]" = Registry("architecture", error=IsaError)


def register_isa(isa: Isa) -> Isa:
    """Add an ISA instance to the global registry (module import time)."""
    return ISAS.register(isa.name, isa, doc=type(isa).__name__)


def ensure_registered() -> None:
    """Import every per-ISA module so ``ISAS`` is fully populated.

    Registration happens as an import side effect; anything that reads
    ``ISAS`` directly (overlays included) must call this first."""
    from . import aarch64, armv7, mips, ppc, riscv, x86  # noqa: F401


def get_isa(name: str) -> Isa:
    """Look up an ISA by its litmus ``arch`` name (e.g. ``aarch64``)."""
    ensure_registered()
    return ISAS.get(name)


def list_isas() -> "list[str]":
    ensure_registered()
    return ISAS.names()
