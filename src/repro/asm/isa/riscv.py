"""RISC-V (RV64, A extension) syntax for the modelled subset.

RVWMO orders through explicit ``fence pred,succ`` instructions and
``.aq``/``.rl`` annotations on AMOs and LR/SC.  The annotations map to the
cross-architecture ``A``/``L`` event tags consumed by
:mod:`repro.cat.models.riscv`.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .base import Instruction, Isa, IsaError, Op, register_isa

_MEM_RE = re.compile(r"(?P<off>-?\d+)?\(\s*(?P<base>[\w$]+)\s*\)")

_ALU_PRINT = {
    "add": "add", "sub": "sub", "and": "and", "or": "or",
    "xor": "xor", "lsl": "sll", "lsr": "srl", "mul": "mul",
}
_ALU_PARSE = {v: k for k, v in _ALU_PRINT.items()}
_ALU_IMM = {"add": "addi", "and": "andi", "or": "ori", "xor": "xori",
            "lsl": "slli", "lsr": "srli"}
_ALU_IMM_PARSE = {v: k for k, v in _ALU_IMM.items()}

_FENCE_PRINT = {
    frozenset({"FENCE.RW.RW"}): "fence rw,rw",
    frozenset({"FENCE.R.RW"}): "fence r,rw",
    frozenset({"FENCE.RW.W"}): "fence rw,w",
    frozenset({"FENCE.W.W"}): "fence w,w",
    frozenset({"FENCE.R.R"}): "fence r,r",
    frozenset({"FENCE.TSO"}): "fence.tso",
}
_FENCE_PARSE = {v: k for k, v in _FENCE_PRINT.items()}

_BRANCH_PRINT = {"eq": "beq", "ne": "bne", "lt": "blt", "ge": "bge"}
_BRANCH_PARSE = {v: k for k, v in _BRANCH_PRINT.items()}

_AMO_NAMES = {"add": "amoadd", "or": "amoor", "and": "amoand",
              "xor": "amoxor", "swap": "amoswap"}
_AMO_PARSE = {v: k for k, v in _AMO_NAMES.items()}


def _mem(instr: Instruction) -> str:
    if instr.offset:
        return f"{instr.offset}({instr.addr_reg})"
    return f"0({instr.addr_reg})"


def _ordering_suffix(instr: Instruction) -> str:
    if instr.acquire and instr.release:
        return ".aqrl"
    if instr.acquire:
        return ".aq"
    if instr.release:
        return ".rl"
    return ""


class RiscV(Isa):
    """The RV64 ISA front."""

    name = "riscv64"
    zero_reg = "zero"
    value_regs = ("a5", "a6", "a7", "t0", "t1", "t2", "t3")
    addr_regs = ("a0", "a1", "a2", "a3")
    param_regs = ("a0", "a1", "a2", "a3")

    # ------------------------------------------------------------------ #
    def print_instruction(self, instr: Instruction) -> str:
        op = instr.op
        if op is Op.LABEL:
            return f"{instr.label}:"
        if op is Op.NOP:
            return "nop"
        if op is Op.RET:
            return "ret"
        if op is Op.MOVI:
            return f"li {instr.dst}, {instr.imm}"
        if op is Op.MOVADDR:
            suffix = f"+{instr.offset}" if instr.offset else ""
            return f"la {instr.dst}, {instr.symbol}{suffix}"
        if op is Op.MOV:
            return f"mv {instr.dst}, {instr.src1}"
        if op is Op.ALU:
            if instr.src2 is None:
                if instr.alu_op == "sub":
                    # RISC-V has no subi: addi with the negated immediate
                    return f"addi {instr.dst}, {instr.src1}, {-(instr.imm or 0)}"
                if instr.alu_op not in _ALU_IMM:
                    raise IsaError(f"riscv {instr.alu_op} has no immediate form")
                return f"{_ALU_IMM[instr.alu_op]} {instr.dst}, {instr.src1}, {instr.imm}"
            return f"{_ALU_PRINT[instr.alu_op]} {instr.dst}, {instr.src1}, {instr.src2}"
        if op is Op.BCOND:
            if instr.cond not in _BRANCH_PRINT:
                raise IsaError(f"riscv has no b{instr.cond}; negate the condition")
            rhs = instr.src2 or "zero"
            return f"{_BRANCH_PRINT[instr.cond]} {instr.src1}, {rhs}, {instr.label}"
        if op is Op.CBZ:
            return f"beqz {instr.src1}, {instr.label}"
        if op is Op.CBNZ:
            return f"bnez {instr.src1}, {instr.label}"
        if op is Op.B:
            return f"j {instr.label}"
        if op is Op.FENCE:
            try:
                return _FENCE_PRINT[instr.fence_tags]
            except KeyError:
                raise IsaError(f"unprintable fence tags {set(instr.fence_tags)}")
        if op is Op.LOAD:
            mnem = "ld" if instr.width == 64 else "lw"
            return f"{mnem} {instr.dst}, {_mem(instr)}"
        if op is Op.STORE:
            mnem = "sd" if instr.width == 64 else "sw"
            return f"{mnem} {instr.src1}, {_mem(instr)}"
        if op is Op.AMO:
            size = ".d" if instr.width == 64 else ".w"
            name = _AMO_NAMES[instr.amo_kind]
            dst = instr.dst or "zero"
            return (
                f"{name}{size}{_ordering_suffix(instr)} "
                f"{dst}, {instr.src1}, ({instr.addr_reg})"
            )
        if op is Op.LDX:
            size = ".d" if instr.width == 64 else ".w"
            return f"lr{size}{_ordering_suffix(instr)} {instr.dst}, ({instr.addr_reg})"
        if op is Op.STX:
            size = ".d" if instr.width == 64 else ".w"
            return (
                f"sc{size}{_ordering_suffix(instr)} "
                f"{instr.status}, {instr.src1}, ({instr.addr_reg})"
            )
        raise IsaError(f"cannot print {instr!r} for riscv64")

    # ------------------------------------------------------------------ #
    def parse_line(self, text: str) -> Instruction:
        text = text.strip()
        if text.endswith(":"):
            return Instruction(op=Op.LABEL, label=text[:-1], text=text)
        if text.lower() in _FENCE_PARSE:
            return Instruction(op=Op.FENCE, fence_tags=_FENCE_PARSE[text.lower()],
                               text=text)
        mnem, _, rest = text.partition(" ")
        mnem = mnem.lower()
        if mnem == "fence":
            key = f"fence {rest.replace(' ', '')}"
            if key not in _FENCE_PARSE:
                raise IsaError(f"unknown fence {text!r}")
            return Instruction(op=Op.FENCE, fence_tags=_FENCE_PARSE[key], text=text)
        ops = [o.strip() for o in rest.split(",")] if rest else []
        return self._parse_mnemonic(mnem, ops, text).with_text(text)

    def _parse_mnemonic(self, mnem: str, ops: List[str], text: str) -> Instruction:
        if mnem == "nop":
            return Instruction(op=Op.NOP)
        if mnem == "ret":
            return Instruction(op=Op.RET)
        if mnem == "li":
            return Instruction(op=Op.MOVI, dst=ops[0], imm=int(ops[1], 0))
        if mnem == "la":
            symbol, offset = _sym_offset(ops[1])
            return Instruction(op=Op.MOVADDR, dst=ops[0], symbol=symbol, offset=offset)
        if mnem == "mv":
            return Instruction(op=Op.MOV, dst=ops[0], src1=ops[1])
        if mnem == "j":
            return Instruction(op=Op.B, label=ops[0])
        if mnem == "beqz":
            return Instruction(op=Op.CBZ, src1=ops[0], label=ops[1])
        if mnem == "bnez":
            return Instruction(op=Op.CBNZ, src1=ops[0], label=ops[1])
        if mnem in _BRANCH_PARSE:
            return Instruction(op=Op.BCOND, cond=_BRANCH_PARSE[mnem],
                               src1=ops[0], src2=ops[1], label=ops[2])
        if mnem in _ALU_IMM_PARSE:
            return Instruction(op=Op.ALU, dst=ops[0], src1=ops[1],
                               imm=int(ops[2], 0), alu_op=_ALU_IMM_PARSE[mnem])
        if mnem in _ALU_PARSE:
            return Instruction(op=Op.ALU, dst=ops[0], src1=ops[1], src2=ops[2],
                               alu_op=_ALU_PARSE[mnem])
        if mnem in ("lw", "ld"):
            base, off = _parse_mem(ops[1])
            return Instruction(op=Op.LOAD, dst=ops[0], addr_reg=base, offset=off,
                               width=64 if mnem == "ld" else 32)
        if mnem in ("sw", "sd"):
            base, off = _parse_mem(ops[1])
            return Instruction(op=Op.STORE, src1=ops[0], addr_reg=base, offset=off,
                               width=64 if mnem == "sd" else 32)
        parts = mnem.split(".")
        if parts[0] in _AMO_PARSE and len(parts) >= 2:
            base, off = _parse_mem(ops[2])
            acq, rel = _parse_ordering(parts[2:])
            return Instruction(op=Op.AMO, amo_kind=_AMO_PARSE[parts[0]],
                               dst=None if ops[0] == "zero" else ops[0],
                               src1=ops[1], addr_reg=base, offset=off,
                               acquire=acq, release=rel, exclusive=True,
                               width=64 if parts[1] == "d" else 32)
        if parts[0] == "lr" and len(parts) >= 2:
            base, off = _parse_mem(ops[1])
            acq, rel = _parse_ordering(parts[2:])
            return Instruction(op=Op.LDX, dst=ops[0], addr_reg=base, offset=off,
                               acquire=acq, release=rel, exclusive=True,
                               width=64 if parts[1] == "d" else 32)
        if parts[0] == "sc" and len(parts) >= 2:
            base, off = _parse_mem(ops[2])
            acq, rel = _parse_ordering(parts[2:])
            # RISC-V sc writes 0 to rd on success (the default convention)
            return Instruction(op=Op.STX, status=ops[0], src1=ops[1],
                               addr_reg=base, offset=off,
                               acquire=acq, release=rel, exclusive=True,
                               width=64 if parts[1] == "d" else 32)
        raise IsaError(f"unknown riscv instruction {text!r}")


def _parse_mem(token: str) -> Tuple[str, int]:
    match = _MEM_RE.fullmatch(token.strip())
    if not match:
        raise IsaError(f"bad memory operand {token!r}")
    return match.group("base"), int(match.group("off") or 0)


def _parse_ordering(parts: List[str]) -> Tuple[bool, bool]:
    if not parts:
        return False, False
    tag = parts[0]
    return "aq" in tag, "rl" in tag


def _sym_offset(token: str) -> Tuple[str, int]:
    if "+" in token:
        symbol, _, offset = token.partition("+")
        return symbol.strip(), int(offset, 0)
    return token.strip(), 0


ISA = register_isa(RiscV())
