"""MIPS (64-bit) syntax for the modelled subset.

MIPS has a single full barrier, ``sync``, and LL/SC exclusives.  GCC's
MIPS backend treats atomic data as ``volatile`` and brackets every atomic
access in ``sync`` (the paper's §IV-C missed-optimisation report [40]);
our compiler mapping mirrors that conservatism, which is why MIPS shows
zero positive and the most negative differences in Table IV.

MIPS ``sc`` writes 1 to the value register on success (the opposite of
the AArch64/RISC-V convention); the success value rides in ``imm``.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .base import Instruction, Isa, IsaError, Op, register_isa

_MEM_RE = re.compile(r"(?P<off>-?\d+)?\(\s*(?P<base>\$\w+)\s*\)")

_ALU_PRINT = {
    "add": "addu", "sub": "subu", "and": "and", "or": "or",
    "xor": "xor", "lsl": "sll", "lsr": "srl", "mul": "mul",
}
_ALU_PARSE = {v: k for k, v in _ALU_PRINT.items()}

_BRANCH_PRINT = {"eq": "beq", "ne": "bne"}
_BRANCH_PARSE = {v: k for k, v in _BRANCH_PRINT.items()}

#: immediate ALU mnemonics; `sub imm` prints as addiu with a negated
#: immediate, as assemblers conventionally accept.
_ALU_IMM = {"add": "addiu", "and": "andi", "or": "ori", "xor": "xori",
            "lsl": "sll", "lsr": "srl"}
_ALU_IMM_PARSE = {v: k for k, v in _ALU_IMM.items()}


def _print_alu_imm(instr: Instruction) -> str:
    if instr.alu_op == "sub":
        return f"addiu {instr.dst}, {instr.src1}, {-(instr.imm or 0)}"
    if instr.alu_op not in _ALU_IMM:
        raise IsaError(f"mips has no immediate form for {instr.alu_op}")
    return f"{_ALU_IMM[instr.alu_op]} {instr.dst}, {instr.src1}, {instr.imm}"


def _mem(instr: Instruction) -> str:
    return f"{instr.offset or 0}({instr.addr_reg})"


class Mips(Isa):
    """The MIPS64 ISA front (o64-ish conventions, $-register names)."""

    name = "mips64"
    zero_reg = "$zero"
    value_regs = ("$2", "$3", "$8", "$9", "$10", "$11")
    addr_regs = ("$4", "$5", "$6", "$7")
    param_regs = ("$4", "$5", "$6", "$7")

    # ------------------------------------------------------------------ #
    def print_instruction(self, instr: Instruction) -> str:
        op = instr.op
        if op is Op.LABEL:
            return f"{instr.label}:"
        if op is Op.NOP:
            return "nop"
        if op is Op.RET:
            return "jr $ra"
        if op is Op.MOVI:
            return f"li {instr.dst}, {instr.imm}"
        if op is Op.MOVADDR:
            suffix = f"+{instr.offset}" if instr.offset else ""
            return f"la {instr.dst}, {instr.symbol}{suffix}"
        if op is Op.MOV:
            return f"move {instr.dst}, {instr.src1}"
        if op is Op.ALU:
            if instr.src2 is None:
                return _print_alu_imm(instr)
            return f"{_ALU_PRINT[instr.alu_op]} {instr.dst}, {instr.src1}, {instr.src2}"
        if op is Op.BCOND:
            if instr.cond not in _BRANCH_PRINT:
                raise IsaError(f"mips has no b{instr.cond} in the modelled subset")
            rhs = instr.src2 or "$zero"
            return f"{_BRANCH_PRINT[instr.cond]} {instr.src1}, {rhs}, {instr.label}"
        if op is Op.CBZ:
            return f"beqz {instr.src1}, {instr.label}"
        if op is Op.CBNZ:
            return f"bnez {instr.src1}, {instr.label}"
        if op is Op.B:
            return f"b {instr.label}"
        if op is Op.FENCE:
            if instr.fence_tags == frozenset({"MIPS.SYNC"}):
                return "sync"
            raise IsaError(f"unprintable fence tags {set(instr.fence_tags)}")
        if op is Op.LOAD:
            mnem = "ld" if instr.width == 64 else "lw"
            return f"{mnem} {instr.dst}, {_mem(instr)}"
        if op is Op.STORE:
            mnem = "sd" if instr.width == 64 else "sw"
            return f"{mnem} {instr.src1}, {_mem(instr)}"
        if op is Op.LDX:
            mnem = "lld" if instr.width == 64 else "ll"
            return f"{mnem} {instr.dst}, {_mem(instr)}"
        if op is Op.STX:
            mnem = "scd" if instr.width == 64 else "sc"
            return f"{mnem} {instr.src1}, {_mem(instr)}"
        raise IsaError(f"cannot print {instr!r} for mips64")

    # ------------------------------------------------------------------ #
    def parse_line(self, text: str) -> Instruction:
        text = text.strip()
        if text.endswith(":"):
            return Instruction(op=Op.LABEL, label=text[:-1], text=text)
        if text.lower() == "sync":
            return Instruction(op=Op.FENCE, fence_tags=frozenset({"MIPS.SYNC"}),
                               text=text)
        mnem, _, rest = text.partition(" ")
        mnem = mnem.lower()
        ops = [o.strip() for o in rest.split(",")] if rest else []
        return self._parse_mnemonic(mnem, ops, text).with_text(text)

    def _parse_mnemonic(self, mnem: str, ops: List[str], text: str) -> Instruction:
        if mnem == "nop":
            return Instruction(op=Op.NOP)
        if mnem == "jr":
            return Instruction(op=Op.RET)
        if mnem == "li":
            return Instruction(op=Op.MOVI, dst=ops[0], imm=int(ops[1], 0))
        if mnem == "la":
            symbol, offset = _sym_offset(ops[1])
            return Instruction(op=Op.MOVADDR, dst=ops[0], symbol=symbol, offset=offset)
        if mnem == "move":
            return Instruction(op=Op.MOV, dst=ops[0], src1=ops[1])
        if mnem in _ALU_IMM_PARSE:
            return Instruction(op=Op.ALU, dst=ops[0], src1=ops[1],
                               imm=int(ops[2], 0), alu_op=_ALU_IMM_PARSE[mnem])
        if mnem in _ALU_PARSE:
            return Instruction(op=Op.ALU, dst=ops[0], src1=ops[1], src2=ops[2],
                               alu_op=_ALU_PARSE[mnem])
        if mnem in ("b", "j"):
            return Instruction(op=Op.B, label=ops[0])
        if mnem == "beqz":
            return Instruction(op=Op.CBZ, src1=ops[0], label=ops[1])
        if mnem == "bnez":
            return Instruction(op=Op.CBNZ, src1=ops[0], label=ops[1])
        if mnem in _BRANCH_PARSE:
            return Instruction(op=Op.BCOND, cond=_BRANCH_PARSE[mnem],
                               src1=ops[0], src2=ops[1], label=ops[2])
        if mnem in ("lw", "ld"):
            base, off = _parse_mem(ops[1])
            return Instruction(op=Op.LOAD, dst=ops[0], addr_reg=base, offset=off,
                               width=64 if mnem == "ld" else 32)
        if mnem in ("sw", "sd"):
            base, off = _parse_mem(ops[1])
            return Instruction(op=Op.STORE, src1=ops[0], addr_reg=base, offset=off,
                               width=64 if mnem == "sd" else 32)
        if mnem in ("ll", "lld"):
            base, off = _parse_mem(ops[1])
            return Instruction(op=Op.LDX, dst=ops[0], addr_reg=base, offset=off,
                               exclusive=True, width=64 if mnem == "lld" else 32)
        if mnem in ("sc", "scd"):
            base, off = _parse_mem(ops[1])
            # MIPS sc overwrites the value register with 1 on success
            return Instruction(op=Op.STX, status=ops[0], src1=ops[0],
                               addr_reg=base, offset=off, imm=1, exclusive=True,
                               width=64 if mnem == "scd" else 32)
        raise IsaError(f"unknown mips instruction {text!r}")


def _parse_mem(token: str) -> Tuple[str, int]:
    match = _MEM_RE.fullmatch(token.strip())
    if not match:
        raise IsaError(f"bad memory operand {token!r}")
    return match.group("base"), int(match.group("off") or 0)


def _sym_offset(token: str) -> Tuple[str, int]:
    if "+" in token:
        symbol, _, offset = token.partition("+")
        return symbol.strip(), int(offset, 0)
    return token.strip(), 0


ISA = register_isa(Mips())
