"""Assembly litmus tests: per-ISA syntax, unified semantics, event generation."""

from .isa.base import Instruction, Isa, IsaError, Op, get_isa, list_isas
from .litmus import AsmLitmus, AsmThread, total_instructions
from .semantics import AsmThreadElaborator, elaborate_asm

__all__ = [
    "Instruction",
    "Isa",
    "IsaError",
    "Op",
    "get_isa",
    "list_isas",
    "AsmLitmus",
    "AsmThread",
    "total_instructions",
    "AsmThreadElaborator",
    "elaborate_asm",
]
