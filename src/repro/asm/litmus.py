"""Assembly litmus tests.

An assembly litmus test (the output of the paper's ``s2l`` tool, §III-B)
has the same three parts as a C litmus test — fixed initial state,
concurrent program, final-state predicate — but its threads are machine
instructions, its shared locations live at concrete addresses inside ELF
sections, and its observables are architecture registers.

The *memory layout* fields reproduce the paper's §III-D challenge: compiled
programs name locations by numeric address; litmus tests name them
symbolically.  :class:`AsmLitmus` carries both views plus the mapping
between them, which ``s2l`` reconstructs from object-file metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.errors import MappingError
from ..core.litmus import LitmusBase
from .isa.base import Instruction


@dataclass(frozen=True)
class AsmThread:
    """One thread of an assembly litmus test.

    Attributes:
        name: litmus thread name (``P0``, ``P1``, …).
        instructions: the thread body in the unified representation.
        observed: architecture register → source-level observable name
            (``{"w9": "r0"}`` means the final value of ``w9`` reports as
            ``P0:r0``).  Built by ``s2l`` from debug metadata.
        addr_env: registers pre-loaded with the address of a symbol, as a
            litmus-style init section would (``{"x0": "y"}``).  Compiled
            threads receive their shared-location pointers this way (the
            calling convention) or materialise them with ``MOVADDR``.
    """

    name: str
    instructions: Tuple[Instruction, ...]
    observed: Dict[str, str] = field(default_factory=dict)
    addr_env: Dict[str, str] = field(default_factory=dict)

    @property
    def tid(self) -> int:
        if self.name.startswith("P") and self.name[1:].isdigit():
            return int(self.name[1:])
        raise ValueError(f"thread name {self.name!r} is not of the form Pn")

    def observable_names(self) -> Tuple[str, ...]:
        return tuple(sorted(f"{self.name}:{v}" for v in self.observed.values()))


@dataclass
class AsmLitmus(LitmusBase):
    """A complete assembly litmus test.

    ``init`` (inherited) maps *symbolic location names* to initial values.
    ``layout`` assigns each symbol a numeric address — the view compiled
    code has; ``address_map`` is its inverse, extended so that any address
    inside a multi-byte location resolves to (symbol, offset).
    """

    arch: str = "aarch64"
    threads: Tuple[AsmThread, ...] = ()
    #: widths of shared locations in bits (default 32).
    widths: Dict[str, int] = field(default_factory=dict)
    #: locations placed in read-only memory (.rodata) — paper §IV-E.
    const_locations: Tuple[str, ...] = ()
    #: symbol → numeric address (ELF layout view of the same locations).
    layout: Dict[str, int] = field(default_factory=dict)
    #: private locations holding the address of a shared symbol
    #: (GOT slots): location name → symbol pointed to.  A load from such a
    #: location yields an address, which the semantics tracks symbolically.
    addr_locations: Dict[str, str] = field(default_factory=dict)
    #: locations private to one thread (stack slots, GOT entries); the s2l
    #: optimiser may remove accesses to these (paper §IV-E).
    private_locations: Tuple[str, ...] = ()
    #: multi-slot private memory regions (per-thread stacks): symbol → byte
    #: size.  An access at offset ``k`` into region ``s`` names the derived
    #: location ``s+k``; regions are always private.
    regions: Dict[str, int] = field(default_factory=dict)

    def width_of(self, loc: str) -> int:
        return self.widths.get(loc, 32)

    def is_const(self, loc: str) -> bool:
        return loc in self.const_locations

    def is_private(self, loc: str) -> bool:
        if loc in self.private_locations or loc in self.addr_locations:
            return True
        base = loc.split("+", 1)[0]
        return base in self.regions

    # ------------------------------------------------------------------ #
    # the address <-> symbol bridge of paper §III-D
    # ------------------------------------------------------------------ #
    def address_of(self, symbol: str) -> int:
        if symbol not in self.layout:
            raise MappingError(f"symbol {symbol!r} has no address in the layout")
        return self.layout[symbol]

    def symbol_at(self, address: int) -> Tuple[str, int]:
        """Resolve a numeric address to ``(symbol, offset)``.

        Mirrors what ``s2l`` does with symbol-table metadata: find the
        symbol whose extent covers the address.
        """
        for symbol, base in sorted(self.layout.items(), key=lambda kv: kv[1]):
            size = max(self.width_of(symbol) // 8, 4)
            if base <= address < base + size:
                return symbol, address - base
        raise MappingError(f"address {address:#x} maps to no known symbol")

    def shared_symbols(self) -> Tuple[str, ...]:
        """Symbols nameable by more than one thread (the paper's soundness
        criterion for the s2l optimisations)."""
        return tuple(
            s for s in sorted(self.init) if not self.is_private(s)
        )

    def pretty(self) -> str:
        """Render in a herd-like surface syntax (for logs and goldens)."""
        lines: List[str] = [f"{self.arch.upper()} {self.name}"]
        inits = []
        for loc, value in sorted(self.init.items()):
            inits.append(f"{loc}={value};")
        for thread in self.threads:
            for reg, sym in sorted(thread.addr_env.items()):
                inits.append(f"{thread.tid}:{reg}={sym};")
        lines.append("{ " + " ".join(inits) + " }")
        for thread in self.threads:
            lines.append(f"{thread.name}:")
            for instr in thread.instructions:
                lines.append(f"  {instr.text or instr.op.value}")
        lines.append(str(self.condition))
        return "\n".join(lines)


def total_instructions(litmus: AsmLitmus) -> int:
    """Lines of compiled code, as counted in the paper's scalability talk."""
    return sum(len(t.instructions) for t in litmus.threads)
