"""The T´el´échat driver: the ``test_tv`` environment of paper Fig. 5.

One call to :func:`run_test_tv` runs the whole tool-chain on one test
and one compiler profile::

    S ──l2c──> S′ ──c2s──> O ──s2l──> C
    herd(S′, M_S)  ⊇?  herd(C, M_C)          (mcompare)

Since the toolchain redesign this module is a thin composition layer:
the chain itself lives in :mod:`repro.toolchain` as typed, individually
cached stages, and both entry points here — :func:`run_test_tv` and
:func:`differential_outcomes` — build on the same
:class:`~repro.toolchain.Toolchain` graph.  The historical result and
serialisation types (:class:`TelechatResult`,
:func:`outcomes_to_jsonable`, …) are re-exported from
:mod:`repro.toolchain.results` unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ..cat.interp import Model
from ..herd.enumerate import Budget
from ..herd.simulator import SimulationResult
from ..lang.ast import CLitmus
from ..compiler.profiles import CompilerProfile
from ..toolchain.chain import Toolchain
from ..toolchain.results import (  # noqa: F401  (re-exports: the store/tests import these from here)
    DifferentialResult,
    TelechatResult,
    comparison_from_record,
    outcomes_from_jsonable,
    outcomes_to_jsonable,
)
from ..tools.mcompare import ComparisonResult


def run_test_tv(
    litmus: CLitmus,
    profile: CompilerProfile,
    source_model: Union[str, Model] = "rc11",
    target_model: Optional[Union[str, Model]] = None,
    augment: bool = True,
    optimise: bool = True,
    unroll: int = 2,
    budget: Optional[Budget] = None,
    source_result: Optional[SimulationResult] = None,
    toolchain: Optional[Toolchain] = None,
) -> TelechatResult:
    """Run test_tv on one C litmus test under one compiler profile.

    This is the engine entry point behind :meth:`repro.api.Session.test`
    — prefer the session, which resolves models and profiles against
    per-session registries and owns the caches.

    Args:
        litmus: the C litmus test ``S`` (step 1 of Fig. 5).
        profile: the compiler-under-test configuration.
        source_model: the C/C++ oracle (``rc11`` by default; ``rc11+lb``
            reproduces the paper's Claim 4 re-run).
        target_model: the architecture model; defaults to the official
            model registered for the profile's architecture.
        augment: apply the §IV-B local-variable augmentation.
        optimise: apply the §IV-E s2l optimisations (disable to reproduce
            the non-terminating Fig. 11 configuration — bring a budget).
        unroll: loop unroll factor for source simulation.
        budget: enumeration budget for both simulations.
        source_result: a pre-computed source-side simulation of this test
            under ``source_model`` (the campaign runner hoists S′
            simulation out of its per-cell loop and passes it here, so
            each test's source side is simulated once per source model,
            not once per cell).
        toolchain: the staged :class:`~repro.toolchain.Toolchain` to run
            over — sessions pass theirs so per-stage artifacts (compiled
            litmus tests, outcome sets) are reused across calls, models
            and differential pairs.  ``None`` runs over a private
            throwaway chain (the historical uncached behaviour).
    """
    chain = toolchain if toolchain is not None else Toolchain()
    return chain.run_tv(
        litmus,
        profile,
        source_model=source_model,
        target_model=target_model,
        augment=augment,
        optimise=optimise,
        unroll=unroll,
        budget=budget,
        source_result=source_result,
    )


def test_compilation(
    litmus: CLitmus,
    profile: CompilerProfile,
    source_model: Union[str, Model] = "rc11",
    target_model: Optional[Union[str, Model]] = None,
    augment: bool = True,
    optimise: bool = True,
    unroll: int = 2,
    budget: Optional[Budget] = None,
    source_result: Optional[SimulationResult] = None,
    toolchain: Optional[Toolchain] = None,
) -> TelechatResult:
    """Deprecated alias of :func:`run_test_tv`.

    Use :meth:`repro.api.Session.test` (session-scoped registries and
    caches) or :func:`run_test_tv` (bare engine call).  Calling this shim
    from inside :mod:`repro` raises — internal code must not depend on
    entry points the public API deprecates.
    """
    from ..api._deprecation import warn_deprecated

    warn_deprecated("test_compilation()", "Session.test() or run_test_tv()")
    return run_test_tv(
        litmus,
        profile,
        source_model=source_model,
        target_model=target_model,
        augment=augment,
        optimise=optimise,
        unroll=unroll,
        budget=budget,
        source_result=source_result,
        toolchain=toolchain,
    )


def run_differential(
    litmus: CLitmus,
    profile_a: CompilerProfile,
    profile_b: CompilerProfile,
    source_model: Optional[Union[str, Model]] = None,
    target_model: Optional[Union[str, Model]] = None,
    augment: bool = True,
    optimise: bool = True,
    unroll: int = 2,
    budget: Optional[Budget] = None,
    source_result: Optional[SimulationResult] = None,
    toolchain: Optional[Toolchain] = None,
) -> DifferentialResult:
    """Differential testing (paper §IV-D) over the staged toolchain:
    two compile→lift→simulate branches joined at one compare stage.

    The engine entry point behind ``CampaignPlan(mode="differential")``
    and :meth:`repro.api.Session.differential`.  ``source_model``
    switches on the C-source undefined-behaviour oracle (racy sources
    excuse the difference, verdict ``ub-masked``).
    """
    chain = toolchain if toolchain is not None else Toolchain()
    return chain.run_differential(
        litmus,
        profile_a,
        profile_b,
        source_model=source_model,
        target_model=target_model,
        augment=augment,
        optimise=optimise,
        unroll=unroll,
        budget=budget,
        source_result=source_result,
    )


# the names match pytest's default collection pattern; these are library
# entry points, not tests
test_compilation.__test__ = False  # type: ignore[attr-defined]
run_test_tv.__test__ = False  # type: ignore[attr-defined]


def differential_outcomes(
    litmus: CLitmus,
    profile_a: CompilerProfile,
    profile_b: CompilerProfile,
    augment: bool = True,
    budget: Optional[Budget] = None,
    optimise: bool = True,
    unroll: int = 2,
    source_model: Optional[Union[str, Model]] = None,
    target_model: Optional[Union[str, Model]] = None,
    toolchain: Optional[Toolchain] = None,
) -> Tuple[SimulationResult, SimulationResult, ComparisonResult]:
    """Differential testing, legacy tuple shape (see :func:`run_differential`).

    A difference between compilers is a *compatibility* risk: code from
    both is routinely linked together.

    Historically this hand-rolled its own chain and silently dropped the
    ``optimise``/``stats`` arguments of ``assembly_to_litmus`` (and never
    exposed ``unroll``/``source_model``), so differential runs exercised
    a different s2l path than single-profile runs.  It is now the same
    :meth:`Toolchain.run_differential` composition, so both paths produce
    identical compiled litmus tests for the same profile.
    """
    result = run_differential(
        litmus,
        profile_a,
        profile_b,
        source_model=source_model,
        target_model=target_model,
        augment=augment,
        optimise=optimise,
        unroll=unroll,
        budget=budget,
        toolchain=toolchain,
    )
    return result.result_a, result.result_b, result.comparison
