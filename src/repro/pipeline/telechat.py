"""The T´el´echat driver: the ``test_tv`` environment of paper Fig. 5.

One call to :func:`test_compilation` runs the whole tool-chain on one
test and one compiler profile::

    S ──l2c──> S′ ──c2s──> O ──s2l──> C
    herd(S′, M_S)  ⊇?  herd(C, M_C)          (mcompare)

The result records the comparison verdict, both outcome sets, the
compiled litmus test, and the simulation/optimisation statistics the
paper's scalability claims are stated in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from ..asm.litmus import AsmLitmus, total_instructions
from ..cat.interp import Model
from ..cat.registry import arch_model, get_model
from ..compiler.profiles import CompilerProfile
from ..core.errors import ReproError, SimulationTimeout
from ..core.execution import Outcome
from ..herd.enumerate import Budget
from ..herd.simulator import SimulationResult, simulate_asm, simulate_c
from ..lang.ast import CLitmus
from ..tools.c2s import compile_and_disassemble
from ..tools.l2c import prepare
from ..tools.mcompare import ComparisonResult, mcompare
from ..tools.s2l import S2LStats, assembly_to_litmus


# --------------------------------------------------------------------------- #
# record (de)serialisation — the persistent campaign store's currency
# --------------------------------------------------------------------------- #
def outcomes_to_jsonable(outcomes: Iterable[Outcome]) -> List[List[List[object]]]:
    """Serialise an outcome set to a canonical (sorted) JSON-able form."""
    return sorted([[k, v] for k, v in o.bindings] for o in outcomes)


def outcomes_from_jsonable(data: Iterable[Iterable[Sequence[object]]]) -> FrozenSet[Outcome]:
    """Rebuild an outcome set serialised by :func:`outcomes_to_jsonable`."""
    return frozenset(
        Outcome(tuple((str(k), int(v)) for k, v in bindings)) for bindings in data
    )


def comparison_from_record(record: Dict[str, object]) -> ComparisonResult:
    """Rebuild a :class:`ComparisonResult` from a stored verdict record."""
    return ComparisonResult(
        test_name=str(record["test"]),
        source_model=str(record["source_model"]),
        target_model=str(record["target_model"]),
        source_outcomes=outcomes_from_jsonable(record["source_outcomes"]),
        target_outcomes=outcomes_from_jsonable(record["target_outcomes"]),
        positive=outcomes_from_jsonable(record["positive"]),
        negative=outcomes_from_jsonable(record["negative"]),
        source_has_ub=bool(record["source_has_ub"]),
    )


@dataclass
class TelechatResult:
    """Everything one test_tv run produced."""

    test_name: str
    profile: CompilerProfile
    comparison: ComparisonResult
    source_result: SimulationResult
    target_result: SimulationResult
    compiled: AsmLitmus
    s2l_stats: S2LStats
    source_seconds: float
    target_seconds: float
    compile_seconds: float
    #: True when the source simulation was reused (hoisted or cached)
    #: rather than run inside this call
    source_reused: bool = False

    @property
    def verdict(self) -> str:
        return self.comparison.verdict()

    @property
    def found_bug(self) -> bool:
        """A positive difference not excused by source undefined behaviour
        (paper def. II.3)."""
        return self.comparison.is_positive

    @property
    def compiled_loc(self) -> int:
        return total_instructions(self.compiled)

    def to_record(self) -> Dict[str, object]:
        """Serialise the verdict and both outcome sets to a JSON-able dict.

        This is the persistent form the campaign store appends: enough to
        replay the cell's Table IV contribution and the mcompare
        drill-down without re-simulating, and to rebuild the comparison
        via :func:`comparison_from_record`.  The heavyweight pieces (the
        compiled litmus, raw executions) intentionally stay out.
        """
        return {
            "test": self.test_name,
            "profile": self.profile.name,
            "verdict": self.verdict,
            "source_model": self.comparison.source_model,
            "target_model": self.comparison.target_model,
            "source_outcomes": outcomes_to_jsonable(self.comparison.source_outcomes),
            "target_outcomes": outcomes_to_jsonable(self.comparison.target_outcomes),
            "positive": outcomes_to_jsonable(self.comparison.positive),
            "negative": outcomes_to_jsonable(self.comparison.negative),
            "source_has_ub": self.comparison.source_has_ub,
            "flags": sorted(self.source_result.flags | self.target_result.flags),
            "compiled_loc": self.compiled_loc,
            "seconds": {
                "source": self.source_seconds,
                "target": self.target_seconds,
                "compile": self.compile_seconds,
            },
        }


def run_test_tv(
    litmus: CLitmus,
    profile: CompilerProfile,
    source_model: Union[str, Model] = "rc11",
    target_model: Optional[Union[str, Model]] = None,
    augment: bool = True,
    optimise: bool = True,
    unroll: int = 2,
    budget: Optional[Budget] = None,
    source_result: Optional[SimulationResult] = None,
) -> TelechatResult:
    """Run test_tv on one C litmus test under one compiler profile.

    This is the engine entry point behind :meth:`repro.api.Session.test`
    — prefer the session, which resolves models and profiles against
    per-session registries and owns the caches.

    Args:
        litmus: the C litmus test ``S`` (step 1 of Fig. 5).
        profile: the compiler-under-test configuration.
        source_model: the C/C++ oracle (``rc11`` by default; ``rc11+lb``
            reproduces the paper's Claim 4 re-run).
        target_model: the architecture model; defaults to the official
            model registered for the profile's architecture.
        augment: apply the §IV-B local-variable augmentation.
        optimise: apply the §IV-E s2l optimisations (disable to reproduce
            the non-terminating Fig. 11 configuration — bring a budget).
        unroll: loop unroll factor for source simulation.
        budget: enumeration budget for both simulations.
        source_result: a pre-computed source-side simulation of this test
            under ``source_model`` (the campaign runner hoists S′
            simulation out of its per-cell loop and passes it here, so
            each test's source side is simulated once per source model,
            not once per cell).
    """
    prepared = prepare(litmus, augment=augment)

    compile_start = time.perf_counter()
    c2s = compile_and_disassemble(prepared, profile)
    stats = S2LStats()
    compiled = assembly_to_litmus(
        c2s.obj, prepared.condition, listing=c2s.listing,
        optimise=optimise, stats=stats,
    )
    compile_seconds = time.perf_counter() - compile_start

    source_reused = source_result is not None
    if source_result is None:
        source_start = time.perf_counter()
        source_result = simulate_c(
            prepared, source_model, unroll=unroll, budget=budget
        )
        source_seconds = time.perf_counter() - source_start
    else:
        source_seconds = 0.0

    chosen_target = target_model if target_model is not None else arch_model(profile.arch)
    target_start = time.perf_counter()
    target_result = simulate_asm(compiled, chosen_target, budget=budget)
    target_seconds = time.perf_counter() - target_start

    comparison = mcompare(
        source_result,
        target_result,
        shared_locations=list(prepared.init),
        condition_observables=prepared.condition.observables(),
    )
    return TelechatResult(
        test_name=litmus.name,
        profile=profile,
        comparison=comparison,
        source_result=source_result,
        target_result=target_result,
        compiled=compiled,
        s2l_stats=stats,
        source_seconds=source_seconds,
        target_seconds=target_seconds,
        compile_seconds=compile_seconds,
        source_reused=source_reused,
    )


def test_compilation(
    litmus: CLitmus,
    profile: CompilerProfile,
    source_model: Union[str, Model] = "rc11",
    target_model: Optional[Union[str, Model]] = None,
    augment: bool = True,
    optimise: bool = True,
    unroll: int = 2,
    budget: Optional[Budget] = None,
    source_result: Optional[SimulationResult] = None,
) -> TelechatResult:
    """Deprecated alias of :func:`run_test_tv`.

    Use :meth:`repro.api.Session.test` (session-scoped registries and
    caches) or :func:`run_test_tv` (bare engine call).  Calling this shim
    from inside :mod:`repro` raises — internal code must not depend on
    entry points the public API deprecates.
    """
    from ..api._deprecation import warn_deprecated

    warn_deprecated("test_compilation()", "Session.test() or run_test_tv()")
    return run_test_tv(
        litmus,
        profile,
        source_model=source_model,
        target_model=target_model,
        augment=augment,
        optimise=optimise,
        unroll=unroll,
        budget=budget,
        source_result=source_result,
    )


# the names match pytest's default collection pattern; these are library
# entry points, not tests
test_compilation.__test__ = False  # type: ignore[attr-defined]
run_test_tv.__test__ = False  # type: ignore[attr-defined]


def differential_outcomes(
    litmus: CLitmus,
    profile_a: CompilerProfile,
    profile_b: CompilerProfile,
    augment: bool = True,
    budget: Optional[Budget] = None,
) -> Tuple[SimulationResult, SimulationResult, ComparisonResult]:
    """Differential testing (paper §IV-D): compare the outcomes of two
    compilations of the same source under their architecture models —
    e.g. ``clang -O1`` vs ``clang -O3``, or clang vs gcc at ``-O2``.

    A difference between compilers is a *compatibility* risk: code from
    both is routinely linked together.
    """
    if profile_a.arch != profile_b.arch:
        raise ReproError("differential testing requires a common architecture")
    prepared = prepare(litmus, augment=augment)
    results: List[SimulationResult] = []
    for profile in (profile_a, profile_b):
        c2s = compile_and_disassemble(prepared, profile)
        compiled = assembly_to_litmus(c2s.obj, prepared.condition, listing=c2s.listing)
        results.append(simulate_asm(compiled, budget=budget))
    comparison = mcompare(
        results[0],
        results[1],
        shared_locations=list(prepared.init),
        condition_observables=prepared.condition.observables(),
    )
    return results[0], results[1], comparison
