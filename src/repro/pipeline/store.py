"""The persistent campaign store: a content-addressed verdict log.

Campaigns at the paper's Table IV scale outlive a process — and a
session.  This module gives :func:`~repro.pipeline.campaign.run_campaign`
an on-disk memory: an append-only JSONL log of verdict records keyed by
the *content* of the cell that produced them::

    (CLitmus.digest(), profile name, source model, augment, budget)

Content addressing (not test names) makes cross-run sharing sound: two
different tests that both happen to be called ``LB001`` get distinct
keys, while the same test re-generated under a new name replays its
stored verdict.  The log is append-only with last-write-wins replay, so
concurrent shards can share one file per shard and a crashed campaign
resumes from whatever it managed to append.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterator, List, Optional, Union

#: bump when the record layout changes incompatibly; loaders skip records
#: from other schemas instead of mis-replaying them.
STORE_SCHEMA = 1

#: the record fields that form a cell's identity.
KEY_FIELDS = ("digest", "profile", "source_model", "augment", "budget_candidates")


def cell_key(
    digest: str,
    profile_name: str,
    source_model: str,
    augment: bool,
    budget_candidates: int,
) -> str:
    """The store key of one campaign cell (a stable, printable string)."""
    return "|".join(
        (digest, profile_name, source_model, str(int(bool(augment))),
         str(budget_candidates))
    )


def record_key(record: Dict[str, object]) -> str:
    """The store key a verdict record belongs under."""
    return cell_key(
        str(record["digest"]),
        str(record["profile"]),
        str(record["source_model"]),
        bool(record["augment"]),
        int(record["budget_candidates"]),  # type: ignore[arg-type]
    )


class CampaignStore:
    """An append-only JSONL store of campaign verdict records.

    One record per line; loading replays the log with last-write-wins,
    so re-recording a cell simply supersedes the old verdict.  A torn
    final line (crashed writer) is ignored rather than poisoning the
    whole store.  Appends are thread-safe; cross-process writers should
    use one store file per shard and merge reports, not share a file.
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"]) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._records: Dict[str, Dict[str, object]] = {}
        self.loaded = 0
        self.skipped = 0
        self.appended = 0
        if os.path.exists(self.path):
            self._load()

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # a torn trailing line from a crashed writer
                    self.skipped += 1
                    continue
                if not isinstance(record, dict) or record.get("schema") != STORE_SCHEMA:
                    self.skipped += 1
                    continue
                if any(field not in record for field in KEY_FIELDS):
                    self.skipped += 1
                    continue
                self._records[record_key(record)] = record
                self.loaded += 1

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> Optional[Dict[str, object]]:
        return self._records.get(key)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def records(self) -> List[Dict[str, object]]:
        return list(self._records.values())

    def put(self, record: Dict[str, object]) -> str:
        """Append one verdict record and return its key."""
        record = dict(record, schema=STORE_SCHEMA)
        key = record_key(record)
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            self._records[key] = record
            self.appended += 1
        return key
