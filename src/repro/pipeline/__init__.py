"""The Telechat pipeline: test_tv driver, campaign runner, CLI."""

from .campaign import (
    ARCH_DISPLAY,
    CAMPAIGN_OPTS,
    CampaignCell,
    CampaignReport,
    ResultCache,
    SourceSimCache,
    run_campaign,
)
from .telechat import TelechatResult, differential_outcomes, test_compilation

__all__ = [
    "ARCH_DISPLAY",
    "CAMPAIGN_OPTS",
    "CampaignCell",
    "CampaignReport",
    "ResultCache",
    "SourceSimCache",
    "run_campaign",
    "TelechatResult",
    "differential_outcomes",
    "test_compilation",
]
