"""The Telechat pipeline: test_tv driver, campaign runner, store, CLI."""

from .campaign import (
    ARCH_DISPLAY,
    CAMPAIGN_OPTS,
    CampaignCell,
    CampaignReport,
    ResultCache,
    SourceSimCache,
    merge_reports,
    run_campaign,
)
from .store import CampaignStore, cell_key, record_key
from .telechat import (
    DifferentialResult,
    TelechatResult,
    comparison_from_record,
    differential_outcomes,
    outcomes_from_jsonable,
    outcomes_to_jsonable,
    run_differential,
    run_test_tv,
    test_compilation,
)

__all__ = [
    "ARCH_DISPLAY",
    "CAMPAIGN_OPTS",
    "CampaignCell",
    "CampaignReport",
    "CampaignStore",
    "ResultCache",
    "SourceSimCache",
    "cell_key",
    "comparison_from_record",
    "merge_reports",
    "outcomes_from_jsonable",
    "outcomes_to_jsonable",
    "record_key",
    "run_campaign",
    "run_differential",
    "run_test_tv",
    "DifferentialResult",
    "TelechatResult",
    "differential_outcomes",
    "test_compilation",
]
