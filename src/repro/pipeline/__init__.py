"""The Telechat pipeline: test_tv driver, campaign runner, CLI."""

from .campaign import (
    ARCH_DISPLAY,
    CAMPAIGN_OPTS,
    CampaignCell,
    CampaignReport,
    run_campaign,
)
from .telechat import TelechatResult, differential_outcomes, test_compilation

__all__ = [
    "ARCH_DISPLAY",
    "CAMPAIGN_OPTS",
    "CampaignCell",
    "CampaignReport",
    "run_campaign",
    "TelechatResult",
    "differential_outcomes",
    "test_compilation",
]
