"""``repro.farm`` — the corpus-scale golden regression farm.

The paper's claims live on *whole-corpus* behaviour: thousands of litmus
tests per shape family, per profile, per model.  A handful of pinned
figure tests cannot see a verdict flip in the long tail.  This module is
the persistent half of the farm:

* **suites** — versioned JSONL corpora written by
  :func:`~repro.tools.sources.write_suite`, one per diy shape family,
  with a checked-in content digest per file (a suite that drifts on disk
  is an error, not a silent re-baseline);
* **baselines** — one compact JSONL of verdict summaries per
  (suite, profile, model), in the exact
  :class:`~repro.pipeline.store.CampaignStore` record format minus the
  run-volatile fields, sorted by ``(digest, profile)`` and dumped with
  sorted keys — so *blessing* the same corpus on any execution backend
  produces byte-identical files;
* **MANIFEST.json** — the farm's root index tying the two together.

The streaming half (running a corpus through the cached toolchain and
diffing the records against the blessed baseline) lives in
:mod:`repro.api.farm`; drift classification is
:func:`repro.tools.mcompare.diff_baselines`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.errors import ReproError
from ..tools.diy import DiyConfig
from ..tools.mcompare import VOLATILE_FIELDS, baseline_view
from ..tools.sources import DiySource, iter_jsonl, write_suite

#: bump when the manifest layout changes incompatibly.
FARM_SCHEMA = 1

#: the farm's index file, relative to the corpus root.
MANIFEST_NAME = "MANIFEST.json"

#: where suites and baselines live, relative to the corpus root.
SUITE_DIR = "suites"
BASELINE_DIR = "baselines"


class FarmError(ReproError):
    """A farm corpus problem: missing manifest, drifted suite digest,
    unknown suite/profile filter — anything that makes a farm run
    meaningless rather than merely drifted."""


def file_digest(path: Union[str, "os.PathLike[str]"]) -> str:
    """The content digest of one corpus file (``sha256:<hex>``)."""
    digest = hashlib.sha256()
    with open(os.fspath(path), "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return "sha256:" + digest.hexdigest()


# --------------------------------------------------------------------- #
# the default mini-corpus: three shape families, ~220 tests
# --------------------------------------------------------------------- #
def _family_config(shapes: Tuple[str, ...]) -> DiyConfig:
    """One farm family: the default fence/dep axes crossed with three
    uniform orders and two write variants — large enough to exercise the
    long tail, small enough to check in."""
    return DiyConfig(
        shapes=shapes,
        orders=("rlx", "ar", "sc"),
        variants=("load-store", "xchg-write"),
    )


#: the checked-in shape families (≥3 families, ≥200 tests total).
DEFAULT_SUITES: Dict[str, DiyConfig] = {
    "lb": _family_config(("LB", "LB3")),
    "mp": _family_config(("MP", "S")),
    "sb": _family_config(("SB", "2+2W", "SB3")),
}

#: the default baseline matrix: one AArch64 LLVM profile plus the Armv7
#: GCC -O1 profile whose deleted ctrl2 dependency the paper's §IV-D
#: positives hinge on.
DEFAULT_PROFILES = ("llvm-O2-AArch64", "gcc-O1-ARM")

#: the default source model baselines are blessed under.
DEFAULT_MODEL = "rc11"


# --------------------------------------------------------------------- #
# manifest
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SuiteSpec:
    """One versioned suite: its file, test count and content digest."""

    name: str
    file: str  # relative to the corpus root
    tests: int
    digest: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "file": self.file,
            "tests": self.tests,
            "digest": self.digest,
        }


@dataclass(frozen=True)
class BaselineSpec:
    """One blessed cell of the farm matrix: (suite, profile, model)."""

    suite: str
    profile: str
    model: str
    file: str  # relative to the corpus root

    def as_dict(self) -> Dict[str, object]:
        return {
            "suite": self.suite,
            "profile": self.profile,
            "model": self.model,
            "file": self.file,
        }


def baseline_filename(suite: str, profile: str, model: str) -> str:
    """The canonical baseline path (relative to the corpus root)."""
    return f"{BASELINE_DIR}/{suite}--{profile}--{model}.jsonl"


@dataclass
class FarmManifest:
    """The farm's root index: suites, baselines, and where they live."""

    root: str
    suites: Dict[str, SuiteSpec] = field(default_factory=dict)
    baselines: Tuple[BaselineSpec, ...] = ()

    # ------------------------------------------------------------------ #
    def path(self, relative: str) -> str:
        return os.path.join(self.root, relative)

    @property
    def manifest_path(self) -> str:
        return self.path(MANIFEST_NAME)

    def save(self) -> str:
        """Write MANIFEST.json deterministically (sorted keys, sorted
        suites and baselines) and return its path."""
        payload = {
            "schema": FARM_SCHEMA,
            "suites": [
                self.suites[name].as_dict() for name in sorted(self.suites)
            ],
            "baselines": [
                spec.as_dict()
                for spec in sorted(
                    self.baselines,
                    key=lambda s: (s.suite, s.profile, s.model),
                )
            ],
        }
        os.makedirs(self.root, exist_ok=True)
        with open(self.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return self.manifest_path

    @classmethod
    def load(cls, root: Union[str, "os.PathLike[str]"]) -> "FarmManifest":
        root = os.fspath(root)
        manifest_path = os.path.join(root, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise FarmError(
                f"no farm manifest at {manifest_path}; run "
                f"'telechat farm gen' to create a corpus"
            )
        with open(manifest_path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise FarmError(
                    f"{manifest_path}:{exc.lineno}: invalid JSON ({exc.msg})"
                ) from None
        if payload.get("schema") != FARM_SCHEMA:
            raise FarmError(
                f"{manifest_path}: schema {payload.get('schema')!r}, "
                f"expected {FARM_SCHEMA}"
            )
        suites = {
            str(entry["name"]): SuiteSpec(
                name=str(entry["name"]),
                file=str(entry["file"]),
                tests=int(entry["tests"]),
                digest=str(entry["digest"]),
            )
            for entry in payload.get("suites", ())
        }
        baselines = tuple(
            BaselineSpec(
                suite=str(entry["suite"]),
                profile=str(entry["profile"]),
                model=str(entry["model"]),
                file=str(entry["file"]),
            )
            for entry in payload.get("baselines", ())
        )
        return cls(root=root, suites=suites, baselines=baselines)

    # ------------------------------------------------------------------ #
    def verify_suite(self, name: str) -> SuiteSpec:
        """The named suite, with its on-disk digest re-checked.

        A drifted suite file is a *corpus* error, never baseline drift:
        the blessed verdicts would be compared against tests they were
        not recorded for."""
        if name not in self.suites:
            known = ", ".join(sorted(self.suites)) or "(none)"
            raise FarmError(f"unknown suite {name!r}; manifest has: {known}")
        spec = self.suites[name]
        path = self.path(spec.file)
        if not os.path.exists(path):
            raise FarmError(f"suite file missing: {path}")
        actual = file_digest(path)
        if actual != spec.digest:
            raise FarmError(
                f"suite {name!r} has drifted on disk: {path} digests "
                f"{actual}, manifest says {spec.digest} — regenerate the "
                f"corpus or restore the file"
            )
        return spec


# --------------------------------------------------------------------- #
# baselines: the blessed verdict summaries
# --------------------------------------------------------------------- #
def baseline_record(record: Dict[str, object]) -> Dict[str, object]:
    """The blessed form of one verdict record.

    Exactly the store record minus :data:`VOLATILE_FIELDS` — wall-clock
    and cache-luck fields that legitimately differ between byte-identical
    runs.  Everything else (including ``schema``) stays, so a baseline
    file loads through :class:`~repro.pipeline.store.CampaignStore`.
    """
    return baseline_view(record)


def write_baseline(
    records: Iterable[Dict[str, object]],
    path: Union[str, "os.PathLike[str]"],
) -> int:
    """Bless verdict records to a baseline file, deterministically.

    Records are normalised (:func:`baseline_record`), sorted by
    ``(digest, profile)`` and dumped with sorted keys — completion order
    and backend never leak into the bytes, which is what makes
    cross-backend byte-identical blessing testable.  Returns the record
    count.
    """
    fspath = os.fspath(path)
    parent = os.path.dirname(fspath)
    if parent:
        os.makedirs(parent, exist_ok=True)
    blessed = sorted(
        (baseline_record(record) for record in records),
        key=lambda r: (str(r.get("digest", "")), str(r.get("profile", ""))),
    )
    with open(fspath, "w", encoding="utf-8") as handle:
        for record in blessed:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(blessed)


def read_baseline(
    path: Union[str, "os.PathLike[str]"]
) -> List[Dict[str, object]]:
    """Load a blessed baseline (file+line errors via
    :func:`~repro.tools.sources.iter_jsonl`; a torn final line is
    tolerated exactly like a torn store line)."""
    return [record for _, record in iter_jsonl(path)]


# --------------------------------------------------------------------- #
# corpus generation
# --------------------------------------------------------------------- #
def generate_suite(
    manifest: FarmManifest,
    name: str,
    config: DiyConfig,
    shapes=None,
) -> SuiteSpec:
    """Generate one suite file and record it in the manifest (in
    memory — call :meth:`FarmManifest.save` once per batch)."""
    relative = f"{SUITE_DIR}/{name}.jsonl"
    path = manifest.path(relative)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    count = write_suite(DiySource(config, shapes=shapes), path)
    spec = SuiteSpec(
        name=name, file=relative, tests=count, digest=file_digest(path)
    )
    manifest.suites[name] = spec
    return spec


def generate_corpus(
    root: Union[str, "os.PathLike[str]"],
    suites: Optional[Dict[str, DiyConfig]] = None,
    profiles: Tuple[str, ...] = DEFAULT_PROFILES,
    model: str = DEFAULT_MODEL,
    shapes=None,
) -> FarmManifest:
    """Generate a full corpus: suite files plus the baseline matrix
    (suite × profile, all under ``model``) — baselines start *unblessed*
    (no files); ``telechat farm bless`` records them."""
    if suites is None:
        suites = DEFAULT_SUITES
    manifest = FarmManifest(root=os.fspath(root))
    for name in sorted(suites):
        generate_suite(manifest, name, suites[name], shapes=shapes)
    manifest.baselines = tuple(
        BaselineSpec(
            suite=suite,
            profile=profile,
            model=model,
            file=baseline_filename(suite, profile, model),
        )
        for suite in sorted(suites)
        for profile in profiles
    )
    manifest.save()
    return manifest


__all__ = [
    "BASELINE_DIR",
    "BaselineSpec",
    "DEFAULT_MODEL",
    "DEFAULT_PROFILES",
    "DEFAULT_SUITES",
    "FARM_SCHEMA",
    "FarmError",
    "FarmManifest",
    "MANIFEST_NAME",
    "SUITE_DIR",
    "SuiteSpec",
    "VOLATILE_FIELDS",
    "baseline_filename",
    "baseline_record",
    "file_digest",
    "generate_corpus",
    "generate_suite",
    "read_baseline",
    "write_baseline",
]
