"""The ``telechat`` command-line interface.

Mirrors the paper artefact's Makefile entry points:

* ``telechat examples`` — the "smoketest" (Claims 1/2/5): runs the LB
  family through test_tv for llvm-O3-AArch64 and prints the mcompare log;
* ``telechat test FILE`` — run one C litmus test under a profile;
* ``telechat campaign`` — the scaled Table IV campaign;
* ``telechat models`` / ``telechat shapes`` / ``telechat profiles`` —
  inventory listings.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..cat.registry import list_models
from ..compiler.profiles import ARCHES, make_profile
from ..herd.enumerate import Budget
from ..lang.parser import parse_c_litmus
from ..tools.diy import DiyConfig, build_test, get_shape, shape_names, small_config
from .campaign import run_campaign
from .store import CampaignStore
from .telechat import test_compilation


def _cmd_examples(args: argparse.Namespace) -> int:
    """The artefact's ``make examples`` smoketest."""
    profile = make_profile("llvm", "-O3", "aarch64")
    print(f"profile: {profile.name}\n")
    for fence in (None,):
        test = build_test(get_shape("LB"), "rlx", fence=fence, name="LB004")
        for model in ("rc11", "rc11+lb"):
            result = test_compilation(test, profile, source_model=model)
            print(f"== {test.name} under {model} ==")
            print(result.comparison.pretty())
            print(
                f"   target simulation: {result.target_seconds*1000:.1f} ms, "
                f"{result.compiled_loc} compiled instructions, "
                f"{result.s2l_stats.total_removed} removed by s2l"
            )
            print()
    return 0


def _cmd_test(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    litmus = parse_c_litmus(source, name=args.file)
    profile = make_profile(args.compiler, args.opt, args.arch)
    result = test_compilation(
        litmus,
        profile,
        source_model=args.cmem,
        budget=Budget(deadline_seconds=args.timeout),
    )
    print(result.comparison.pretty())
    return 1 if result.found_bug else 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.resume and not args.store:
        print("--resume needs --store", file=sys.stderr)
        return 2
    config = small_config() if args.small else DiyConfig()
    store = CampaignStore(args.store) if args.store else None
    report = run_campaign(
        config=config,
        arches=args.arch or [a for a in ARCHES],
        opts=args.opt or ["-O1", "-O2", "-O3"],
        source_model=args.cmem,
        workers=args.workers,
        processes=args.processes,
        store=store,
        resume=args.resume,
        shard=args.shard,
    )
    print(report.table())
    if store is not None:
        print(
            f"\nstore {store.path}: {len(store)} verdicts "
            f"({report.store_hits} replayed, {store.appended} appended)"
        )
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    for name in list_models():
        print(name)
    return 0


def _cmd_shapes(args: argparse.Namespace) -> int:
    for name in shape_names():
        print(name)
    return 0


def _shard(value: str) -> tuple:
    """Parse ``K/N`` into a (k, n) shard spec."""
    try:
        k_text, n_text = value.split("/", 1)
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard {value!r} is not of the form K/N"
        )
    if n < 1 or not 0 <= k < n:
        raise argparse.ArgumentTypeError(
            f"shard {value!r} needs 0 <= K < N"
        )
    return (k, n)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="telechat",
        description="Compiler testing with relaxed memory models "
                    "(CGO 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("examples", help="run the artefact smoketest").set_defaults(
        func=_cmd_examples
    )

    test = sub.add_parser("test", help="run test_tv on one C litmus file")
    test.add_argument("file")
    test.add_argument("--compiler", choices=("llvm", "gcc"), default="llvm")
    test.add_argument("--opt", default="-O3")
    test.add_argument("--arch", choices=ARCHES, default="aarch64")
    test.add_argument("--cmem", default="rc11", help="source model (CMEM)")
    test.add_argument("--timeout", type=float, default=120.0)
    test.set_defaults(func=_cmd_test)

    campaign = sub.add_parser("campaign", help="run the Table IV campaign")
    campaign.add_argument("--small", action="store_true")
    campaign.add_argument("--arch", action="append", choices=ARCHES)
    campaign.add_argument("--opt", action="append")
    campaign.add_argument("--cmem", default="rc11")
    campaign.add_argument("--workers", type=int, default=1,
                          help="campaign worker threads")
    campaign.add_argument("--processes", type=int, default=0,
                          help="campaign worker processes (overrides --workers)")
    campaign.add_argument("--store", metavar="PATH",
                          help="persistent verdict store (JSONL, appended)")
    campaign.add_argument("--resume", action="store_true",
                          help="replay verdicts already in --store instead "
                               "of re-simulating")
    campaign.add_argument("--shard", type=_shard, metavar="K/N",
                          help="run only the K-th of N cell shards "
                               "(0-based); merge the shard reports with "
                               "repro.pipeline.merge_reports")
    campaign.set_defaults(func=_cmd_campaign)

    sub.add_parser("models", help="list memory models").set_defaults(
        func=_cmd_models
    )
    sub.add_parser("shapes", help="list diy shapes").set_defaults(
        func=_cmd_shapes
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
