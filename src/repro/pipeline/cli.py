"""The ``telechat`` command-line interface, on the :mod:`repro.api` surface.

Mirrors the paper artefact's Makefile entry points:

* ``telechat examples`` — the "smoketest" (Claims 1/2/5): runs the LB
  family through test_tv for llvm-O3-AArch64 and prints the mcompare log;
* ``telechat test FILE`` — run one C litmus test under a profile; exits
  non-zero on a ``positive`` (bug-found) verdict so shell scripts and CI
  can gate on it;
* ``telechat campaign`` — the scaled Table IV campaign, with live
  per-cell progress on a tty (``--progress``/``--no-progress`` to force)
  and ``--json`` emitting the typed event stream as JSON lines;
  ``--differential A B`` runs the compiler-vs-compiler mode (§IV-D)
  over the given profile names instead of the tv sweep;
* ``telechat explain TEST`` — run the staged tool-chain on one test
  (a C litmus file, a paper figure name like ``fig7_lb``, or a diy
  shape name) and print every stage's artifact: the prepared source,
  the disassembly, the lifted litmus, both outcome sets (with the herd
  execution dot dump) and the mcompare verdict;
* ``telechat hunt --seeds ...`` — the mutation-guided bug hunt (§V):
  mutate the seeds round by round (positives first), minimise every
  positive, and print the minimal reproducers; exits 1 when the hunt
  found nothing;
* ``telechat reduce TEST`` — delta-debug one positive test to a
  1-minimal reproducer and print its C source;
* ``telechat lint [TARGET...]`` — static analysis
  (:mod:`repro.analysis`) over cat models and litmus tests; with no
  targets, sweeps the whole in-tree corpus (the CI gate); exits 1 on
  error-severity findings (``--strict``: on warnings too);
* ``telechat models`` / ``telechat shapes`` / ``telechat profiles`` —
  inventory listings (``--json`` for registry metadata).

Every command drives a :class:`repro.api.Session`; the CLI holds no
state of its own.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..api import (
    CampaignPlan,
    CellFinished,
    FarmFinished,
    FarmPlan,
    FarmStarted,
    HuntProgress,
    PlanError,
    Session,
    SuiteFinished,
    TestReduced,
)
from ..cat.registry import MODELS
from ..compiler.profiles import ARCHES, EPOCHS, default_profiles
from ..core.errors import LintError, ParseError
from ..lang.parser import parse_c_litmus
from ..tools.diy import SHAPES, DiyConfig, build_test, small_config
from .store import CampaignStore


def _cmd_examples(args: argparse.Namespace) -> int:
    """The artefact's ``make examples`` smoketest."""
    session = Session()
    profile = session.profile(("llvm", "-O3", "aarch64"))
    print(f"profile: {profile.name}\n")
    for fence in (None,):
        test = build_test(session.shape("LB"), "rlx", fence=fence, name="LB004")
        for model in ("rc11", "rc11+lb"):
            result = session.test(test, profile, source_model=model)
            print(f"== {test.name} under {model} ==")
            print(result.comparison.pretty())
            print(
                f"   target simulation: {result.target_seconds*1000:.1f} ms, "
                f"{result.compiled_loc} compiled instructions, "
                f"{result.s2l_stats.total_removed} removed by s2l"
            )
            print()
    return 0


def _cmd_test(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    litmus = parse_c_litmus(source, name=args.file)
    session = Session()
    from ..herd.enumerate import Budget

    result = session.test(
        litmus,
        (args.compiler, args.opt, args.arch),
        source_model=args.cmem,
        budget=Budget(deadline_seconds=args.timeout),
    )
    print(result.comparison.pretty())
    # a found bug gates shell pipelines: 1 = positive difference
    return 1 if result.found_bug else 0


def _resolve_test_arg(session: Session, spec: str):
    """A test named on the command line: a C litmus file path, a paper
    figure name (``fig7_lb``), or a diy shape name (``LB``)."""
    import os

    from .. import papertests

    if os.path.exists(spec):
        with open(spec) as handle:
            return parse_c_litmus(handle.read(), name=spec)
    factory = getattr(papertests, spec, None)
    if callable(factory):
        return factory()
    try:
        shape = session.shape(spec)
    except KeyError:
        raise SystemExit(
            f"cannot resolve test {spec!r}: not a file, not a "
            f"repro.papertests name, not a diy shape"
        )
    # a real generation failure propagates — masking it as "cannot
    # resolve" would hide the actual error from the user
    return build_test(shape, "rlx", name=spec)


def _cmd_explain(args: argparse.Namespace) -> int:
    """Print each tool-chain stage's artifact for one test."""
    session = Session()
    litmus = _resolve_test_arg(session, args.test)
    from ..herd.enumerate import Budget

    trace = session.explain(
        litmus,
        (args.compiler, args.opt, args.arch),
        differential_with=args.diff,
        source_model=args.cmem,
        optimise=not args.no_optimise,
        budget=Budget(deadline_seconds=args.timeout),
    )
    print(trace.render())
    verdict = trace.result.verdict
    print(f"verdict: {verdict}")
    return 1 if verdict == "positive" else 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.resume and not args.store:
        print("--resume needs --store", file=sys.stderr)
        return 2
    if args.differential and len(args.differential) < 2:
        print("--differential needs at least two profile names "
              "(e.g. --differential llvm-O1-AArch64 llvm-O3-AArch64)",
              file=sys.stderr)
        return 2
    if args.differential and (args.arch or args.opt):
        # the sweep axes come from the profile names in differential
        # mode; silently ignoring explicit flags would misreport what ran
        print("--differential takes its architectures and optimisation "
              "levels from the profile names; drop --arch/--opt",
              file=sys.stderr)
        return 2
    config = small_config() if args.small else DiyConfig()
    differential = bool(args.differential)
    plan = CampaignPlan(
        config=config,
        arches=tuple(args.arch) if args.arch else tuple(ARCHES),
        opts=tuple(args.opt) if args.opt else ("-O1", "-O2", "-O3"),
        source_model=args.cmem,
        workers=args.workers,
        processes=args.processes,
        shard=args.shard,
        resume=args.resume,
        mode="differential" if differential else "tv",
        profiles=tuple(args.differential) if differential else None,
    )
    store = CampaignStore(args.store) if args.store else None
    session = Session(store=store)

    if args.progress is None:
        progress = sys.stderr.isatty() and not args.json
    else:
        progress = args.progress

    stream = session.campaign(plan)
    cells_total = 0
    done = 0
    for event in stream:
        if args.json:
            print(json.dumps(event.as_dict(), sort_keys=True))
        if isinstance(event, CellFinished):
            done += 1
            if progress:
                origin = " (store)" if event.from_store else ""
                print(
                    f"[{done}/{cells_total or '?'}] {event.test} "
                    f"{event.arch} {event.opt} {event.compiler}: "
                    f"{event.verdict or event.status}{origin}",
                    file=sys.stderr,
                )
        elif progress and hasattr(event, "cells_total"):
            cells_total = event.cells_total
            print(
                f"campaign: {event.tests_input} tests, "
                f"{event.cells_total} cells ({event.pending} to run)",
                file=sys.stderr,
            )
    report = stream.report()
    if not args.json:
        print(report.table())
        if store is not None:
            print(
                f"\nstore {store.path}: {len(store)} verdicts "
                f"({report.store_hits} replayed, {store.appended} appended)"
            )
    return 0


def _cmd_farm_gen(args: argparse.Namespace) -> int:
    """Generate a farm corpus: suite files + the baseline matrix."""
    from .farm import DEFAULT_PROFILES, FarmError, generate_corpus

    try:
        manifest = generate_corpus(
            args.root,
            profiles=tuple(args.profiles) if args.profiles else DEFAULT_PROFILES,
            model=args.cmem,
        )
    except FarmError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for name in sorted(manifest.suites):
        spec = manifest.suites[name]
        print(f"suite {name}: {spec.tests} tests -> {spec.file} ({spec.digest})")
    print(
        f"{len(manifest.baselines)} baseline cell(s) declared; run "
        f"'telechat farm bless --root {args.root}' to record them"
    )
    return 0


def _run_farm(args: argparse.Namespace, bless: bool) -> int:
    """The shared engine of ``farm run`` and ``farm bless``."""
    from .farm import FarmError

    store = CampaignStore(args.store) if args.store else None
    session = Session(store=store)
    if args.progress is None:
        progress = sys.stderr.isatty() and not args.json
    else:
        progress = args.progress

    drift = 0
    reports: List[str] = []
    try:
        plan = FarmPlan(
            root=args.root,
            suites=tuple(args.suites) if args.suites else None,
            profiles=tuple(args.profiles) if args.profiles else None,
            source_model=args.cmem,
            workers=args.workers,
            processes=args.processes,
            bless=bless,
        )
        for event in session.farm(plan):
            if args.json:
                print(json.dumps(event.as_dict(), sort_keys=True))
            if isinstance(event, FarmStarted):
                if progress:
                    print(
                        f"farm {event.root}: {len(event.suites)} suite(s), "
                        f"{event.baselines} baseline cell(s), "
                        f"{event.tests_total} tests",
                        file=sys.stderr,
                    )
            elif isinstance(event, CellFinished):
                if progress:
                    origin = " (store)" if event.from_store else ""
                    print(
                        f"  {event.test} {event.arch} {event.opt} "
                        f"{event.compiler}: "
                        f"{event.verdict or event.status}{origin}",
                        file=sys.stderr,
                    )
            elif isinstance(event, SuiteFinished):
                reports.append(event.report)
                if progress:
                    state = "blessed" if event.blessed else (
                        f"{event.drift} drifting" if event.drift else "clean"
                    )
                    print(
                        f"{event.suite} @ {event.profile} [{event.model}]: "
                        f"{event.records} records, {state}",
                        file=sys.stderr,
                    )
            elif isinstance(event, FarmFinished):
                drift = event.drift
    except (FarmError, PlanError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not args.json:
        for report in reports:
            print(report)
    if bless:
        return 0
    # unblessed drift gates CI: any divergence from the baselines is a
    # regression until someone re-blesses it deliberately
    return 1 if drift else 0


def _cmd_farm_run(args: argparse.Namespace) -> int:
    return _run_farm(args, bless=False)


def _cmd_farm_bless(args: argparse.Namespace) -> int:
    return _run_farm(args, bless=True)


def _cmd_farm_diff(args: argparse.Namespace) -> int:
    """Offline drift diff between two baseline/store JSONL files."""
    from ..tools.mcompare import diff_baselines
    from ..tools.sources import SuiteFormatError
    from .farm import read_baseline

    try:
        blessed = read_baseline(args.blessed)
        current = read_baseline(args.current)
    except (OSError, SuiteFormatError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    diff = diff_baselines(
        blessed, current, label=f"{args.blessed} vs {args.current}"
    )
    print(diff.pretty())
    return 1 if diff.has_drift else 0


def _resolve_seeds(session: Session, specs: List[str]) -> list:
    """The hunt seed list: each spec is ``examples`` (the shipped
    bug-hiding seed set), ``paper`` (the figure tests), or anything
    ``telechat explain`` accepts (a file, a figure name, a shape)."""
    from ..hunt import example_seeds
    from ..tools.sources import PaperSource

    seeds = []
    for spec in specs:
        if spec == "examples":
            seeds.extend(example_seeds())
        elif spec == "paper":
            seeds.extend(PaperSource())
        else:
            seeds.append(_resolve_test_arg(session, spec))
    return seeds


def _cmd_hunt(args: argparse.Namespace) -> int:
    if args.resume and not args.store:
        print("--resume needs --store", file=sys.stderr)
        return 2
    store = CampaignStore(args.store) if args.store else None
    session = Session(store=store)
    seeds = _resolve_seeds(session, args.seeds)
    plan = CampaignPlan(
        mode="hunt",
        tests=tuple(seeds),
        arches=tuple(args.arch) if args.arch else ("aarch64",),
        opts=tuple(args.opt) if args.opt else ("-O2",),
        source_model=args.cmem,
        workers=args.workers,
        processes=args.processes,
        resume=args.resume,
        mutations=tuple(args.operators) if args.operators else None,
        mutation_rounds=args.rounds,
        mutation_limit=args.limit,
        reduce=not args.no_reduce,
    )

    if args.progress is None:
        progress = sys.stderr.isatty() and not args.json
    else:
        progress = args.progress

    positives = []  # CellFinished events, first per digest
    seen_positive = set()
    reductions = []  # TestReduced events
    for event in session.hunt(plan):
        if args.json:
            print(json.dumps(event.as_dict(), sort_keys=True))
        if isinstance(event, CellFinished):
            if event.verdict == "positive" and event.digest not in seen_positive:
                seen_positive.add(event.digest)
                positives.append(event)
            if progress:
                print(
                    f"  {event.test} {event.arch} {event.opt} "
                    f"{event.compiler}: {event.verdict or event.status}",
                    file=sys.stderr,
                )
        elif isinstance(event, HuntProgress):
            if progress:
                print(
                    f"round {event.round_index}: {event.cells} cells, "
                    f"{event.positives} positive tests so far, "
                    f"{event.scheduled} mutants scheduled",
                    file=sys.stderr,
                )
        elif isinstance(event, TestReduced):
            reductions.append(event)
            if progress:
                print(
                    f"reduced {event.test}: {event.original_statements} -> "
                    f"{event.reduced_statements} statements "
                    f"({event.steps} steps, {event.checks} checks)",
                    file=sys.stderr,
                )

    if not args.json:
        if not positives:
            print("hunt found no positives")
        for event in positives:
            record = event.record
            lineage = ""
            if record.get("operator"):
                lineage = (
                    f"  [{record['operator']} @ {record.get('site', '?')}, "
                    f"depth {record.get('depth', '?')}]"
                )
            print(
                f"positive: {event.test} ({event.arch} {event.opt} "
                f"{event.compiler}){lineage}"
            )
        for event in reductions:
            print(
                f"\nminimal reproducer for {event.test} "
                f"({event.original_statements} -> "
                f"{event.reduced_statements} statements):"
            )
            source = event.record.get("source")
            if source:
                print("  " + str(source).rstrip().replace("\n", "\n  "))
        if store is not None:
            print(
                f"\nstore {store.path}: {len(store)} verdicts "
                f"({store.appended} appended)"
            )
    # exit 0 when the hunt found something — the scripted analogue of
    # `telechat test`'s exit-1-on-positive, inverted: a hunt that comes
    # back empty-handed is the failure case
    return 0 if positives else 1


def _cmd_reduce(args: argparse.Namespace) -> int:
    from ..herd.enumerate import Budget
    from ..lang.printer import print_c_litmus

    session = Session()
    litmus = _resolve_test_arg(session, args.test)
    profile = (args.compiler, args.opt, args.arch)
    result = session.test(litmus, profile, source_model=args.cmem)
    if result.verdict != "positive":
        print(
            f"{litmus.name}: verdict {result.verdict} under "
            f"{session.profile(profile).name} — nothing to reduce "
            f"(the reducer keeps a positive verdict positive)",
            file=sys.stderr,
        )
        return 2
    reduction = session.reduce(
        litmus,
        profile,
        source_model=args.cmem,
        # one deadline for the whole reduction (measured from first use)
        budget=Budget(deadline_seconds=args.timeout),
    )
    print(
        f"{litmus.name}: {reduction.original_statements} -> "
        f"{reduction.reduced_statements} statements in "
        f"{len(reduction.steps)} steps ({reduction.checks} checks)"
    )
    for step in reduction.steps:
        print(f"  {step.action}: {step.detail}")
    print()
    print(print_c_litmus(reduction.reduced))
    return 0


def _lint_target(session: Session, spec: str):
    """One ``telechat lint`` target: a ``.cat`` or litmus file path, a
    model name, a paper-test name, or a diy shape name."""
    import os

    from .. import papertests
    from ..analysis import lint_c_source, lint_cat_source, lint_litmus_report

    if os.path.exists(spec):
        with open(spec) as handle:
            source = handle.read()
        if spec.endswith(".cat"):
            return lint_cat_source(source, spec)
        return lint_c_source(source, spec)
    try:
        key = session.models.resolve(spec)
    except Exception:
        key = None
    if key is not None:
        return lint_cat_source(session.models.get(key), key)
    factory = getattr(papertests, spec, None)
    if callable(factory):
        return lint_litmus_report(factory())
    try:
        shape = session.shape(spec)
    except KeyError:
        raise SystemExit(
            f"cannot resolve lint target {spec!r}: not a file, not a "
            f"model, not a repro.papertests name, not a diy shape"
        )
    return lint_litmus_report(build_test(shape, "rlx", name=spec))


def _lint_corpus(session: Session) -> list:
    """The default ``telechat lint`` sweep: every in-tree model, paper
    test and hunt seed (what the CI lint job gates on)."""
    from .. import papertests
    from ..analysis import lint_cat_source, lint_litmus_report
    from ..hunt.seeds import example_seeds

    reports = []
    for name in session.models.names():
        reports.append(lint_cat_source(session.models.get(name), name))
    for test in papertests.all_tests():
        reports.append(lint_litmus_report(test))
    for seed in example_seeds():
        reports.append(lint_litmus_report(seed))
    return reports


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis over models and tests (exit 1 on errors)."""
    session = Session()
    if args.targets:
        reports = [_lint_target(session, spec) for spec in args.targets]
    else:
        reports = _lint_corpus(session)
    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    if args.json:
        print(json.dumps([r.as_dict() for r in reports], indent=2))
    else:
        for report in reports:
            for d in report.diagnostics:
                print(d.render(report.target))
        print(
            f"{len(reports)} target(s) linted: {errors} error(s), "
            f"{warnings} warning(s)"
        )
    if errors or (args.strict and warnings):
        return 1
    return 0


def _print_inventory(args: argparse.Namespace, registry) -> int:
    if getattr(args, "json", False):
        print(json.dumps(registry.metadata(), indent=2, sort_keys=True))
    else:
        for name in registry.names():
            print(name)
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    return _print_inventory(args, MODELS)


def _cmd_shapes(args: argparse.Namespace) -> int:
    if args.json:
        return _print_inventory(args, SHAPES)
    for name in SHAPES.names():
        print(SHAPES.get(name).name)  # display names ("LB", "2+2W")
    return 0


def _cmd_profiles(args: argparse.Namespace) -> int:
    if args.json:
        payload = {
            "epochs": EPOCHS.metadata(),
            "profiles": [
                profile.name
                for arch in ARCHES
                for profile in default_profiles(arch)
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for arch in ARCHES:
            for profile in default_profiles(arch):
                print(profile.name)
    return 0


def _shard(value: str) -> tuple:
    """Parse ``K/N`` into a (k, n) shard spec."""
    try:
        k_text, n_text = value.split("/", 1)
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard {value!r} is not of the form K/N"
        )
    if n < 1 or not 0 <= k < n:
        raise argparse.ArgumentTypeError(
            f"shard {value!r} needs 0 <= K < N"
        )
    return (k, n)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="telechat",
        description="Compiler testing with relaxed memory models "
                    "(CGO 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("examples", help="run the artefact smoketest").set_defaults(
        func=_cmd_examples
    )

    test = sub.add_parser(
        "test",
        help="run test_tv on one C litmus file (exit 1 on a positive "
             "difference)",
    )
    test.add_argument("file")
    test.add_argument("--compiler", choices=("llvm", "gcc"), default="llvm")
    test.add_argument("--opt", default="-O3")
    test.add_argument("--arch", choices=ARCHES, default="aarch64")
    test.add_argument("--cmem", default="rc11", help="source model (CMEM)")
    test.add_argument("--timeout", type=float, default=120.0)
    test.set_defaults(func=_cmd_test)

    explain = sub.add_parser(
        "explain",
        help="run the staged tool-chain on one test and print every "
             "stage's artifact (prepared source, disassembly, lifted "
             "litmus, outcome sets with dot dumps, verdict)",
    )
    explain.add_argument(
        "test",
        help="a C litmus file, a paper figure name (fig7_lb), or a diy "
             "shape name (LB)",
    )
    explain.add_argument("--compiler", choices=("llvm", "gcc"),
                         default="llvm")
    explain.add_argument("--opt", default="-O3")
    explain.add_argument("--arch", choices=ARCHES, default="aarch64")
    explain.add_argument("--cmem", default="rc11", help="source model (CMEM)")
    explain.add_argument("--diff", metavar="PROFILE",
                         help="differential mode: compare against this "
                              "profile name (e.g. gcc-O2-AArch64) instead "
                              "of the source model")
    explain.add_argument("--no-optimise", action="store_true",
                         help="skip the s2l optimiser (paper Fig. 11 "
                              "configuration — slow)")
    explain.add_argument("--timeout", type=float, default=120.0)
    explain.set_defaults(func=_cmd_explain)

    hunt = sub.add_parser(
        "hunt",
        help="mutation-guided bug hunt: mutate seed tests round by round "
             "(positives first), minimise every positive to a 1-minimal "
             "reproducer (exit 1 when nothing was found)",
    )
    hunt.add_argument(
        "--seeds", nargs="+", required=True, metavar="SEED",
        help="seed tests: 'examples' (shipped bug-hiding seeds), 'paper' "
             "(the figure tests), or any C litmus file / figure name / "
             "diy shape",
    )
    hunt.add_argument("--arch", action="append", choices=ARCHES,
                      help="sweep architectures (default: aarch64)")
    hunt.add_argument("--opt", action="append",
                      help="sweep optimisation levels (default: -O2)")
    hunt.add_argument("--cmem", default="rc11", help="source model (CMEM)")
    hunt.add_argument("--operators", nargs="+", metavar="OP",
                      help="mutation operators to hunt with (default: the "
                           "order-weakening set; see repro.tools.mutate)")
    hunt.add_argument("--rounds", type=int, default=2,
                      help="mutation rounds beyond the seeds (default 2)")
    hunt.add_argument("--limit", type=int, default=64,
                      help="max new mutants per round (default 64)")
    hunt.add_argument("--no-reduce", action="store_true",
                      help="keep raw positives instead of minimising them")
    hunt.add_argument("--workers", type=int, default=1,
                      help="worker threads")
    hunt.add_argument("--processes", type=int, default=0,
                      help="worker processes (overrides --workers)")
    hunt.add_argument("--store", metavar="PATH",
                      help="persistent verdict store (reproducers are "
                           "stored with mode=hunt + lineage + C source)")
    hunt.add_argument("--resume", action="store_true",
                      help="replay verdicts already in --store")
    hunt.add_argument("--json", action="store_true",
                      help="emit the typed event stream as JSON lines")
    hunt.add_argument("--progress", dest="progress", action="store_true",
                      default=None,
                      help="per-cell/round progress on stderr (default: on "
                           "when stderr is a tty)")
    hunt.add_argument("--no-progress", dest="progress", action="store_false")
    hunt.set_defaults(func=_cmd_hunt)

    reduce_cmd = sub.add_parser(
        "reduce",
        help="delta-debug one positive test to a 1-minimal reproducer "
             "and print it",
    )
    reduce_cmd.add_argument(
        "test",
        help="a C litmus file, a paper figure name (fig1_exchange), or a "
             "diy shape name",
    )
    reduce_cmd.add_argument("--compiler", choices=("llvm", "gcc"),
                            default="llvm")
    reduce_cmd.add_argument("--opt", default="-O2")
    reduce_cmd.add_argument("--arch", choices=ARCHES, default="aarch64")
    reduce_cmd.add_argument("--cmem", default="rc11",
                            help="source model (CMEM)")
    reduce_cmd.add_argument("--timeout", type=float, default=120.0,
                            help="deadline for the whole reduction (s)")
    reduce_cmd.set_defaults(func=_cmd_reduce)

    campaign = sub.add_parser("campaign", help="run the Table IV campaign")
    campaign.add_argument("--small", action="store_true")
    campaign.add_argument("--arch", action="append", choices=ARCHES)
    campaign.add_argument("--opt", action="append")
    campaign.add_argument("--cmem", default="rc11")
    campaign.add_argument("--workers", type=int, default=1,
                          help="campaign worker threads")
    campaign.add_argument("--processes", type=int, default=0,
                          help="campaign worker processes (overrides --workers)")
    campaign.add_argument("--store", metavar="PATH",
                          help="persistent verdict store (JSONL, appended)")
    campaign.add_argument("--resume", action="store_true",
                          help="replay verdicts already in --store instead "
                               "of re-simulating")
    campaign.add_argument("--shard", type=_shard, metavar="K/N",
                          help="run only the K-th of N cell shards "
                               "(0-based); merge the shard reports with "
                               "repro.pipeline.merge_reports")
    campaign.add_argument("--differential", nargs="+", metavar="PROFILE",
                          help="differential mode (§IV-D): compare these "
                               "profile names (e.g. llvm-O1-AArch64 "
                               "llvm-O3-AArch64) pairwise instead of the "
                               "tv sweep; --cmem is the UB oracle")
    campaign.add_argument("--json", action="store_true",
                          help="emit the typed event stream as JSON lines "
                               "instead of the Table IV report")
    campaign.add_argument("--progress", dest="progress", action="store_true",
                          default=None,
                          help="per-cell progress on stderr (default: on "
                               "when stderr is a tty)")
    campaign.add_argument("--no-progress", dest="progress",
                          action="store_false")
    campaign.set_defaults(func=_cmd_campaign)

    farm = sub.add_parser(
        "farm",
        help="corpus-scale golden regression farm (gen/run/bless/diff)",
        description="Stream a checked-in litmus corpus through the "
        "toolchain and diff every verdict against blessed baselines. "
        "'gen' writes the suites and manifest, 'bless' records the "
        "baselines, 'run' fails (exit 1) on any unblessed drift, and "
        "'diff' compares two baseline files offline.",
    )
    farm_sub = farm.add_subparsers(dest="farm_command", required=True)

    farm_gen = farm_sub.add_parser(
        "gen", help="generate suite files + MANIFEST.json under --root"
    )
    farm_gen.add_argument("--root", required=True,
                          help="corpus root directory")
    farm_gen.add_argument("--profiles", nargs="+", metavar="PROFILE",
                          help="baseline profiles (default: "
                               "llvm-O2-AArch64 gcc-O1-ARM)")
    farm_gen.add_argument("--cmem", default="rc11",
                          help="source model baselines are blessed under")
    farm_gen.set_defaults(func=_cmd_farm_gen)

    for name, func, blurb in (
        ("run", _cmd_farm_run,
         "run the corpus and fail on drift vs the blessed baselines"),
        ("bless", _cmd_farm_bless,
         "run the corpus and record the results as the new baselines"),
    ):
        farm_cmd = farm_sub.add_parser(name, help=blurb)
        farm_cmd.add_argument("--root", required=True,
                              help="corpus root directory (with MANIFEST.json)")
        farm_cmd.add_argument("--suites", nargs="+", metavar="SUITE",
                              help="restrict to these suites")
        farm_cmd.add_argument("--profiles", nargs="+", metavar="PROFILE",
                              help="restrict to these profiles")
        if name == "run":
            farm_cmd.add_argument(
                "--cmem", default=None,
                help="override the blessed source model (a deliberate "
                     "perturbation — expect drift)")
        else:
            # blessing under an override would mislabel the baselines
            farm_cmd.set_defaults(cmem=None)
        farm_cmd.add_argument("--workers", type=int, default=1,
                              help="worker threads")
        farm_cmd.add_argument("--processes", type=int, default=0,
                              help="worker processes (overrides --workers)")
        farm_cmd.add_argument("--store", metavar="PATH",
                              help="persistent verdict store (JSONL, appended)")
        farm_cmd.add_argument("--json", action="store_true",
                              help="emit the typed event stream as JSON lines")
        farm_cmd.add_argument("--progress", dest="progress",
                              action="store_true", default=None,
                              help="per-cell progress on stderr (default: "
                                   "on when stderr is a tty)")
        farm_cmd.add_argument("--no-progress", dest="progress",
                              action="store_false")
        farm_cmd.set_defaults(func=func)

    farm_diff = farm_sub.add_parser(
        "diff", help="diff two baseline files offline (exit 1 on drift)"
    )
    farm_diff.add_argument("blessed", help="the blessed baseline JSONL")
    farm_diff.add_argument("current", help="the baseline/store JSONL to check")
    farm_diff.set_defaults(func=_cmd_farm_diff)

    lint = sub.add_parser(
        "lint",
        help="static analysis over cat models and litmus tests",
        description="Run catlint/litmuslint over the named targets "
        "(model names, .cat or litmus files, paper tests, diy shapes); "
        "with no targets, sweep every in-tree model, paper test and "
        "hunt seed. Exits 1 on error-severity findings.",
    )
    lint.add_argument("targets", nargs="*",
                      help="models, files, paper tests or shapes "
                      "(default: the whole in-tree corpus)")
    lint.add_argument("--json", action="store_true",
                      help="emit reports as JSON")
    lint.add_argument("--strict", action="store_true",
                      help="exit 1 on warnings too")
    lint.set_defaults(func=_cmd_lint)

    models = sub.add_parser("models", help="list memory models")
    models.add_argument("--json", action="store_true",
                        help="registry metadata (names, aliases, docs)")
    models.set_defaults(func=_cmd_models)

    shapes = sub.add_parser("shapes", help="list diy shapes")
    shapes.add_argument("--json", action="store_true",
                        help="registry metadata (names, aliases, docs)")
    shapes.set_defaults(func=_cmd_shapes)

    profiles = sub.add_parser("profiles",
                              help="list campaign compiler profiles")
    profiles.add_argument("--json", action="store_true",
                          help="epoch registry metadata + profile names")
    profiles.set_defaults(func=_cmd_profiles)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ParseError as exc:
        # uniform file:line:col rendering for bad input files
        print(exc.render(), file=sys.stderr)
        return 2
    except LintError as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
