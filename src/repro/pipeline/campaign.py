"""The large-scale differential-testing campaign (paper §IV-D, Table IV).

Runs a diy-generated test suite through every (compiler × flag × arch)
profile and tabulates positive/negative differences per cell, exactly in
the shape of the paper's Table IV.  The absolute counts scale with the
configured suite; the *shape* is the reproduction target:

* positive differences appear only on Armv8, Armv7, RISC-V and PowerPC
  (the load-buffering family of Fig. 7);
* Intel x86-64 (TSO) and MIPS (conservatively SYNC-bracketed atomics)
  show none;
* GCC at ``-O1`` on Armv7 shows *extra* positives (the deleted control
  dependency), masked at ``-O2+`` by if-conversion's data dependency;
* re-running with ``source_model="rc11+lb"`` makes every positive
  difference disappear (Claim 4).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..compiler.profiles import (
    ARCHES,
    GCC_OPT_LEVELS,
    LLVM_OPT_LEVELS,
    CompilerProfile,
    make_profile,
)
from ..core.errors import ReproError, SimulationTimeout
from ..herd.enumerate import Budget
from ..herd.simulator import SimulationResult, simulate_c
from ..lang.ast import CLitmus
from ..tools.diy import DiyConfig, generate
from ..tools.l2c import prepare
from .telechat import TelechatResult, test_compilation

#: Table IV's column order.
CAMPAIGN_OPTS = ("-O1", "-O2", "-O3", "-Ofast", "-Og")

#: Table IV's row order with display names.
ARCH_DISPLAY = (
    ("aarch64", "Armv8 AArch64 (64-bit)"),
    ("armv7", "Armv7-a (32-bit)"),
    ("riscv64", "RISC-V (64-bit)"),
    ("ppc64", "IBM PowerPC (64-bit)"),
    ("x86_64", "Intel x86-64 (64-bit)"),
    ("mips64", "MIPS (64-bit)"),
)


@dataclass
class CampaignCell:
    """One (arch, opt, compiler) cell of Table IV."""

    positive: int = 0
    negative: int = 0
    equal: int = 0
    ub_masked: int = 0
    timeouts: int = 0
    errors: int = 0

    @property
    def total(self) -> int:
        return (self.positive + self.negative + self.equal + self.ub_masked
                + self.timeouts + self.errors)

    def record(self, verdict: str) -> None:
        if verdict == "positive":
            self.positive += 1
        elif verdict == "negative":
            self.negative += 1
        elif verdict == "ub-masked":
            self.ub_masked += 1
        else:
            self.equal += 1


class _KeyedCache:
    """A thread-safe exactly-once cache with hit/miss counters.

    ``get(key, producer)`` runs ``producer`` at most once per key — even
    under the campaign worker pool — and replays its result (or the
    :class:`SimulationTimeout` / :class:`ReproError` it raised) to every
    later caller.  Exceptions are cached too so a timing-out source test
    is not re-simulated once per campaign cell.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._store: Dict = {}
        self._inflight: set = set()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key, producer: Callable):
        with self._cond:
            while True:
                if key in self._store:
                    self.hits += 1
                    kind, payload = self._store[key]
                    if kind == "error":
                        raise payload
                    return payload
                if key not in self._inflight:
                    # we claim this key; the producer runs outside the
                    # lock so distinct keys simulate concurrently
                    self._inflight.add(key)
                    self.misses += 1
                    break
                self._cond.wait()
        try:
            entry = ("value", producer())
        except (SimulationTimeout, ReproError) as exc:
            entry = ("error", exc)
        except BaseException:
            # unexpected failure: don't cache, don't strand the waiters
            with self._cond:
                self._inflight.discard(key)
                self._cond.notify_all()
            raise
        with self._cond:
            self._store[key] = entry
            self._inflight.discard(key)
            self._cond.notify_all()
        if entry[0] == "error":
            raise entry[1]
        return entry[1]


class SourceSimCache(_KeyedCache):
    """Source-side simulations keyed by
    ``(test, source_model, augment, budget_candidates)``.

    ``misses`` counts actual source simulations: a campaign simulates
    each test's source side exactly once per source model, no matter how
    many (arch × opt × compiler) cells consume it.
    """

    @property
    def simulations(self) -> int:
        return self.misses


class ResultCache(_KeyedCache):
    """Full test_tv results keyed by
    ``(test, profile, source_model, augment, budget_candidates)``.

    Within one campaign every key is unique; share one instance across
    ``run_campaign`` calls (re-runs, Claim-4 style model sweeps over the
    same suite) to skip already-tested cells entirely.  The campaign
    parameters that change a cell's result are part of the key, so a
    re-run with a different budget or augmentation re-simulates instead
    of replaying stale verdicts (or stale timeouts).
    """


@dataclass
class CampaignReport:
    """The full campaign result: cells plus run metadata."""

    source_model: str
    cells: Dict[Tuple[str, str, str], CampaignCell] = field(default_factory=dict)
    tests_input: int = 0
    compiled_tests: int = 0
    elapsed_seconds: float = 0.0
    #: per-test positive records for drill-down: (test, arch, opt, compiler)
    positives: List[Tuple[str, str, str, str]] = field(default_factory=list)
    #: source-side simulations actually run (== distinct tests when the
    #: cache starts cold; the per-cell loop never re-simulates a source)
    source_simulations: int = 0
    #: cells answered from a shared ResultCache without re-running
    cached_cells: int = 0
    #: worker threads used
    workers: int = 1

    def cell(self, arch: str, opt: str, compiler: str) -> CampaignCell:
        key = (arch, opt, compiler)
        if key not in self.cells:
            self.cells[key] = CampaignCell()
        return self.cells[key]

    def total_positive(self, arch: Optional[str] = None) -> int:
        return sum(
            c.positive for (a, _, _), c in self.cells.items()
            if arch is None or a == arch
        )

    def total_negative(self, arch: Optional[str] = None) -> int:
        return sum(
            c.negative for (a, _, _), c in self.cells.items()
            if arch is None or a == arch
        )

    # ------------------------------------------------------------------ #
    def table(self) -> str:
        """Render in the paper's Table IV layout (clang/gcc per cell)."""
        lines = [
            f"Campaign under source model {self.source_model!r}: "
            f"{self.tests_input} C tests input, {self.compiled_tests} "
            f"compiled tests output ({self.elapsed_seconds:.1f}s, "
            f"{self.source_simulations} source simulations, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''})",
            "",
        ]
        header = f"{'':28s}" + "".join(f"{opt:>14s}" for opt in CAMPAIGN_OPTS)
        lines.append(header)
        for arch, display in ARCH_DISPLAY:
            if not any(a == arch for (a, _, _) in self.cells):
                continue
            lines.append(f"{display} clang/gcc")
            for sign, attr in (("+ve", "positive"), ("-ve", "negative")):
                row = f"  {sign:26s}"
                for opt in CAMPAIGN_OPTS:
                    clang = self.cells.get((arch, opt, "llvm"))
                    gcc = self.cells.get((arch, opt, "gcc"))
                    cv = getattr(clang, attr) if clang else "-"
                    gv = getattr(gcc, attr) if gcc else "-"
                    row += f"{str(cv)+'/'+str(gv):>14s}"
                lines.append(row)
        return "\n".join(lines)


def _campaign_cells(
    tests: Sequence[CLitmus],
    arches: Sequence[str],
    opts: Sequence[str],
    compilers: Sequence[str],
) -> List[Tuple[CLitmus, str, str, str]]:
    """The (test, arch, opt, compiler) work list, in Table IV order."""
    cells: List[Tuple[CLitmus, str, str, str]] = []
    for litmus in tests:
        for arch in arches:
            for compiler in compilers:
                levels = LLVM_OPT_LEVELS if compiler == "llvm" else GCC_OPT_LEVELS
                for opt in opts:
                    if opt not in levels:
                        continue  # clang has no -Og (Table IV dashes)
                    cells.append((litmus, arch, opt, compiler))
    return cells


def run_campaign(
    tests: Optional[Sequence[CLitmus]] = None,
    config: Optional[DiyConfig] = None,
    arches: Sequence[str] = tuple(a for a, _ in ARCH_DISPLAY),
    opts: Sequence[str] = ("-O1", "-O2", "-O3"),
    compilers: Sequence[str] = ("llvm", "gcc"),
    source_model: str = "rc11",
    budget_candidates: int = 400_000,
    augment: bool = True,
    workers: int = 1,
    source_cache: Optional[SourceSimCache] = None,
    result_cache: Optional[ResultCache] = None,
) -> CampaignReport:
    """Run the Table IV campaign.

    Either pass pre-generated ``tests`` or a diy ``config`` to generate
    them.  Timeouts are recorded, not raised — large ring shapes can
    exceed the budget, as in the paper's 5+-thread caveat.

    The source side of each test is simulated once per source model (in
    the shared ``source_cache``) and reused by every (arch × opt ×
    compiler) cell.  ``workers`` > 1 runs cells through a
    ``concurrent.futures`` thread pool; tallying stays in the caller's
    thread, so reports are deterministic regardless of worker count.
    Pass a shared ``result_cache`` to skip identical cells across
    repeated campaigns.
    """
    if tests is None:
        tests = generate(config or DiyConfig())
    source_cache = source_cache if source_cache is not None else SourceSimCache()
    result_cache = result_cache if result_cache is not None else ResultCache()
    workers = max(1, workers)
    report = CampaignReport(source_model=source_model, workers=workers)
    report.tests_input = len(tests)
    start = time.perf_counter()
    source_misses_before = source_cache.misses
    result_hits_before = result_cache.hits

    def simulate_source(litmus: CLitmus) -> SimulationResult:
        key = (litmus.name, source_model, augment, budget_candidates)
        return source_cache.get(
            key,
            lambda: simulate_c(
                prepare(litmus, augment=augment),
                source_model,
                budget=Budget(max_candidates=budget_candidates),
            ),
        )

    def run_cell(
        litmus: CLitmus, arch: str, opt: str, compiler: str
    ) -> TelechatResult:
        profile = make_profile(compiler, opt, arch)
        return result_cache.get(
            (litmus.name, profile.name, source_model, augment, budget_candidates),
            lambda: test_compilation(
                litmus,
                profile,
                source_model=source_model,
                augment=augment,
                budget=Budget(max_candidates=budget_candidates),
                source_result=simulate_source(litmus),
            ),
        )

    work = _campaign_cells(tests, arches, opts, compilers)
    if workers > 1:
        pool = ThreadPoolExecutor(max_workers=workers)
        futures = [pool.submit(run_cell, *item) for item in work]
        outcomes = []
        for future in futures:
            try:
                outcomes.append(("ok", future.result()))
            except SimulationTimeout:
                outcomes.append(("timeout", None))
            except ReproError:
                outcomes.append(("error", None))
        pool.shutdown()
    else:
        outcomes = []
        for item in work:
            try:
                outcomes.append(("ok", run_cell(*item)))
            except SimulationTimeout:
                outcomes.append(("timeout", None))
            except ReproError:
                outcomes.append(("error", None))

    for (litmus, arch, opt, compiler), (status, result) in zip(work, outcomes):
        cell = report.cell(arch, opt, compiler)
        if status == "timeout":
            cell.timeouts += 1
            continue
        if status == "error":
            cell.errors += 1
            continue
        report.compiled_tests += 1
        verdict = result.verdict
        cell.record(verdict)
        if verdict == "positive":
            report.positives.append((litmus.name, arch, opt, compiler))

    report.source_simulations = source_cache.misses - source_misses_before
    report.cached_cells = result_cache.hits - result_hits_before
    report.elapsed_seconds = time.perf_counter() - start
    return report
