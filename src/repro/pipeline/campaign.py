"""The large-scale differential-testing campaign (paper §IV-D, Table IV).

Runs a diy-generated test suite through every (compiler × flag × arch)
profile and tabulates positive/negative differences per cell, exactly in
the shape of the paper's Table IV.  The absolute counts scale with the
configured suite; the *shape* is the reproduction target:

* positive differences appear only on Armv8, Armv7, RISC-V and PowerPC
  (the load-buffering family of Fig. 7);
* Intel x86-64 (TSO) and MIPS (conservatively SYNC-bracketed atomics)
  show none;
* GCC at ``-O1`` on Armv7 shows *extra* positives (the deleted control
  dependency), masked at ``-O2+`` by if-conversion's data dependency;
* re-running with ``source_model="rc11+lb"`` makes every positive
  difference disappear (Claim 4).

Campaigns scale past one process and one session:

* ``workers=N`` runs cells through a thread pool (in-process caches
  shared), ``processes=N`` through a ``ProcessPoolExecutor`` (one source
  cache per worker process, verdicts returned as records);
* ``store=`` appends every verdict to a persistent
  :class:`~repro.pipeline.store.CampaignStore`; ``resume=True`` replays
  stored verdicts so a warm re-run simulates nothing;
* ``shard=(k, n)`` runs the k-th of n deterministic cell partitions, and
  :func:`merge_reports` folds the shard reports back into the single-run
  Table IV.

All caches and store keys use :meth:`CLitmus.digest` — content identity,
never test names, so verdicts shared across campaigns can't be poisoned
by two different tests named ``LB001``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..compiler.profiles import (
    ARCHES,
    GCC_OPT_LEVELS,
    LLVM_OPT_LEVELS,
    CompilerProfile,
    make_profile,
)
from ..core.errors import ReproError, SimulationTimeout
from ..herd.enumerate import Budget
from ..herd.simulator import SimulationResult, simulate_c
from ..lang.ast import CLitmus
from ..tools.diy import DiyConfig, generate
from ..tools.l2c import prepare
from .store import STORE_SCHEMA, CampaignStore, cell_key
from .telechat import TelechatResult, test_compilation

#: Table IV's column order.
CAMPAIGN_OPTS = ("-O1", "-O2", "-O3", "-Ofast", "-Og")

#: Table IV's row order with display names.
ARCH_DISPLAY = (
    ("aarch64", "Armv8 AArch64 (64-bit)"),
    ("armv7", "Armv7-a (32-bit)"),
    ("riscv64", "RISC-V (64-bit)"),
    ("ppc64", "IBM PowerPC (64-bit)"),
    ("x86_64", "Intel x86-64 (64-bit)"),
    ("mips64", "MIPS (64-bit)"),
)

#: the verdict strings :meth:`CampaignCell.record` tallies.
KNOWN_VERDICTS = ("positive", "negative", "equal", "ub-masked")


@dataclass
class CampaignCell:
    """One (arch, opt, compiler) cell of Table IV."""

    positive: int = 0
    negative: int = 0
    equal: int = 0
    ub_masked: int = 0
    timeouts: int = 0
    errors: int = 0

    @property
    def total(self) -> int:
        return (self.positive + self.negative + self.equal + self.ub_masked
                + self.timeouts + self.errors)

    def record(self, verdict: str) -> None:
        if verdict == "positive":
            self.positive += 1
        elif verdict == "negative":
            self.negative += 1
        elif verdict == "equal":
            self.equal += 1
        elif verdict == "ub-masked":
            self.ub_masked += 1
        else:
            # an unknown verdict must never silently land in a Table IV
            # tally — a future verdict type has to be classified here
            raise ValueError(
                f"unknown verdict {verdict!r}; expected one of {KNOWN_VERDICTS}"
            )

    def add(self, other: "CampaignCell") -> None:
        self.positive += other.positive
        self.negative += other.negative
        self.equal += other.equal
        self.ub_masked += other.ub_masked
        self.timeouts += other.timeouts
        self.errors += other.errors


class _KeyedCache:
    """A thread-safe exactly-once cache with hit/miss counters.

    ``get(key, producer)`` runs ``producer`` at most once per key — even
    under the campaign worker pool — and replays its result (or the
    :class:`SimulationTimeout` / :class:`ReproError` it raised) to every
    later caller.  Exceptions are cached too so a timing-out source test
    is not re-simulated once per campaign cell.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._store: Dict = {}
        self._inflight: set = set()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key, producer: Callable):
        with self._cond:
            while True:
                if key in self._store:
                    self.hits += 1
                    kind, payload = self._store[key]
                    if kind == "error":
                        raise payload
                    return payload
                if key not in self._inflight:
                    # we claim this key; the producer runs outside the
                    # lock so distinct keys simulate concurrently
                    self._inflight.add(key)
                    self.misses += 1
                    break
                self._cond.wait()
        try:
            entry = ("value", producer())
        except (SimulationTimeout, ReproError) as exc:
            entry = ("error", exc)
        except BaseException:
            # unexpected failure: don't cache, don't strand the waiters
            with self._cond:
                self._inflight.discard(key)
                self._cond.notify_all()
            raise
        with self._cond:
            self._store[key] = entry
            self._inflight.discard(key)
            self._cond.notify_all()
        if entry[0] == "error":
            raise entry[1]
        return entry[1]


class SourceSimCache(_KeyedCache):
    """Source-side simulations keyed by
    ``(test digest, source_model, augment, budget_candidates)``.

    ``misses`` counts actual source simulations: a campaign simulates
    each test's source side exactly once per source model, no matter how
    many (arch × opt × compiler) cells consume it.
    """

    @property
    def simulations(self) -> int:
        return self.misses


class ResultCache(_KeyedCache):
    """Full test_tv results keyed by
    ``(test digest, profile, source_model, augment, budget_candidates)``.

    Within one campaign every key is unique; share one instance across
    ``run_campaign`` calls (re-runs, Claim-4 style model sweeps over the
    same suite) to skip already-tested cells entirely.  The campaign
    parameters that change a cell's result are part of the key, so a
    re-run with a different budget or augmentation re-simulates instead
    of replaying stale verdicts (or stale timeouts) — and the *content*
    digest means two different tests that share a name can never collide.
    """


@dataclass
class CampaignReport:
    """The full campaign result: cells plus run metadata."""

    source_model: str
    cells: Dict[Tuple[str, str, str], CampaignCell] = field(default_factory=dict)
    tests_input: int = 0
    compiled_tests: int = 0
    elapsed_seconds: float = 0.0
    #: per-test positive records for drill-down: (test, arch, opt, compiler)
    positives: List[Tuple[str, str, str, str]] = field(default_factory=list)
    #: distinct source-side simulations actually run (== distinct tests
    #: when the caches start cold; never double-counts a test shared by
    #: several worker processes or shards)
    source_simulations: int = 0
    #: the source-simulation cache keys behind ``source_simulations`` —
    #: kept so merging shard reports can de-duplicate across shards
    source_sim_keys: FrozenSet[Tuple] = frozenset()
    #: cells answered from a shared in-memory ResultCache without re-running
    cached_cells: int = 0
    #: cells replayed from the persistent store without re-running
    store_hits: int = 0
    #: worker threads used
    workers: int = 1
    #: worker processes used (0 = in-process execution)
    processes: int = 0
    #: the (k, n) cell shard this report covers (None = the whole campaign)
    shard: Optional[Tuple[int, int]] = None

    def cell(self, arch: str, opt: str, compiler: str) -> CampaignCell:
        key = (arch, opt, compiler)
        if key not in self.cells:
            self.cells[key] = CampaignCell()
        return self.cells[key]

    def total_positive(self, arch: Optional[str] = None) -> int:
        return sum(
            c.positive for (a, _, _), c in self.cells.items()
            if arch is None or a == arch
        )

    def total_negative(self, arch: Optional[str] = None) -> int:
        return sum(
            c.negative for (a, _, _), c in self.cells.items()
            if arch is None or a == arch
        )

    # ------------------------------------------------------------------ #
    def table(self) -> str:
        """Render in the paper's Table IV layout (clang/gcc per cell)."""
        if self.processes:
            parallelism = (
                f"{self.processes} process{'es' if self.processes != 1 else ''}"
            )
        else:
            parallelism = f"{self.workers} worker{'s' if self.workers != 1 else ''}"
        lines = [
            f"Campaign under source model {self.source_model!r}: "
            f"{self.tests_input} C tests input, {self.compiled_tests} "
            f"compiled tests output ({self.elapsed_seconds:.1f}s, "
            f"{self.source_simulations} source simulations, "
            f"{parallelism})",
            "",
        ]
        header = f"{'':28s}" + "".join(f"{opt:>14s}" for opt in CAMPAIGN_OPTS)
        lines.append(header)
        for arch, display in ARCH_DISPLAY:
            if not any(a == arch for (a, _, _) in self.cells):
                continue
            lines.append(f"{display} clang/gcc")
            for sign, attr in (("+ve", "positive"), ("-ve", "negative")):
                row = f"  {sign:26s}"
                for opt in CAMPAIGN_OPTS:
                    clang = self.cells.get((arch, opt, "llvm"))
                    gcc = self.cells.get((arch, opt, "gcc"))
                    cv = getattr(clang, attr) if clang else "-"
                    gv = getattr(gcc, attr) if gcc else "-"
                    row += f"{str(cv)+'/'+str(gv):>14s}"
                lines.append(row)
        return "\n".join(lines)


def merge_reports(reports: Sequence[CampaignReport]) -> CampaignReport:
    """Deterministically fold shard reports into one campaign report.

    The k/n cell shards of one campaign partition its work list, so
    summing their cells reconstructs the single-run Table IV exactly.
    Source simulations are de-duplicated by cache key (two shards that
    each simulated the same test's source count it once, like the
    single-run cache would).  ``positives`` are sorted — shards finish in
    arbitrary order, and the merge must not depend on it.
    """
    if not reports:
        raise ValueError("merge_reports needs at least one report")
    models = {r.source_model for r in reports}
    if len(models) != 1:
        raise ValueError(f"cannot merge reports across source models {sorted(models)}")
    merged = CampaignReport(
        source_model=reports[0].source_model,
        workers=max(r.workers for r in reports),
        processes=max(r.processes for r in reports),
    )
    merged.tests_input = max(r.tests_input for r in reports)
    merged.compiled_tests = sum(r.compiled_tests for r in reports)
    merged.elapsed_seconds = sum(r.elapsed_seconds for r in reports)
    merged.cached_cells = sum(r.cached_cells for r in reports)
    merged.store_hits = sum(r.store_hits for r in reports)
    merged.source_sim_keys = frozenset().union(
        *(r.source_sim_keys for r in reports)
    )
    merged.source_simulations = len(merged.source_sim_keys)
    for report in reports:
        for key, cell in report.cells.items():
            merged.cell(*key).add(cell)
    merged.positives = sorted(p for r in reports for p in r.positives)
    return merged


def _campaign_cells(
    tests: Sequence[CLitmus],
    arches: Sequence[str],
    opts: Sequence[str],
    compilers: Sequence[str],
) -> List[Tuple[CLitmus, str, str, str]]:
    """The (test, arch, opt, compiler) work list, in Table IV order."""
    cells: List[Tuple[CLitmus, str, str, str]] = []
    for litmus in tests:
        for arch in arches:
            for compiler in compilers:
                levels = LLVM_OPT_LEVELS if compiler == "llvm" else GCC_OPT_LEVELS
                for opt in opts:
                    if opt not in levels:
                        continue  # clang has no -Og (Table IV dashes)
                    cells.append((litmus, arch, opt, compiler))
    return cells


# --------------------------------------------------------------------------- #
# cell evaluation → verdict records
# --------------------------------------------------------------------------- #
def _profile_name(compiler: str, opt: str, arch: str) -> str:
    """The profile name for record/store keys.

    Must never raise: an unbuildable profile (unknown arch, bad flag) is
    tallied as an error *cell*, not a campaign abort, so its record still
    needs a stable key.
    """
    try:
        return make_profile(compiler, opt, arch).name
    except ReproError:
        return f"{compiler}-{opt.lstrip('-')}-{arch}"


def _base_record(
    litmus: CLitmus,
    arch: str,
    opt: str,
    compiler: str,
    source_model: str,
    augment: bool,
    budget_candidates: int,
) -> Dict[str, object]:
    """The identity half of a verdict record (see :mod:`.store`)."""
    return {
        "schema": STORE_SCHEMA,
        "digest": litmus.digest(),
        "test": litmus.name,
        "arch": arch,
        "opt": opt,
        "compiler": compiler,
        "profile": _profile_name(compiler, opt, arch),
        "source_model": source_model,
        "augment": bool(augment),
        "budget_candidates": budget_candidates,
    }


def _verdict_record(
    litmus: CLitmus,
    arch: str,
    opt: str,
    compiler: str,
    source_model: str,
    augment: bool,
    budget_candidates: int,
    produce_result: Callable[[], TelechatResult],
) -> Dict[str, object]:
    """Run one cell and shape its outcome as a verdict record.

    The single record constructor shared by every execution backend —
    serial, thread pool and process pool must emit byte-identical record
    shapes or the store would replay whichever backend wrote last.
    """
    base = _base_record(
        litmus, arch, opt, compiler, source_model, augment, budget_candidates
    )
    try:
        result = produce_result()
    except SimulationTimeout:
        return dict(base, status="timeout")
    except ReproError:
        return dict(base, status="error")
    record = dict(base, status="ok")
    record.update(result.to_record())
    return record


#: per-process source caches for the ProcessPoolExecutor backend, keyed by
#: the campaign parameters that change a source simulation.
_WORKER_SOURCE_CACHES: Dict[Tuple, SourceSimCache] = {}


def _pool_cell(task: Tuple) -> Dict[str, object]:
    """Evaluate one campaign cell in a worker process.

    Runs the same tool-chain as the in-process path but returns a
    JSON-able verdict record instead of a :class:`TelechatResult` — the
    record is the cross-process (and on-disk) currency.  Each worker
    process keeps its own source cache; the parent de-duplicates source
    simulations across workers by cache key.
    """
    litmus, arch, opt, compiler, source_model, augment, budget_candidates = task
    cache = _WORKER_SOURCE_CACHES.setdefault(
        (source_model, augment, budget_candidates), SourceSimCache()
    )
    source_key = (litmus.digest(), source_model, augment, budget_candidates)

    def produce_result() -> TelechatResult:
        source_result = cache.get(
            source_key,
            lambda: simulate_c(
                prepare(litmus, augment=augment),
                source_model,
                budget=Budget(max_candidates=budget_candidates),
            ),
        )
        return test_compilation(
            litmus,
            make_profile(compiler, opt, arch),
            source_model=source_model,
            augment=augment,
            budget=Budget(max_candidates=budget_candidates),
            source_result=source_result,
        )

    misses_before = cache.misses
    record = _verdict_record(
        litmus, arch, opt, compiler, source_model, augment, budget_candidates,
        produce_result,
    )
    record["source_simulated"] = cache.misses > misses_before
    return record


def run_campaign(
    tests: Optional[Sequence[CLitmus]] = None,
    config: Optional[DiyConfig] = None,
    arches: Sequence[str] = tuple(a for a, _ in ARCH_DISPLAY),
    opts: Sequence[str] = ("-O1", "-O2", "-O3"),
    compilers: Sequence[str] = ("llvm", "gcc"),
    source_model: str = "rc11",
    budget_candidates: int = 400_000,
    augment: bool = True,
    workers: int = 1,
    processes: int = 0,
    source_cache: Optional[SourceSimCache] = None,
    result_cache: Optional[ResultCache] = None,
    store: Optional[Union[str, CampaignStore]] = None,
    resume: bool = False,
    shard: Optional[Tuple[int, int]] = None,
) -> CampaignReport:
    """Run the Table IV campaign.

    Either pass pre-generated ``tests`` or a diy ``config`` to generate
    them.  Timeouts are recorded, not raised — large ring shapes can
    exceed the budget, as in the paper's 5+-thread caveat.

    The source side of each test is simulated once per source model (in
    the shared ``source_cache``) and reused by every (arch × opt ×
    compiler) cell.  ``workers`` > 1 runs cells through a
    ``concurrent.futures`` thread pool, ``processes`` > 0 through a
    process pool (overriding ``workers``); tallying stays in the caller's
    thread, so reports are deterministic regardless of parallelism.
    Pass a shared ``result_cache`` to skip identical cells across
    repeated campaigns in one process (thread/serial execution only —
    in-memory caches cannot cross the process boundary, so the process
    backend rejects them; use a ``store`` there instead).

    ``store`` (a :class:`CampaignStore` or a path) persists every verdict;
    with ``resume=True``, cells whose key is already stored are replayed
    without any simulation, so a warm re-run costs nothing.  ``shard=(k,
    n)`` evaluates only the k-th of n deterministic partitions of the
    cell work list — run the n shards anywhere, then
    :func:`merge_reports` their reports back into the full Table IV.
    """
    if tests is None:
        tests = generate(config or DiyConfig())
    if resume and store is None:
        raise ValueError("resume=True needs a store to resume from")
    if store is not None and not isinstance(store, CampaignStore):
        store = CampaignStore(store)
    workers = max(1, workers)
    processes = max(0, processes)
    if processes > 0 and (source_cache is not None or result_cache is not None):
        raise ValueError(
            "in-memory source/result caches are not shared with worker "
            "processes; persist across process-pool campaigns with a store"
        )
    source_cache = source_cache if source_cache is not None else SourceSimCache()
    result_cache = result_cache if result_cache is not None else ResultCache()
    if shard is not None:
        shard_k, shard_n = shard
        if shard_n < 1 or not (0 <= shard_k < shard_n):
            raise ValueError(f"bad shard {shard!r}: need 0 <= k < n")
    report = CampaignReport(
        source_model=source_model, workers=workers, processes=processes,
        shard=shard,
    )
    report.tests_input = len(tests)
    start = time.perf_counter()
    result_hits_before = result_cache.hits

    #: source-simulation keys actually produced during *this* run
    simulated_sources: set = set()

    def source_key_of(litmus: CLitmus) -> Tuple:
        return (litmus.digest(), source_model, augment, budget_candidates)

    def simulate_source(litmus: CLitmus) -> SimulationResult:
        key = source_key_of(litmus)

        def produce() -> SimulationResult:
            simulated_sources.add(key)
            return simulate_c(
                prepare(litmus, augment=augment),
                source_model,
                budget=Budget(max_candidates=budget_candidates),
            )

        return source_cache.get(key, produce)

    def run_cell(
        litmus: CLitmus, arch: str, opt: str, compiler: str
    ) -> TelechatResult:
        profile = make_profile(compiler, opt, arch)
        return result_cache.get(
            (litmus.digest(), profile.name, source_model, augment,
             budget_candidates),
            lambda: test_compilation(
                litmus,
                profile,
                source_model=source_model,
                augment=augment,
                budget=Budget(max_candidates=budget_candidates),
                source_result=simulate_source(litmus),
            ),
        )

    def evaluate(
        litmus: CLitmus, arch: str, opt: str, compiler: str
    ) -> Dict[str, object]:
        return _verdict_record(
            litmus, arch, opt, compiler, source_model, augment,
            budget_candidates,
            lambda: run_cell(litmus, arch, opt, compiler),
        )

    def collect(index: int, record: Dict[str, object]) -> None:
        """Land one freshly computed verdict — and persist it *now*, so
        an interrupted campaign resumes from every cell that finished."""
        records[index] = record
        if store is not None:
            store.put(record)

    work = _campaign_cells(tests, arches, opts, compilers)
    if shard is not None:
        work = work[shard_k::shard_n]

    # replay whatever the persistent store already knows
    records: List[Optional[Dict[str, object]]] = [None] * len(work)
    pending: List[Tuple[int, Tuple[CLitmus, str, str, str]]] = []
    for index, (litmus, arch, opt, compiler) in enumerate(work):
        if store is not None and resume:
            key = cell_key(
                litmus.digest(), _profile_name(compiler, opt, arch),
                source_model, augment, budget_candidates,
            )
            stored = store.get(key)
            if stored is not None:
                records[index] = stored
                report.store_hits += 1
                continue
        pending.append((index, (litmus, arch, opt, compiler)))

    # evaluate the cells the store could not answer.  In the pool
    # branches an unexpected exception from one cell must not discard the
    # verdicts of cells that still ran to completion (pool shutdown waits
    # for them) — collect and persist everything, then re-raise the first
    # failure.
    first_error: Optional[BaseException] = None
    if pending and processes > 0:
        tasks = [
            (litmus, arch, opt, compiler, source_model, augment,
             budget_candidates)
            for _, (litmus, arch, opt, compiler) in pending
        ]
        with ProcessPoolExecutor(max_workers=processes) as pool:
            futures = [pool.submit(_pool_cell, task) for task in tasks]
            for (index, (litmus, _, _, _)), future in zip(pending, futures):
                try:
                    record = future.result()
                except Exception as exc:
                    first_error = first_error if first_error is not None else exc
                    continue
                if record.get("source_simulated"):
                    simulated_sources.add(source_key_of(litmus))
                collect(index, record)
    elif pending and workers > 1:
        # the with-block shuts the pool down even when an unexpected
        # exception escapes future.result(), so workers never leak
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(evaluate, *item) for _, item in pending]
            for (index, _), future in zip(pending, futures):
                try:
                    record = future.result()
                except Exception as exc:
                    first_error = first_error if first_error is not None else exc
                    continue
                collect(index, record)
    else:
        for index, item in pending:
            collect(index, evaluate(*item))
    if first_error is not None:
        raise first_error

    # tally — in the caller's thread, in work-list order, so reports are
    # deterministic regardless of executor and parallelism
    for (litmus, arch, opt, compiler), record in zip(work, records):
        cell = report.cell(arch, opt, compiler)
        status = record["status"]
        if status == "timeout":
            cell.timeouts += 1
            continue
        if status == "error":
            cell.errors += 1
            continue
        report.compiled_tests += 1
        verdict = str(record["verdict"])
        cell.record(verdict)
        if verdict == "positive":
            report.positives.append((litmus.name, arch, opt, compiler))

    report.source_sim_keys = frozenset(simulated_sources)
    report.source_simulations = len(report.source_sim_keys)
    report.cached_cells = result_cache.hits - result_hits_before
    report.elapsed_seconds = time.perf_counter() - start
    return report
