"""Campaign reports, caches and verdict records (paper Table IV).

The campaign *runner* lives in :mod:`repro.api.engine`; this module owns
the batch-side vocabulary every backend and mode shares:

* :class:`CampaignReport` / :class:`CampaignCell` — the tally in the
  paper's Table IV layout, plus :func:`merge_reports` for folding shard
  reports back into the single-run table;
* :class:`SourceSimCache` / :class:`ResultCache` — the exactly-once
  in-memory caches (keyed by :meth:`CLitmus.digest` content identity,
  never test names, so two different tests named ``LB001`` can't share
  a verdict);
* the verdict-record shapers (``_verdict_record``/``_shape_record``) —
  the single status contract the serial, thread and process backends
  and the persistent store all speak;
* the deprecated batch shim :func:`run_campaign`.

The reproduction target is the *shape* of Table IV, whatever the suite
size: positives only on Armv8, Armv7, RISC-V and PowerPC (the Fig. 7
load-buffering family); none on x86-64 (TSO) or MIPS; extra positives
for GCC ``-O1`` on Armv7 (the deleted control dependency, masked at
``-O2+``); and every positive disappears under
``source_model="rc11+lb"`` (Claim 4).
"""

from __future__ import annotations

# The executors are re-exported module attributes, not mere imports: this
# module's namespace is the campaign engine's historical
# extension/monkeypatch surface.  The streaming engine in
# :mod:`repro.api.engine` late-binds ``campaign.ThreadPoolExecutor``,
# ``campaign.ProcessPoolExecutor`` and ``campaign.test_compilation`` so
# tests and embedders can swap them here, exactly as they always have.
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor  # noqa: F401
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..compiler.profiles import (
    GCC_OPT_LEVELS,
    LLVM_OPT_LEVELS,
    make_profile,
)
from ..core.cache import KeyedCache
from ..core.errors import ReproError, SimulationTimeout
from ..lang.ast import CLitmus
from ..tools.diy import DiyConfig
from .store import STORE_SCHEMA, CampaignStore
from .telechat import TelechatResult
# bound as a module attribute — and NOT the deprecation shim — for the
# same late-binding reason as the executors above
from .telechat import run_test_tv as test_compilation  # noqa: F401
# the differential cell evaluator, same late-binding surface
from .telechat import run_differential  # noqa: F401

#: Table IV's column order.
CAMPAIGN_OPTS = ("-O1", "-O2", "-O3", "-Ofast", "-Og")

#: Table IV's row order with display names.
ARCH_DISPLAY = (
    ("aarch64", "Armv8 AArch64 (64-bit)"),
    ("armv7", "Armv7-a (32-bit)"),
    ("riscv64", "RISC-V (64-bit)"),
    ("ppc64", "IBM PowerPC (64-bit)"),
    ("x86_64", "Intel x86-64 (64-bit)"),
    ("mips64", "MIPS (64-bit)"),
)

#: the verdict strings :meth:`CampaignCell.record` tallies.
KNOWN_VERDICTS = ("positive", "negative", "equal", "ub-masked")


@dataclass
class CampaignCell:
    """One (arch, opt, compiler) cell of Table IV."""

    positive: int = 0
    negative: int = 0
    equal: int = 0
    ub_masked: int = 0
    timeouts: int = 0
    errors: int = 0

    @property
    def total(self) -> int:
        return (self.positive + self.negative + self.equal + self.ub_masked
                + self.timeouts + self.errors)

    def record(self, verdict: str) -> None:
        if verdict == "positive":
            self.positive += 1
        elif verdict == "negative":
            self.negative += 1
        elif verdict == "equal":
            self.equal += 1
        elif verdict == "ub-masked":
            self.ub_masked += 1
        else:
            # an unknown verdict must never silently land in a Table IV
            # tally — a future verdict type has to be classified here
            raise ValueError(
                f"unknown verdict {verdict!r}; expected one of {KNOWN_VERDICTS}"
            )

    def add(self, other: "CampaignCell") -> None:
        self.positive += other.positive
        self.negative += other.negative
        self.equal += other.equal
        self.ub_masked += other.ub_masked
        self.timeouts += other.timeouts
        self.errors += other.errors


# the campaign caches' exactly-once contract now lives in core; the old
# private name stays bound for embedders that reached for it
_KeyedCache = KeyedCache


class SourceSimCache(KeyedCache):
    """Source-side simulations keyed by
    ``(test digest, source_model, augment, budget_candidates)``.

    ``misses`` counts actual source simulations: a campaign simulates
    each test's source side exactly once per source model, no matter how
    many (arch × opt × compiler) cells consume it.
    """

    @property
    def simulations(self) -> int:
        return self.misses


class ResultCache(KeyedCache):
    """Full test_tv results keyed by
    ``(test digest, profile, source_model, augment, budget_candidates)``.

    Within one campaign every key is unique; share one instance across
    ``run_campaign`` calls (re-runs, Claim-4 style model sweeps over the
    same suite) to skip already-tested cells entirely.  The campaign
    parameters that change a cell's result are part of the key, so a
    re-run with a different budget or augmentation re-simulates instead
    of replaying stale verdicts (or stale timeouts) — and the *content*
    digest means two different tests that share a name can never collide.
    """


@dataclass
class CampaignReport:
    """The full campaign result: cells plus run metadata."""

    source_model: str
    cells: Dict[Tuple[str, str, str], CampaignCell] = field(default_factory=dict)
    tests_input: int = 0
    compiled_tests: int = 0
    elapsed_seconds: float = 0.0
    #: per-test positive records for drill-down: (test, arch, opt, compiler)
    positives: List[Tuple[str, str, str, str]] = field(default_factory=list)
    #: distinct source-side simulations actually run (== distinct tests
    #: when the caches start cold; never double-counts a test shared by
    #: several worker processes or shards)
    source_simulations: int = 0
    #: the source-simulation cache keys behind ``source_simulations`` —
    #: kept so merging shard reports can de-duplicate across shards
    source_sim_keys: FrozenSet[Tuple] = frozenset()
    #: cells answered from a shared in-memory ResultCache without re-running
    cached_cells: int = 0
    #: cells replayed from the persistent store without re-running
    store_hits: int = 0
    #: worker threads used
    workers: int = 1
    #: worker processes used (0 = in-process execution)
    processes: int = 0
    #: the (k, n) cell shard this report covers (None = the whole campaign)
    shard: Optional[Tuple[int, int]] = None

    def cell(self, arch: str, opt: str, compiler: str) -> CampaignCell:
        key = (arch, opt, compiler)
        if key not in self.cells:
            self.cells[key] = CampaignCell()
        return self.cells[key]

    def total_positive(self, arch: Optional[str] = None) -> int:
        return sum(
            c.positive for (a, _, _), c in self.cells.items()
            if arch is None or a == arch
        )

    def total_negative(self, arch: Optional[str] = None) -> int:
        return sum(
            c.negative for (a, _, _), c in self.cells.items()
            if arch is None or a == arch
        )

    # ------------------------------------------------------------------ #
    def to_jsonable(self, include_timing: bool = True) -> Dict[str, object]:
        """A canonical JSON projection of the whole report.

        Deterministic (cells and keys sorted) so two reports of the same
        campaign serialise byte-for-byte identically under
        ``json.dumps(..., sort_keys=True)`` — the representation the
        event-stream parity guarantee is stated in.  ``include_timing``
        off zeroes the only wall-clock-dependent field.
        """
        return {
            "source_model": self.source_model,
            "tests_input": self.tests_input,
            "compiled_tests": self.compiled_tests,
            "elapsed_seconds": self.elapsed_seconds if include_timing else 0.0,
            "source_simulations": self.source_simulations,
            "source_sim_keys": sorted(
                "|".join(str(part) for part in key)
                for key in self.source_sim_keys
            ),
            "cached_cells": self.cached_cells,
            "store_hits": self.store_hits,
            "workers": self.workers,
            "processes": self.processes,
            "shard": list(self.shard) if self.shard else None,
            "positives": [list(p) for p in self.positives],
            "cells": {
                "|".join(key): {
                    "positive": cell.positive,
                    "negative": cell.negative,
                    "equal": cell.equal,
                    "ub_masked": cell.ub_masked,
                    "timeouts": cell.timeouts,
                    "errors": cell.errors,
                }
                for key, cell in sorted(self.cells.items())
            },
        }

    def table(self) -> str:
        """Render in the paper's Table IV layout (clang/gcc per cell)."""
        if self.processes:
            parallelism = (
                f"{self.processes} process{'es' if self.processes != 1 else ''}"
            )
        else:
            parallelism = f"{self.workers} worker{'s' if self.workers != 1 else ''}"
        lines = [
            f"Campaign under source model {self.source_model!r}: "
            f"{self.tests_input} C tests input, {self.compiled_tests} "
            f"compiled tests output ({self.elapsed_seconds:.1f}s, "
            f"{self.source_simulations} source simulations, "
            f"{parallelism})",
            "",
        ]
        diff_cells = {
            key: cell for key, cell in self.cells.items() if key[1] == "diff"
        }
        tv_cells = {
            key: cell for key, cell in self.cells.items() if key[1] != "diff"
        }
        if diff_cells:
            lines.append("Differential pairs (compiler vs compiler, §IV-D):")
            for (arch, _, pair), cell in sorted(diff_cells.items()):
                lines.append(
                    f"  {arch:10s} {pair}: "
                    f"+ve {cell.positive}, -ve {cell.negative}, "
                    f"equal {cell.equal}, ub-masked {cell.ub_masked}, "
                    f"timeouts {cell.timeouts}, errors {cell.errors}"
                )
            if not tv_cells:
                return "\n".join(lines)
            lines.append("")
        header = f"{'':28s}" + "".join(f"{opt:>14s}" for opt in CAMPAIGN_OPTS)
        lines.append(header)
        for arch, display in ARCH_DISPLAY:
            if not any(a == arch for (a, _, _) in tv_cells):
                continue
            lines.append(f"{display} clang/gcc")
            for sign, attr in (("+ve", "positive"), ("-ve", "negative")):
                row = f"  {sign:26s}"
                for opt in CAMPAIGN_OPTS:
                    clang = tv_cells.get((arch, opt, "llvm"))
                    gcc = tv_cells.get((arch, opt, "gcc"))
                    cv = getattr(clang, attr) if clang else "-"
                    gv = getattr(gcc, attr) if gcc else "-"
                    row += f"{str(cv)+'/'+str(gv):>14s}"
                lines.append(row)
        return "\n".join(lines)


def merge_reports(reports: Sequence[CampaignReport]) -> CampaignReport:
    """Deterministically fold shard reports into one campaign report.

    The k/n cell shards of one campaign partition its work list, so
    summing their cells reconstructs the single-run Table IV exactly.
    Source simulations are de-duplicated by cache key (two shards that
    each simulated the same test's source count it once, like the
    single-run cache would).  ``positives`` are sorted — shards finish in
    arbitrary order, and the merge must not depend on it.
    """
    if not reports:
        raise ValueError("merge_reports needs at least one report")
    models = {r.source_model for r in reports}
    if len(models) != 1:
        raise ValueError(f"cannot merge reports across source models {sorted(models)}")
    merged = CampaignReport(
        source_model=reports[0].source_model,
        workers=max(r.workers for r in reports),
        processes=max(r.processes for r in reports),
    )
    merged.tests_input = max(r.tests_input for r in reports)
    merged.compiled_tests = sum(r.compiled_tests for r in reports)
    merged.elapsed_seconds = sum(r.elapsed_seconds for r in reports)
    merged.cached_cells = sum(r.cached_cells for r in reports)
    merged.store_hits = sum(r.store_hits for r in reports)
    merged.source_sim_keys = frozenset().union(
        *(r.source_sim_keys for r in reports)
    )
    merged.source_simulations = len(merged.source_sim_keys)
    for report in reports:
        for key, cell in report.cells.items():
            merged.cell(*key).add(cell)
    merged.positives = sorted(p for r in reports for p in r.positives)
    return merged


def _campaign_cells(
    tests: Sequence[CLitmus],
    arches: Sequence[str],
    opts: Sequence[str],
    compilers: Sequence[str],
) -> List[Tuple[CLitmus, str, str, str]]:
    """The (test, arch, opt, compiler) work list, in Table IV order."""
    cells: List[Tuple[CLitmus, str, str, str]] = []
    for litmus in tests:
        for arch in arches:
            for compiler in compilers:
                levels = LLVM_OPT_LEVELS if compiler == "llvm" else GCC_OPT_LEVELS
                for opt in opts:
                    if opt not in levels:
                        continue  # clang has no -Og (Table IV dashes)
                    cells.append((litmus, arch, opt, compiler))
    return cells


# --------------------------------------------------------------------------- #
# cell evaluation → verdict records
# --------------------------------------------------------------------------- #
def _profile_name(compiler: str, opt: str, arch: str) -> str:
    """The profile name for record/store keys.

    Must never raise: an unbuildable profile (unknown arch, bad flag) is
    tallied as an error *cell*, not a campaign abort, so its record still
    needs a stable key.
    """
    try:
        return make_profile(compiler, opt, arch).name
    except ReproError:
        return f"{compiler}-{opt.lstrip('-')}-{arch}"


def _base_record(
    litmus: CLitmus,
    arch: str,
    opt: str,
    compiler: str,
    source_model: str,
    augment: bool,
    budget_candidates: int,
) -> Dict[str, object]:
    """The identity half of a verdict record (see :mod:`.store`)."""
    return {
        "schema": STORE_SCHEMA,
        "digest": litmus.digest(),
        "test": litmus.name,
        "arch": arch,
        "opt": opt,
        "compiler": compiler,
        "profile": _profile_name(compiler, opt, arch),
        "source_model": source_model,
        "augment": bool(augment),
        "budget_candidates": budget_candidates,
    }


def _shape_record(
    base: Dict[str, object], produce_result: Callable
) -> Dict[str, object]:
    """Run one cell producer and shape its outcome onto ``base``.

    The single status contract shared by every execution backend *and*
    both campaign modes — serial, thread pool and process pool must emit
    byte-identical record shapes or the store would replay whichever
    backend wrote last, and a new status class added here reaches tv and
    differential records together.
    """
    try:
        result = produce_result()
    except SimulationTimeout:
        return dict(base, status="timeout")
    except ReproError:
        return dict(base, status="error")
    record = dict(base, status="ok")
    record.update(result.to_record())
    return record


def _verdict_record(
    litmus: CLitmus,
    arch: str,
    opt: str,
    compiler: str,
    source_model: str,
    augment: bool,
    budget_candidates: int,
    produce_result: Callable[[], TelechatResult],
) -> Dict[str, object]:
    """Run one tv cell and shape its outcome as a verdict record."""
    return _shape_record(
        _base_record(
            litmus, arch, opt, compiler, source_model, augment,
            budget_candidates,
        ),
        produce_result,
    )


def run_campaign(
    tests: Optional[Sequence[CLitmus]] = None,
    config: Optional[DiyConfig] = None,
    arches: Sequence[str] = tuple(a for a, _ in ARCH_DISPLAY),
    opts: Sequence[str] = ("-O1", "-O2", "-O3"),
    compilers: Sequence[str] = ("llvm", "gcc"),
    source_model: str = "rc11",
    budget_candidates: int = 400_000,
    augment: bool = True,
    workers: int = 1,
    processes: int = 0,
    source_cache: Optional[SourceSimCache] = None,
    result_cache: Optional[ResultCache] = None,
    store: Optional[Union[str, CampaignStore]] = None,
    resume: bool = False,
    shard: Optional[Tuple[int, int]] = None,
) -> CampaignReport:
    """Deprecated batch shim over the streaming campaign engine.

    .. deprecated::
        Use ``Session().run(CampaignPlan(...))`` — or, for streaming,
        ``Session().campaign(plan)`` — from :mod:`repro.api`.  This shim
        survives for external callers only (README: deprecation policy);
        calling it from inside :mod:`repro` raises.

    It no longer contains a campaign runner: every keyword argument maps
    onto a :class:`repro.api.CampaignPlan` field, the plan runs in a
    throwaway :class:`repro.api.Session` (carrying the given caches and
    ``store``), and the event stream folds back into the
    :class:`CampaignReport` this function always returned.  The
    historical ``ValueError`` contracts (resume-without-store, process
    pool + in-memory caches, bad shard) are enforced by the plan and the
    engine — :class:`~repro.api.PlanError` subclasses ``ValueError``
    with the same messages.  Campaign semantics (hoisted source
    simulation, worker pools, store replay, shard merging) are
    documented on the plan and engine, not here.
    """
    from ..api import CampaignPlan, Session
    from ..api._deprecation import warn_deprecated

    warn_deprecated("run_campaign()", "Session.campaign(CampaignPlan(...))")
    plan = CampaignPlan(
        tests=None if tests is None else tuple(tests),
        config=config,
        arches=tuple(arches),
        opts=tuple(opts),
        compilers=tuple(compilers),
        source_model=source_model,
        budget_candidates=budget_candidates,
        augment=augment,
        workers=max(1, workers),
        processes=max(0, processes),
        shard=shard,
        resume=resume,
    )
    session = Session(
        store=store, source_cache=source_cache, result_cache=result_cache
    )
    return session.campaign(plan).report()
