"""The large-scale differential-testing campaign (paper §IV-D, Table IV).

Runs a diy-generated test suite through every (compiler × flag × arch)
profile and tabulates positive/negative differences per cell, exactly in
the shape of the paper's Table IV.  The absolute counts scale with the
configured suite; the *shape* is the reproduction target:

* positive differences appear only on Armv8, Armv7, RISC-V and PowerPC
  (the load-buffering family of Fig. 7);
* Intel x86-64 (TSO) and MIPS (conservatively SYNC-bracketed atomics)
  show none;
* GCC at ``-O1`` on Armv7 shows *extra* positives (the deleted control
  dependency), masked at ``-O2+`` by if-conversion's data dependency;
* re-running with ``source_model="rc11+lb"`` makes every positive
  difference disappear (Claim 4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..compiler.profiles import (
    ARCHES,
    GCC_OPT_LEVELS,
    LLVM_OPT_LEVELS,
    CompilerProfile,
    make_profile,
)
from ..core.errors import ReproError, SimulationTimeout
from ..herd.enumerate import Budget
from ..lang.ast import CLitmus
from ..tools.diy import DiyConfig, generate
from .telechat import TelechatResult, test_compilation

#: Table IV's column order.
CAMPAIGN_OPTS = ("-O1", "-O2", "-O3", "-Ofast", "-Og")

#: Table IV's row order with display names.
ARCH_DISPLAY = (
    ("aarch64", "Armv8 AArch64 (64-bit)"),
    ("armv7", "Armv7-a (32-bit)"),
    ("riscv64", "RISC-V (64-bit)"),
    ("ppc64", "IBM PowerPC (64-bit)"),
    ("x86_64", "Intel x86-64 (64-bit)"),
    ("mips64", "MIPS (64-bit)"),
)


@dataclass
class CampaignCell:
    """One (arch, opt, compiler) cell of Table IV."""

    positive: int = 0
    negative: int = 0
    equal: int = 0
    ub_masked: int = 0
    timeouts: int = 0
    errors: int = 0

    @property
    def total(self) -> int:
        return (self.positive + self.negative + self.equal + self.ub_masked
                + self.timeouts + self.errors)

    def record(self, verdict: str) -> None:
        if verdict == "positive":
            self.positive += 1
        elif verdict == "negative":
            self.negative += 1
        elif verdict == "ub-masked":
            self.ub_masked += 1
        else:
            self.equal += 1


@dataclass
class CampaignReport:
    """The full campaign result: cells plus run metadata."""

    source_model: str
    cells: Dict[Tuple[str, str, str], CampaignCell] = field(default_factory=dict)
    tests_input: int = 0
    compiled_tests: int = 0
    elapsed_seconds: float = 0.0
    #: per-test positive records for drill-down: (test, arch, opt, compiler)
    positives: List[Tuple[str, str, str, str]] = field(default_factory=list)

    def cell(self, arch: str, opt: str, compiler: str) -> CampaignCell:
        key = (arch, opt, compiler)
        if key not in self.cells:
            self.cells[key] = CampaignCell()
        return self.cells[key]

    def total_positive(self, arch: Optional[str] = None) -> int:
        return sum(
            c.positive for (a, _, _), c in self.cells.items()
            if arch is None or a == arch
        )

    def total_negative(self, arch: Optional[str] = None) -> int:
        return sum(
            c.negative for (a, _, _), c in self.cells.items()
            if arch is None or a == arch
        )

    # ------------------------------------------------------------------ #
    def table(self) -> str:
        """Render in the paper's Table IV layout (clang/gcc per cell)."""
        lines = [
            f"Campaign under source model {self.source_model!r}: "
            f"{self.tests_input} C tests input, {self.compiled_tests} "
            f"compiled tests output ({self.elapsed_seconds:.1f}s)",
            "",
        ]
        header = f"{'':28s}" + "".join(f"{opt:>14s}" for opt in CAMPAIGN_OPTS)
        lines.append(header)
        for arch, display in ARCH_DISPLAY:
            if not any(a == arch for (a, _, _) in self.cells):
                continue
            lines.append(f"{display} clang/gcc")
            for sign, attr in (("+ve", "positive"), ("-ve", "negative")):
                row = f"  {sign:26s}"
                for opt in CAMPAIGN_OPTS:
                    clang = self.cells.get((arch, opt, "llvm"))
                    gcc = self.cells.get((arch, opt, "gcc"))
                    cv = getattr(clang, attr) if clang else "-"
                    gv = getattr(gcc, attr) if gcc else "-"
                    row += f"{str(cv)+'/'+str(gv):>14s}"
                lines.append(row)
        return "\n".join(lines)


def run_campaign(
    tests: Optional[Sequence[CLitmus]] = None,
    config: Optional[DiyConfig] = None,
    arches: Sequence[str] = tuple(a for a, _ in ARCH_DISPLAY),
    opts: Sequence[str] = ("-O1", "-O2", "-O3"),
    compilers: Sequence[str] = ("llvm", "gcc"),
    source_model: str = "rc11",
    budget_candidates: int = 400_000,
    augment: bool = True,
) -> CampaignReport:
    """Run the Table IV campaign.

    Either pass pre-generated ``tests`` or a diy ``config`` to generate
    them.  Timeouts are recorded, not raised — large ring shapes can
    exceed the budget, as in the paper's 5+-thread caveat.
    """
    if tests is None:
        tests = generate(config or DiyConfig())
    report = CampaignReport(source_model=source_model)
    report.tests_input = len(tests)
    start = time.perf_counter()
    for litmus in tests:
        for arch in arches:
            for compiler in compilers:
                levels = LLVM_OPT_LEVELS if compiler == "llvm" else GCC_OPT_LEVELS
                for opt in opts:
                    if opt not in levels:
                        continue  # clang has no -Og (Table IV dashes)
                    cell = report.cell(arch, opt, compiler)
                    profile = make_profile(compiler, opt, arch)
                    try:
                        result = test_compilation(
                            litmus, profile,
                            source_model=source_model,
                            augment=augment,
                            budget=Budget(max_candidates=budget_candidates),
                        )
                    except SimulationTimeout:
                        cell.timeouts += 1
                        continue
                    except ReproError:
                        cell.errors += 1
                        continue
                    report.compiled_tests += 1
                    verdict = result.verdict
                    cell.record(verdict)
                    if verdict == "positive":
                        report.positives.append(
                            (litmus.name, arch, opt, compiler)
                        )
    report.elapsed_seconds = time.perf_counter() - start
    return report
