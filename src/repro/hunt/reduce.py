"""Delta-debugging reduction of positive litmus tests.

A hunt campaign's raw positives are mutants of whatever seed happened to
expose the bug — often carrying threads, statements, condition conjuncts
and initialised locations that have nothing to do with the miscompile.
:func:`reduce_test` shrinks a positive to a 1-minimal reproducer: it
greedily tries, smallest-change first,

* dropping a whole thread (only threads the final-state condition does
  not observe — the reproducer must keep meaning what it says);
* dropping one statement;
* weakening the exists-clause by one conjunct (which also shrinks the
  mcompare observation domain);
* dropping initialised locations nothing references any more;

re-verifying **every** candidate through the caller's ``check`` oracle
(for hunts: the cached :meth:`~repro.toolchain.Toolchain.run_tv`, so a
rejected candidate usually costs one target simulation, not a whole
chain).  A candidate that fails to compile or simulate counts as
rejected, never as an error.

Termination is structural: every accepted step strictly decreases the
test's size measure (threads + statements + condition conjuncts + init
entries), and each pass tries finitely many candidates, so reduction
always terminates — on an already-minimal test it stops after one
no-progress pass with zero steps taken.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from ..core.errors import ReproError
from ..core.litmus import And, Condition, Prop, conj
from ..lang.ast import (
    AtomicLoad,
    AtomicRMW,
    AtomicStore,
    CExpr,
    CLitmus,
    CThread,
    PlainLoad,
    PlainStore,
)


class ReductionError(ReproError):
    """The input test does not satisfy the oracle — nothing to reduce."""


@dataclass(frozen=True)
class ReductionStep:
    """One accepted shrink."""

    action: str  # "drop-thread" | "drop-stmt" | "weaken-condition" | "drop-init"
    detail: str
    #: content digest of the test *after* this step
    digest: str

    def as_record(self) -> Dict[str, object]:
        return {"action": self.action, "detail": self.detail,
                "digest": self.digest}


@dataclass
class ReductionResult:
    """What reduction produced, with full lineage."""

    original: CLitmus
    reduced: CLitmus
    steps: Tuple[ReductionStep, ...]
    #: oracle invocations spent (the reduction's whole cost)
    checks: int

    @property
    def changed(self) -> bool:
        return bool(self.steps)

    @property
    def original_statements(self) -> int:
        return test_size(self.original)

    @property
    def reduced_statements(self) -> int:
        return test_size(self.reduced)

    def lineage(self) -> Dict[str, object]:
        """The reduction-lineage fields hunt store records carry."""
        return {
            "reduced_from": self.original.digest(),
            "reduction_steps": [step.as_record() for step in self.steps],
            "reduction_checks": self.checks,
        }


def test_size(litmus: CLitmus) -> int:
    """Statements across all threads — the size 'no larger than the
    hand-written test' claims are stated in."""
    return sum(len(thread.body) for thread in litmus.threads)


test_size.__test__ = False  # type: ignore[attr-defined]  # not a pytest test


def _measure(litmus: CLitmus) -> int:
    """The strictly-decreasing termination measure."""
    leaves = len(_conjuncts(litmus.condition.prop))
    return test_size(litmus) + len(litmus.threads) + leaves + len(litmus.init)


# --------------------------------------------------------------------------- #
# reference walking (what a candidate may safely drop)
# --------------------------------------------------------------------------- #
def _expr_locations(expr: CExpr) -> Iterator[str]:
    if isinstance(expr, (PlainLoad, AtomicLoad)):
        yield expr.loc
    elif isinstance(expr, AtomicRMW):
        yield expr.loc
        yield from _expr_locations(expr.operand)
    for attr in ("left", "right", "operand"):
        child = getattr(expr, attr, None)
        if isinstance(child, CExpr):
            yield from _expr_locations(child)


def _stmt_locations(stmt) -> Iterator[str]:
    if isinstance(stmt, (PlainStore, AtomicStore)):
        yield stmt.loc
    expr = getattr(stmt, "expr", None)
    if isinstance(expr, CExpr):
        yield from _expr_locations(expr)
    cond = getattr(stmt, "cond", None)
    if isinstance(cond, CExpr):
        yield from _expr_locations(cond)
    for attr in ("then_body", "else_body", "body"):
        for child in getattr(stmt, attr, ()) or ():
            yield from _stmt_locations(child)


def _referenced_locations(litmus: CLitmus) -> Set[str]:
    used: Set[str] = set()
    for thread in litmus.threads:
        used.update(thread.params)
        for stmt in thread.body:
            used.update(_stmt_locations(stmt))
    for name in litmus.condition.observables():
        if ":" not in name:  # a location, not a Pn:r register
            used.add(name)
    return used


def _conjuncts(prop: Prop) -> List[Prop]:
    if isinstance(prop, And):
        return _conjuncts(prop.left) + _conjuncts(prop.right)
    return [prop]


def _observed_threads(litmus: CLitmus) -> Set[str]:
    observed: Set[str] = set()
    for name in litmus.condition.observables():
        if ":" in name:
            observed.add(name.split(":", 1)[0])
    return observed


# --------------------------------------------------------------------------- #
# candidate generation
# --------------------------------------------------------------------------- #
def _rebuild(litmus: CLitmus, **changes) -> CLitmus:
    return CLitmus(
        name=litmus.name,
        init=changes.get("init", dict(litmus.init)),
        condition=changes.get("condition", litmus.condition),
        threads=changes.get("threads", litmus.threads),
        widths=dict(litmus.widths),
        const_locations=litmus.const_locations,
    )


def _candidates(litmus: CLitmus) -> Iterator[Tuple[CLitmus, str, str]]:
    """Every one-step shrink of ``litmus``: (candidate, action, detail)."""
    observed = _observed_threads(litmus)
    if len(litmus.threads) > 1:
        for index, thread in enumerate(litmus.threads):
            if thread.name in observed:
                continue  # the condition names this thread's registers
            threads = litmus.threads[:index] + litmus.threads[index + 1:]
            yield (
                _rebuild(litmus, threads=threads),
                "drop-thread",
                thread.name,
            )
    for t_index, thread in enumerate(litmus.threads):
        for s_index in range(len(thread.body)):
            body = thread.body[:s_index] + thread.body[s_index + 1:]
            threads = list(litmus.threads)
            threads[t_index] = CThread(
                name=thread.name,
                params=thread.params,
                body=body,
                atomic_params=thread.atomic_params,
            )
            yield (
                _rebuild(litmus, threads=tuple(threads)),
                "drop-stmt",
                f"{thread.name}[{s_index}]",
            )
    leaves = _conjuncts(litmus.condition.prop)
    if len(leaves) > 1:
        for index, leaf in enumerate(leaves):
            weakened = conj(leaves[:index] + leaves[index + 1:])
            yield (
                _rebuild(
                    litmus,
                    condition=Condition(litmus.condition.quantifier, weakened),
                ),
                "weaken-condition",
                f"drop {leaf}",
            )
    used = _referenced_locations(litmus)
    for loc in sorted(litmus.init):
        if loc in used:
            continue
        init = {k: v for k, v in litmus.init.items() if k != loc}
        yield _rebuild(litmus, init=init), "drop-init", loc


# --------------------------------------------------------------------------- #
# the reducer
# --------------------------------------------------------------------------- #
def reduce_test(
    litmus: CLitmus,
    check: Callable[[CLitmus], bool],
    *,
    max_checks: Optional[int] = None,
) -> ReductionResult:
    """Shrink ``litmus`` to a 1-minimal test still satisfying ``check``.

    ``check`` is the bug oracle — for compiler hunts, "run_tv still says
    positive".  It is called once on the input (raising
    :class:`ReductionError` if it does not hold — reducing a test that
    does not exhibit the bug would silently return garbage) and once per
    candidate; a candidate whose check raises a
    :class:`~repro.core.errors.ReproError` (failed to compile, simulate,
    …) is rejected like any other.  ``max_checks`` bounds the budget:
    when exhausted, the best reproducer found so far is returned.
    """
    checks = 0

    def oracle(candidate: CLitmus) -> bool:
        nonlocal checks
        checks += 1
        try:
            return bool(check(candidate))
        except ReproError:
            return False

    if not oracle(litmus):
        raise ReductionError(
            f"test {litmus.name!r} does not satisfy the reduction oracle; "
            f"nothing to reduce"
        )

    current = litmus
    steps: List[ReductionStep] = []
    progress = True
    while progress:
        progress = False
        for candidate, action, detail in _candidates(current):
            assert _measure(candidate) < _measure(current)
            if max_checks is not None and checks >= max_checks:
                progress = False
                break
            if oracle(candidate):
                current = candidate
                steps.append(
                    ReductionStep(
                        action=action, detail=detail,
                        digest=candidate.digest(),
                    )
                )
                progress = True
                break  # restart candidate enumeration on the smaller test
        if max_checks is not None and checks >= max_checks:
            break

    if steps:
        base = litmus.name.split("+", 1)[0]
        current = replace(
            current, name=f"{base}+min.{current.digest()[:6]}"
        )
    return ReductionResult(
        original=litmus,
        reduced=current,
        steps=tuple(steps),
        checks=checks,
    )
