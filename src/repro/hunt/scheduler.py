"""The feedback-driven hunt scheduler.

A hunt campaign's work list is not fixed up front: round 0 runs the seed
tests, and every later round mutates what the previous rounds learned.
:class:`HuntScheduler` owns that state — which tests have been
scheduled (by content digest, so the same mutant reached from two seeds
runs once), which have already been mutated, and the full mutation
*lineage* of every test (parent digest, operator, site, depth) that the
store records and :class:`~repro.api.events.CellFinished` events carry.

Scheduling policy (the paper's "conducting mutation-based testing will
find more bugs" loop, §V): each round mutates the not-yet-mutated tests,
**positives first** — a test whose cells went positive marks a region of
the test family where the compiler is already known to be wrong, so its
neighbours are the most promising mutants.  Ordering within the
positive/non-positive classes follows schedule order, which makes the
whole hunt deterministic: the same seeds and verdicts produce the same
rounds on every backend (the property hunt fold-parity rests on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..core.registry import Registry
from ..lang.ast import CLitmus
from ..tools.mutate import DEFAULT_OPERATORS, iter_mutants


@dataclass(frozen=True)
class HuntLineage:
    """How one hunt test came to be scheduled."""

    digest: str
    #: the digest of the test this one was mutated from (None for seeds)
    parent: Optional[str] = None
    operator: Optional[str] = None
    site: Optional[str] = None
    #: mutation distance from a seed (0 for the seeds themselves)
    depth: int = 0

    def as_record(self) -> Dict[str, object]:
        """The lineage fields merged into a hunt verdict record."""
        record: Dict[str, object] = {"depth": self.depth}
        if self.parent is not None:
            record["seed"] = self.parent
            record["operator"] = self.operator
            record["site"] = self.site
        return record


class HuntScheduler:
    """Digest-deduplicated, positive-first mutation scheduling."""

    def __init__(
        self,
        seeds: Sequence[CLitmus],
        *,
        operators: Optional[Sequence[str]] = None,
        registry: Optional[Registry] = None,
        round_limit: int = 64,
    ) -> None:
        self.operators = (
            tuple(operators) if operators is not None else DEFAULT_OPERATORS
        )
        self.registry = registry
        self.round_limit = round_limit
        self._tests: Dict[str, CLitmus] = {}
        self._order: List[str] = []
        self._lineage: Dict[str, HuntLineage] = {}
        self._mutated: Set[str] = set()
        #: mutants already enumerated per partially-mutated parent, so a
        #: round_limit-interrupted parent resumes where it stopped
        #: instead of re-counting its admitted prefix as duplicates
        self._consumed: Dict[str, int] = {}
        self.duplicates_skipped = 0
        self._seeds: List[CLitmus] = []
        for seed in seeds:
            digest = seed.digest()
            if digest in self._tests:
                self.duplicates_skipped += 1
                continue
            self._admit(seed, HuntLineage(digest=digest))
            self._seeds.append(seed)

    # ------------------------------------------------------------------ #
    def _admit(self, litmus: CLitmus, lineage: HuntLineage) -> None:
        self._tests[lineage.digest] = litmus
        self._order.append(lineage.digest)
        self._lineage[lineage.digest] = lineage

    def initial(self) -> List[CLitmus]:
        """Round 0: the deduplicated seeds."""
        return list(self._seeds)

    def next_round(self, positives: Iterable[str]) -> List[CLitmus]:
        """Schedule the next round's mutants, given the digests of every
        test with a positive cell so far.

        Mutates the not-yet-mutated tests positives-first (stable within
        each class), deduplicates against everything ever scheduled, and
        stops at ``round_limit`` new mutants — a partially-mutated parent
        stays unmarked, so the next round resumes it (already-scheduled
        mutants simply dedup away).  Returns an empty list when the
        family is exhausted.
        """
        positive_set = set(positives)
        parents = sorted(
            (d for d in self._order if d not in self._mutated),
            key=lambda d: 0 if d in positive_set else 1,
        )
        scheduled: List[CLitmus] = []
        for parent in parents:
            depth = self._lineage[parent].depth + 1
            already_consumed = self._consumed.get(parent, 0)
            exhausted_parent = True
            for position, mutation in enumerate(iter_mutants(
                self._tests[parent],
                operators=self.operators,
                registry=self.registry,
            )):
                if position < already_consumed:
                    continue  # re-enumerating a resumed parent's prefix
                if len(scheduled) >= self.round_limit:
                    exhausted_parent = False
                    break
                self._consumed[parent] = position + 1
                if mutation.digest in self._tests:
                    self.duplicates_skipped += 1
                    continue
                self._admit(
                    mutation.litmus,
                    HuntLineage(
                        digest=mutation.digest,
                        parent=parent,
                        operator=mutation.operator,
                        site=mutation.site,
                        depth=depth,
                    ),
                )
                scheduled.append(mutation.litmus)
            if exhausted_parent:
                self._mutated.add(parent)
                self._consumed.pop(parent, None)
            else:
                break
        return scheduled

    # ------------------------------------------------------------------ #
    def test(self, digest: str) -> CLitmus:
        return self._tests[digest]

    def lineage(self, digest: str) -> HuntLineage:
        return self._lineage[digest]

    @property
    def unique_tests(self) -> int:
        """Distinct tests scheduled so far (seeds included)."""
        return len(self._tests)
