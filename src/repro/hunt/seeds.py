"""Example hunt seeds — tests that *hide* the bugs their mutants expose.

A good hunt demo starts from seeds the campaign engine calls clean:
every cell equal or negative, nothing to report.  Mutation then walks
the test family until the ordering that masked the bug is weakened away.
These are the seeds behind ``telechat hunt --seeds examples``:

* :func:`fig1_masked` — the paper's Fig. 1 ``atomic_exchange`` shape
  with a **seq_cst** fence after the exchange.  The full barrier (DMB
  ISH) orders even the NORET read, so the buggy SWP selection
  (LLVM #68428, present in the default llvm-16 epoch) is invisible; one
  ``weaken-fence`` mutation (seq_cst → acquire) reproduces Fig. 1
  exactly — by content digest, the mutant *is* ``fig1_exchange``.
* :func:`lb_masked` — load buffering with acquire loads and release
  stores.  Fully ordered, the LB outcome is forbidden everywhere; it
  takes **two** weakenings on the same thread (load and store to
  relaxed) before AArch64 may reorder them, so this seed only turns
  positive in hunt round 2 — the multi-round, feedback-driven case.
"""

from __future__ import annotations

from typing import List

from ..lang.ast import CLitmus
from ..lang.parser import parse_c_litmus

FIG1_MASKED_SOURCE = r"""
C fig1_masked
{ *x = 0; *y = 0; }

void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_release);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}

void P1(atomic_int* y, atomic_int* x) {
  atomic_exchange_explicit(y, 2, memory_order_release);
  atomic_thread_fence(memory_order_seq_cst);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}

exists (P1:r0=0 /\ y=2)
"""

LB_MASKED_SOURCE = r"""
C lb_masked
{ *x = 0; *y = 0; }

void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_acquire);
  atomic_store_explicit(y, 1, memory_order_release);
}

void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_acquire);
  atomic_store_explicit(x, 1, memory_order_release);
}

exists (P0:r0=1 /\ P1:r0=1)
"""


def fig1_masked() -> CLitmus:
    """Fig. 1 with the bug masked behind a full fence (round-1 find)."""
    return parse_c_litmus(FIG1_MASKED_SOURCE, "fig1_masked")


def lb_masked() -> CLitmus:
    """Fully-ordered load buffering (round-2 find)."""
    return parse_c_litmus(LB_MASKED_SOURCE, "lb_masked")


def example_seeds() -> List[CLitmus]:
    """The ``telechat hunt --seeds examples`` seed set."""
    return [fig1_masked(), lb_masked()]
