"""``repro.hunt`` — mutation-guided bug hunting with automatic reduction.

The paper's evaluation rests on *finding* compiler bugs, not just
re-checking known litmus tests, and its future-work line expects that
"conducting mutation-based testing will find more bugs" (§V).  This
package is that loop, built from three parts the campaign engine
composes (``CampaignPlan(mode="hunt")``, :meth:`repro.api.Session.hunt`):

* :class:`HuntScheduler` — feedback-driven, digest-deduplicated
  scheduling of mutants (positives first), with full lineage;
* :func:`reduce_test` — delta-debugging reduction of every positive to
  a 1-minimal reproducer, each step re-verified through the cached
  toolchain;
* :mod:`~repro.hunt.seeds` — example seeds whose mutants expose the
  paper's Fig. 1 bug (``telechat hunt --seeds examples``).
"""

from .reduce import (
    ReductionError,
    ReductionResult,
    ReductionStep,
    reduce_test,
    test_size,
)
from .scheduler import HuntLineage, HuntScheduler
from .seeds import example_seeds, fig1_masked, lb_masked

__all__ = [
    "HuntLineage",
    "HuntScheduler",
    "ReductionError",
    "ReductionResult",
    "ReductionStep",
    "example_seeds",
    "fig1_masked",
    "lb_masked",
    "reduce_test",
    "test_size",
]
