"""The herd-style axiomatic simulator."""

from .dot import execution_to_dot, simulation_to_dot
from .enumerate import Budget, Candidate, EnumerationStats, enumerate_candidates
from .simulator import SimulationResult, run_programs, simulate_asm, simulate_c
from .templates import EventTemplate, PathConstraint, ThreadPath, ThreadProgram

__all__ = [
    "execution_to_dot",
    "simulation_to_dot",
    "Budget",
    "Candidate",
    "EnumerationStats",
    "enumerate_candidates",
    "SimulationResult",
    "run_programs",
    "simulate_asm",
    "simulate_c",
    "EventTemplate",
    "PathConstraint",
    "ThreadPath",
    "ThreadProgram",
]
