"""The herd-style axiomatic simulator."""

from .dot import execution_to_dot, simulation_to_dot
from .enumerate import (
    BasicRfStage,
    Budget,
    Candidate,
    CoherenceStage,
    EnumerationStats,
    ExecutionEnumerator,
    PathCombo,
    PathConstraintStage,
    PruneStage,
    default_stages,
    enumerate_candidates,
    exhaustive_stages,
)
from .simulator import SimulationResult, run_programs, simulate_asm, simulate_c
from .templates import EventTemplate, PathConstraint, ThreadPath, ThreadProgram

__all__ = [
    "execution_to_dot",
    "simulation_to_dot",
    "BasicRfStage",
    "Budget",
    "Candidate",
    "CoherenceStage",
    "EnumerationStats",
    "ExecutionEnumerator",
    "PathCombo",
    "PathConstraintStage",
    "PruneStage",
    "default_stages",
    "enumerate_candidates",
    "exhaustive_stages",
    "SimulationResult",
    "run_programs",
    "simulate_asm",
    "simulate_c",
    "EventTemplate",
    "PathConstraint",
    "ThreadPath",
    "ThreadProgram",
]
