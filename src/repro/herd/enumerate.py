"""Candidate-execution enumeration (the core of the herd-style simulator).

Given per-thread path sets, the enumerator generates every candidate
execution of a litmus test:

1. choose one control-flow path per thread,
2. instantiate event templates with global ids; build ``po``, ``rmw`` and
   dependency relations,
3. choose an rf source for every read (init write, any other-thread write
   to the same location, or a po-earlier same-thread write),
4. solve values by evaluating along ``data-dependency ∪ rf``; reject
   cyclic candidates (out-of-thin-air, forbidden by every shipped model)
   and rf choices inconsistent with the chosen branch conditions,
5. choose a coherence order: all interleavings of the writes per location
   (init first) — the factorial factor behind the paper's §IV-E state
   explosion,
6. yield the resulting :class:`~repro.core.execution.Execution`.

The ``Budget`` guards against the state explosion the paper describes:
exceeding it raises :class:`~repro.core.errors.SimulationTimeout`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import SimulationTimeout
from ..core.events import INIT_TID, Event, EventKind, MemoryOrder
from ..core.execution import Execution
from ..core.expr import Expr
from ..core.relations import Relation
from .templates import EventTemplate, PathConstraint, ThreadPath, ThreadProgram, rename_reads


@dataclass
class Budget:
    """Bounds on enumeration work.

    ``max_candidates`` caps the number of (rf × co) candidates considered;
    ``deadline_seconds`` caps wall-clock time.  Either limit raises
    :class:`SimulationTimeout` — the analogue of herd's one-hour timeout
    on the paper's Fig. 11 test.
    """

    max_candidates: int = 2_000_000
    deadline_seconds: Optional[float] = None
    _start: float = field(default_factory=time.perf_counter)

    def reset(self) -> None:
        self._start = time.perf_counter()

    def check(self, candidates: int) -> None:
        if candidates > self.max_candidates:
            raise SimulationTimeout(
                f"exceeded candidate budget ({self.max_candidates})",
                candidates_explored=candidates,
            )
        if (
            self.deadline_seconds is not None
            and time.perf_counter() - self._start > self.deadline_seconds
        ):
            raise SimulationTimeout(
                f"exceeded deadline ({self.deadline_seconds}s)",
                candidates_explored=candidates,
            )


@dataclass
class EnumerationStats:
    """Counters describing one enumeration run."""

    path_combinations: int = 0
    rf_assignments: int = 0
    candidates: int = 0
    rejected_value_cycle: int = 0
    rejected_constraint: int = 0
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class Candidate:
    """An execution plus the solved per-thread final-local values."""

    execution: Execution
    finals: Tuple[Tuple[str, int], ...]  # ("P0:r0", value)

    def finals_dict(self) -> Dict[str, int]:
        return dict(self.finals)


class _ValueCycle(Exception):
    pass


def _instantiate_paths(
    init: Mapping[str, int],
    chosen: Sequence[Tuple[ThreadProgram, ThreadPath]],
) -> Tuple[
    List[Event],
    Dict[int, EventTemplate],
    Relation,
    Relation,
    Relation,
    Relation,
    Relation,
    List[Tuple[str, Expr]],
    List[PathConstraint],
    Dict[int, int],
]:
    """Assign global event ids and build the static relations."""
    # every location touched gets an init write (herd zero-initialises)
    locations = set(init)
    for _, path in chosen:
        for t in path.templates:
            if t.loc is not None:
                locations.add(t.loc)
    full_init = {loc: init.get(loc, 0) for loc in sorted(locations)}

    events: List[Event] = []
    templates: Dict[int, EventTemplate] = {}
    next_eid = 0
    for loc, value in sorted(full_init.items()):
        events.append(
            Event(
                eid=next_eid,
                tid=INIT_TID,
                kind=EventKind.WRITE,
                loc=loc,
                value=value,
                tags=frozenset({"INIT"}),
            )
        )
        next_eid += 1

    po_pairs: List[Tuple[int, int]] = []
    rmw_pairs: List[Tuple[int, int]] = []
    addr_pairs: List[Tuple[int, int]] = []
    data_pairs: List[Tuple[int, int]] = []
    ctrl_pairs: List[Tuple[int, int]] = []
    finals: List[Tuple[str, Expr]] = []
    constraints: List[PathConstraint] = []
    write_exprs: Dict[int, Expr] = {}

    for program, path in chosen:
        placeholder_to_eid: Dict[int, int] = {}
        thread_eids: List[int] = []
        prev_eid: Optional[int] = None
        for template in path.templates:
            eid = next_eid
            next_eid += 1
            thread_eids.append(eid)
            templates[eid] = template
            if template.placeholder is not None:
                placeholder_to_eid[template.placeholder] = eid
            events.append(
                Event(
                    eid=eid,
                    tid=program.tid,
                    kind=template.kind,
                    loc=template.loc,
                    value=None,
                    order=template.order,
                    tags=template.tags,
                    label=template.label,
                )
            )
            if template.rmw_with_prev:
                if prev_eid is None:
                    raise ValueError("rmw write with no preceding read")
                rmw_pairs.append((prev_eid, eid))
            elif template.rmw_read_pos is not None:
                rmw_pairs.append((thread_eids[template.rmw_read_pos], eid))
            prev_eid = eid
        # program order: total within the thread (transitive)
        for i in range(len(thread_eids)):
            for j in range(i + 1, len(thread_eids)):
                po_pairs.append((thread_eids[i], thread_eids[j]))
        # dependencies and value expressions, renamed to global ids
        for eid in thread_eids:
            template = templates[eid]
            if template.value_expr is not None:
                expr = rename_reads(template.value_expr, placeholder_to_eid)
                write_exprs[eid] = expr
                for r in expr.reads():
                    data_pairs.append((r, eid))
            for p in template.addr_deps:
                addr_pairs.append((placeholder_to_eid[p], eid))
            for p in template.ctrl_deps:
                ctrl_pairs.append((placeholder_to_eid[p], eid))
        for name, expr in path.finals.items():
            finals.append(
                (f"{program.name}:{name}", rename_reads(expr, placeholder_to_eid))
            )
        for constraint in path.constraints:
            constraints.append(
                PathConstraint(
                    rename_reads(constraint.expr, placeholder_to_eid),
                    constraint.expected,
                )
            )

    return (
        events,
        templates,
        Relation(po_pairs),
        Relation(rmw_pairs),
        Relation(addr_pairs),
        Relation(data_pairs),
        Relation(ctrl_pairs),
        finals,
        constraints,
        write_exprs,  # type: ignore[return-value]
    )


def _rf_candidates(
    events: Sequence[Event],
    po: Relation,
    rmw: Relation,
) -> Dict[int, List[int]]:
    """For each read, the writes it may read from."""
    writes_by_loc: Dict[str, List[Event]] = {}
    for e in events:
        if e.is_write and e.loc is not None:
            writes_by_loc.setdefault(e.loc, []).append(e)
    own_rmw_write = {r: w for r, w in rmw}
    out: Dict[int, List[int]] = {}
    for e in events:
        if not e.is_read or e.loc is None:
            continue
        candidates: List[int] = []
        for w in writes_by_loc.get(e.loc, ()):
            if w.eid == e.eid:
                continue
            if own_rmw_write.get(e.eid) == w.eid:
                continue  # an RMW cannot read its own write
            if w.tid == e.tid and (e.eid, w.eid) in po.pairs:
                continue  # reading from a po-later same-thread write is
                # always a coherence violation; prune early
            candidates.append(w.eid)
        out[e.eid] = candidates
    return out


def _solve_values(
    events: Sequence[Event],
    rf_map: Mapping[int, int],
    write_exprs: Mapping[int, Expr],
) -> Dict[int, int]:
    """Evaluate along data-dep ∪ rf; raise ``_ValueCycle`` on cycles."""
    values: Dict[int, int] = {}
    for e in events:
        if e.value is not None:
            values[e.eid] = e.value
    visiting: set = set()
    by_id = {e.eid: e for e in events}

    def value_of(eid: int) -> int:
        if eid in values:
            return values[eid]
        if eid in visiting:
            raise _ValueCycle()
        visiting.add(eid)
        event = by_id[eid]
        if event.is_read:
            result = value_of(rf_map[eid])
        elif event.is_write:
            expr = write_exprs.get(eid)
            if expr is None:
                result = 0
            else:
                env = {r: value_of(r) for r in expr.reads()}
                result = expr.eval(env)
        else:
            result = 0
        visiting.discard(eid)
        values[eid] = result
        return result

    for e in events:
        if e.is_read or e.is_write:
            value_of(e.eid)
    return values


def enumerate_candidates(
    init: Mapping[str, int],
    programs: Sequence[ThreadProgram],
    budget: Optional[Budget] = None,
    stats: Optional[EnumerationStats] = None,
) -> Iterator[Candidate]:
    """Yield every consistent candidate execution of the test."""
    budget = budget or Budget()
    stats = stats if stats is not None else EnumerationStats()
    start = time.perf_counter()
    counter = 0

    try:
        for combo in itertools.product(*(p.paths for p in programs)):
            stats.path_combinations += 1
            chosen = list(zip(programs, combo))
            (
                events,
                _templates,
                po,
                rmw,
                addr,
                data,
                ctrl,
                finals,
                constraints,
                write_exprs,
            ) = _instantiate_paths(init, chosen)
            rf_candidates = _rf_candidates(events, po, rmw)
            read_ids = sorted(rf_candidates)
            choice_lists = [rf_candidates[r] for r in read_ids]
            if any(not c for c in choice_lists):
                continue  # a read with no possible source: infeasible path
            writes_by_loc: Dict[str, List[int]] = {}
            init_write: Dict[str, int] = {}
            for e in events:
                if e.is_write and e.loc is not None:
                    if e.is_init:
                        init_write[e.loc] = e.eid
                    else:
                        writes_by_loc.setdefault(e.loc, []).append(e.eid)

            for rf_choice in itertools.product(*choice_lists):
                stats.rf_assignments += 1
                rf_map = dict(zip(read_ids, rf_choice))
                try:
                    values = _solve_values(events, rf_map, write_exprs)
                except _ValueCycle:
                    stats.rejected_value_cycle += 1
                    counter += 1
                    budget.check(counter)
                    continue
                ok = True
                for constraint in constraints:
                    env = {r: values[r] for r in constraint.expr.reads()}
                    if bool(constraint.expr.eval(env)) != constraint.expected:
                        ok = False
                        break
                if not ok:
                    stats.rejected_constraint += 1
                    counter += 1
                    budget.check(counter)
                    continue

                concrete = [
                    e if e.value is not None else e.with_value(values[e.eid])
                    if e.is_access
                    else e
                    for e in events
                ]
                rf_rel = Relation((w, r) for r, w in rf_map.items())
                final_values = tuple(
                    (name, expr.eval({r: values[r] for r in expr.reads()}))
                    for name, expr in finals
                )

                # coherence: permutations per location, init write first
                loc_perms = [
                    [
                        [init_write[loc]] + list(perm)
                        for perm in itertools.permutations(ws)
                    ]
                    for loc, ws in sorted(writes_by_loc.items())
                ]
                if not loc_perms:
                    loc_perms = [[[]]]
                for co_combo in itertools.product(*loc_perms):
                    counter += 1
                    stats.candidates += 1
                    budget.check(counter)
                    co = Relation.empty()
                    for chain in co_combo:
                        co = co | Relation.from_order(chain)
                    # init writes of untouched locations are co-minimal
                    # trivially (single write, no pairs needed)
                    execution = Execution(
                        events=concrete,
                        po=po,
                        rf=rf_rel,
                        co=co,
                        rmw=rmw,
                        addr=addr,
                        data=data,
                        ctrl=ctrl,
                    )
                    yield Candidate(execution=execution, finals=final_values)
    finally:
        stats.elapsed_seconds = time.perf_counter() - start
