"""Candidate-execution enumeration (the core of the herd-style simulator).

Given per-thread path sets, the :class:`ExecutionEnumerator` generates
every candidate execution of a litmus test in stages:

1. choose one control-flow path per thread and instantiate event
   templates with global ids (a :class:`PathCombo`); build ``po``,
   ``rmw`` and dependency relations,
2. choose an rf source for every read (init write, any other-thread
   write to the same location, or the po-latest same-thread write) —
   sources that can only produce coherence violations are filtered out
   up front by the pruning stages,
3. solve values by evaluating along ``data-dependency ∪ rf``; reject
   cyclic candidates (out-of-thin-air, forbidden by every shipped model)
   and rf choices inconsistent with the chosen branch conditions,
4. derive the coherence constraints the rf choice and program order
   impose (the CoWW/CoWR/CoRW/CoRR shapes every shipped model forbids)
   and build coherence orders incrementally, write-by-write: a prefix
   that violates a constraint is abandoned before its factorial tail is
   expanded — the paper's §IV-E state explosion, pruned at the root,
5. yield the resulting :class:`~repro.core.execution.Execution`.

Pruning is *pluggable*: each :class:`PruneStage` contributes rf-source
filters, whole-assignment rejections and coherence-precedence edges, and
every stage's work is tallied in :class:`EnumerationStats`.  The pruning
performed by the default stages is sound for every registered model —
all of them reject coherence violations (``acyclic po-loc | com`` or the
RC11 ``irreflexive hb; eco?`` axiom), so the surviving outcome sets are
identical to exhaustive enumeration.

The ``Budget`` guards against the state explosion the paper describes:
exceeding it raises :class:`~repro.core.errors.SimulationTimeout`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.errors import SimulationTimeout
from ..core.events import INIT_TID, Event, EventKind
from ..core.execution import Execution
from ..core.expr import Expr
from ..core.relations import EventUniverse, Pair, Relation, RelationBuilder
from .templates import EventTemplate, PathConstraint, ThreadPath, ThreadProgram, rename_reads


@dataclass
class Budget:
    """Bounds on enumeration work.

    ``max_candidates`` caps the number of work units (candidates plus
    pruned/rejected partial candidates) considered; ``deadline_seconds``
    caps wall-clock time.  Either limit raises
    :class:`SimulationTimeout` — the analogue of herd's one-hour timeout
    on the paper's Fig. 11 test.

    The deadline is measured from the first use (or the last
    :meth:`reset`), never from construction, so a Budget built early —
    e.g. at campaign setup — is not born expired.
    """

    max_candidates: int = 2_000_000
    deadline_seconds: Optional[float] = None
    _start: Optional[float] = field(default=None, repr=False)

    def reset(self) -> None:
        self._start = time.perf_counter()

    def check(self, candidates: int) -> None:
        if candidates > self.max_candidates:
            raise SimulationTimeout(
                f"exceeded candidate budget ({self.max_candidates})",
                candidates_explored=candidates,
            )
        if self.deadline_seconds is not None:
            if self._start is None:
                self._start = time.perf_counter()
            if time.perf_counter() - self._start > self.deadline_seconds:
                raise SimulationTimeout(
                    f"exceeded deadline ({self.deadline_seconds}s)",
                    candidates_explored=candidates,
                )


@dataclass
class EnumerationStats:
    """Counters describing one enumeration run.

    The ``rejected_*``/``pruned_*`` fields are per-stage prune counters:
    how much of the candidate space each stage of the solver discarded
    before a full candidate was materialised.  ``stage_seconds``
    attributes wall-clock to each prune stage by name (its
    ``filter_rf_sources`` / ``reject_assignment`` / ``co_precedence``
    hooks combined), so kernel-level speedups are visible per stage, not
    just in the total.
    """

    path_combinations: int = 0
    rf_assignments: int = 0
    candidates: int = 0
    rejected_value_cycle: int = 0
    rejected_constraint: int = 0
    #: rf source options removed up front (each kills a whole subtree of
    #: the rf assignment product)
    rf_sources_pruned: int = 0
    #: whole rf assignments whose coherence constraints are unsatisfiable
    rejected_rf_coherence: int = 0
    #: coherence-order prefixes abandoned before their factorial tail
    pruned_co_prefixes: int = 0
    elapsed_seconds: float = 0.0
    #: wall-clock spent inside each prune stage's hooks, by stage name
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_pruned(self) -> int:
        return (
            self.rejected_value_cycle
            + self.rejected_constraint
            + self.rf_sources_pruned
            + self.rejected_rf_coherence
            + self.pruned_co_prefixes
        )

    def add_stage_time(self, name: str, seconds: float) -> None:
        self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "path_combinations": self.path_combinations,
            "rf_assignments": self.rf_assignments,
            "candidates": self.candidates,
            "rejected_value_cycle": self.rejected_value_cycle,
            "rejected_constraint": self.rejected_constraint,
            "rf_sources_pruned": self.rf_sources_pruned,
            "rejected_rf_coherence": self.rejected_rf_coherence,
            "pruned_co_prefixes": self.pruned_co_prefixes,
            "total_pruned": self.total_pruned,
            "elapsed_seconds": self.elapsed_seconds,
            "stage_seconds": dict(self.stage_seconds),
        }


@dataclass(frozen=True)
class Candidate:
    """An execution plus the solved per-thread final-local values."""

    execution: Execution
    finals: Tuple[Tuple[str, int], ...]  # ("P0:r0", value)

    def finals_dict(self) -> Dict[str, int]:
        return dict(self.finals)


class _ValueCycle(Exception):
    pass


@dataclass
class PathCombo:
    """One path-per-thread choice with everything derivable before rf.

    All of this is *static* per combination: the events (ids, kinds,
    locations — values still unsolved), the po/rmw/dependency relations,
    and the indexes the pruning stages consult.  The Cat static prefix
    (see :mod:`repro.cat.interp`) is evaluated once per PathCombo.
    """

    events: List[Event]
    templates: Dict[int, EventTemplate]
    po: Relation
    rmw: Relation
    addr: Relation
    data: Relation
    ctrl: Relation
    finals: List[Tuple[str, Expr]]
    constraints: List[PathConstraint]
    write_exprs: Dict[int, Expr]
    #: per-read feasible rf sources (after stage filtering)
    rf_candidates: Dict[int, List[int]] = field(default_factory=dict)
    read_ids: List[int] = field(default_factory=list)
    #: non-init writes per location, in eid order
    writes_by_loc: Dict[str, List[int]] = field(default_factory=dict)
    init_write: Dict[str, int] = field(default_factory=dict)
    init_ids: FrozenSet[int] = frozenset()
    #: read -> same-thread po-earlier writes to the read's location
    writes_before: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: read -> same-thread po-later writes to the read's location
    writes_after: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: same-thread same-location po-ordered read pairs (for CoRR)
    read_pairs: Tuple[Tuple[int, int], ...] = ()
    #: per-location CoWW edges forced by program order alone
    base_co_edges: Dict[str, List[Pair]] = field(default_factory=dict)
    #: the interned event universe the combo's relations are encoded
    #: against (global ids are assigned densely, 0..n-1)
    universe: Optional[EventUniverse] = None

    @property
    def choice_lists(self) -> List[List[int]]:
        return [self.rf_candidates[r] for r in self.read_ids]

    def feasible(self) -> bool:
        return all(self.rf_candidates[r] for r in self.read_ids)


# --------------------------------------------------------------------- #
# pruning stages
# --------------------------------------------------------------------- #
class PruneStage:
    """A pluggable pruning stage of the enumerator.

    Stages see three hook points, called in stage order:

    * :meth:`filter_rf_sources` — drop rf sources a read can never take
      (runs once per :class:`PathCombo`; each dropped source kills the
      whole subtree of rf assignments containing it);
    * :meth:`reject_assignment` — veto a solved rf assignment;
    * :meth:`co_precedence` — emit ``(earlier, later)`` coherence
      constraints between same-location writes, used to prune coherence
      prefixes write-by-write.

    The base class is a no-op on all three.
    """

    name = "prune"

    def filter_rf_sources(
        self,
        combo: PathCombo,
        read: int,
        sources: List[int],
        stats: EnumerationStats,
    ) -> List[int]:
        return sources

    def reject_assignment(
        self,
        combo: PathCombo,
        rf_map: Mapping[int, int],
        values: Mapping[int, int],
        stats: EnumerationStats,
    ) -> bool:
        return False

    def co_precedence(
        self, combo: PathCombo, rf_map: Mapping[int, int]
    ) -> Iterable[Pair]:
        return ()


class BasicRfStage(PruneStage):
    """The seed enumerator's only filter: a read never takes a po-later
    same-thread write (always a coherence violation).  Used by
    :func:`exhaustive_stages` to reproduce brute-force enumeration."""

    name = "rf-po"

    def filter_rf_sources(
        self,
        combo: PathCombo,
        read: int,
        sources: List[int],
        stats: EnumerationStats,
    ) -> List[int]:
        po_after_read = combo.po.successor_mask(read)
        kept: List[int] = []
        for w in sources:
            if (po_after_read >> w) & 1:
                stats.rf_sources_pruned += 1
                continue
            kept.append(w)
        return kept


class CoherenceStage(PruneStage):
    """Prunes rf choices and coherence prefixes using the per-location
    coherence shapes (CoWW/CoWR/CoRW/CoRR) that every shipped model
    forbids — the rf/po-derived constraints of the staged solver."""

    name = "coherence"

    def filter_rf_sources(
        self,
        combo: PathCombo,
        read: int,
        sources: List[int],
        stats: EnumerationStats,
    ) -> List[int]:
        prior = combo.writes_before.get(read, ())
        po_after_read = combo.po.successor_mask(read)
        kept: List[int] = []
        for w in sources:
            # reading a po-later same-thread write is a po-loc ∪ rf cycle
            if (po_after_read >> w) & 1:
                stats.rf_sources_pruned += 1
                continue
            # with a same-thread write w' before the read, anything
            # necessarily co-before w' is invisible: the init write, and
            # every same-thread write other than the po-latest (CoWW
            # forces their coherence order)
            if prior:
                if w in combo.init_ids:
                    stats.rf_sources_pruned += 1
                    continue
                if w in prior and w != prior[-1]:
                    stats.rf_sources_pruned += 1
                    continue
            kept.append(w)
        return kept

    def co_precedence(
        self, combo: PathCombo, rf_map: Mapping[int, int]
    ) -> Iterable[Pair]:
        edges: List[Pair] = []
        # CoWW: program order between same-thread same-location writes
        # is coherence order
        for loc_edges in combo.base_co_edges.values():
            edges.extend(loc_edges)
        for r, w in rf_map.items():
            # CoWR: same-thread writes before the read are co-before
            # its rf source
            for w_prior in combo.writes_before.get(r, ()):
                if w_prior != w:
                    edges.append((w_prior, w))
            # CoRW: the rf source is co-before same-thread writes after
            # the read
            for w_later in combo.writes_after.get(r, ()):
                if w_later != w:
                    edges.append((w, w_later))
        # CoRR: po-ordered same-location reads see co-ordered writes
        for r1, r2 in combo.read_pairs:
            wa, wb = rf_map[r1], rf_map[r2]
            if wa != wb:
                edges.append((wa, wb))
        return edges


class PathConstraintStage(PruneStage):
    """Rejects rf assignments whose solved values contradict the branch
    conditions of the chosen control-flow paths."""

    name = "path-constraint"

    def reject_assignment(
        self,
        combo: PathCombo,
        rf_map: Mapping[int, int],
        values: Mapping[int, int],
        stats: EnumerationStats,
    ) -> bool:
        for constraint in combo.constraints:
            env = {r: values[r] for r in constraint.expr.reads()}
            if bool(constraint.expr.eval(env)) != constraint.expected:
                stats.rejected_constraint += 1
                return True
        return False


def default_stages() -> Tuple[PruneStage, ...]:
    """The staged solver's default pruning pipeline."""
    return (CoherenceStage(), PathConstraintStage())


def exhaustive_stages() -> Tuple[PruneStage, ...]:
    """Brute-force enumeration, as the seed enumerator behaved: every
    coherence permutation is materialised and left for the model to
    reject.  Kept for state-explosion studies (paper §IV-E, Fig. 11)."""
    return (BasicRfStage(), PathConstraintStage())


# --------------------------------------------------------------------- #
# path instantiation
# --------------------------------------------------------------------- #
def _instantiate_paths(
    init: Mapping[str, int],
    chosen: Sequence[Tuple[ThreadProgram, ThreadPath]],
) -> PathCombo:
    """Assign global event ids and build the static relations."""
    # every location touched gets an init write (herd zero-initialises)
    locations = set(init)
    for _, path in chosen:
        for t in path.templates:
            if t.loc is not None:
                locations.add(t.loc)
    full_init = {loc: init.get(loc, 0) for loc in sorted(locations)}

    events: List[Event] = []
    templates: Dict[int, EventTemplate] = {}
    next_eid = 0
    for loc, value in sorted(full_init.items()):
        events.append(
            Event(
                eid=next_eid,
                tid=INIT_TID,
                kind=EventKind.WRITE,
                loc=loc,
                value=value,
                tags=frozenset({"INIT"}),
            )
        )
        next_eid += 1

    po_rows: Dict[int, int] = {}
    rmw_pairs: List[Pair] = []
    addr_pairs: List[Pair] = []
    data_pairs: List[Pair] = []
    ctrl_pairs: List[Pair] = []
    finals: List[Tuple[str, Expr]] = []
    constraints: List[PathConstraint] = []
    write_exprs: Dict[int, Expr] = {}

    for program, path in chosen:
        placeholder_to_eid: Dict[int, int] = {}
        thread_eids: List[int] = []
        prev_eid: Optional[int] = None
        for template in path.templates:
            eid = next_eid
            next_eid += 1
            thread_eids.append(eid)
            templates[eid] = template
            if template.placeholder is not None:
                placeholder_to_eid[template.placeholder] = eid
            events.append(
                Event(
                    eid=eid,
                    tid=program.tid,
                    kind=template.kind,
                    loc=template.loc,
                    value=None,
                    order=template.order,
                    tags=template.tags,
                    label=template.label,
                )
            )
            if template.rmw_with_prev:
                if prev_eid is None:
                    raise ValueError("rmw write with no preceding read")
                rmw_pairs.append((prev_eid, eid))
            elif template.rmw_read_pos is not None:
                rmw_pairs.append((thread_eids[template.rmw_read_pos], eid))
            prev_eid = eid
        # program order: total within the thread (transitive), built as
        # suffix bitmasks — one row per event, no pair materialisation
        later = 0
        for eid in reversed(thread_eids):
            if later:
                po_rows[eid] = later
            later |= 1 << eid
        # dependencies and value expressions, renamed to global ids
        for eid in thread_eids:
            template = templates[eid]
            if template.value_expr is not None:
                expr = rename_reads(template.value_expr, placeholder_to_eid)
                write_exprs[eid] = expr
                for r in expr.reads():
                    data_pairs.append((r, eid))
            for p in template.addr_deps:
                addr_pairs.append((placeholder_to_eid[p], eid))
            for p in template.ctrl_deps:
                ctrl_pairs.append((placeholder_to_eid[p], eid))
        for name, expr in path.finals.items():
            finals.append(
                (f"{program.name}:{name}", rename_reads(expr, placeholder_to_eid))
            )
        for constraint in path.constraints:
            constraints.append(
                PathConstraint(
                    rename_reads(constraint.expr, placeholder_to_eid),
                    constraint.expected,
                )
            )

    combo = PathCombo(
        events=events,
        templates=templates,
        po=Relation.from_rows(po_rows),
        rmw=Relation(rmw_pairs),
        addr=Relation(addr_pairs),
        data=Relation(data_pairs),
        ctrl=Relation(ctrl_pairs),
        finals=finals,
        constraints=constraints,
        write_exprs=write_exprs,
        universe=EventUniverse(e.eid for e in events),
    )
    _index_combo(combo)
    return combo


def _index_combo(combo: PathCombo) -> None:
    """Build the write/read indexes the pruning stages consult."""
    events = combo.events
    writes_by_loc: Dict[str, List[int]] = {}
    init_write: Dict[str, int] = {}
    init_ids: Set[int] = set()
    for e in events:
        if e.is_write and e.loc is not None:
            if e.is_init:
                init_write[e.loc] = e.eid
                init_ids.add(e.eid)
            else:
                writes_by_loc.setdefault(e.loc, []).append(e.eid)
    combo.writes_by_loc = writes_by_loc
    combo.init_write = init_write
    combo.init_ids = frozenset(init_ids)

    po = combo.po
    # per thread+location, accesses in program order
    by_thread_loc: Dict[Tuple[int, Optional[str]], List[Event]] = {}
    for e in events:
        if e.is_access and not e.is_init:
            by_thread_loc.setdefault((e.tid, e.loc), []).append(e)

    writes_before: Dict[int, Tuple[int, ...]] = {}
    writes_after: Dict[int, Tuple[int, ...]] = {}
    read_pairs: List[Tuple[int, int]] = []
    base_co_edges: Dict[str, List[Pair]] = {}
    for (tid, loc), group in by_thread_loc.items():
        if loc is None:
            continue
        for e in group:
            if e.is_read:
                succ = po.successor_mask(e.eid)
                before = tuple(
                    w.eid
                    for w in group
                    if w.is_write and (po.successor_mask(w.eid) >> e.eid) & 1
                )
                after = tuple(
                    w.eid for w in group if w.is_write and (succ >> w.eid) & 1
                )
                if before:
                    writes_before[e.eid] = before
                if after:
                    writes_after[e.eid] = after
        reads = [e.eid for e in group if e.is_read]
        for r1 in reads:
            succ = po.successor_mask(r1)
            for r2 in reads:
                if (succ >> r2) & 1:
                    read_pairs.append((r1, r2))
        ws = [e.eid for e in group if e.is_write]
        for w1 in ws:
            succ = po.successor_mask(w1)
            for w2 in ws:
                if (succ >> w2) & 1:
                    base_co_edges.setdefault(loc, []).append((w1, w2))
    combo.writes_before = writes_before
    combo.writes_after = writes_after
    combo.read_pairs = tuple(read_pairs)
    combo.base_co_edges = base_co_edges


def _rf_candidates(combo: PathCombo) -> Dict[int, List[int]]:
    """For each read, the writes it may structurally read from."""
    writes_by_loc: Dict[str, List[Event]] = {}
    for e in combo.events:
        if e.is_write and e.loc is not None:
            writes_by_loc.setdefault(e.loc, []).append(e)
    own_rmw_write = {r: w for r, w in combo.rmw}
    out: Dict[int, List[int]] = {}
    for e in combo.events:
        if not e.is_read or e.loc is None:
            continue
        candidates: List[int] = []
        for w in writes_by_loc.get(e.loc, ()):
            if w.eid == e.eid:
                continue
            if own_rmw_write.get(e.eid) == w.eid:
                continue  # an RMW cannot read its own write
            candidates.append(w.eid)
        out[e.eid] = candidates
    return out


def _solve_values(
    events: Sequence[Event],
    rf_map: Mapping[int, int],
    write_exprs: Mapping[int, Expr],
) -> Dict[int, int]:
    """Evaluate along data-dep ∪ rf; raise ``_ValueCycle`` on cycles."""
    values: Dict[int, int] = {}
    for e in events:
        if e.value is not None:
            values[e.eid] = e.value
    visiting: set = set()
    by_id = {e.eid: e for e in events}

    def value_of(eid: int) -> int:
        if eid in values:
            return values[eid]
        if eid in visiting:
            raise _ValueCycle()
        visiting.add(eid)
        event = by_id[eid]
        if event.is_read:
            result = value_of(rf_map[eid])
        elif event.is_write:
            expr = write_exprs.get(eid)
            if expr is None:
                result = 0
            else:
                env = {r: value_of(r) for r in expr.reads()}
                result = expr.eval(env)
        else:
            result = 0
        visiting.discard(eid)
        values[eid] = result
        return result

    for e in events:
        if e.is_read or e.is_write:
            value_of(e.eid)
    return values


# --------------------------------------------------------------------- #
# the enumerator
# --------------------------------------------------------------------- #
class ExecutionEnumerator:
    """The staged candidate-execution solver.

    Iterating yields every consistent :class:`Candidate`.  Callers that
    want the per-path-combination structure (e.g. the simulator, which
    evaluates a compiled model's static prefix once per combination)
    drive :meth:`path_combos` / :meth:`candidates_for` directly, wrapped
    in :meth:`start` / :meth:`finish` for budget and timing bookkeeping.
    """

    def __init__(
        self,
        init: Mapping[str, int],
        programs: Sequence[ThreadProgram],
        budget: Optional[Budget] = None,
        stats: Optional[EnumerationStats] = None,
        stages: Optional[Sequence[PruneStage]] = None,
    ) -> None:
        self.init = dict(init)
        self.programs = list(programs)
        self.budget = budget or Budget()
        self.stats = stats if stats is not None else EnumerationStats()
        self.stages: Tuple[PruneStage, ...] = (
            tuple(stages) if stages is not None else default_stages()
        )
        self._counter = 0
        self._started_at: Optional[float] = None

    # -- bookkeeping --------------------------------------------------- #
    def start(self) -> None:
        self.budget.reset()
        self._started_at = time.perf_counter()

    def finish(self) -> None:
        if self._started_at is not None:
            self.stats.elapsed_seconds += time.perf_counter() - self._started_at
            self._started_at = None

    def _tick(self) -> None:
        self._counter += 1
        self.budget.check(self._counter)

    # -- stage 1: path combinations ------------------------------------ #
    def path_combos(self) -> Iterator[PathCombo]:
        for combo_paths in itertools.product(*(p.paths for p in self.programs)):
            self.stats.path_combinations += 1
            combo = _instantiate_paths(self.init, list(zip(self.programs, combo_paths)))
            raw = _rf_candidates(combo)
            filtered: Dict[int, List[int]] = {}
            for read, sources in raw.items():
                for stage in self.stages:
                    t0 = time.perf_counter()
                    sources = stage.filter_rf_sources(combo, read, sources, self.stats)
                    self.stats.add_stage_time(stage.name, time.perf_counter() - t0)
                filtered[read] = sources
            combo.rf_candidates = filtered
            combo.read_ids = sorted(filtered)
            if not combo.feasible():
                continue  # a read with no possible source: infeasible path
            yield combo

    # -- stages 2-4: rf assignment, value solving, coherence ----------- #
    def candidates_for(self, combo: PathCombo) -> Iterator[Candidate]:
        for rf_choice in itertools.product(*combo.choice_lists):
            self.stats.rf_assignments += 1
            rf_map = dict(zip(combo.read_ids, rf_choice))
            try:
                values = _solve_values(combo.events, rf_map, combo.write_exprs)
            except _ValueCycle:
                self.stats.rejected_value_cycle += 1
                self._tick()
                continue
            rejected = False
            for stage in self.stages:
                t0 = time.perf_counter()
                verdict = stage.reject_assignment(combo, rf_map, values, self.stats)
                self.stats.add_stage_time(stage.name, time.perf_counter() - t0)
                if verdict:
                    rejected = True
                    break
            if rejected:
                self._tick()
                continue

            edges_by_loc = self._co_constraints(combo, rf_map)
            if edges_by_loc is None:
                self.stats.rejected_rf_coherence += 1
                self._tick()
                continue

            concrete = [
                e if e.value is not None else e.with_value(values[e.eid])
                if e.is_access
                else e
                for e in combo.events
            ]
            rf_rel = Relation((w, r) for r, w in rf_map.items())
            final_values = tuple(
                (name, expr.eval({r: values[r] for r in expr.reads()}))
                for name, expr in combo.finals
            )

            for co in self._co_orders(combo, edges_by_loc):
                self.stats.candidates += 1
                self._tick()
                execution = Execution(
                    events=concrete,
                    po=combo.po,
                    rf=rf_rel,
                    co=co,
                    rmw=combo.rmw,
                    addr=combo.addr,
                    data=combo.data,
                    ctrl=combo.ctrl,
                )
                yield Candidate(execution=execution, finals=final_values)

    def _co_constraints(
        self, combo: PathCombo, rf_map: Mapping[int, int]
    ) -> Optional[Dict[str, Dict[int, Set[int]]]]:
        """Per-location predecessor constraints over non-init writes.

        Returns ``None`` when the constraints are unsatisfiable: an edge
        forces a write co-before the init write, or the per-location
        constraint graph is cyclic — either way, no coherence order can
        satisfy this rf assignment.
        """
        loc_of = {
            e.eid: e.loc for e in combo.events if e.is_write and e.loc is not None
        }
        preds: Dict[str, Dict[int, Set[int]]] = {
            loc: {w: set() for w in ws} for loc, ws in combo.writes_by_loc.items()
        }
        builders: Dict[str, RelationBuilder] = {}
        for stage in self.stages:
            t0 = time.perf_counter()
            try:
                for a, b in stage.co_precedence(combo, rf_map):
                    if a in combo.init_ids:
                        continue  # init is co-first: trivially satisfied
                    if b in combo.init_ids:
                        return None  # nothing can be co-before init
                    loc = loc_of[a]
                    builder = builders.setdefault(loc, RelationBuilder())
                    # incremental infeasibility check: a constraint edge
                    # that closes a cycle means no coherence order exists
                    if builder.would_close_cycle(a, b):
                        return None
                    if builder.add(a, b):
                        loc_preds = preds.setdefault(loc, {})
                        loc_preds.setdefault(b, set()).add(a)
                        loc_preds.setdefault(a, set())
            finally:
                self.stats.add_stage_time(stage.name, time.perf_counter() - t0)
        return preds

    def _co_orders(
        self, combo: PathCombo, preds: Dict[str, Dict[int, Set[int]]]
    ) -> Iterator[Relation]:
        """All coherence orders consistent with the derived constraints.

        Orders are built incrementally, write-by-write and per location:
        a write whose constraint-predecessors are not all placed prunes
        the whole prefix (and its factorial tail) in one step.  Each
        per-location chain becomes a total order via
        :meth:`Relation.from_order` (suffix bitmasks, no pair loops) and
        the cross-location product unions the disjoint row sets, so each
        location-order is encoded once and shared across its whole
        subtree of combinations.
        """
        locs = sorted(combo.writes_by_loc)
        per_loc: List[List[Relation]] = []
        for loc in locs:
            ws = combo.writes_by_loc[loc]
            orders = [
                Relation.from_order((combo.init_write[loc],) + chain)
                for chain in self._linear_extensions(ws, preds.get(loc, {}))
            ]
            per_loc.append(orders)
        # init writes of untouched locations are co-minimal trivially
        # (single write, no pairs needed)

        def product(index: int, co: Relation) -> Iterator[Relation]:
            if index == len(per_loc):
                yield co
                return
            for order in per_loc[index]:
                yield from product(index + 1, co.union(order))

        yield from product(0, Relation.empty())

    def _linear_extensions(
        self, writes: Sequence[int], preds: Mapping[int, Set[int]]
    ) -> Iterator[Tuple[int, ...]]:
        """Backtracking linear-extension enumeration with prefix pruning."""
        def extend(placed: List[int], remaining: List[int]) -> Iterator[Tuple[int, ...]]:
            if not remaining:
                yield tuple(placed)
                return
            placed_set = set(placed)
            for i, w in enumerate(remaining):
                if preds.get(w, _EMPTY_SET) <= placed_set:
                    placed.append(w)
                    yield from extend(placed, remaining[:i] + remaining[i + 1 :])
                    placed.pop()
                else:
                    # this prefix can never place w here: the factorial
                    # tail below it is never expanded
                    self.stats.pruned_co_prefixes += 1
                    self._tick()

        yield from extend([], list(writes))

    # -- the classic all-in-one iteration ------------------------------ #
    def __iter__(self) -> Iterator[Candidate]:
        self.start()
        try:
            for combo in self.path_combos():
                yield from self.candidates_for(combo)
        finally:
            self.finish()


_EMPTY_SET: FrozenSet[int] = frozenset()


def enumerate_candidates(
    init: Mapping[str, int],
    programs: Sequence[ThreadProgram],
    budget: Optional[Budget] = None,
    stats: Optional[EnumerationStats] = None,
    stages: Optional[Sequence[PruneStage]] = None,
) -> Iterator[Candidate]:
    """Yield every consistent candidate execution of the test.

    A thin wrapper over :class:`ExecutionEnumerator` kept for callers
    that do not need the staged structure.
    """
    yield from ExecutionEnumerator(
        init, programs, budget=budget, stats=stats, stages=stages
    )
