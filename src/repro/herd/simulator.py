"""The herd-style simulator: enumerate, filter by a model, collect outcomes.

``herd(P, M)`` (paper §II) runs litmus test P under memory model M and
returns the set of allowed outcomes.  This module implements that for both
front-ends:

* :func:`simulate_c` — C litmus tests under a C/C++ model (rc11, …),
* :func:`simulate_asm` — assembly litmus tests under an architecture model.

Executions flagged by the model (data races → undefined behaviour, const
violations) are reported via :attr:`SimulationResult.flags`; callers such
as mcompare treat UB-flagged source tests as "anything goes".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..cat.interp import Model
from ..cat.registry import get_model
from ..cat.stdlib import build_static_env, dynamic_bindings
from ..core.execution import Execution, Outcome
from ..core.litmus import Condition
from .enumerate import (Budget, EnumerationStats, ExecutionEnumerator, PruneStage)
from .templates import ThreadProgram


@dataclass
class SimulationResult:
    """Outcomes of simulating one litmus test under one model."""

    test_name: str
    model_name: str
    outcomes: FrozenSet[Outcome]
    #: flag names raised by any allowed execution (e.g. undefined-behaviour)
    flags: FrozenSet[str]
    #: outcomes of executions that raised flags
    flagged_outcomes: FrozenSet[Outcome]
    stats: EnumerationStats
    #: allowed executions paired with their outcome (kept only on request)
    executions: Tuple[Tuple[Execution, Outcome], ...] = ()
    #: wall-clock the enumeration took.  Cached/hoisted consumers (the
    #: campaign runner reuses one source simulation across many cells)
    #: read the *original* cost from here instead of reporting zero.
    elapsed_seconds: float = 0.0

    @property
    def has_undefined_behaviour(self) -> bool:
        return "undefined-behaviour" in self.flags

    @property
    def has_const_violation(self) -> bool:
        return "const-violation" in self.flags

    def condition_holds(self, condition: Condition) -> bool:
        return condition.holds_over(self.outcomes)

    def witnesses(self, condition: Condition) -> List[Outcome]:
        return condition.witnesses(self.outcomes)

    def pretty_outcomes(self) -> str:
        return "\n".join(str(o) for o in sorted(self.outcomes, key=lambda o: o.bindings))


def run_programs(
    name: str,
    init: Dict[str, int],
    programs: Sequence[ThreadProgram],
    model: Union[str, Model],
    budget: Optional[Budget] = None,
    keep_executions: bool = False,
    stages: Optional[Sequence[PruneStage]] = None,
) -> SimulationResult:
    """Enumerate candidates of pre-elaborated threads and filter by model.

    The staged engine evaluates the model's *static prefix* (see
    :meth:`~repro.cat.interp.Model.compile`) once per path combination —
    over an environment built once per combination too — and only the
    rf/co-dependent suffix per candidate.
    """
    if isinstance(model, str):
        model = get_model(model)
    start = time.perf_counter()
    compiled = model.compile()
    stats = EnumerationStats()
    enumerator = ExecutionEnumerator(
        init, programs, budget=budget, stats=stats, stages=stages
    )
    outcomes: set = set()
    flagged_outcomes: set = set()
    flags: set = set()
    kept: List[Tuple[Execution, Outcome]] = []

    enumerator.start()
    try:
        for combo in enumerator.path_combos():
            static = build_static_env(
                combo.events, combo.po, combo.rmw, combo.addr, combo.data, combo.ctrl
            )
            prefix = compiled.run_static(static.env)
            if not prefix.allowed:
                # a static check already failed: no rf/co choice can
                # make any candidate of this combination allowed
                continue
            for candidate in enumerator.candidates_for(combo):
                verdict = compiled.run_dynamic(
                    prefix, dynamic_bindings(candidate.execution, static)
                )
                if not verdict.allowed:
                    continue
                bindings = dict(candidate.execution.final_memory())
                bindings.update(candidate.finals_dict())
                outcome = Outcome.of(bindings)
                outcomes.add(outcome)
                if verdict.flags:
                    flags.update(verdict.flags)
                    flagged_outcomes.add(outcome)
                if keep_executions:
                    kept.append((candidate.execution, outcome))
    finally:
        enumerator.finish()

    return SimulationResult(
        test_name=name,
        model_name=model.name,
        outcomes=frozenset(outcomes),
        flags=frozenset(flags),
        flagged_outcomes=frozenset(flagged_outcomes),
        stats=stats,
        executions=tuple(kept),
        elapsed_seconds=time.perf_counter() - start,
    )


def simulate_c(
    litmus,
    model: Union[str, Model] = "rc11",
    unroll: int = 2,
    budget: Optional[Budget] = None,
    keep_executions: bool = False,
    stages: Optional[Sequence[PruneStage]] = None,
) -> SimulationResult:
    """Simulate a C litmus test under a C/C++ memory model."""
    from ..lang.semantics import elaborate  # local import to avoid cycles

    programs = elaborate(litmus, unroll=unroll)
    return run_programs(
        litmus.name,
        dict(litmus.init),
        programs,
        model,
        budget=budget,
        keep_executions=keep_executions,
        stages=stages,
    )


def simulate_asm(
    litmus,
    model: Optional[Union[str, Model]] = None,
    budget: Optional[Budget] = None,
    keep_executions: bool = False,
    stages: Optional[Sequence[PruneStage]] = None,
) -> SimulationResult:
    """Simulate an assembly litmus test under its architecture model."""
    from ..asm.semantics import elaborate_asm  # local import to avoid cycles
    from ..cat.registry import arch_model

    programs = elaborate_asm(litmus)
    chosen = model if model is not None else arch_model(litmus.arch)
    return run_programs(
        litmus.name,
        dict(litmus.init),
        programs,
        chosen,
        budget=budget,
        keep_executions=keep_executions,
        stages=stages,
    )
