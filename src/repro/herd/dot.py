"""Graphviz rendering of candidate executions (the paper's Fig. 2 view).

herd7 ships ``-show`` / ``-graph`` options that draw executions as DOT
graphs; the paper's Fig. 2 is four such drawings of the Fig. 1 test.
This module reproduces that: :func:`execution_to_dot` renders one
execution, :func:`simulation_to_dot` a whole allowed set (one cluster per
execution).

Nodes are labelled herd-style (``a: W(Rlx)[x]=1``); the base relations
get the conventional colours (po black, rf red, co blue, fr orange,
dependencies dashed).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.execution import Execution, Outcome
from ..core.relations import Relation

#: edge styles per relation: (colour, style).
EDGE_STYLES: Dict[str, Tuple[str, str]] = {
    "po": ("black", "solid"),
    "rf": ("red", "solid"),
    "co": ("blue", "solid"),
    "fr": ("orange", "solid"),
    "rmw": ("purple", "bold"),
    "addr": ("gray40", "dashed"),
    "data": ("gray40", "dashed"),
    "ctrl": ("gray40", "dotted"),
}


def _transitive_reduction(rel: Relation) -> Relation:
    """Drop edges implied by transitivity (po is stored transitively;
    drawing every pair is unreadable — herd draws the Hasse diagram)."""
    pairs = set(rel.pairs)
    redundant = set()
    for a, b in pairs:
        for c, d in pairs:
            if b == c and (a, d) in pairs:
                redundant.add((a, d))
    return Relation(pairs - redundant)


def execution_to_dot(
    execution: Execution,
    name: str = "execution",
    include_init: bool = False,
    relations: Optional[Iterable[str]] = None,
) -> str:
    """Render one execution as a standalone DOT digraph."""
    lines = [f"digraph {name} {{", "  rankdir=TB;",
             '  node [shape=plaintext, fontname="monospace"];']
    lines.extend(_body(execution, include_init, relations, indent="  "))
    lines.append("}")
    return "\n".join(lines)


def _body(
    execution: Execution,
    include_init: bool,
    relations: Optional[Iterable[str]],
    indent: str,
    prefix: str = "e",
) -> List[str]:
    wanted = tuple(relations) if relations is not None else tuple(EDGE_STYLES)
    lines: List[str] = []
    visible = set()
    for event in execution.events:
        if event.is_init and not include_init:
            continue
        visible.add(event.eid)
        label = event.pretty().replace('"', "'")
        lines.append(f'{indent}{prefix}{event.eid} [label="{label}"];')
    available: Dict[str, Relation] = {
        "po": _transitive_reduction(execution.po),
        "rf": execution.rf,
        "co": _transitive_reduction(execution.co),
        "fr": execution.fr,
        "rmw": execution.rmw,
        "addr": execution.addr,
        "data": execution.data,
        "ctrl": execution.ctrl,
    }
    for rel_name in wanted:
        rel = available.get(rel_name)
        if rel is None:
            continue
        colour, style = EDGE_STYLES[rel_name]
        for a, b in sorted(rel.pairs):
            if a not in visible or b not in visible:
                continue
            lines.append(
                f'{indent}{prefix}{a} -> {prefix}{b} '
                f'[label="{rel_name}", color={colour}, style={style}, '
                f'fontcolor={colour}];'
            )
    return lines


def simulation_to_dot(
    executions: Iterable[Tuple[Execution, Outcome]],
    name: str = "litmus",
    include_init: bool = False,
    relations: Optional[Iterable[str]] = None,
) -> str:
    """Render a set of (execution, outcome) pairs, one cluster each —
    the Fig. 2 multi-panel layout.  Feed it
    ``SimulationResult.executions`` (simulate with
    ``keep_executions=True``)."""
    lines = [f"digraph {name} {{", "  rankdir=TB;",
             '  node [shape=plaintext, fontname="monospace"];']
    for index, (execution, outcome) in enumerate(executions):
        label = str(outcome).replace('"', "'")
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{label}";')
        lines.extend(
            _body(execution, include_init, relations, indent="    ",
                  prefix=f"x{index}_")
        )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
