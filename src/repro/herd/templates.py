"""Event templates: the interface between front-ends and the enumerator.

Both the C semantics (:mod:`repro.lang.semantics`) and the assembly
semantics (:mod:`repro.asm.semantics`) symbolically execute one thread and
produce a set of :class:`ThreadPath` objects — one per control-flow path.
A path is a sequence of :class:`EventTemplate` whose values are
*expressions over local read placeholders*, plus the path constraints
(branch conditions) and the final values of observable locals.

The enumerator instantiates templates with global event ids, wires up rf,
solves values, and keeps only consistent candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..core.events import EventKind, MemoryOrder
from ..core.expr import BinOp, Const, Expr, ReadVal, UnOp


def rename_reads(expr: Expr, mapping: Mapping[int, int]) -> Expr:
    """Rewrite ``ReadVal`` placeholders through ``mapping``."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, ReadVal):
        return ReadVal(mapping.get(expr.read_eid, expr.read_eid))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, rename_reads(expr.left, mapping), rename_reads(expr.right, mapping))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, rename_reads(expr.operand, mapping))
    raise TypeError(f"unknown expression node {expr!r}")


@dataclass(frozen=True)
class EventTemplate:
    """One prospective event of a thread path.

    For reads, ``placeholder`` is the path-local id that value expressions
    use to refer to the loaded value.  For writes, ``value_expr`` gives the
    stored value as an expression over placeholders.  ``rmw_with_prev``
    marks the write half of an RMW (the preceding template must be its
    read half).  ``addr_deps``/``ctrl_deps`` list the placeholders whose
    values the *address* / *control* of this event depends on.
    """

    kind: EventKind
    loc: Optional[str] = None
    order: MemoryOrder = MemoryOrder.NA
    tags: FrozenSet[str] = frozenset()
    value_expr: Optional[Expr] = None
    placeholder: Optional[int] = None
    rmw_with_prev: bool = False
    #: for exclusive-pair RMWs (LDXR … STXR) the read half is not adjacent;
    #: this gives the read's absolute index in the path's template list.
    rmw_read_pos: Optional[int] = None
    addr_deps: FrozenSet[int] = frozenset()
    ctrl_deps: FrozenSet[int] = frozenset()
    label: str = ""
    width: int = 32

    def __post_init__(self) -> None:
        if self.kind is EventKind.READ and self.placeholder is None:
            raise ValueError("read template needs a placeholder")
        if self.kind is EventKind.WRITE and self.value_expr is None:
            raise ValueError("write template needs a value expression")

    def data_dep_placeholders(self) -> FrozenSet[int]:
        if self.value_expr is None:
            return frozenset()
        return self.value_expr.reads()


@dataclass(frozen=True)
class PathConstraint:
    """A branch condition the path assumed: ``expr`` must evaluate truthy
    (``expected=True``) or falsy."""

    expr: Expr
    expected: bool


@dataclass
class ThreadPath:
    """One control-flow path through a thread."""

    thread_name: str
    templates: Tuple[EventTemplate, ...]
    constraints: Tuple[PathConstraint, ...] = ()
    #: final values of observable locals, as expressions over placeholders
    finals: Dict[str, Expr] = field(default_factory=dict)

    def placeholders(self) -> FrozenSet[int]:
        out = set()
        for t in self.templates:
            if t.placeholder is not None:
                out.add(t.placeholder)
        return frozenset(out)


@dataclass
class ThreadProgram:
    """All paths of one thread, produced by a front-end."""

    name: str
    tid: int
    paths: Tuple[ThreadPath, ...]

    def __post_init__(self) -> None:
        if not self.paths:
            raise ValueError(f"thread {self.name} has no feasible paths")
