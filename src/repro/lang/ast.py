"""AST for the C11 litmus-test subset.

Litmus tests (paper Fig. 1) are small C programs: each thread is a
function receiving pointers to the shared locations, with a body built
from C11 atomic operations, plain accesses, fences, local-variable
arithmetic and simple control flow.  This is the same shape diy generates
and the paper compiles; it is not general C.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.events import MemoryOrder
from ..core.litmus import LitmusBase

# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #
class CExpr:
    """Base class of C-level expressions."""


@dataclass(frozen=True)
class IntLit(CExpr):
    value: int


@dataclass(frozen=True)
class Var(CExpr):
    """A thread-local variable (register)."""

    name: str


@dataclass(frozen=True)
class BinExpr(CExpr):
    op: str
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class UnExpr(CExpr):
    op: str
    operand: CExpr


@dataclass(frozen=True)
class PlainLoad(CExpr):
    """``*x`` — a non-atomic load of a shared location."""

    loc: str
    width: int = 32


@dataclass(frozen=True)
class AtomicLoad(CExpr):
    """``atomic_load_explicit(x, mo)``"""

    loc: str
    order: MemoryOrder
    width: int = 32


#: RMW kinds and the function computing the stored value from (old, operand).
RMW_KINDS = ("add", "sub", "or", "and", "xor", "xchg")


@dataclass(frozen=True)
class AtomicRMW(CExpr):
    """``atomic_fetch_<op>_explicit(x, v, mo)`` / ``atomic_exchange_explicit``.

    Evaluates to the *old* value of the location.
    """

    kind: str
    loc: str
    operand: CExpr
    order: MemoryOrder
    width: int = 32

    def __post_init__(self) -> None:
        if self.kind not in RMW_KINDS:
            raise ValueError(f"unknown RMW kind {self.kind!r}")


# --------------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------------- #
class CStmt:
    """Base class of C-level statements."""


@dataclass(frozen=True)
class Decl(CStmt):
    """``int r0 = expr;`` — declares and initialises a local."""

    var: str
    expr: CExpr


@dataclass(frozen=True)
class Assign(CStmt):
    """``r0 = expr;``"""

    var: str
    expr: CExpr


@dataclass(frozen=True)
class PlainStore(CStmt):
    """``*x = expr;``"""

    loc: str
    expr: CExpr
    width: int = 32


@dataclass(frozen=True)
class AtomicStore(CStmt):
    """``atomic_store_explicit(x, expr, mo);``"""

    loc: str
    expr: CExpr
    order: MemoryOrder
    width: int = 32


@dataclass(frozen=True)
class Fence(CStmt):
    """``atomic_thread_fence(mo);``"""

    order: MemoryOrder


@dataclass(frozen=True)
class ExprStmt(CStmt):
    """An expression evaluated for effect (e.g. a discarded RMW)."""

    expr: CExpr


@dataclass(frozen=True)
class If(CStmt):
    cond: CExpr
    then_body: Tuple[CStmt, ...]
    else_body: Tuple[CStmt, ...] = ()


@dataclass(frozen=True)
class While(CStmt):
    """A loop, unrolled to the simulator's fixed unroll factor."""

    cond: CExpr
    body: Tuple[CStmt, ...]


# --------------------------------------------------------------------------- #
# threads and tests
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CThread:
    """One thread of a litmus test.

    ``params`` lists the shared locations the thread receives (by pointer),
    in declaration order — the compiler uses this for its calling
    convention.  ``atomic_params`` records which are ``atomic_int``-typed.
    """

    name: str
    params: Tuple[str, ...]
    body: Tuple[CStmt, ...]
    atomic_params: Tuple[str, ...] = ()

    @property
    def tid(self) -> int:
        if self.name.startswith("P") and self.name[1:].isdigit():
            return int(self.name[1:])
        raise ValueError(f"thread name {self.name!r} is not of the form Pn")


@dataclass
class CLitmus(LitmusBase):
    """A complete C litmus test: init state, threads, exists-condition."""

    threads: Tuple[CThread, ...] = ()
    #: widths of shared locations in bits (default 32); 128 for the
    #: 128-bit atomic bug studies.
    widths: Dict[str, int] = field(default_factory=dict)
    #: locations declared const (read-only memory) — paper §IV-E.
    const_locations: Tuple[str, ...] = ()

    def thread_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.threads)

    def digest(self) -> str:
        """A stable content digest of this test.

        Two tests with identical programs (init, threads, condition,
        widths, const qualifiers) share a digest even when their *names*
        differ — and two tests that happen to share a name (``LB001``
        from two different :class:`~repro.tools.diy.DiyConfig`\\ s) do
        not.  Campaign caches and the persistent campaign store key by
        this, so verdicts are shareable across runs, processes and
        sessions without name-collision unsoundness.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            from .printer import digest_source  # deferred: printer imports this module

            payload = digest_source(self)
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
            self.__dict__["_digest"] = cached
        return cached

    def width_of(self, loc: str) -> int:
        return self.widths.get(loc, 32)

    def locals_read_in_condition(self) -> Dict[str, List[str]]:
        """Map thread name -> locals observed by the final condition."""
        out: Dict[str, List[str]] = {}
        for name in self.condition.observables():
            if ":" in name:
                thread, reg = name.split(":", 1)
                out.setdefault(thread, []).append(reg)
        return out
