"""Parser for C11 litmus tests in the paper's surface syntax (Fig. 1).

Accepted shape::

    C LB004                      // optional herd-style header
    { *x = 0; *y = 0; }          // fixed initial state
    #define relaxed memory_order_relaxed
    void P0(atomic_int* y, atomic_int* x) {
        int r0 = atomic_load_explicit(x, relaxed);
        atomic_thread_fence(relaxed);
        atomic_store_explicit(y, 1, relaxed);
    }
    ...
    exists (P0:r0=1 /\\ P1:r0=1)

Object-like ``#define`` macros are expanded textually.  ``~exists P`` is
normalised to ``forall ~P``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..core.errors import ParseError
from ..core.events import MemoryOrder
from ..core.litmus import And, Condition, LocEq, Not, Or, Prop, RegEq
from .ast import (
    Assign,
    AtomicLoad,
    AtomicRMW,
    AtomicStore,
    BinExpr,
    CExpr,
    CLitmus,
    CStmt,
    CThread,
    Decl,
    ExprStmt,
    Fence,
    If,
    IntLit,
    PlainLoad,
    PlainStore,
    UnExpr,
    Var,
    While,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<ws>\s+)
  | (?P<landand>/\\)
  | (?P<loror>\\/)
  | (?P<op2>==|!=|<=|>=|&&|\|\||<<|>>|->)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>0[xX][0-9a-fA-F]+|\d+)
  | (?P<op>[{}()\[\];,=*+\-/%&|^!~<>:.#])
    """,
    re.VERBOSE | re.DOTALL,
)

_TYPE_WIDTHS = {
    "int": 32,
    "atomic_int": 32,
    "unsigned": 32,
    "atomic_uint": 32,
    "char": 8,
    "atomic_char": 8,
    "int8_t": 8,
    "uint8_t": 8,
    "atomic_int8_t": 8,
    "int16_t": 16,
    "uint16_t": 16,
    "atomic_int16_t": 16,
    "short": 16,
    "int32_t": 32,
    "uint32_t": 32,
    "atomic_int32_t": 32,
    "int64_t": 64,
    "uint64_t": 64,
    "atomic_int64_t": 64,
    "long": 64,
    "atomic_long": 64,
    "atomic_llong": 64,
    "__int128": 128,
    "atomic_int128": 128,
}

_ATOMIC_TYPES = frozenset(t for t in _TYPE_WIDTHS if t.startswith("atomic"))

_RMW_FUNCS = {
    "atomic_fetch_add": "add",
    "atomic_fetch_sub": "sub",
    "atomic_fetch_or": "or",
    "atomic_fetch_and": "and",
    "atomic_fetch_xor": "xor",
    "atomic_exchange": "xchg",
}


class _Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Tok({self.kind},{self.text!r})"


def _tokenize(source: str) -> List[_Tok]:
    tokens: List[_Tok] = []
    line = 1
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line)
        kind = m.lastgroup or ""
        text = m.group()
        if kind in ("ws", "comment"):
            line += text.count("\n")
        elif kind == "landand":
            tokens.append(_Tok("op", "/\\", line))
        elif kind == "loror":
            tokens.append(_Tok("op", "\\/", line))
        elif kind == "op2":
            tokens.append(_Tok("op", text, line))
        else:
            tokens.append(_Tok(kind, text, line))
        pos = m.end()
    return tokens


def _expand_defines(tokens: List[_Tok]) -> List[_Tok]:
    """Strip ``#define NAME REPLACEMENT...`` lines, expanding uses."""
    macros: Dict[str, List[_Tok]] = {}
    out: List[_Tok] = []
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok.kind == "op" and tok.text == "#":
            if i + 1 < len(tokens) and tokens[i + 1].text == "define":
                name_tok = tokens[i + 2]
                j = i + 3
                body: List[_Tok] = []
                while j < len(tokens) and tokens[j].line == tok.line:
                    body.append(tokens[j])
                    j += 1
                macros[name_tok.text] = body
                i = j
                continue
            # other preprocessor lines (#include …): skip to next line
            j = i + 1
            while j < len(tokens) and tokens[j].line == tok.line:
                j += 1
            i = j
            continue
        if tok.kind == "ident" and tok.text in macros:
            out.extend(_Tok(t.kind, t.text, tok.line) for t in macros[tok.text])
        else:
            out.append(tok)
        i += 1
    return out


class _CParser:
    def __init__(self, tokens: List[_Tok]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -------------------------------------------------------------- #
    def peek(self, ahead: int = 0) -> Optional[_Tok]:
        idx = self.pos + ahead
        return self.tokens[idx] if idx < len(self.tokens) else None

    def next(self) -> _Tok:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of litmus test")
        self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None, ahead: int = 0) -> bool:
        tok = self.peek(ahead)
        return tok is not None and tok.kind == kind and (text is None or tok.text == text)

    def expect(self, kind: str, text: Optional[str] = None) -> _Tok:
        tok = self.peek()
        if tok is None or tok.kind != kind or (text is not None and tok.text != text):
            got = f"{tok.kind} {tok.text!r}" if tok else "EOF"
            raise ParseError(
                f"expected {text or kind!r}, got {got}", tok.line if tok else 0
            )
        return self.next()

    def accept(self, kind: str, text: Optional[str] = None) -> bool:
        if self.at(kind, text):
            self.next()
            return True
        return False

    # -------------------------------------------------------------- #
    def parse_litmus(self, default_name: str = "test") -> CLitmus:
        name = default_name
        # optional "C <name>" header
        if self.at("ident", "C") and not self.at("op", "{", 1):
            self.next()
            name_tok = self.next()
            name = name_tok.text
            # names may carry '+'/'.'-joined suffixes (mutants are
            # "<seed>+<operator>.<digest>", reductions "<base>+min.<digest>");
            # the name extends along the header line until the init block
            # opens ("C mp { ... }" on one line stays valid), so printed
            # hunt artifacts round-trip through the parser
            while (
                self.peek() is not None
                and self.peek().line == name_tok.line
                and not self.at("op", "{")
            ):
                name += self.next().text
        init, widths, const_locs = self.parse_init()
        threads: List[CThread] = []
        self._param_widths: Dict[str, int] = {}
        while not (self.at("ident", "exists") or self.at("ident", "forall") or self._at_negated_exists()):
            threads.append(self.parse_thread())
        # pointer-parameter types refine location widths (e.g.
        # ``atomic_int128* x`` makes x a 128-bit location)
        for loc, width in self._param_widths.items():
            if width != 32:
                widths.setdefault(loc, width)
        condition = self.parse_condition()
        return CLitmus(
            name=name,
            init=init,
            condition=condition,
            threads=tuple(threads),
            widths=widths,
            const_locations=tuple(const_locs),
        )

    def _at_negated_exists(self) -> bool:
        return self.at("op", "~") and self.at("ident", "exists", 1)

    def parse_init(self) -> Tuple[Dict[str, int], Dict[str, int], List[str]]:
        self.expect("op", "{")
        init: Dict[str, int] = {}
        widths: Dict[str, int] = {}
        const_locs: List[str] = []
        while not self.at("op", "}"):
            is_const = bool(self.accept("ident", "const"))
            # optional type name
            width = None
            if self.at("ident") and self.peek().text in _TYPE_WIDTHS:  # type: ignore[union-attr]
                width = _TYPE_WIDTHS[self.next().text]
            self.accept("op", "*")
            loc = self.expect("ident").text
            self.expect("op", "=")
            value = self.parse_int_literal()
            init[loc] = value
            if width is not None:
                widths[loc] = width
            if is_const:
                const_locs.append(loc)
            self.accept("op", ";") or self.accept("op", ",")
        self.expect("op", "}")
        return init, widths, const_locs

    def parse_int_literal(self) -> int:
        negative = self.accept("op", "-")
        tok = self.expect("number")
        value = int(tok.text, 0)
        return -value if negative else value

    # -------------------------------------------------------------- #
    def parse_thread(self) -> CThread:
        # optional return type
        if self.at("ident", "void"):
            self.next()
        name = self.expect("ident").text
        self.expect("op", "(")
        params: List[str] = []
        atomic_params: List[str] = []
        while not self.at("op", ")"):
            type_name = self.expect("ident").text
            while self.at("ident"):  # e.g. "unsigned int"
                type_name = self.next().text
            self.accept("op", "*")
            pname = self.expect("ident").text
            params.append(pname)
            if type_name in _ATOMIC_TYPES:
                atomic_params.append(pname)
            if type_name in _TYPE_WIDTHS:
                if not hasattr(self, "_param_widths"):
                    self._param_widths = {}
                self._param_widths[pname] = _TYPE_WIDTHS[type_name]
            self.accept("op", ",")
        self.expect("op", ")")
        body = self.parse_block()
        return CThread(
            name=name,
            params=tuple(params),
            body=tuple(body),
            atomic_params=tuple(atomic_params),
        )

    def parse_block(self) -> List[CStmt]:
        self.expect("op", "{")
        stmts: List[CStmt] = []
        while not self.at("op", "}"):
            stmts.append(self.parse_stmt())
        self.expect("op", "}")
        return stmts

    def parse_stmt(self) -> CStmt:
        tok = self.peek()
        assert tok is not None
        if tok.kind == "ident" and tok.text == "if":
            self.next()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            then_body = tuple(self.parse_block_or_single())
            else_body: Tuple[CStmt, ...] = ()
            if self.accept("ident", "else"):
                else_body = tuple(self.parse_block_or_single())
            return If(cond, then_body, else_body)
        if tok.kind == "ident" and tok.text == "while":
            self.next()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            body = tuple(self.parse_block_or_single())
            return While(cond, body)
        if tok.kind == "ident" and tok.text in _TYPE_WIDTHS:
            # declaration: `int r0 = expr;`
            self.next()
            var = self.expect("ident").text
            self.expect("op", "=")
            expr = self.parse_expr()
            self.expect("op", ";")
            return Decl(var, expr)
        if tok.kind == "op" and tok.text == "*":
            # `*x = expr;`
            self.next()
            loc = self.expect("ident").text
            self.expect("op", "=")
            expr = self.parse_expr()
            self.expect("op", ";")
            return PlainStore(loc, expr)
        if tok.kind == "ident":
            nxt = self.peek(1)
            if nxt is not None and nxt.kind == "op" and nxt.text == "=":
                self.next()
                self.next()
                expr = self.parse_expr()
                self.expect("op", ";")
                return Assign(tok.text, expr)
            # call statement
            stmt = self.parse_call_stmt()
            self.expect("op", ";")
            return stmt
        raise ParseError(f"cannot parse statement at {tok.text!r}", tok.line)

    def parse_block_or_single(self) -> List[CStmt]:
        if self.at("op", "{"):
            return self.parse_block()
        return [self.parse_stmt()]

    def parse_call_stmt(self) -> CStmt:
        name = self.expect("ident").text
        base, explicit = _split_explicit(name)
        if base == "atomic_store":
            self.expect("op", "(")
            loc = self._parse_loc_arg()
            self.expect("op", ",")
            expr = self.parse_expr()
            order = self._parse_order_arg(explicit, default=MemoryOrder.SC)
            self.expect("op", ")")
            return AtomicStore(loc, expr, order)
        if base == "atomic_thread_fence":
            self.expect("op", "(")
            order = MemoryOrder.parse(self.expect("ident").text)
            self.expect("op", ")")
            return Fence(order)
        if base == "atomic_init":
            self.expect("op", "(")
            loc = self._parse_loc_arg()
            self.expect("op", ",")
            expr = self.parse_expr()
            self.expect("op", ")")
            return AtomicStore(loc, expr, MemoryOrder.RLX)
        if base in _RMW_FUNCS or base == "atomic_load":
            # discarded-result call: rewind and parse as an expression
            self.pos -= 1
            expr = self.parse_expr()
            return ExprStmt(expr)
        raise ParseError(f"unknown call {name!r}")

    def _parse_loc_arg(self) -> str:
        self.accept("op", "&")
        return self.expect("ident").text

    def _parse_order_arg(self, explicit: bool, default: MemoryOrder) -> MemoryOrder:
        if explicit:
            self.expect("op", ",")
            return MemoryOrder.parse(self.expect("ident").text)
        return default

    # expressions ---------------------------------------------------- #
    def parse_expr(self) -> CExpr:
        return self.parse_binary(0)

    _LEVELS = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_binary(self, level: int) -> CExpr:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        ops = self._LEVELS[level]
        expr = self.parse_binary(level + 1)
        while self.at("op") and self.peek().text in ops:  # type: ignore[union-attr]
            op = self.next().text
            right = self.parse_binary(level + 1)
            expr = BinExpr(op, expr, right)
        return expr

    def parse_unary(self) -> CExpr:
        if self.at("op", "!"):
            self.next()
            return UnExpr("!", self.parse_unary())
        if self.at("op", "-"):
            self.next()
            return UnExpr("-", self.parse_unary())
        if self.at("op", "~"):
            self.next()
            return UnExpr("~", self.parse_unary())
        if self.at("op", "*"):
            self.next()
            loc = self.expect("ident").text
            return PlainLoad(loc)
        return self.parse_primary()

    def parse_primary(self) -> CExpr:
        tok = self.peek()
        assert tok is not None
        if tok.kind == "number":
            self.next()
            return IntLit(int(tok.text, 0))
        if tok.kind == "op" and tok.text == "(":
            self.next()
            # tolerate casts like `(int)` inside expressions
            if self.at("ident") and self.peek().text in _TYPE_WIDTHS and self.at("op", ")", 1):  # type: ignore[union-attr]
                self.next()
                self.next()
                return self.parse_unary()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        if tok.kind == "ident":
            base, explicit = _split_explicit(tok.text)
            if base == "atomic_load":
                self.next()
                self.expect("op", "(")
                loc = self._parse_loc_arg()
                order = self._parse_order_arg(explicit, default=MemoryOrder.SC)
                self.expect("op", ")")
                return AtomicLoad(loc, order)
            if base in _RMW_FUNCS:
                self.next()
                self.expect("op", "(")
                loc = self._parse_loc_arg()
                self.expect("op", ",")
                operand = self.parse_expr()
                order = self._parse_order_arg(explicit, default=MemoryOrder.SC)
                self.expect("op", ")")
                return AtomicRMW(_RMW_FUNCS[base], loc, operand, order)
            self.next()
            return Var(tok.text)
        raise ParseError(f"cannot parse expression at {tok.text!r}", tok.line)

    # condition ------------------------------------------------------ #
    def parse_condition(self) -> Condition:
        negated = self.accept("op", "~")
        kw = self.expect("ident").text
        if kw not in ("exists", "forall"):
            raise ParseError(f"expected exists/forall, got {kw!r}")
        # parentheses are conventional but optional — the printer emits
        # single-atom conditions bare (``exists P1:r0=0``, the shape
        # condition-weakening reductions produce), and parse_prop_atom
        # handles a parenthesised group anyway
        prop = self.parse_prop()
        if negated:
            if kw != "exists":
                raise ParseError("~forall is not supported")
            return Condition("forall", Not(prop))
        return Condition(kw, prop)

    def parse_prop(self) -> Prop:
        left = self.parse_prop_conj()
        while self.at("op", "\\/"):
            self.next()
            left = Or(left, self.parse_prop_conj())
        return left

    def parse_prop_conj(self) -> Prop:
        left = self.parse_prop_atom()
        while self.at("op", "/\\"):
            self.next()
            left = And(left, self.parse_prop_atom())
        return left

    def parse_prop_atom(self) -> Prop:
        if self.accept("op", "~"):
            return Not(self.parse_prop_atom())
        if self.accept("op", "("):
            prop = self.parse_prop()
            self.expect("op", ")")
            return prop
        if self.accept("op", "["):
            loc = self.expect("ident").text
            self.expect("op", "]")
            self.expect("op", "=")
            value = self.parse_int_literal()
            return LocEq(loc, value)
        tok = self.next()
        thread: Optional[str] = None
        name = tok.text
        if tok.kind == "number":
            # herd-style `0:r0=1`
            thread = f"P{tok.text}"
            self.expect("op", ":")
            name = self.expect("ident").text
        elif self.at("op", ":"):
            self.next()
            thread = tok.text
            name = self.expect("ident").text
        self.expect("op", "=")
        value = self.parse_int_literal()
        if thread is not None:
            return RegEq(thread, name, value)
        return LocEq(name, value)


def _split_explicit(name: str) -> Tuple[str, bool]:
    if name.endswith("_explicit"):
        return name[: -len("_explicit")], True
    return name, False


def parse_c_litmus(source: str, name: str = "test") -> CLitmus:
    """Parse a C litmus test from source text.

    A :class:`ParseError` raised anywhere in the parse carries the
    offending source line as its snippet (``exc.render()`` shows
    ``file:line``, plus the line itself).
    """
    try:
        tokens = _expand_defines(_tokenize(source))
        parser = _CParser(tokens)
        litmus = parser.parse_litmus(default_name=name)
        if parser.peek() is not None:
            tok = parser.peek()
            raise ParseError(f"trailing input {tok.text!r}", tok.line)  # type: ignore[union-attr]
    except ParseError as exc:
        raise exc.attach_source(source, name)
    return litmus
