"""Pretty-printer: render a :class:`CLitmus` back to C source.

Used by ``l2c`` to produce the compilable program (paper Fig. 6 step 2)
and by examples/tests for round-tripping.
"""

from __future__ import annotations

from typing import List

from ..core.events import MemoryOrder
from .ast import (
    Assign,
    AtomicLoad,
    AtomicRMW,
    AtomicStore,
    BinExpr,
    CExpr,
    CLitmus,
    CStmt,
    CThread,
    Decl,
    ExprStmt,
    Fence,
    If,
    IntLit,
    PlainLoad,
    PlainStore,
    UnExpr,
    Var,
    While,
)

_RMW_NAMES = {
    "add": "atomic_fetch_add_explicit",
    "sub": "atomic_fetch_sub_explicit",
    "or": "atomic_fetch_or_explicit",
    "and": "atomic_fetch_and_explicit",
    "xor": "atomic_fetch_xor_explicit",
    "xchg": "atomic_exchange_explicit",
}


def _order(mo: MemoryOrder) -> str:
    return mo.c11_spelling()


def print_expr(expr: CExpr) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, BinExpr):
        return f"({print_expr(expr.left)} {expr.op} {print_expr(expr.right)})"
    if isinstance(expr, UnExpr):
        return f"{expr.op}({print_expr(expr.operand)})"
    if isinstance(expr, PlainLoad):
        return f"*{expr.loc}"
    if isinstance(expr, AtomicLoad):
        return f"atomic_load_explicit({expr.loc}, {_order(expr.order)})"
    if isinstance(expr, AtomicRMW):
        return (
            f"{_RMW_NAMES[expr.kind]}({expr.loc}, "
            f"{print_expr(expr.operand)}, {_order(expr.order)})"
        )
    raise TypeError(f"cannot print {expr!r}")


def print_stmt(stmt: CStmt, indent: int = 1) -> List[str]:
    pad = "    " * indent
    if isinstance(stmt, Decl):
        return [f"{pad}int {stmt.var} = {print_expr(stmt.expr)};"]
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.var} = {print_expr(stmt.expr)};"]
    if isinstance(stmt, PlainStore):
        return [f"{pad}*{stmt.loc} = {print_expr(stmt.expr)};"]
    if isinstance(stmt, AtomicStore):
        return [
            f"{pad}atomic_store_explicit({stmt.loc}, "
            f"{print_expr(stmt.expr)}, {_order(stmt.order)});"
        ]
    if isinstance(stmt, Fence):
        return [f"{pad}atomic_thread_fence({_order(stmt.order)});"]
    if isinstance(stmt, ExprStmt):
        return [f"{pad}{print_expr(stmt.expr)};"]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({print_expr(stmt.cond)}) {{"]
        for s in stmt.then_body:
            lines.extend(print_stmt(s, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for s in stmt.else_body:
                lines.extend(print_stmt(s, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while ({print_expr(stmt.cond)}) {{"]
        for s in stmt.body:
            lines.extend(print_stmt(s, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot print {stmt!r}")


def print_thread(thread: CThread) -> str:
    params = ", ".join(
        f"atomic_int* {p}" if p in thread.atomic_params else f"int* {p}"
        for p in thread.params
    )
    lines = [f"void {thread.name}({params}) {{"]
    for stmt in thread.body:
        lines.extend(print_stmt(stmt))
    lines.append("}")
    return "\n".join(lines)


def print_c_litmus(litmus: CLitmus) -> str:
    """Render the litmus-test form (init block, threads, exists clause)."""
    init = " ".join(f"*{loc} = {val};" for loc, val in sorted(litmus.init.items()))
    parts = [f"C {litmus.name}", "{ " + init + " }", ""]
    for thread in litmus.threads:
        parts.append(print_thread(thread))
        parts.append("")
    parts.append(str(litmus.condition))
    return "\n".join(parts)


def digest_source(litmus: CLitmus) -> str:
    """The canonical text :meth:`CLitmus.digest` hashes.

    The printed litmus form with the test *name* normalised out (a digest
    is content identity — two tests that differ only in name must share
    one), extended with the fields the printed form omits: non-default
    location widths and const qualifiers.  Printing is canonical — init
    sorted, memory orders by their C11 spelling — so a parse/print
    round-trip preserves the digest.
    """
    lines = print_c_litmus(litmus).splitlines()
    lines[0] = "C <test>"
    for loc, width in sorted(litmus.widths.items()):
        if width != 32:
            lines.append(f"width {loc} {width}")
    for loc in sorted(set(litmus.const_locations)):
        lines.append(f"const {loc}")
    return "\n".join(lines)


def print_c_program(litmus: CLitmus) -> str:
    """Render a *compilable* C program (l2c output): globals + functions.

    This is what ``c2s`` hands to the compiler-under-test — shared
    locations become globals, the exists clause becomes a comment.
    """
    lines = ["#include <stdatomic.h>", ""]
    for loc, val in sorted(litmus.init.items()):
        qualifier = "const " if loc in litmus.const_locations else ""
        width = litmus.width_of(loc)
        ctype = {8: "atomic_char", 16: "atomic_short", 32: "atomic_int", 64: "atomic_long", 128: "_Atomic __int128"}[width]
        lines.append(f"{qualifier}{ctype} {loc} = {val};")
    lines.append("")
    for thread in litmus.threads:
        lines.append(print_thread(thread))
        lines.append("")
    lines.append(f"// {litmus.condition}")
    return "\n".join(lines)
