"""Symbolic semantics of C litmus threads.

Walks a thread body, building :class:`~repro.herd.templates.ThreadPath`
objects: event templates with symbolic values, branch constraints, and the
final values of locals.  Control flow forks the path; loops are unrolled
to a fixed factor (herd's "fixed loop unroll factor, no recursion" —
paper §I).

C11 RMW operations become read+write template pairs with the write marked
``rmw_with_prev``; the memory order is split C11-style (``acq_rel`` gives
an acquire read and a release write).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.errors import SimulationError
from ..core.events import EventKind, MemoryOrder
from ..core.expr import BinOp, Const, Expr, ReadVal, UnOp, is_constant
from ..herd.templates import EventTemplate, PathConstraint, ThreadPath, ThreadProgram
from .ast import (
    Assign,
    AtomicLoad,
    AtomicRMW,
    AtomicStore,
    BinExpr,
    CExpr,
    CLitmus,
    CStmt,
    CThread,
    Decl,
    ExprStmt,
    Fence,
    If,
    IntLit,
    PlainLoad,
    PlainStore,
    UnExpr,
    Var,
    While,
)

#: How RMW memory orders split across the read and write halves (C11 / herd
#: convention).
_RMW_SPLIT = {
    MemoryOrder.NA: (MemoryOrder.NA, MemoryOrder.NA),
    MemoryOrder.RLX: (MemoryOrder.RLX, MemoryOrder.RLX),
    MemoryOrder.CON: (MemoryOrder.CON, MemoryOrder.RLX),
    MemoryOrder.ACQ: (MemoryOrder.ACQ, MemoryOrder.RLX),
    MemoryOrder.REL: (MemoryOrder.RLX, MemoryOrder.REL),
    MemoryOrder.ACQ_REL: (MemoryOrder.ACQ, MemoryOrder.REL),
    MemoryOrder.SC: (MemoryOrder.SC, MemoryOrder.SC),
}

_RMW_OPS = {
    "add": lambda old, v: BinOp("+", old, v),
    "sub": lambda old, v: BinOp("-", old, v),
    "or": lambda old, v: BinOp("|", old, v),
    "and": lambda old, v: BinOp("&", old, v),
    "xor": lambda old, v: BinOp("^", old, v),
    "xchg": lambda old, v: v,
}


@dataclass
class _State:
    """Mutable exploration state for one path prefix."""

    env: Dict[str, Expr]
    templates: List[EventTemplate]
    constraints: List[PathConstraint]
    ctrl: frozenset
    next_placeholder: int

    def fork(self) -> "_State":
        return _State(
            env=dict(self.env),
            templates=list(self.templates),
            constraints=list(self.constraints),
            ctrl=self.ctrl,
            next_placeholder=self.next_placeholder,
        )


class ThreadElaborator:
    """Explodes one C thread into its control-flow paths."""

    def __init__(self, thread: CThread, litmus: CLitmus, unroll: int = 2) -> None:
        self.thread = thread
        self.litmus = litmus
        self.unroll = unroll

    def run(self) -> ThreadProgram:
        initial = _State(env={}, templates=[], constraints=[], ctrl=frozenset(), next_placeholder=0)
        finished: List[_State] = []
        self._exec_block(list(self.thread.body), initial, finished)
        paths = tuple(
            ThreadPath(
                thread_name=self.thread.name,
                templates=tuple(st.templates),
                constraints=tuple(st.constraints),
                finals={name: expr for name, expr in st.env.items()},
            )
            for st in finished
        )
        return ThreadProgram(name=self.thread.name, tid=self.thread.tid, paths=paths)

    # ------------------------------------------------------------------ #
    def _exec_block(self, stmts: List[CStmt], state: _State, finished: List[_State]) -> None:
        if not stmts:
            finished.append(state)
            return
        head, rest = stmts[0], stmts[1:]
        for next_state in self._exec_stmt(head, state):
            self._exec_block(rest, next_state, finished)

    def _exec_stmt(self, stmt: CStmt, state: _State) -> List[_State]:
        if isinstance(stmt, (Decl, Assign)):
            value = self._eval(stmt.expr, state)
            state.env[stmt.var] = value
            return [state]
        if isinstance(stmt, PlainStore):
            value = self._eval(stmt.expr, state)
            self._emit_write(state, stmt.loc, value, MemoryOrder.NA, stmt.width)
            return [state]
        if isinstance(stmt, AtomicStore):
            value = self._eval(stmt.expr, state)
            self._emit_write(state, stmt.loc, value, stmt.order, stmt.width)
            return [state]
        if isinstance(stmt, Fence):
            if stmt.order is not MemoryOrder.NA:
                state.templates.append(
                    EventTemplate(
                        kind=EventKind.FENCE,
                        order=stmt.order,
                        ctrl_deps=state.ctrl,
                    )
                )
            return [state]
        if isinstance(stmt, ExprStmt):
            self._eval(stmt.expr, state)
            return [state]
        if isinstance(stmt, If):
            return self._exec_if(stmt, state)
        if isinstance(stmt, While):
            return self._exec_while(stmt, state, self.unroll)
        raise SimulationError(f"cannot execute statement {stmt!r}")

    def _exec_if(self, stmt: If, state: _State) -> List[_State]:
        cond = self._eval(stmt.cond, state)
        if is_constant(cond):
            branch = stmt.then_body if cond.eval({}) else stmt.else_body
            out: List[_State] = []
            self._exec_block(list(branch), state, out)
            return out
        results: List[_State] = []
        for expected, body in ((True, stmt.then_body), (False, stmt.else_body)):
            forked = state.fork()
            forked.constraints.append(PathConstraint(cond, expected))
            forked.ctrl = forked.ctrl | cond.reads()
            out: List[_State] = []
            self._exec_block(list(body), forked, out)
            results.extend(out)
        return results

    def _exec_while(self, stmt: While, state: _State, budget: int) -> List[_State]:
        cond = self._eval(stmt.cond, state)
        results: List[_State] = []
        if is_constant(cond):
            if not cond.eval({}):
                return [state]
            if budget <= 0:
                # unrolling exhausted on a definitely-taken loop: drop path
                return []
            body_out: List[_State] = []
            self._exec_block(list(stmt.body), state, body_out)
            for st in body_out:
                results.extend(self._exec_while(stmt, st, budget - 1))
            return results
        # exit branch
        exit_state = state.fork()
        exit_state.constraints.append(PathConstraint(cond, False))
        results.append(exit_state)
        # iterate branch
        if budget > 0:
            iter_state = state.fork()
            iter_state.constraints.append(PathConstraint(cond, True))
            iter_state.ctrl = iter_state.ctrl | cond.reads()
            body_out: List[_State] = []
            self._exec_block(list(stmt.body), iter_state, body_out)
            for st in body_out:
                results.extend(self._exec_while(stmt, st, budget - 1))
        return results

    # ------------------------------------------------------------------ #
    def _emit_write(
        self, state: _State, loc: str, value: Expr, order: MemoryOrder, width: int
    ) -> None:
        state.templates.append(
            EventTemplate(
                kind=EventKind.WRITE,
                loc=loc,
                order=order,
                value_expr=value,
                ctrl_deps=state.ctrl,
                width=self.litmus.width_of(loc) if width == 32 else width,
            )
        )

    def _emit_read(
        self, state: _State, loc: str, order: MemoryOrder, tags: frozenset = frozenset()
    ) -> Expr:
        placeholder = state.next_placeholder
        state.next_placeholder += 1
        state.templates.append(
            EventTemplate(
                kind=EventKind.READ,
                loc=loc,
                order=order,
                placeholder=placeholder,
                tags=tags,
                ctrl_deps=state.ctrl,
                width=self.litmus.width_of(loc),
            )
        )
        return ReadVal(placeholder)

    def _eval(self, expr: CExpr, state: _State) -> Expr:
        if isinstance(expr, IntLit):
            return Const(expr.value)
        if isinstance(expr, Var):
            if expr.name not in state.env:
                raise SimulationError(
                    f"use of undefined local {expr.name!r} in {self.thread.name}"
                )
            return state.env[expr.name]
        if isinstance(expr, BinExpr):
            left = self._eval(expr.left, state)
            right = self._eval(expr.right, state)
            folded = BinOp(expr.op, left, right)
            return folded.substitute({})
        if isinstance(expr, UnExpr):
            inner = self._eval(expr.operand, state)
            return UnOp(expr.op, inner).substitute({})
        if isinstance(expr, PlainLoad):
            return self._emit_read(state, expr.loc, MemoryOrder.NA)
        if isinstance(expr, AtomicLoad):
            return self._emit_read(state, expr.loc, expr.order)
        if isinstance(expr, AtomicRMW):
            return self._eval_rmw(expr, state)
        raise SimulationError(f"cannot evaluate expression {expr!r}")

    def _eval_rmw(self, expr: AtomicRMW, state: _State) -> Expr:
        read_order, write_order = _RMW_SPLIT[expr.order]
        operand = self._eval(expr.operand, state)
        old = self._emit_read(state, expr.loc, read_order, tags=frozenset({"RMW-R"}))
        new_value = _RMW_OPS[expr.kind](old, operand).substitute({})
        state.templates.append(
            EventTemplate(
                kind=EventKind.WRITE,
                loc=expr.loc,
                order=write_order,
                value_expr=new_value,
                tags=frozenset({"RMW-W"}),
                rmw_with_prev=True,
                ctrl_deps=state.ctrl,
                width=self.litmus.width_of(expr.loc),
            )
        )
        return old


def elaborate(litmus: CLitmus, unroll: int = 2) -> List[ThreadProgram]:
    """Produce the per-thread path sets of a C litmus test."""
    return [ThreadElaborator(t, litmus, unroll=unroll).run() for t in litmus.threads]
