"""The standard environment a Cat model sees for one execution.

This is the bridge between :class:`~repro.core.execution.Execution` and the
Cat interpreter: it exposes the base sets (``R``, ``W``, ``M``, ``F``,
C11 order sets, architecture tag sets) and base relations (``po``, ``rf``,
``co``, ``fr``, dependency relations, ``loc``, ``int``/``ext``…) under the
names the shipped models use.

The environment is built in two stages, mirroring the staged solver:

* :func:`build_static_env` derives everything that depends only on the
  event structure and the po/rmw/dependency relations — fixed for a
  whole path combination, so it is computed **once** per combination.
  The events are interned into an
  :class:`~repro.core.relations.EventUniverse` and the structural
  relations (``loc``, ``int``, ``ext``, ``init``) are assembled directly
  as bitmask adjacency rows — one shared location/thread mask per group
  instead of O(n²) pair loops;
* :func:`dynamic_bindings` adds the rf/co-derived relations that change
  per candidate (``rf``, ``co``, ``fr``, ``com`` and the internal/
  external splits) — row-wise kernel ops against the same universe.

:func:`build_env` composes both for callers that hold one finished
execution.

Tag sets (``A``, ``Q``, ``L``, ``X``, ``DMB.SY`` …) default to the empty
set when the execution contains no such event, so one model text works for
every front-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence

from ..core.events import Event, MemoryOrder
from ..core.execution import Execution
from ..core.relations import EventUniverse, Relation
from .interp import CatEnv, Value

#: Architecture tag names every environment defines (empty if unused).
KNOWN_TAG_SETS = (
    # AArch64
    "A",          # load-acquire (LDAR, LDAXR)
    "Q",          # load-acquirePC (LDAPR) — weaker than A w.r.t. earlier STLR
    "L",          # store-release (STLR, STLXR)
    "X",          # exclusive / locked access
    "ISB",
    "DMB.SY",
    "DMB.LD",
    "DMB.ST",
    "DMB.ISH",
    # Armv7
    "DMB",
    "DSB",
    # x86
    "MFENCE",
    "LOCK",
    # RISC-V
    "AQ",
    "RL",
    "FENCE.RW.RW",
    "FENCE.R.RW",
    "FENCE.RW.W",
    "FENCE.W.W",
    "FENCE.R.R",
    "FENCE.TSO",
    # Power
    "SYNC",
    "LWSYNC",
    "ISYNC",
    "EIEIO",
    # MIPS
    "MIPS.SYNC",
    # misc
    "INIT",
    "RMW-R",
    "RMW-W",
    "NORET",      # ST<OP>-form atomic reads: not ordered by DMB LD
    "CONST",      # accesses to read-only (const) memory — paper §IV-E
)


@dataclass
class StaticEnv:
    """The per-path-combination half of the Cat environment.

    ``env`` holds every binding derivable before rf/co are chosen;
    ``internal``/``external`` are kept so the dynamic stage can derive
    ``rfe``/``rfi``/``coe``… by row-wise intersection instead of
    recomputing the O(n²) thread-split relations per candidate;
    ``universe`` is the interned event universe all of them are encoded
    against.
    """

    env: CatEnv
    internal: Relation
    external: Relation
    universe: Optional[EventUniverse] = None


def build_static_env(
    events: Sequence[Event],
    po: Relation,
    rmw: Relation = Relation.empty(),
    addr: Relation = Relation.empty(),
    data: Relation = Relation.empty(),
    ctrl: Relation = Relation.empty(),
) -> StaticEnv:
    """Construct the rf/co-independent bindings for one event structure."""
    uni = EventUniverse(e.eid for e in events)
    universe = uni.ids()
    reads = frozenset(e.eid for e in events if e.is_read)
    writes = frozenset(e.eid for e in events if e.is_write)
    fences = frozenset(e.eid for e in events if e.is_fence)
    accesses = frozenset(e.eid for e in events if e.is_access)
    init_writes = frozenset(e.eid for e in events if e.is_init)

    def order_set(*orders: MemoryOrder) -> FrozenSet[int]:
        wanted = set(orders)
        return frozenset(e.eid for e in events if e.order in wanted)

    # same-location, internal and external splits (static: they depend
    # only on event structure, not on rf/co) — assembled as adjacency
    # rows from one shared mask per location/thread group
    loc_masks: Dict[str, int] = {}
    for e in events:
        if e.is_access and e.loc is not None:
            loc_masks[e.loc] = loc_masks.get(e.loc, 0) | (1 << e.eid)
    loc_rows: Dict[int, int] = {}
    for e in events:
        if e.is_access and e.loc is not None:
            row = loc_masks[e.loc] & ~(1 << e.eid)
            if row:
                loc_rows[e.eid] = row

    tid_masks: Dict[int, int] = {}
    all_mask = 0
    for e in events:
        tid_masks[e.tid] = tid_masks.get(e.tid, 0) | (1 << e.eid)
        all_mask |= 1 << e.eid
    int_rows: Dict[int, int] = {}
    ext_rows: Dict[int, int] = {}
    for e in events:
        own = tid_masks[e.tid]
        if not e.is_init:
            row = own & ~(1 << e.eid)
            if row:
                int_rows[e.eid] = row
        outside = all_mask & ~own
        if outside:
            ext_rows[e.eid] = outside
    loc = Relation.from_rows(loc_rows)
    internal = Relation.from_rows(int_rows)
    external = Relation.from_rows(ext_rows)

    bindings: Dict[str, Value] = {
        # base sets --------------------------------------------------- #
        "R": reads,
        "W": writes,
        "M": accesses,
        "F": fences,
        "B": frozenset(e.eid for e in events if e.is_branch),
        "IW": init_writes,
        "id": uni.identity(),
        # C11 order sets ----------------------------------------------- #
        # ACQ: acquire or stronger; REL: release or stronger; etc.
        "ACQ": order_set(MemoryOrder.ACQ, MemoryOrder.ACQ_REL, MemoryOrder.SC),
        "REL": order_set(MemoryOrder.REL, MemoryOrder.ACQ_REL, MemoryOrder.SC),
        "SC": order_set(MemoryOrder.SC),
        "ACQ_REL": order_set(MemoryOrder.ACQ_REL),
        "CON": order_set(MemoryOrder.CON),
        "RLX": frozenset(
            e.eid for e in events if e.order.is_atomic
        ),  # "at least relaxed" = every atomic event
        "NA": frozenset(
            e.eid
            for e in events
            if e.is_access and not e.order.is_atomic and not e.is_init
        ),
        "ATOMIC": frozenset(e.eid for e in events if e.order.is_atomic),
        # static base relations ---------------------------------------- #
        "po": po,
        "rmw": rmw,
        "addr": addr,
        "data": data,
        "ctrl": ctrl,
        "deps": addr | data | ctrl,
        "loc": loc,
        "int": internal,
        "ext": external,
        "po-loc": po & loc,
        # init-before: initial writes precede every other event -------- #
        "init": Relation.cartesian(init_writes, universe - init_writes),
    }
    tags_present: Dict[str, set] = {}
    for e in events:
        for tag in e.tags:
            tags_present.setdefault(tag, set()).add(e.eid)
    for tag in KNOWN_TAG_SETS:
        bindings[tag] = frozenset(tags_present.get(tag, ()))
    env = CatEnv(bindings=bindings, universe=universe, po=po, interned=uni)
    return StaticEnv(env=env, internal=internal, external=external, universe=uni)


def dynamic_bindings(
    execution: Execution, static: Optional[StaticEnv] = None
) -> Dict[str, Value]:
    """The per-candidate (rf/co-derived) bindings.

    When ``static`` is given its internal/external relations are reused;
    otherwise they are recomputed from the execution.
    """
    internal = static.internal if static is not None else execution.internal()
    external = static.external if static is not None else execution.external()
    rf, co, fr = execution.rf, execution.co, execution.fr
    bindings: Dict[str, Value] = {
        "rf": rf,
        "co": co,
        "fr": fr,
        "com": rf | co | fr,
        "rfe": rf & external,
        "rfi": rf & internal,
        "coe": co & external,
        "coi": co & internal,
        "fre": fr & external,
        "fri": fr & internal,
    }
    # keys must stay in sync with DYNAMIC_BASE_NAMES; asserted in tests
    return bindings


def build_env(execution: Execution) -> CatEnv:
    """Construct the full Cat evaluation environment for ``execution``."""
    static = build_static_env(
        execution.events,
        execution.po,
        execution.rmw,
        execution.addr,
        execution.data,
        execution.ctrl,
    )
    env = static.env
    env.bindings.update(dynamic_bindings(execution, static))
    return env
