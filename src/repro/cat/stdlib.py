"""The standard environment a Cat model sees for one execution.

This is the bridge between :class:`~repro.core.execution.Execution` and the
Cat interpreter: it exposes the base sets (``R``, ``W``, ``M``, ``F``,
C11 order sets, architecture tag sets) and base relations (``po``, ``rf``,
``co``, ``fr``, dependency relations, ``loc``, ``int``/``ext``…) under the
names the shipped models use.

Tag sets (``A``, ``Q``, ``L``, ``X``, ``DMB.SY`` …) default to the empty
set when the execution contains no such event, so one model text works for
every front-end.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..core.events import INIT_TID, MemoryOrder
from ..core.execution import Execution
from ..core.relations import Relation
from .interp import CatEnv, Value

#: Architecture tag names every environment defines (empty if unused).
KNOWN_TAG_SETS = (
    # AArch64
    "A",          # load-acquire (LDAR, LDAXR)
    "Q",          # load-acquirePC (LDAPR) — weaker than A w.r.t. earlier STLR
    "L",          # store-release (STLR, STLXR)
    "X",          # exclusive / locked access
    "ISB",
    "DMB.SY",
    "DMB.LD",
    "DMB.ST",
    "DMB.ISH",
    # Armv7
    "DMB",
    "DSB",
    # x86
    "MFENCE",
    "LOCK",
    # RISC-V
    "AQ",
    "RL",
    "FENCE.RW.RW",
    "FENCE.R.RW",
    "FENCE.RW.W",
    "FENCE.W.W",
    "FENCE.R.R",
    "FENCE.TSO",
    # Power
    "SYNC",
    "LWSYNC",
    "ISYNC",
    "EIEIO",
    # MIPS
    "MIPS.SYNC",
    # misc
    "INIT",
    "RMW-R",
    "RMW-W",
    "NORET",      # ST<OP>-form atomic reads: not ordered by DMB LD
    "CONST",      # accesses to read-only (const) memory — paper §IV-E
)


def build_env(execution: Execution) -> CatEnv:
    """Construct the Cat evaluation environment for ``execution``."""
    universe = frozenset(execution.ids())
    reads = execution.reads()
    writes = execution.writes()
    fences = execution.fences()
    accesses = execution.accesses()
    init_writes = frozenset(e.eid for e in execution.events if e.is_init)

    def order_set(*orders: MemoryOrder) -> FrozenSet[int]:
        wanted = set(orders)
        return frozenset(e.eid for e in execution.events if e.order in wanted)

    bindings: Dict[str, Value] = {
        # base sets --------------------------------------------------- #
        "R": reads,
        "W": writes,
        "M": accesses,
        "F": fences,
        "B": frozenset(e.eid for e in execution.events if e.is_branch),
        "IW": init_writes,
        "id": Relation.identity(universe),
        # C11 order sets ----------------------------------------------- #
        # ACQ: acquire or stronger; REL: release or stronger; etc.
        "ACQ": order_set(MemoryOrder.ACQ, MemoryOrder.ACQ_REL, MemoryOrder.SC),
        "REL": order_set(MemoryOrder.REL, MemoryOrder.ACQ_REL, MemoryOrder.SC),
        "SC": order_set(MemoryOrder.SC),
        "ACQ_REL": order_set(MemoryOrder.ACQ_REL),
        "CON": order_set(MemoryOrder.CON),
        "RLX": frozenset(
            e.eid for e in execution.events if e.order.is_atomic
        ),  # "at least relaxed" = every atomic event
        "NA": frozenset(
            e.eid
            for e in execution.events
            if e.is_access and not e.order.is_atomic and not e.is_init
        ),
        "ATOMIC": frozenset(
            e.eid for e in execution.events if e.order.is_atomic
        ),
        # base relations ---------------------------------------------- #
        "po": execution.po,
        "rf": execution.rf,
        "co": execution.co,
        "fr": execution.fr,
        "rmw": execution.rmw,
        "addr": execution.addr,
        "data": execution.data,
        "ctrl": execution.ctrl,
        "deps": execution.addr | execution.data | execution.ctrl,
        "loc": execution.same_location(),
        "int": execution.internal(),
        "ext": execution.external(),
        "po-loc": execution.po_loc(),
        "com": execution.com(),
        "rfe": execution.rfe(),
        "rfi": execution.rfi(),
        "coe": execution.coe(),
        "coi": execution.coi(),
        "fre": execution.fre(),
        "fri": execution.fri(),
        # init-before: initial writes precede every other event -------- #
        "init": Relation.cartesian(
            init_writes, frozenset(universe) - init_writes
        ),
    }
    for tag in KNOWN_TAG_SETS:
        bindings[tag] = execution.tagged(tag)
    return CatEnv(bindings=bindings, universe=universe, po=execution.po)
