"""The standard environment a Cat model sees for one execution.

This is the bridge between :class:`~repro.core.execution.Execution` and the
Cat interpreter: it exposes the base sets (``R``, ``W``, ``M``, ``F``,
C11 order sets, architecture tag sets) and base relations (``po``, ``rf``,
``co``, ``fr``, dependency relations, ``loc``, ``int``/``ext``…) under the
names the shipped models use.

The environment is built in two stages, mirroring the staged solver:

* :func:`build_static_env` derives everything that depends only on the
  event structure and the po/rmw/dependency relations — fixed for a
  whole path combination, so it is computed **once** per combination;
* :func:`dynamic_bindings` adds the rf/co-derived relations that change
  per candidate (``rf``, ``co``, ``fr``, ``com`` and the internal/
  external splits).

:func:`build_env` composes both for callers that hold one finished
execution.

Tag sets (``A``, ``Q``, ``L``, ``X``, ``DMB.SY`` …) default to the empty
set when the execution contains no such event, so one model text works for
every front-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence

from ..core.events import Event, MemoryOrder
from ..core.execution import Execution
from ..core.relations import Relation
from .interp import CatEnv, Value

#: Architecture tag names every environment defines (empty if unused).
KNOWN_TAG_SETS = (
    # AArch64
    "A",          # load-acquire (LDAR, LDAXR)
    "Q",          # load-acquirePC (LDAPR) — weaker than A w.r.t. earlier STLR
    "L",          # store-release (STLR, STLXR)
    "X",          # exclusive / locked access
    "ISB",
    "DMB.SY",
    "DMB.LD",
    "DMB.ST",
    "DMB.ISH",
    # Armv7
    "DMB",
    "DSB",
    # x86
    "MFENCE",
    "LOCK",
    # RISC-V
    "AQ",
    "RL",
    "FENCE.RW.RW",
    "FENCE.R.RW",
    "FENCE.RW.W",
    "FENCE.W.W",
    "FENCE.R.R",
    "FENCE.TSO",
    # Power
    "SYNC",
    "LWSYNC",
    "ISYNC",
    "EIEIO",
    # MIPS
    "MIPS.SYNC",
    # misc
    "INIT",
    "RMW-R",
    "RMW-W",
    "NORET",      # ST<OP>-form atomic reads: not ordered by DMB LD
    "CONST",      # accesses to read-only (const) memory — paper §IV-E
)


@dataclass
class StaticEnv:
    """The per-path-combination half of the Cat environment.

    ``env`` holds every binding derivable before rf/co are chosen;
    ``internal``/``external`` are kept so the dynamic stage can derive
    ``rfe``/``rfi``/``coe``… by intersection instead of recomputing the
    O(n²) thread-split relations per candidate.
    """

    env: CatEnv
    internal: Relation
    external: Relation


def build_static_env(
    events: Sequence[Event],
    po: Relation,
    rmw: Relation = Relation.empty(),
    addr: Relation = Relation.empty(),
    data: Relation = Relation.empty(),
    ctrl: Relation = Relation.empty(),
) -> StaticEnv:
    """Construct the rf/co-independent bindings for one event structure."""
    universe = frozenset(e.eid for e in events)
    reads = frozenset(e.eid for e in events if e.is_read)
    writes = frozenset(e.eid for e in events if e.is_write)
    fences = frozenset(e.eid for e in events if e.is_fence)
    accesses = frozenset(e.eid for e in events if e.is_access)
    init_writes = frozenset(e.eid for e in events if e.is_init)

    def order_set(*orders: MemoryOrder) -> FrozenSet[int]:
        wanted = set(orders)
        return frozenset(e.eid for e in events if e.order in wanted)

    # same-location, internal and external splits (static: they depend
    # only on event structure, not on rf/co)
    by_loc: Dict[str, list] = {}
    for e in events:
        if e.is_access and e.loc is not None:
            by_loc.setdefault(e.loc, []).append(e.eid)
    loc_pairs = [
        (a, b) for ids in by_loc.values() for a in ids for b in ids if a != b
    ]
    int_pairs = []
    ext_pairs = []
    for a in events:
        for b in events:
            if a.eid == b.eid:
                continue
            if a.tid == b.tid:
                if not a.is_init:
                    int_pairs.append((a.eid, b.eid))
            else:
                ext_pairs.append((a.eid, b.eid))
    loc = Relation(loc_pairs)
    internal = Relation(int_pairs)
    external = Relation(ext_pairs)

    bindings: Dict[str, Value] = {
        # base sets --------------------------------------------------- #
        "R": reads,
        "W": writes,
        "M": accesses,
        "F": fences,
        "B": frozenset(e.eid for e in events if e.is_branch),
        "IW": init_writes,
        "id": Relation.identity(universe),
        # C11 order sets ----------------------------------------------- #
        # ACQ: acquire or stronger; REL: release or stronger; etc.
        "ACQ": order_set(MemoryOrder.ACQ, MemoryOrder.ACQ_REL, MemoryOrder.SC),
        "REL": order_set(MemoryOrder.REL, MemoryOrder.ACQ_REL, MemoryOrder.SC),
        "SC": order_set(MemoryOrder.SC),
        "ACQ_REL": order_set(MemoryOrder.ACQ_REL),
        "CON": order_set(MemoryOrder.CON),
        "RLX": frozenset(
            e.eid for e in events if e.order.is_atomic
        ),  # "at least relaxed" = every atomic event
        "NA": frozenset(
            e.eid
            for e in events
            if e.is_access and not e.order.is_atomic and not e.is_init
        ),
        "ATOMIC": frozenset(e.eid for e in events if e.order.is_atomic),
        # static base relations ---------------------------------------- #
        "po": po,
        "rmw": rmw,
        "addr": addr,
        "data": data,
        "ctrl": ctrl,
        "deps": addr | data | ctrl,
        "loc": loc,
        "int": internal,
        "ext": external,
        "po-loc": po & loc,
        # init-before: initial writes precede every other event -------- #
        "init": Relation.cartesian(init_writes, universe - init_writes),
    }
    tags_present: Dict[str, set] = {}
    for e in events:
        for tag in e.tags:
            tags_present.setdefault(tag, set()).add(e.eid)
    for tag in KNOWN_TAG_SETS:
        bindings[tag] = frozenset(tags_present.get(tag, ()))
    env = CatEnv(bindings=bindings, universe=universe, po=po)
    return StaticEnv(env=env, internal=internal, external=external)


def dynamic_bindings(
    execution: Execution, static: Optional[StaticEnv] = None
) -> Dict[str, Value]:
    """The per-candidate (rf/co-derived) bindings.

    When ``static`` is given its internal/external relations are reused;
    otherwise they are recomputed from the execution.
    """
    internal = static.internal if static is not None else execution.internal()
    external = static.external if static is not None else execution.external()
    rf, co, fr = execution.rf, execution.co, execution.fr
    bindings: Dict[str, Value] = {
        "rf": rf,
        "co": co,
        "fr": fr,
        "com": rf | co | fr,
        "rfe": rf & external,
        "rfi": rf & internal,
        "coe": co & external,
        "coi": co & internal,
        "fre": fr & external,
        "fri": fr & internal,
    }
    # keys must stay in sync with DYNAMIC_BASE_NAMES; asserted in tests
    return bindings


def build_env(execution: Execution) -> CatEnv:
    """Construct the full Cat evaluation environment for ``execution``."""
    static = build_static_env(
        execution.events,
        execution.po,
        execution.rmw,
        execution.addr,
        execution.data,
        execution.ctrl,
    )
    env = static.env
    env.bindings.update(dynamic_bindings(execution, static))
    return env
