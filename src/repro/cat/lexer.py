"""Tokenizer for the mini Cat language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from ..core.errors import ParseError

TOKEN_SPEC = [
    ("COMMENT_ML", r"\(\*.*?\*\)"),
    ("COMMENT_SL", r"//[^\n]*"),
    ("NEWLINE", r"\n"),
    ("WS", r"[ \t\r]+"),
    ("CARET_PLUS", r"\^\+"),
    ("CARET_STAR", r"\^\*"),
    ("INVERSE", r"\^-1"),
    ("STRING", r'"[^"\n]*"'),
    # identifiers may contain dots and interior hyphens (po-loc, dmb.sy)
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_.]*(?:-[A-Za-z0-9_.]+)*"),
    ("NUMBER", r"\d+"),
    ("OP", r"[|&\\;*?~=(),\[\]{}]"),
]

_MASTER = re.compile("|".join(f"(?P<{name}>{pat})" for name, pat in TOKEN_SPEC), re.DOTALL)

KEYWORDS = frozenset(
    {"let", "rec", "and", "as", "acyclic", "irreflexive", "empty", "flag", "show", "include", "unshow"}
)


@dataclass(frozen=True)
class Token:
    kind: str  # "IDENT", "KEYWORD", "OP", "NUMBER", "STRING", postfix kinds
    text: str
    line: int
    column: int


def tokenize(source: str) -> List[Token]:
    """Tokenize Cat source, dropping comments and whitespace."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _MASTER.match(source, pos)
        if match is None:
            col = pos - line_start + 1
            raise ParseError(f"unexpected character {source[pos]!r}", line, col)
        kind = match.lastgroup or ""
        text = match.group()
        col = match.start() - line_start + 1
        if kind == "NEWLINE":
            line += 1
            line_start = match.end()
        elif kind == "COMMENT_ML":
            line += text.count("\n")
            if "\n" in text:
                line_start = match.start() + text.rindex("\n") + 1
        elif kind in ("WS", "COMMENT_SL"):
            pass
        elif kind == "IDENT" and text in KEYWORDS:
            tokens.append(Token("KEYWORD", text, line, col))
        else:
            tokens.append(Token(kind, text, line, col))
        pos = match.end()
    return tokens
