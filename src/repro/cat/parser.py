"""Recursive-descent parser for the mini Cat language.

Operator precedence, loosest first (matching herd's cat):

    |      union
    \\      difference
    &      intersection
    ;  *   composition / cartesian product
    ~      complement (prefix)
    ^+ ^* ^-1 ?   postfix closures
    [e]  name  0  _  f(e)  (e)   primary
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import ParseError
from .ast import (
    Binary,
    Bracket,
    Call,
    CatExpr,
    CatModel,
    CatStmt,
    Check,
    Complement,
    EmptySet,
    Include,
    Let,
    Name,
    Postfix,
    Show,
    Universe,
)
from .lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------ #
    # token plumbing
    # ------------------------------------------------------------------ #
    def peek(self) -> Optional[Token]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of model")
        self.pos += 1
        return token

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return (
            token is not None
            and token.kind == kind
            and (text is None or token.text == text)
        )

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token is None or token.kind != kind or (text is not None and token.text != text):
            got = f"{token.kind} {token.text!r}" if token else "end of input"
            want = text if text is not None else kind
            line = token.line if token else 0
            raise ParseError(f"expected {want!r}, got {got}", line)
        return self.next()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    # ------------------------------------------------------------------ #
    # grammar
    # ------------------------------------------------------------------ #
    def parse_model(self) -> CatModel:
        name = ""
        # optional leading model name: a bare string or identifier line
        if self.at("STRING"):
            name = self.next().text.strip('"')
        elif self.at("IDENT") and not self._ident_starts_statement():
            name = self.next().text
        statements: List[CatStmt] = []
        while self.peek() is not None:
            statements.append(self.parse_statement())
        return CatModel(name=name, statements=tuple(statements))

    def _ident_starts_statement(self) -> bool:
        # A lone identifier at the start is a model name unless it is
        # followed by '=' (which cat does not allow at top level anyway).
        nxt = self.tokens[self.pos + 1] if self.pos + 1 < len(self.tokens) else None
        return nxt is not None and nxt.kind == "OP" and nxt.text == "="

    def parse_statement(self) -> CatStmt:
        token = self.peek()
        assert token is not None
        if token.kind == "KEYWORD":
            if token.text == "let":
                return self.parse_let()
            if token.text in ("acyclic", "irreflexive", "empty"):
                return self.parse_check(flag=False)
            if token.text == "flag":
                self.next()
                return self.parse_check(flag=True)
            if token.text in ("show", "unshow"):
                self.next()
                names = [self.expect("IDENT").text]
                while self.accept("OP", ","):
                    names.append(self.expect("IDENT").text)
                # optional "as alias"
                if self.accept("KEYWORD", "as"):
                    self.expect("IDENT")
                return Show(tuple(names))
            if token.text == "include":
                self.next()
                path = self.expect("STRING").text.strip('"')
                return Include(path)
        if token.kind == "OP" and token.text == "~":
            # standalone negated check: `~empty r as name`
            return self.parse_check(flag=False)
        raise ParseError(
            f"unexpected token {token.text!r} at statement start", token.line, token.column
        )

    def parse_let(self) -> Let:
        self.expect("KEYWORD", "let")
        recursive = bool(self.accept("KEYWORD", "rec"))
        bindings: List[Tuple[str, CatExpr]] = [self.parse_binding()]
        while self.accept("KEYWORD", "and"):
            bindings.append(self.parse_binding())
        return Let(tuple(bindings), recursive=recursive)

    def parse_binding(self) -> Tuple[str, CatExpr]:
        name = self.expect("IDENT").text
        self.expect("OP", "=")
        return name, self.parse_expr()

    def parse_check(self, flag: bool) -> Check:
        kw = self.next()
        if kw.kind != "KEYWORD" or kw.text not in ("acyclic", "irreflexive", "empty"):
            # "flag ~empty e as n" — the negation comes before the keyword
            if kw.kind == "OP" and kw.text == "~":
                inner = self.expect("KEYWORD")
                if inner.text not in ("acyclic", "irreflexive", "empty"):
                    raise ParseError(f"bad check kind {inner.text!r}", inner.line)
                expr = self.parse_expr()
                name = self._check_name(inner.text)
                return Check(inner.text, expr, name, negated=True, flag=flag)
            raise ParseError(f"bad check {kw.text!r}", kw.line, kw.column)
        expr = self.parse_expr()
        name = self._check_name(kw.text)
        return Check(kw.text, expr, name, negated=False, flag=flag)

    def _check_name(self, default: str) -> str:
        if self.accept("KEYWORD", "as"):
            return self.expect("IDENT").text
        return default

    # expressions -------------------------------------------------------- #
    def parse_expr(self) -> CatExpr:
        return self.parse_union()

    def parse_union(self) -> CatExpr:
        expr = self.parse_difference()
        while self.at("OP", "|"):
            self.next()
            expr = Binary("|", expr, self.parse_difference())
        return expr

    def parse_difference(self) -> CatExpr:
        expr = self.parse_intersection()
        while self.at("OP", "\\"):
            self.next()
            expr = Binary("\\", expr, self.parse_intersection())
        return expr

    def parse_intersection(self) -> CatExpr:
        expr = self.parse_sequence()
        while self.at("OP", "&"):
            self.next()
            expr = Binary("&", expr, self.parse_sequence())
        return expr

    def parse_sequence(self) -> CatExpr:
        expr = self.parse_prefix()
        while True:
            if self.at("OP", ";"):
                self.next()
                expr = Binary(";", expr, self.parse_prefix())
            elif self.at("OP", "*"):
                self.next()
                expr = Binary("*", expr, self.parse_prefix())
            else:
                return expr

    def parse_prefix(self) -> CatExpr:
        if self.at("OP", "~"):
            self.next()
            return Complement(self.parse_prefix())
        return self.parse_postfix()

    def parse_postfix(self) -> CatExpr:
        expr = self.parse_primary()
        while True:
            if self.at("CARET_PLUS"):
                self.next()
                expr = Postfix("^+", expr)
            elif self.at("CARET_STAR"):
                self.next()
                expr = Postfix("^*", expr)
            elif self.at("INVERSE"):
                self.next()
                expr = Postfix("^-1", expr)
            elif self.at("OP", "?"):
                self.next()
                expr = Postfix("?", expr)
            else:
                return expr

    def parse_primary(self) -> CatExpr:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of expression")
        if token.kind == "OP" and token.text == "(":
            self.next()
            expr = self.parse_expr()
            self.expect("OP", ")")
            return expr
        if token.kind == "OP" and token.text == "[":
            self.next()
            inner = self.parse_expr()
            self.expect("OP", "]")
            return Bracket(inner)
        if token.kind == "OP" and token.text == "{":
            self.next()
            self.expect("OP", "}")
            return EmptySet()
        if token.kind == "NUMBER":
            self.next()
            if token.text == "0":
                return EmptySet()
            raise ParseError(f"unexpected number {token.text}", token.line, token.column)
        if token.kind == "IDENT":
            self.next()
            if token.text == "_":
                return Universe()
            if self.at("OP", "("):
                self.next()
                args: List[CatExpr] = []
                if not self.at("OP", ")"):
                    args.append(self.parse_expr())
                    while self.accept("OP", ","):
                        args.append(self.parse_expr())
                self.expect("OP", ")")
                return Call(token.text, tuple(args))
            return Name(token.text)
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )


def parse(source: str) -> CatModel:
    """Parse Cat source text into a :class:`CatModel`."""
    return _Parser(tokenize(source)).parse_model()
