"""Recursive-descent parser for the mini Cat language.

Operator precedence, loosest first (matching herd's cat):

    |      union
    \\      difference
    &      intersection
    ;  *   composition / cartesian product
    ~      complement (prefix)
    ^+ ^* ^-1 ?   postfix closures
    [e]  name  0  _  f(e)  (e)   primary

Every AST node is stamped with the :class:`~repro.core.span.Span` of its
defining token (the operator for ``Binary``/``Postfix``, the name token
for ``Name``/``Call``, the keyword for statements), and every
:class:`ParseError` points at the offending token — including at end of
input, where the last seen token's position is used.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import ParseError
from ..core.span import Span
from .ast import (
    Binary,
    Bracket,
    Call,
    CatExpr,
    CatModel,
    CatStmt,
    Check,
    Complement,
    EmptySet,
    Include,
    Let,
    Name,
    Postfix,
    Show,
    Universe,
)
from .lexer import Token, tokenize


def _span(token: Token) -> Span:
    return Span.at(token.line, token.column, width=len(token.text))


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------ #
    # token plumbing
    # ------------------------------------------------------------------ #
    def peek(self) -> Optional[Token]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def _last_position(self) -> Tuple[int, int]:
        """Where the input ended: just past the last token seen."""
        if self.tokens:
            last = self.tokens[-1]
            return last.line, last.column + len(last.text)
        return 1, 1

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            line, column = self._last_position()
            raise ParseError("unexpected end of model", line, column)
        self.pos += 1
        return token

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return (
            token is not None
            and token.kind == kind
            and (text is None or token.text == text)
        )

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token is None or token.kind != kind or (text is not None and token.text != text):
            got = f"{token.kind} {token.text!r}" if token else "end of input"
            want = text if text is not None else kind
            line, column = (
                (token.line, token.column) if token else self._last_position()
            )
            raise ParseError(f"expected {want!r}, got {got}", line, column)
        return self.next()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    # ------------------------------------------------------------------ #
    # grammar
    # ------------------------------------------------------------------ #
    def parse_model(self) -> CatModel:
        name = ""
        # optional leading model name: a bare string or identifier line
        if self.at("STRING"):
            name = self.next().text.strip('"')
        elif self.at("IDENT") and not self._ident_starts_statement():
            name = self.next().text
        statements: List[CatStmt] = []
        while self.peek() is not None:
            statements.append(self.parse_statement())
        return CatModel(name=name, statements=tuple(statements))

    def _ident_starts_statement(self) -> bool:
        # A lone identifier at the start is a model name unless it is
        # followed by '=' (which cat does not allow at top level anyway).
        nxt = self.tokens[self.pos + 1] if self.pos + 1 < len(self.tokens) else None
        return nxt is not None and nxt.kind == "OP" and nxt.text == "="

    def parse_statement(self) -> CatStmt:
        token = self.peek()
        assert token is not None
        if token.kind == "KEYWORD":
            if token.text == "let":
                return self.parse_let()
            if token.text in ("acyclic", "irreflexive", "empty"):
                return self.parse_check(flag=False)
            if token.text == "flag":
                self.next()
                return self.parse_check(flag=True)
            if token.text in ("show", "unshow"):
                self.next()
                names = [self.expect("IDENT").text]
                while self.accept("OP", ","):
                    names.append(self.expect("IDENT").text)
                # optional "as alias"
                if self.accept("KEYWORD", "as"):
                    self.expect("IDENT")
                return Show(tuple(names), span=_span(token))
            if token.text == "include":
                self.next()
                path = self.expect("STRING").text.strip('"')
                return Include(path, span=_span(token))
        if token.kind == "OP" and token.text == "~":
            # standalone negated check: `~empty r as name`
            return self.parse_check(flag=False)
        raise ParseError(
            f"unexpected token {token.text!r} at statement start", token.line, token.column
        )

    def parse_let(self) -> Let:
        let_token = self.expect("KEYWORD", "let")
        recursive = bool(self.accept("KEYWORD", "rec"))
        bindings: List[Tuple[str, CatExpr]] = []
        binding_spans: List[Optional[Span]] = []
        name, expr, name_span = self.parse_binding()
        bindings.append((name, expr))
        binding_spans.append(name_span)
        while self.accept("KEYWORD", "and"):
            name, expr, name_span = self.parse_binding()
            bindings.append((name, expr))
            binding_spans.append(name_span)
        return Let(
            tuple(bindings),
            recursive=recursive,
            span=_span(let_token),
            binding_spans=tuple(binding_spans),
        )

    def parse_binding(self) -> Tuple[str, CatExpr, Span]:
        name_token = self.expect("IDENT")
        self.expect("OP", "=")
        return name_token.text, self.parse_expr(), _span(name_token)

    def parse_check(self, flag: bool) -> Check:
        kw = self.next()
        if kw.kind != "KEYWORD" or kw.text not in ("acyclic", "irreflexive", "empty"):
            # "flag ~empty e as n" — the negation comes before the keyword
            if kw.kind == "OP" and kw.text == "~":
                inner = self.expect("KEYWORD")
                if inner.text not in ("acyclic", "irreflexive", "empty"):
                    raise ParseError(
                        f"bad check kind {inner.text!r}", inner.line, inner.column
                    )
                expr = self.parse_expr()
                name = self._check_name(inner.text)
                return Check(
                    inner.text, expr, name, negated=True, flag=flag, span=_span(kw)
                )
            raise ParseError(f"bad check {kw.text!r}", kw.line, kw.column)
        expr = self.parse_expr()
        name = self._check_name(kw.text)
        return Check(kw.text, expr, name, negated=False, flag=flag, span=_span(kw))

    def _check_name(self, default: str) -> str:
        if self.accept("KEYWORD", "as"):
            return self.expect("IDENT").text
        return default

    # expressions -------------------------------------------------------- #
    def parse_expr(self) -> CatExpr:
        return self.parse_union()

    def parse_union(self) -> CatExpr:
        expr = self.parse_difference()
        while self.at("OP", "|"):
            op = self.next()
            expr = Binary("|", expr, self.parse_difference(), span=_span(op))
        return expr

    def parse_difference(self) -> CatExpr:
        expr = self.parse_intersection()
        while self.at("OP", "\\"):
            op = self.next()
            expr = Binary("\\", expr, self.parse_intersection(), span=_span(op))
        return expr

    def parse_intersection(self) -> CatExpr:
        expr = self.parse_sequence()
        while self.at("OP", "&"):
            op = self.next()
            expr = Binary("&", expr, self.parse_sequence(), span=_span(op))
        return expr

    def parse_sequence(self) -> CatExpr:
        expr = self.parse_prefix()
        while True:
            if self.at("OP", ";"):
                op = self.next()
                expr = Binary(";", expr, self.parse_prefix(), span=_span(op))
            elif self.at("OP", "*"):
                op = self.next()
                expr = Binary("*", expr, self.parse_prefix(), span=_span(op))
            else:
                return expr

    def parse_prefix(self) -> CatExpr:
        if self.at("OP", "~"):
            op = self.next()
            return Complement(self.parse_prefix(), span=_span(op))
        return self.parse_postfix()

    def parse_postfix(self) -> CatExpr:
        expr = self.parse_primary()
        while True:
            if self.at("CARET_PLUS"):
                op = self.next()
                expr = Postfix("^+", expr, span=_span(op))
            elif self.at("CARET_STAR"):
                op = self.next()
                expr = Postfix("^*", expr, span=_span(op))
            elif self.at("INVERSE"):
                op = self.next()
                expr = Postfix("^-1", expr, span=_span(op))
            elif self.at("OP", "?"):
                op = self.next()
                expr = Postfix("?", expr, span=_span(op))
            else:
                return expr

    def parse_primary(self) -> CatExpr:
        token = self.peek()
        if token is None:
            line, column = self._last_position()
            raise ParseError("unexpected end of expression", line, column)
        if token.kind == "OP" and token.text == "(":
            self.next()
            expr = self.parse_expr()
            self.expect("OP", ")")
            return expr
        if token.kind == "OP" and token.text == "[":
            self.next()
            inner = self.parse_expr()
            self.expect("OP", "]")
            return Bracket(inner, span=_span(token))
        if token.kind == "OP" and token.text == "{":
            self.next()
            self.expect("OP", "}")
            return EmptySet(span=_span(token))
        if token.kind == "NUMBER":
            self.next()
            if token.text == "0":
                return EmptySet(span=_span(token))
            raise ParseError(f"unexpected number {token.text}", token.line, token.column)
        if token.kind == "IDENT":
            self.next()
            if token.text == "_":
                return Universe(span=_span(token))
            if self.at("OP", "("):
                self.next()
                args: List[CatExpr] = []
                if not self.at("OP", ")"):
                    args.append(self.parse_expr())
                    while self.accept("OP", ","):
                        args.append(self.parse_expr())
                self.expect("OP", ")")
                return Call(token.text, tuple(args), span=_span(token))
            return Name(token.text, span=_span(token))
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )


def parse(source: str, source_name: str = "") -> CatModel:
    """Parse Cat source text into a :class:`CatModel`.

    A :class:`ParseError` raised anywhere in the parse carries the
    offending source line as its snippet (``exc.render()`` shows
    ``file:line:col``, the line, and a column caret).
    """
    try:
        return _Parser(tokenize(source)).parse_model()
    except ParseError as exc:
        raise exc.attach_source(source, source_name)
