"""The Armv8 AArch64 memory model (official, §B2.3.1 of the Arm ARM [14]).

A faithful subset of herd's ``aarch64.cat``: internal visibility
(SC-per-location), atomicity of exclusives/atomics, and external
visibility via the ordered-before relation ``ob = obs | dob | aob | bob``.

Tag conventions (set by the assembly semantics):

* ``A`` — load-acquire (LDAR, LDAXR, LDADDA…): orders against *everything*
  po-later, and a *prior* STLR (``[L]; po; [A]``).
* ``Q`` — LDAPR (weak acquire, Armv8.3 RCpc): orders po-later accesses but
  **not** against a prior STLR — the exact relaxation of the paper's §IV-F
  LDAPR case study.
* ``L`` — store-release (STLR, STLXR, SWPL…).
* ``DMB.SY`` / ``DMB.LD`` / ``DMB.ST`` — barriers; ``ISB`` — context sync.
* ``CONST`` — accesses to read-only memory.  The base model has no notion
  of const; the paper (§IV-E) augments it to flag const violations, which
  is how the 128-bit const-atomic-load crash (LLVM #61770) is caught.
"""

SOURCE = r"""
AArch64
(* Internal visibility requirement *)
acyclic po-loc | com as internal

(* Atomicity of read-modify-writes *)
empty rmw & (fre; coe) as atomic

(* External visibility: ordered-before *)
let obs = rfe | fre | coe

(* dependency-ordered-before *)
let dob = addr | data
        | ctrl; [W]
        | (ctrl | (addr; po)); [ISB]; po; [R]
        | addr; po; [W]
        | (ctrl | data); coi
        | (addr | data); rfi

(* atomic-ordered-before *)
let aob = rmw
        | [range(rmw)]; rfi; [A | Q]

(* ST<OP> atomics (LDADD with XZR destination aliases STADD) perform a
   read that is NOT ordered by DMB LD — the mechanism behind the paper's
   Fig. 10 / Fig. 1 bugs.  Such reads carry the NORET tag. *)
let RR = R \ NORET

(* barrier-ordered-before *)
let bob = po; [DMB.SY]; po
        | [L]; po; [A]
        | [RR]; po; [DMB.LD]; po
        | [A | Q]; po
        | [W]; po; [DMB.ST]; po; [W]
        | po; [L]

let ob = (obs | dob | aob | bob)^+
irreflexive ob as external

(* paper augmentation: writes must not reach read-only memory *)
flag ~empty (W & CONST) as const-violation
"""
