"""Intel x86-64 TSO (Owens/Sarkar/Sewell [71], herd's x86tso.cat).

Total store order: only write-to-read program order may be relaxed, and
``MFENCE`` / locked instructions (tag ``X``) restore it.  Because TSO keeps
read-to-write order, x86 exhibits **no load buffering** — the reason
Table IV reports zero positive differences for Intel x86-64.
"""

SOURCE = r"""
X86-TSO
(* program order with write->read pairs removed *)
let po-WR = [W]; po; [R]
let ppo = po \ po-WR

(* locked instructions and mfence restore W->R order *)
let implied = po; [X] | [X]; po
let fence = po; [MFENCE]; po

let ghb = ppo | implied | fence | rfe | co | fr
acyclic ghb as tso

acyclic po-loc | com as sc-per-location
empty rmw & (fre; coe) as atomicity
"""
