"""Sequential consistency (Lamport [48]) as a Cat model.

The strongest model we ship; useful as a baseline and in property tests
(every SC outcome must be an outcome of every weaker model).
"""

SOURCE = r"""
SC
(* An execution is SC iff communication embeds in one total order
   consistent with program order. *)
acyclic po | rf | co | fr as sc
empty rmw & (fre; coe) as atomicity
"""
