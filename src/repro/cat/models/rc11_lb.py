"""``rc11+lb`` — RC11 with load-to-store reordering permitted.

The paper's artefact (Claim 4) repeats the Table IV campaign under this
model: since the ISO C/C++ standard explicitly permits load buffering
(§7.17.3 of C23), the positive differences found under RC11 are not bugs
in today's compilers.  The no-thin-air axiom is weakened from
``acyclic (po | rf)`` to ``acyclic (addr | data | rf)``: value-dependency
cycles (genuine out-of-thin-air) remain forbidden, while dependency-free
and merely control-dependent load buffering become allowed — control
dependencies are erasable by compilers, so including them would leave
residual false positives (the paper reports *all* positives vanish).
"""

SOURCE = r"""
RC11-LB
let rs = [W]; (po & loc)?; [W & RLX]; (rf; rmw)^*
let sw = [REL]; ([F]; po)?; rs; rf; [R & RLX]; (po; [F])?; [ACQ]
let hb = (po | sw | init)^+
let eco = (rf | co | fr)^+
irreflexive hb; eco? as coherence
empty rmw & (fre; coe) as atomicity
(* load buffering permitted: only value (data/address) dependency
   cycles are genuine out-of-thin-air.  Control dependencies are NOT
   included: compilers legitimately erase them (identical-branch
   merging), as the paper's gcc -O1 Armv7 study shows. *)
acyclic (addr | data) | rf as no-thin-air
acyclic [SC]; (po | rf | co | fr)^+; [SC] as seq-cst
let conflict = ((W * M) | (M * W)) & loc & ext
let race = (conflict & ((NA * M) | (M * NA))) \ (hb | hb^-1)
flag ~empty race as undefined-behaviour
"""
