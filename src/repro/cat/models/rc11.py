"""The RC11 model of Lahav et al. [47], as used throughout the paper.

This is the *source* oracle for most experiments.  The key property for the
paper's Table IV / Fig. 7 results: RC11 forbids load buffering outright via
``acyclic (po | rf)`` (no-thin-air), while the ISO standard — and all the
weak architectures — permit load-to-store reordering.  ``rc11+lb``
(:mod:`repro.cat.models.rc11_lb`) relaxes exactly that axiom, which makes
every positive difference of Table IV disappear.

Data races on non-atomics are *flagged* as undefined behaviour rather than
forbidden; the test harness ignores differences on racy tests (paper
§IV-D: "Many differences in Tab. IV arise from data races ... we ignore
false positives on that basis").
"""

SOURCE = r"""
RC11
(* release sequences: a write, optionally headed by same-thread writes,
   extended through read-modify-writes *)
let rs = [W]; (po & loc)?; [W & RLX]; (rf; rmw)^*

(* synchronises-with: release write/fence to acquire read/fence *)
let sw = [REL]; ([F]; po)?; rs; rf; [R & RLX]; (po; [F])?; [ACQ]

(* happens-before; initial writes precede everything *)
let hb = (po | sw | init)^+

(* extended coherence order *)
let eco = (rf | co | fr)^+

(* COHERENCE *)
irreflexive hb; eco? as coherence

(* ATOMICITY *)
empty rmw & (fre; coe) as atomicity

(* NO-THIN-AIR: RC11's conservative fix — forbids load buffering *)
acyclic po | rf as no-thin-air

(* SC axiom (simplified psc): no cycle among seq_cst events through
   program order and communication *)
acyclic [SC]; (po | rf | co | fr)^+; [SC] as seq-cst

(* data races on non-atomics are undefined behaviour *)
let conflict = ((W * M) | (M * W)) & loc & ext
let race = (conflict & ((NA * M) | (M * NA))) \ (hb | hb^-1)
flag ~empty race as undefined-behaviour
"""
