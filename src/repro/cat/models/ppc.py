"""IBM PowerPC memory model ("Herding Cats" [12], herd's ppc.cat).

``sync`` is the full fence; ``lwsync`` is lightweight (does not order
write-to-read); ``isync`` combines with control dependencies.  PowerPC
permits load buffering, so it shows positive differences in Table IV.
"""

SOURCE = r"""
PPC
let ffence = po; [SYNC]; po
let lwfence = (po; [LWSYNC]; po) \ ([W]; po; [LWSYNC]; po; [R])
let fence = ffence | lwfence
let ppo = addr | data
        | ctrl; [W]
        | addr; po; [W]
        | ctrl; [ISYNC]; po; [R]
let hb = ppo | fence | rfe
acyclic hb as no-thin-air
let prop_base = rfe?; fence; hb^*
let prop = (prop_base & (W * W)) | (com^*; prop_base^*; ffence; hb^*)
irreflexive fre; prop; hb^* as observation
acyclic co | prop as propagation
acyclic po-loc | com as sc-per-location
empty rmw & (fre; coe) as atomicity
"""
