"""Memory model sources, written in the mini Cat DSL."""
