"""The (unofficial) Armv7 model, in the "Herding Cats" Power/ARM style [12].

Two variants are shipped:

* :data:`SOURCE` — the **fixed** model: ``dmb ish`` (tag ``DMB.ISH``) is a
  full fence, as on hardware.
* :data:`BUGGY_SOURCE` — the model **before** the paper's fix
  (herdtools7 PR #385, "Added dmb ish to arm model"): ``dmb ish`` events
  are not recognised as fences, so a Store Buffering test compiled with
  ``dmb ish`` barriers is (wrongly) allowed.  The paper found this with a
  compiled SB litmus test and fixed the model — a limitation class unique
  to model-based testing (§IV-E).
"""

SOURCE = r"""
ARMv7
let ffence = po; [DMB | DSB | DMB.ISH]; po
let fence = ffence
let ppo = addr | data
        | ctrl; [W]
        | addr; po; [W]
        | ctrl; [ISB]; po; [R]
let hb = ppo | fence | rfe
acyclic hb as no-thin-air
let prop_base = rfe?; fence; hb^*
let prop = (prop_base & (W * W)) | (com^*; prop_base^*; ffence; hb^*)
irreflexive fre; prop; hb^* as observation
acyclic co | prop as propagation
acyclic po-loc | com as sc-per-location
empty rmw & (fre; coe) as atomicity
"""

BUGGY_SOURCE = r"""
ARMv7-buggy
(* dmb ish missing from the fence set: the pre-fix herdtools arm model *)
let ffence = po; [DMB | DSB]; po
let fence = ffence
let ppo = addr | data
        | ctrl; [W]
        | addr; po; [W]
        | ctrl; [ISB]; po; [R]
let hb = ppo | fence | rfe
acyclic hb as no-thin-air
let prop_base = rfe?; fence; hb^*
let prop = (prop_base & (W * W)) | (com^*; prop_base^*; ffence; hb^*)
irreflexive fre; prop; hb^* as observation
acyclic co | prop as propagation
acyclic po-loc | com as sc-per-location
empty rmw & (fre; coe) as atomicity
"""
