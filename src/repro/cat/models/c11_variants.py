"""Additional C/C++ model variants shipped by the paper's artefact.

The artefact offers ``c11_simp.cat`` and ``c11_partialSC.cat`` alongside
``rc11.cat`` as values for the ``CMEM`` Make variable.  We provide the
same knobs: a coherence-and-atomicity-only model, and RC11 without the SC
axiom.
"""

C11_SIMP_SOURCE = r"""
C11-SIMP
(* Coherence and atomicity only: the weakest sensible C11 approximation. *)
let rs = [W]; (po & loc)?; [W & RLX]; (rf; rmw)^*
let sw = [REL]; ([F]; po)?; rs; rf; [R & RLX]; (po; [F])?; [ACQ]
let hb = (po | sw | init)^+
let eco = (rf | co | fr)^+
irreflexive hb; eco? as coherence
empty rmw & (fre; coe) as atomicity
"""

C11_PARTIALSC_SOURCE = r"""
C11-PARTIALSC
(* RC11 minus the SC axiom ("partial SC"). *)
let rs = [W]; (po & loc)?; [W & RLX]; (rf; rmw)^*
let sw = [REL]; ([F]; po)?; rs; rf; [R & RLX]; (po; [F])?; [ACQ]
let hb = (po | sw | init)^+
let eco = (rf | co | fr)^+
irreflexive hb; eco? as coherence
empty rmw & (fre; coe) as atomicity
acyclic po | rf as no-thin-air
let conflict = ((W * M) | (M * W)) & loc & ext
let race = (conflict & ((NA * M) | (M * NA))) \ (hb | hb^-1)
flag ~empty race as undefined-behaviour
"""
