"""MIPS (64-bit) memory model, Power-style with a single full fence.

``sync`` (tag ``MIPS.SYNC``) is the only barrier.  Our compiler mappings
for MIPS are conservative — every atomic access is bracketed by ``sync``,
mirroring GCC's "atomic data is considered volatile for practical
reasons" discussion in the paper's §IV-C — so MIPS shows **zero** positive
differences but the **largest** share of negative differences in
Table IV, exactly as the paper reports.
"""

SOURCE = r"""
MIPS
let ffence = po; [MIPS.SYNC]; po
let fence = ffence
let ppo = addr | data
        | ctrl; [W]
        | addr; po; [W]
let hb = ppo | fence | rfe
acyclic hb as no-thin-air
let prop_base = rfe?; fence; hb^*
let prop = (prop_base & (W * W)) | (com^*; prop_base^*; ffence; hb^*)
irreflexive fre; prop; hb^* as observation
acyclic co | prop as propagation
acyclic po-loc | com as sc-per-location
empty rmw & (fre; coe) as atomicity
"""
