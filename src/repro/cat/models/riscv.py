"""RISC-V RVWMO memory model (official [60]), in the AArch64 ``ob`` style.

Fences are tagged by their predecessor/successor sets
(``FENCE.RW.RW`` etc.); AMOs and LR/SC may carry acquire/release
annotations (RISC-V spells them ``.aq``/``.rl``; event tags reuse the
cross-architecture ``A``/``L`` names).  RVWMO permits load buffering — RISC-V shows positive
differences in Table IV for both compilers.
"""

SOURCE = r"""
RISCV
acyclic po-loc | com as internal
empty rmw & (fre; coe) as atomicity

let obs = rfe | fre | coe
let dob = addr | data
        | ctrl; [W]
        | (addr | data); rfi
        | addr; po; [W]
let aob = rmw
        | [range(rmw)]; rfi; [A]
let bob = po; [FENCE.RW.RW]; po
        | [R]; po; [FENCE.R.RW]; po
        | po; [FENCE.RW.W]; po; [W]
        | [W]; po; [FENCE.W.W]; po; [W]
        | [R]; po; [FENCE.R.R]; po; [R]
        | [A]; po
        | po; [L]
        | [L]; po; [A]
let ob = (obs | dob | aob | bob)^+
irreflexive ob as external
"""
