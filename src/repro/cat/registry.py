"""Model registry: look up compiled Cat models by name.

Names follow the paper's artefact conventions (``rc11.cat``,
``rc11+lb.cat``, ``aarch64.cat``…); the ``.cat`` suffix is optional.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.errors import ModelError
from .interp import Model
from .models import aarch64, armv7, c11_variants, mips, ppc, rc11, rc11_lb, riscv, sc, x86tso

_SOURCES: Dict[str, str] = {
    "sc": sc.SOURCE,
    "rc11": rc11.SOURCE,
    "rc11+lb": rc11_lb.SOURCE,
    "c11_simp": c11_variants.C11_SIMP_SOURCE,
    "c11_partialsc": c11_variants.C11_PARTIALSC_SOURCE,
    "x86tso": x86tso.SOURCE,
    "aarch64": aarch64.SOURCE,
    "armv7": armv7.SOURCE,
    "armv7_buggy": armv7.BUGGY_SOURCE,
    "riscv": riscv.SOURCE,
    "ppc": ppc.SOURCE,
    "mips": mips.SOURCE,
}

#: The architecture model used for each compilation target.
ARCH_MODEL: Dict[str, str] = {
    "aarch64": "aarch64",
    "armv7": "armv7",
    "x86_64": "x86tso",
    "riscv64": "riscv",
    "ppc64": "ppc",
    "mips64": "mips",
}

_CACHE: Dict[str, Model] = {}


def normalise(name: str) -> str:
    key = name.strip().lower()
    if key.endswith(".cat"):
        key = key[: -len(".cat")]
    key = key.replace("c11_partialsc", "c11_partialsc").replace("x86-tso", "x86tso")
    return key


def get_model(name: str) -> Model:
    """Return the compiled model called ``name`` (cached)."""
    key = normalise(name)
    if key not in _SOURCES:
        raise ModelError(
            f"unknown model {name!r}; available: {', '.join(sorted(_SOURCES))}"
        )
    if key not in _CACHE:
        _CACHE[key] = Model.from_source(_SOURCES[key], name=key)
    return _CACHE[key]


def get_source(name: str) -> str:
    key = normalise(name)
    if key not in _SOURCES:
        raise ModelError(f"unknown model {name!r}")
    return _SOURCES[key]


def arch_model(arch: str) -> Model:
    """The architecture model for a compilation target (e.g. ``aarch64``)."""
    if arch not in ARCH_MODEL:
        raise ModelError(f"no architecture model registered for {arch!r}")
    return get_model(ARCH_MODEL[arch])


def list_models() -> List[str]:
    return sorted(_SOURCES)
