"""Model registry: look up compiled Cat models by name.

Names follow the paper's artefact conventions (``rc11.cat``,
``rc11+lb.cat``, ``aarch64.cat``…); the ``.cat`` suffix is optional, and
each model's *in-source* header name (``X86-TSO``, ``C11-PARTIALSC``,
``RC11-LB``…) is registered as an alias, so whatever spelling a ``.cat``
file or the paper uses resolves to the same compiled model.

Built on the generic :class:`repro.core.registry.Registry` protocol:
``MODELS`` holds Cat *sources*; compiled :class:`Model` objects are cached
lazily per source text, so per-session overlays (which may shadow a name
with different source) never poison the global compile cache.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from ..core.errors import ModelError
from ..core.registry import Registry
from .interp import Model
from .models import aarch64, armv7, c11_variants, mips, ppc, rc11, rc11_lb, riscv, sc, x86tso


def _strip_cat(name: str) -> str:
    """The registry's normalisation: case-fold and drop ``.cat``.  The
    hyphenated spellings are *aliases* (below), so inventory listings can
    show them."""
    key = name.strip().lower()
    if key.endswith(".cat"):
        key = key[: -len(".cat")]
    return key


def normalise(name: str) -> str:
    """Canonicalise a model name: case-fold, drop the ``.cat`` suffix,
    and rewrite the hyphenated in-source spellings (``x86-tso``,
    ``c11-partialsc``) to their registry keys."""
    key = _strip_cat(name)
    key = key.replace("c11-partialsc", "c11_partialsc").replace("x86-tso", "x86tso")
    return key


#: every shipped Cat model source, by artefact name.  The aliases are the
#: models' in-source header names (what ``herd7`` would print).
MODELS: Registry[str] = Registry("model", normalise=_strip_cat, error=ModelError)
MODELS.register("sc", sc.SOURCE, doc="sequential consistency")
MODELS.register("rc11", rc11.SOURCE, doc="repaired C11 (the paper's CMEM default)")
MODELS.register("rc11+lb", rc11_lb.SOURCE, aliases=("rc11-lb",),
                doc="RC11 with load-buffering allowed (Claim 4 re-run)")
MODELS.register("c11_simp", c11_variants.C11_SIMP_SOURCE, aliases=("c11-simp",),
                doc="coherence and atomicity only")
MODELS.register("c11_partialsc", c11_variants.C11_PARTIALSC_SOURCE,
                aliases=("c11-partialsc",), doc="RC11 without the SC axiom")
MODELS.register("x86tso", x86tso.SOURCE, aliases=("x86-tso",),
                doc="Intel x86 total store order")
MODELS.register("aarch64", aarch64.SOURCE, doc="Armv8 AArch64")
MODELS.register("armv7", armv7.SOURCE, doc="Armv7-a")
MODELS.register("armv7_buggy", armv7.BUGGY_SOURCE, aliases=("armv7-buggy",),
                doc="pre-fix herdtools Armv7 (dmb ish missing)")
MODELS.register("riscv", riscv.SOURCE, doc="RISC-V RVWMO")
MODELS.register("ppc", ppc.SOURCE, doc="IBM PowerPC")
MODELS.register("mips", mips.SOURCE, doc="MIPS (SYNC-bracketed atomics)")

#: The architecture model used for each compilation target.
ARCH_MODEL: Dict[str, str] = {
    "aarch64": "aarch64",
    "armv7": "armv7",
    "x86_64": "x86tso",
    "riscv64": "riscv",
    "ppc64": "ppc",
    "mips64": "mips",
}

#: compiled models, keyed by (name, source text) — safe to share between
#: the global registry and any session overlay, including an overlay that
#: shadows a global name with different source.
_COMPILE_CACHE: Dict[tuple, Model] = {}


def compile_model(source: str, name: str) -> Model:
    """Compile (with caching) a Cat source to a :class:`Model`."""
    key = (name, source)
    if key not in _COMPILE_CACHE:
        _COMPILE_CACHE[key] = Model.from_source(source, name=name)
    return _COMPILE_CACHE[key]


def lint_model_source(source: str, name: str = ""):
    """Run :mod:`repro.analysis.catlint` over Cat source (lazy import —
    the analysis package imports this package, not vice versa)."""
    from ..analysis import lint_cat_source

    return lint_cat_source(source, name)


def register_model_source(
    name: str,
    source: str,
    *,
    registry: Optional[Registry[str]] = None,
    validate: bool = True,
    aliases=(),
    **meta,
):
    """Register a Cat source, statically validating it first.

    Error-severity findings (sort errors, undefined names, non-monotone
    ``let rec`` ...) raise :class:`~repro.core.errors.LintError` *before*
    the bad source lands in the registry; warning-severity findings are
    returned for the caller to surface. ``validate=False`` skips the
    analyzer (used by tests that deliberately register broken sources).
    """
    from ..core.errors import LintError

    registry = registry if registry is not None else MODELS
    warnings = ()
    if validate:
        report = lint_model_source(source, name)
        if not report.ok:
            raise LintError(
                f"model {name!r} failed static analysis", report.errors
            )
        warnings = report.warnings
    registry.register(name, source, aliases=aliases, **meta)
    return warnings


def model_signature(name, registry: Optional[Registry[str]] = None) -> str:
    """A short content digest of the model ``name`` resolves to under
    ``registry`` — the piece of cache-key identity that distinguishes a
    session-shadowed model from the global one of the same name (the
    PR 2 rule: caches key on *content*, never on names alone)."""
    if isinstance(name, Model):
        name = name.name
    registry = registry if registry is not None else MODELS
    source = registry.get(name)
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def resolve_model(name, registry: Optional[Registry[str]] = None) -> Model:
    """Resolve a model name (or pass a :class:`Model` through) against
    ``registry`` — the hook :class:`repro.api.Session` uses to honour
    per-session overlays."""
    if isinstance(name, Model):
        return name
    registry = registry if registry is not None else MODELS
    key = registry.resolve(name)
    return compile_model(registry.get(key), key)


def get_model(name: str) -> Model:
    """Return the compiled model called ``name`` (cached)."""
    return resolve_model(name)


def get_source(name: str) -> str:
    return MODELS.get(name)


def arch_model(arch: str) -> Model:
    """The architecture model for a compilation target (e.g. ``aarch64``)."""
    if arch not in ARCH_MODEL:
        raise ModelError(f"no architecture model registered for {arch!r}")
    return get_model(ARCH_MODEL[arch])


def list_models() -> List[str]:
    return MODELS.names()
