"""The mini Cat model-specification language and shipped memory models."""

from .interp import (
    DYNAMIC_BASE_NAMES,
    CatEnv,
    CheckResult,
    CompiledModel,
    Model,
    ModelResult,
    StaticPrefix,
)
from .parser import parse
from .registry import arch_model, get_model, get_source, list_models
from .stdlib import StaticEnv, build_env, build_static_env, dynamic_bindings

__all__ = [
    "DYNAMIC_BASE_NAMES",
    "CatEnv",
    "CheckResult",
    "CompiledModel",
    "Model",
    "ModelResult",
    "StaticPrefix",
    "StaticEnv",
    "build_static_env",
    "dynamic_bindings",
    "parse",
    "arch_model",
    "get_model",
    "get_source",
    "list_models",
    "build_env",
]
