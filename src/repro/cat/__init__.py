"""The mini Cat model-specification language and shipped memory models."""

from .interp import CatEnv, CheckResult, Model, ModelResult
from .parser import parse
from .registry import arch_model, get_model, get_source, list_models
from .stdlib import build_env

__all__ = [
    "CatEnv",
    "CheckResult",
    "Model",
    "ModelResult",
    "parse",
    "arch_model",
    "get_model",
    "get_source",
    "list_models",
    "build_env",
]
