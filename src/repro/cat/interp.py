"""Evaluator for Cat models over candidate executions.

A :class:`Model` wraps parsed Cat statements.  :meth:`Model.evaluate` takes
an environment (built by :mod:`repro.cat.stdlib` from an
:class:`~repro.core.execution.Execution`) and returns a
:class:`ModelResult`: whether the execution is *allowed* (all non-flag
checks pass) plus any *flags* raised (e.g. data races → undefined
behaviour, which callers treat as "any outcome permitted" rather than as a
compiler bug — paper §IV-D).

Values are either :class:`~repro.core.relations.Relation` or event sets
(``frozenset[int]``); sets are coerced to identity relations where a
relation is required, exactly as in herd's cat.

For the staged solver, :meth:`Model.compile` splits a model into a
*static prefix* — statements whose free names are derivable from the
event structure and po/rmw/dependency relations alone — and a *dynamic
suffix* of rf/co-dependent statements.  The prefix is evaluated once per
path combination (see :class:`CompiledModel`); only the suffix runs per
candidate execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..core.errors import ModelError
from ..core.relations import Relation
from .ast import (
    Binary,
    Bracket,
    Call,
    CatExpr,
    CatModel,
    CatStmt,
    Check,
    Complement,
    EmptySet,
    Include,
    Let,
    Name,
    Postfix,
    Show,
    Universe,
)
from .parser import parse

Value = Union[Relation, FrozenSet[int]]

#: Base bindings that change per candidate execution (rf/co and their
#: derivatives).  Everything else in the standard environment is fixed
#: once the path combination (events, po, rmw, deps) is fixed.
DYNAMIC_BASE_NAMES: Tuple[str, ...] = (
    "rf",
    "co",
    "fr",
    "com",
    "rfe",
    "rfi",
    "coe",
    "coi",
    "fre",
    "fri",
)


@dataclass
class CatEnv:
    """The evaluation environment for one execution.

    ``bindings`` maps names to values; ``universe`` is the full event-id
    set (needed by ``^*``, ``?`` and ``~``); ``po`` is kept separately for
    the ``fencerel`` builtin.
    """

    bindings: Dict[str, Value]
    universe: FrozenSet[int]
    po: Relation

    def lookup(self, name: str) -> Value:
        if name in self.bindings:
            return self.bindings[name]
        raise ModelError(f"unbound name {name!r} in cat model")

    def child(self) -> "CatEnv":
        return CatEnv(dict(self.bindings), self.universe, self.po)


@dataclass(frozen=True)
class CheckResult:
    name: str
    kind: str
    passed: bool
    flag: bool


@dataclass(frozen=True)
class ModelResult:
    """The verdict of a model on one candidate execution."""

    allowed: bool
    checks: Tuple[CheckResult, ...]
    flags: Tuple[str, ...]

    def failed_checks(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.checks if not c.passed and not c.flag)


def _as_relation(value: Value, universe: FrozenSet[int]) -> Relation:
    if isinstance(value, Relation):
        return value
    return Relation.identity(value)


def _as_set(value: Value) -> FrozenSet[int]:
    if isinstance(value, frozenset):
        return value
    raise ModelError("expected an event set, got a relation")


def _free_names(expr: CatExpr) -> FrozenSet[str]:
    """The set of names an expression reads."""
    if isinstance(expr, Name):
        return frozenset({expr.ident})
    if isinstance(expr, (EmptySet, Universe)):
        return frozenset()
    if isinstance(expr, Bracket):
        return _free_names(expr.inner)
    if isinstance(expr, Binary):
        return _free_names(expr.left) | _free_names(expr.right)
    if isinstance(expr, (Postfix, Complement)):
        return _free_names(expr.inner)
    if isinstance(expr, Call):
        names: Set[str] = set()
        for arg in expr.args:
            names |= _free_names(arg)
        return frozenset(names)
    return frozenset()  # pragma: no cover - defensive


class Model:
    """A parsed Cat model ready for evaluation."""

    def __init__(self, ast: CatModel, name: Optional[str] = None) -> None:
        self.ast = ast
        self.name = name or ast.name or "anonymous"
        self._compiled: Optional["CompiledModel"] = None

    # ------------------------------------------------------------------ #
    @staticmethod
    def from_source(source: str, name: Optional[str] = None) -> "Model":
        return Model(parse(source), name=name)

    # ------------------------------------------------------------------ #
    def compile(self) -> "CompiledModel":
        """Split into a static prefix and a dynamic suffix (cached)."""
        if self._compiled is None:
            self._compiled = CompiledModel(self)
        return self._compiled

    # ------------------------------------------------------------------ #
    def evaluate(self, env: CatEnv) -> ModelResult:
        """Run every statement; collect check outcomes."""
        env = env.child()
        checks: List[CheckResult] = []
        flags: List[str] = []
        for stmt in self.ast.statements:
            self._exec_stmt(stmt, env, checks, flags)
        allowed = all(c.passed for c in checks if not c.flag)
        return ModelResult(allowed=allowed, checks=tuple(checks), flags=tuple(flags))

    # ------------------------------------------------------------------ #
    def _exec_stmt(
        self,
        stmt: CatStmt,
        env: CatEnv,
        checks: List[CheckResult],
        flags: List[str],
    ) -> None:
        if isinstance(stmt, Let):
            if stmt.recursive:
                self._eval_let_rec(stmt, env)
            else:
                for name, expr in stmt.bindings:
                    env.bindings[name] = self._eval(expr, env)
        elif isinstance(stmt, Check):
            holds = self._run_check(stmt, env)
            checks.append(CheckResult(stmt.name, stmt.kind, holds, stmt.flag))
            # A `flag` check marks the execution when its condition HOLDS
            # (herd: `flag ~empty race as ub` fires when race is non-empty);
            # it never forbids the execution.
            if stmt.flag and holds:
                flags.append(stmt.name)
        elif isinstance(stmt, (Show, Include)):
            # `show` is presentation-only; `include` is resolved by the
            # registry before parsing, so a leftover include is a no-op.
            return
        else:  # pragma: no cover - defensive
            raise ModelError(f"unknown statement {stmt!r}")

    def _run_check(self, stmt: Check, env: CatEnv) -> bool:
        value = self._eval(stmt.expr, env)
        rel = _as_relation(value, env.universe)
        if stmt.kind == "acyclic":
            result = rel.is_acyclic()
        elif stmt.kind == "irreflexive":
            result = rel.is_irreflexive()
        elif stmt.kind == "empty":
            result = rel.is_empty() if isinstance(value, Relation) else not value
        else:  # pragma: no cover - parser guarantees
            raise ModelError(f"unknown check kind {stmt.kind!r}")
        if stmt.negated:
            result = not result
        return result

    def _eval_let_rec(self, stmt: Let, env: CatEnv) -> None:
        """Fixed-point semantics for ``let rec``: start from empty, iterate."""
        names = [name for name, _ in stmt.bindings]
        for name in names:
            env.bindings[name] = Relation.empty()
        changed = True
        iterations = 0
        while changed:
            iterations += 1
            if iterations > 1000:
                raise ModelError("let rec did not converge after 1000 iterations")
            changed = False
            for name, expr in stmt.bindings:
                new = self._eval(expr, env)
                if new != env.bindings[name]:
                    env.bindings[name] = new
                    changed = True

    # ------------------------------------------------------------------ #
    def _eval(self, expr: CatExpr, env: CatEnv) -> Value:
        if isinstance(expr, Name):
            return env.lookup(expr.ident)
        if isinstance(expr, EmptySet):
            return Relation.empty()
        if isinstance(expr, Universe):
            return env.universe
        if isinstance(expr, Bracket):
            inner = self._eval(expr.inner, env)
            return Relation.identity(_as_set(inner))
        if isinstance(expr, Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, Postfix):
            return self._eval_postfix(expr, env)
        if isinstance(expr, Complement):
            inner = self._eval(expr.inner, env)
            if isinstance(inner, frozenset):
                return env.universe - inner
            full = Relation.cartesian(env.universe, env.universe)
            return full - inner
        if isinstance(expr, Call):
            return self._eval_call(expr, env)
        raise ModelError(f"cannot evaluate {expr!r}")  # pragma: no cover

    def _eval_binary(self, expr: Binary, env: CatEnv) -> Value:
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if expr.op == "*":
            return Relation.cartesian(_as_set(left), _as_set(right))
        if expr.op == ";":
            lrel = _as_relation(left, env.universe)
            rrel = _as_relation(right, env.universe)
            return lrel.compose(rrel)
        # set-theoretic ops: keep sets as sets when both sides are sets
        if isinstance(left, frozenset) and isinstance(right, frozenset):
            if expr.op == "|":
                return left | right
            if expr.op == "&":
                return left & right
            if expr.op == "\\":
                return left - right
        lrel = _as_relation(left, env.universe)
        rrel = _as_relation(right, env.universe)
        if expr.op == "|":
            return lrel | rrel
        if expr.op == "&":
            return lrel & rrel
        if expr.op == "\\":
            return lrel - rrel
        raise ModelError(f"unknown binary operator {expr.op!r}")  # pragma: no cover

    def _eval_postfix(self, expr: Postfix, env: CatEnv) -> Value:
        inner = self._eval(expr.inner, env)
        rel = _as_relation(inner, env.universe)
        if expr.op == "^+":
            return rel.transitive_closure()
        if expr.op == "^*":
            return rel.reflexive_transitive_closure(env.universe)
        if expr.op == "^-1":
            return rel.inverse()
        if expr.op == "?":
            return rel.optional(env.universe)
        raise ModelError(f"unknown postfix operator {expr.op!r}")  # pragma: no cover

    def _eval_call(self, expr: Call, env: CatEnv) -> Value:
        args = [self._eval(a, env) for a in expr.args]
        if expr.func == "domain":
            (rel,) = args
            return _as_relation(rel, env.universe).domain()
        if expr.func == "range":
            (rel,) = args
            return _as_relation(rel, env.universe).codomain()
        if expr.func == "toid":
            (s,) = args
            return Relation.identity(_as_set(s))
        if expr.func == "fencerel":
            (s,) = args
            ident = Relation.identity(_as_set(s))
            return env.po.compose(ident).compose(env.po)
        raise ModelError(f"unknown builtin {expr.func!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Model({self.name!r})"


@dataclass
class StaticPrefix:
    """The result of running a model's static statements once.

    ``env`` carries the static bindings (base env plus every let-bound
    name the prefix produced); ``checks``/``flags`` are the outcomes of
    the static checks.  The prefix is immutable from the caller's point
    of view: :meth:`CompiledModel.run_dynamic` copies the bindings before
    the suffix executes.
    """

    env: CatEnv
    checks: Tuple[CheckResult, ...]
    flags: Tuple[str, ...]

    @property
    def allowed(self) -> bool:
        """False iff a static (non-flag) check already failed — in that
        case no candidate of the path combination can be allowed."""
        return all(c.passed for c in self.checks if not c.flag)


class CompiledModel:
    """A model split into a static prefix and a dynamic suffix.

    Classification walks the statements in order, tracking which names
    are *dynamic* (seeded with :data:`DYNAMIC_BASE_NAMES`): a ``let``
    whose right-hand side touches a dynamic name binds a dynamic name;
    checks over dynamic names go to the suffix.  Rebinding an existing
    name after a dynamic statement has been emitted is conservatively
    treated as dynamic, preserving statement order for shadowing models.
    """

    def __init__(self, model: Model) -> None:
        self.model = model
        self.name = model.name
        self.static_statements: List[CatStmt] = []
        self.dynamic_statements: List[CatStmt] = []
        dynamic: Set[str] = set(DYNAMIC_BASE_NAMES)
        bound: Set[str] = set()
        suffix_started = False
        for stmt in model.ast.statements:
            if isinstance(stmt, Let):
                names = {name for name, _ in stmt.bindings}
                free: Set[str] = set()
                for _, expr in stmt.bindings:
                    free |= _free_names(expr)
                if stmt.recursive:
                    free -= names
                is_dynamic = (
                    bool(free & dynamic)
                    # rebinding a base dynamic name, or rebinding any
                    # name once the suffix has started, must stay in
                    # statement order with the dynamic statements
                    or bool(names & set(DYNAMIC_BASE_NAMES))
                    or (suffix_started and bool(names & bound))
                )
                if is_dynamic:
                    dynamic |= names
                    suffix_started = True
                    self.dynamic_statements.append(stmt)
                else:
                    dynamic -= names
                    self.static_statements.append(stmt)
                bound |= names
            elif isinstance(stmt, Check):
                if _free_names(stmt.expr) & dynamic:
                    suffix_started = True
                    self.dynamic_statements.append(stmt)
                else:
                    self.static_statements.append(stmt)
            else:  # Show / Include: presentation-only
                self.static_statements.append(stmt)

    # ------------------------------------------------------------------ #
    def run_static(self, env: CatEnv) -> StaticPrefix:
        """Evaluate the static prefix over a (rf/co-free) environment."""
        env = env.child()
        checks: List[CheckResult] = []
        flags: List[str] = []
        for stmt in self.static_statements:
            self.model._exec_stmt(stmt, env, checks, flags)
        return StaticPrefix(env=env, checks=tuple(checks), flags=tuple(flags))

    def run_dynamic(
        self, prefix: StaticPrefix, bindings: Dict[str, Value]
    ) -> ModelResult:
        """Evaluate the dynamic suffix for one candidate execution.

        ``bindings`` supplies the per-candidate base relations (see
        :data:`DYNAMIC_BASE_NAMES`); static check results are merged into
        the returned :class:`ModelResult`.
        """
        env = CatEnv(
            dict(prefix.env.bindings), prefix.env.universe, prefix.env.po
        )
        env.bindings.update(bindings)
        checks: List[CheckResult] = list(prefix.checks)
        flags: List[str] = list(prefix.flags)
        for stmt in self.dynamic_statements:
            self.model._exec_stmt(stmt, env, checks, flags)
        allowed = all(c.passed for c in checks if not c.flag)
        return ModelResult(allowed=allowed, checks=tuple(checks), flags=tuple(flags))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledModel({self.name!r}, "
            f"static={len(self.static_statements)}, "
            f"dynamic={len(self.dynamic_statements)})"
        )
