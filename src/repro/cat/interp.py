"""Evaluator for Cat models over candidate executions.

A :class:`Model` wraps parsed Cat statements.  :meth:`Model.evaluate` takes
an environment (built by :mod:`repro.cat.stdlib` from an
:class:`~repro.core.execution.Execution`) and returns a
:class:`ModelResult`: whether the execution is *allowed* (all non-flag
checks pass) plus any *flags* raised (e.g. data races → undefined
behaviour, which callers treat as "any outcome permitted" rather than as a
compiler bug — paper §IV-D).

Values are either :class:`~repro.core.relations.Relation` or event sets
(``frozenset[int]``); sets are coerced to identity relations where a
relation is required, exactly as in herd's cat.

Compilation to relation kernels
-------------------------------

Statements are not re-interpreted per candidate.  Each statement compiles
**once per model** into a closure over row-level kernel ops of
:class:`~repro.core.relations.Relation` (the AST is walked at compile
time; only bitmask arithmetic runs at evaluation time).  For the staged
solver, :meth:`Model.compile` additionally splits a model into a *static
prefix* — statements whose free names are derivable from the event
structure and po/rmw/dependency relations alone — and a *dynamic suffix*
of rf/co-dependent statements.  The prefix's fused op sequence runs once
per path combination (see :class:`CompiledModel`); only the suffix's ops
run per candidate execution.

Identity invariants the compiled kernels rely on:

* every relation bound in one environment is encoded over the same event
  universe (bit position = event id; the solver interns ids densely via
  :class:`~repro.core.relations.EventUniverse`), so binary kernel ops
  combine rows directly;
* ``env.universe`` is a *stable* frozenset per path combination — the
  identity and full relations that ``^*`` / ``?`` / ``~`` need are
  memoised on it (:func:`~repro.core.relations.identity_over` /
  :func:`~repro.core.relations.full_over`) instead of being rebuilt per
  call;
* compiled ops are pure: they read the environment and append to the
  check/flag accumulators, never mutating a bound relation in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..core.errors import ModelError
from ..core.relations import EventUniverse, Relation, full_over
from .ast import (
    Binary,
    Bracket,
    Call,
    CatExpr,
    CatModel,
    CatStmt,
    Check,
    Complement,
    EmptySet,
    Include,
    Let,
    Name,
    Postfix,
    Show,
    Universe,
)
from .parser import parse

Value = Union[Relation, FrozenSet[int]]

#: Base bindings that change per candidate execution (rf/co and their
#: derivatives).  Everything else in the standard environment is fixed
#: once the path combination (events, po, rmw, deps) is fixed.
DYNAMIC_BASE_NAMES: Tuple[str, ...] = (
    "rf",
    "co",
    "fr",
    "com",
    "rfe",
    "rfi",
    "coe",
    "coi",
    "fre",
    "fri",
)


@dataclass
class CatEnv:
    """The evaluation environment for one execution.

    ``bindings`` maps names to values; ``universe`` is the full event-id
    set (needed by ``^*``, ``?`` and ``~``); ``po`` is kept separately for
    the ``fencerel`` builtin.  ``interned`` optionally carries the
    :class:`~repro.core.relations.EventUniverse` the bindings are encoded
    against (the solver provides it; hand-built environments may not).
    """

    bindings: Dict[str, Value]
    universe: FrozenSet[int]
    po: Relation
    interned: Optional[EventUniverse] = None

    def lookup(self, name: str) -> Value:
        if name in self.bindings:
            return self.bindings[name]
        raise ModelError(f"unbound name {name!r} in cat model")

    def child(self) -> "CatEnv":
        return CatEnv(dict(self.bindings), self.universe, self.po, self.interned)


@dataclass(frozen=True)
class CheckResult:
    name: str
    kind: str
    passed: bool
    flag: bool


@dataclass(frozen=True)
class ModelResult:
    """The verdict of a model on one candidate execution."""

    allowed: bool
    checks: Tuple[CheckResult, ...]
    flags: Tuple[str, ...]

    def failed_checks(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.checks if not c.passed and not c.flag)


def _as_relation(value: Value, universe: FrozenSet[int]) -> Relation:
    if isinstance(value, Relation):
        return value
    return Relation.identity(value)


def _as_set(value: Value) -> FrozenSet[int]:
    if isinstance(value, frozenset):
        return value
    raise ModelError("expected an event set, got a relation")


def _free_names(expr: CatExpr) -> FrozenSet[str]:
    """The set of names an expression reads."""
    if isinstance(expr, Name):
        return frozenset({expr.ident})
    if isinstance(expr, (EmptySet, Universe)):
        return frozenset()
    if isinstance(expr, Bracket):
        return _free_names(expr.inner)
    if isinstance(expr, Binary):
        return _free_names(expr.left) | _free_names(expr.right)
    if isinstance(expr, (Postfix, Complement)):
        return _free_names(expr.inner)
    if isinstance(expr, Call):
        names: Set[str] = set()
        for arg in expr.args:
            names |= _free_names(arg)
        return frozenset(names)
    return frozenset()  # pragma: no cover - defensive


# --------------------------------------------------------------------- #
# expression/statement compilation: AST -> kernel-op closures
# --------------------------------------------------------------------- #
ExprKernel = Callable[[CatEnv], Value]
StmtKernel = Callable[[CatEnv, List[CheckResult], List[str]], None]

_EMPTY_REL = Relation.empty()


def _compile_expr(expr: CatExpr) -> ExprKernel:
    """Walk the AST once; return a closure of fused relation-kernel ops.

    All dispatch (node type, operator, builtin name) is resolved here, at
    compile time; evaluating the returned closure performs only kernel
    arithmetic plus the set-vs-relation coercions the Cat semantics need.
    Unknown names and builtins still fail at *evaluation* time with the
    same :class:`ModelError` the interpreter raised, so error behaviour
    is unchanged.
    """
    if isinstance(expr, Name):
        ident = expr.ident
        def k_name(env: CatEnv) -> Value:
            bindings = env.bindings
            if ident in bindings:
                return bindings[ident]
            raise ModelError(f"unbound name {ident!r} in cat model")
        return k_name
    if isinstance(expr, EmptySet):
        return lambda env: _EMPTY_REL
    if isinstance(expr, Universe):
        return lambda env: env.universe
    if isinstance(expr, Bracket):
        inner = _compile_expr(expr.inner)
        return lambda env: Relation.identity(_as_set(inner(env)))
    if isinstance(expr, Binary):
        return _compile_binary(expr)
    if isinstance(expr, Postfix):
        return _compile_postfix(expr)
    if isinstance(expr, Complement):
        inner = _compile_expr(expr.inner)
        def k_complement(env: CatEnv) -> Value:
            value = inner(env)
            if isinstance(value, frozenset):
                return env.universe - value
            return full_over(env.universe) - value
        return k_complement
    if isinstance(expr, Call):
        return _compile_call(expr)
    raise ModelError(f"cannot compile {expr!r}")  # pragma: no cover


def _compile_binary(expr: Binary) -> ExprKernel:
    left = _compile_expr(expr.left)
    right = _compile_expr(expr.right)
    op = expr.op
    if op == "*":
        return lambda env: Relation.cartesian(_as_set(left(env)), _as_set(right(env)))
    if op == ";":
        def k_seq(env: CatEnv) -> Value:
            uni = env.universe
            return _as_relation(left(env), uni).compose(_as_relation(right(env), uni))
        return k_seq
    if op not in ("|", "&", "\\"):  # pragma: no cover - parser guarantees
        raise ModelError(f"unknown binary operator {op!r}")

    def k_setop(env: CatEnv) -> Value:
        lv = left(env)
        rv = right(env)
        # set-theoretic ops: keep sets as sets when both sides are sets
        if isinstance(lv, frozenset) and isinstance(rv, frozenset):
            if op == "|":
                return lv | rv
            if op == "&":
                return lv & rv
            return lv - rv
        uni = env.universe
        lrel = _as_relation(lv, uni)
        rrel = _as_relation(rv, uni)
        if op == "|":
            return lrel | rrel
        if op == "&":
            return lrel & rrel
        return lrel - rrel

    return k_setop


def _compile_postfix(expr: Postfix) -> ExprKernel:
    inner = _compile_expr(expr.inner)
    op = expr.op
    if op == "^+":
        return lambda env: _as_relation(inner(env), env.universe).transitive_closure()
    if op == "^*":
        return lambda env: _as_relation(
            inner(env), env.universe
        ).reflexive_transitive_closure(env.universe)
    if op == "^-1":
        return lambda env: _as_relation(inner(env), env.universe).inverse()
    if op == "?":
        return lambda env: _as_relation(inner(env), env.universe).optional(env.universe)
    raise ModelError(f"unknown postfix operator {op!r}")  # pragma: no cover


def _compile_call(expr: Call) -> ExprKernel:
    args = [_compile_expr(a) for a in expr.args]
    func = expr.func
    if func == "domain":
        def k_domain(env: CatEnv) -> Value:
            (rel,) = [a(env) for a in args]
            return _as_relation(rel, env.universe).domain()
        return k_domain
    if func == "range":
        def k_range(env: CatEnv) -> Value:
            (rel,) = [a(env) for a in args]
            return _as_relation(rel, env.universe).codomain()
        return k_range
    if func == "toid":
        def k_toid(env: CatEnv) -> Value:
            (s,) = [a(env) for a in args]
            return Relation.identity(_as_set(s))
        return k_toid
    if func == "fencerel":
        def k_fencerel(env: CatEnv) -> Value:
            (s,) = [a(env) for a in args]
            ident = Relation.identity(_as_set(s))
            return env.po.compose(ident).compose(env.po)
        return k_fencerel

    def k_unknown(env: CatEnv) -> Value:
        raise ModelError(f"unknown builtin {func!r}")

    return k_unknown


def _compile_let(stmt: Let) -> StmtKernel:
    compiled = [(name, _compile_expr(expr)) for name, expr in stmt.bindings]
    if not stmt.recursive:
        def k_let(env: CatEnv, checks: List[CheckResult], flags: List[str]) -> None:
            bindings = env.bindings
            for name, fn in compiled:
                bindings[name] = fn(env)
        return k_let

    names = [name for name, _ in compiled]

    def k_let_rec(env: CatEnv, checks: List[CheckResult], flags: List[str]) -> None:
        """Fixed-point semantics for ``let rec``: start from empty, iterate."""
        bindings = env.bindings
        for name in names:
            bindings[name] = _EMPTY_REL
        changed = True
        iterations = 0
        while changed:
            iterations += 1
            if iterations > 1000:
                raise ModelError("let rec did not converge after 1000 iterations")
            changed = False
            for name, fn in compiled:
                new = fn(env)
                if new != bindings[name]:
                    bindings[name] = new
                    changed = True

    return k_let_rec


def _compile_check(stmt: Check) -> StmtKernel:
    fn = _compile_expr(stmt.expr)
    name, kind, negated, flag = stmt.name, stmt.kind, stmt.negated, stmt.flag
    if kind == "acyclic":
        def test(value: Value, env: CatEnv) -> bool:
            return _as_relation(value, env.universe).is_acyclic()
    elif kind == "irreflexive":
        def test(value: Value, env: CatEnv) -> bool:
            return _as_relation(value, env.universe).is_irreflexive()
    elif kind == "empty":
        def test(value: Value, env: CatEnv) -> bool:
            return value.is_empty() if isinstance(value, Relation) else not value
    else:  # pragma: no cover - parser guarantees
        raise ModelError(f"unknown check kind {kind!r}")

    def k_check(env: CatEnv, checks: List[CheckResult], flags: List[str]) -> None:
        holds = test(fn(env), env)
        if negated:
            holds = not holds
        checks.append(CheckResult(name, kind, holds, flag))
        # A `flag` check marks the execution when its condition HOLDS
        # (herd: `flag ~empty race as ub` fires when race is non-empty);
        # it never forbids the execution.
        if flag and holds:
            flags.append(name)

    return k_check


def _compile_stmt(stmt: CatStmt) -> Optional[StmtKernel]:
    if isinstance(stmt, Let):
        return _compile_let(stmt)
    if isinstance(stmt, Check):
        return _compile_check(stmt)
    if isinstance(stmt, (Show, Include)):
        # `show` is presentation-only; `include` is resolved by the
        # registry before parsing, so a leftover include is a no-op.
        return None
    raise ModelError(f"unknown statement {stmt!r}")  # pragma: no cover - defensive


class Model:
    """A parsed Cat model ready for evaluation."""

    def __init__(self, ast: CatModel, name: Optional[str] = None) -> None:
        self.ast = ast
        self.name = name or ast.name or "anonymous"
        self._compiled: Optional["CompiledModel"] = None
        #: per-statement kernel cache, keyed by statement identity, shared
        #: between :meth:`evaluate` and :class:`CompiledModel`
        self._stmt_kernels: Dict[int, Optional[StmtKernel]] = {}
        self._ops: Optional[List[StmtKernel]] = None

    # ------------------------------------------------------------------ #
    @staticmethod
    def from_source(source: str, name: Optional[str] = None) -> "Model":
        return Model(parse(source), name=name)

    # ------------------------------------------------------------------ #
    def compile(self) -> "CompiledModel":
        """Split into a static prefix and a dynamic suffix (cached)."""
        if self._compiled is None:
            self._compiled = CompiledModel(self)
        return self._compiled

    def ops_for(self, statements: List[CatStmt]) -> List[StmtKernel]:
        """Compile ``statements`` (cached per statement) to kernel ops."""
        ops: List[StmtKernel] = []
        for stmt in statements:
            key = id(stmt)
            if key not in self._stmt_kernels:
                self._stmt_kernels[key] = _compile_stmt(stmt)
            op = self._stmt_kernels[key]
            if op is not None:
                ops.append(op)
        return ops

    # ------------------------------------------------------------------ #
    def evaluate(self, env: CatEnv) -> ModelResult:
        """Run every statement's compiled kernel; collect check outcomes."""
        if self._ops is None:
            self._ops = self.ops_for(self.ast.statements)
        env = env.child()
        checks: List[CheckResult] = []
        flags: List[str] = []
        for op in self._ops:
            op(env, checks, flags)
        allowed = all(c.passed for c in checks if not c.flag)
        return ModelResult(allowed=allowed, checks=tuple(checks), flags=tuple(flags))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Model({self.name!r})"


@dataclass
class StaticPrefix:
    """The result of running a model's static statements once.

    ``env`` carries the static bindings (base env plus every let-bound
    name the prefix produced); ``checks``/``flags`` are the outcomes of
    the static checks.  The prefix is immutable from the caller's point
    of view: :meth:`CompiledModel.run_dynamic` copies the bindings before
    the suffix executes.
    """

    env: CatEnv
    checks: Tuple[CheckResult, ...]
    flags: Tuple[str, ...]

    @property
    def allowed(self) -> bool:
        """False iff a static (non-flag) check already failed — in that
        case no candidate of the path combination can be allowed."""
        return all(c.passed for c in self.checks if not c.flag)


class CompiledModel:
    """A model split into a static prefix and a dynamic suffix of kernels.

    Classification walks the statements in order, tracking which names
    are *dynamic* (seeded with :data:`DYNAMIC_BASE_NAMES`): a ``let``
    whose right-hand side touches a dynamic name binds a dynamic name;
    checks over dynamic names go to the suffix.  Rebinding an existing
    name after a dynamic statement has been emitted is conservatively
    treated as dynamic, preserving statement order for shadowing models.

    Both halves are compiled once — at construction — into fused lists
    of row-level kernel ops (:data:`StmtKernel`); per-candidate work in
    :meth:`run_dynamic` is a dict copy plus bitmask arithmetic.
    """

    def __init__(self, model: Model) -> None:
        self.model = model
        self.name = model.name
        self.static_statements: List[CatStmt] = []
        self.dynamic_statements: List[CatStmt] = []
        dynamic: Set[str] = set(DYNAMIC_BASE_NAMES)
        bound: Set[str] = set()
        suffix_started = False
        for stmt in model.ast.statements:
            if isinstance(stmt, Let):
                names = {name for name, _ in stmt.bindings}
                free: Set[str] = set()
                for _, expr in stmt.bindings:
                    free |= _free_names(expr)
                if stmt.recursive:
                    free -= names
                is_dynamic = (
                    bool(free & dynamic)
                    # rebinding a base dynamic name, or rebinding any
                    # name once the suffix has started, must stay in
                    # statement order with the dynamic statements
                    or bool(names & set(DYNAMIC_BASE_NAMES))
                    or (suffix_started and bool(names & bound))
                )
                if is_dynamic:
                    dynamic |= names
                    suffix_started = True
                    self.dynamic_statements.append(stmt)
                else:
                    dynamic -= names
                    self.static_statements.append(stmt)
                bound |= names
            elif isinstance(stmt, Check):
                if _free_names(stmt.expr) & dynamic:
                    suffix_started = True
                    self.dynamic_statements.append(stmt)
                else:
                    self.static_statements.append(stmt)
            else:  # Show / Include: presentation-only
                self.static_statements.append(stmt)
        self._static_ops: List[StmtKernel] = model.ops_for(self.static_statements)
        self._dynamic_ops: List[StmtKernel] = model.ops_for(self.dynamic_statements)

    # ------------------------------------------------------------------ #
    def run_static(self, env: CatEnv) -> StaticPrefix:
        """Evaluate the static prefix over a (rf/co-free) environment."""
        env = env.child()
        checks: List[CheckResult] = []
        flags: List[str] = []
        for op in self._static_ops:
            op(env, checks, flags)
        return StaticPrefix(env=env, checks=tuple(checks), flags=tuple(flags))

    def run_dynamic(
        self, prefix: StaticPrefix, bindings: Dict[str, Value]
    ) -> ModelResult:
        """Evaluate the dynamic suffix for one candidate execution.

        ``bindings`` supplies the per-candidate base relations (see
        :data:`DYNAMIC_BASE_NAMES`); static check results are merged into
        the returned :class:`ModelResult`.
        """
        base = prefix.env
        env = CatEnv(dict(base.bindings), base.universe, base.po, base.interned)
        env.bindings.update(bindings)
        checks: List[CheckResult] = list(prefix.checks)
        flags: List[str] = list(prefix.flags)
        for op in self._dynamic_ops:
            op(env, checks, flags)
        allowed = all(c.passed for c in checks if not c.flag)
        return ModelResult(allowed=allowed, checks=tuple(checks), flags=tuple(flags))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledModel({self.name!r}, "
            f"static={len(self.static_statements)}, "
            f"dynamic={len(self.dynamic_statements)})"
        )
