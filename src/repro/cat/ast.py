"""AST for the mini Cat model-specification language.

The Cat language (Alglave, Cousot, Maranget [2]) defines memory consistency
models as constraints over relations.  We implement the subset the shipped
models need:

* expressions over relations and event sets:
  ``|`` (union), ``&`` (intersection), ``\\`` (difference), ``;``
  (composition), ``*`` (cartesian product of sets), ``~`` (complement),
  postfix ``^+``/``^*``/``^-1``/``?``, identity brackets ``[S]``, and
  function calls (``domain``, ``range``, ``fencerel``).
* ``let`` (including ``let rec ... and ...``) bindings,
* checks: ``acyclic e as name``, ``irreflexive e as name``,
  ``empty e as name`` (and negated ``~empty``),
* ``flag`` checks, which mark rather than forbid executions (used for data
  races / undefined behaviour),
* ``show``/``include`` statements (accepted and ignored).

Every node carries an optional source :class:`~repro.core.span.Span` in a
``compare=False`` field: the parser attaches token positions so the
static analyzers (:mod:`repro.analysis.catlint`) and error messages can
point at the offending construct, while node equality — which the
compiled-kernel caches and tests rely on — ignores where a node came
from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.span import Span


class CatExpr:
    """Base class for Cat expressions."""


@dataclass(frozen=True)
class Name(CatExpr):
    ident: str
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class EmptySet(CatExpr):
    """The literal ``0`` / ``{}`` — an empty relation."""

    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Universe(CatExpr):
    """The literal ``_`` — the set of all events."""

    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Bracket(CatExpr):
    """``[S]`` — identity relation on the set S."""

    inner: CatExpr
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Binary(CatExpr):
    """Binary operator: one of ``| & \\ ; *`` (span: the operator token)."""

    op: str
    left: CatExpr
    right: CatExpr
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Postfix(CatExpr):
    """Postfix operator: one of ``^+ ^* ^-1 ?`` (span: the operator token)."""

    op: str
    inner: CatExpr
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Complement(CatExpr):
    """``~e`` — complement w.r.t. the universe (set or relation)."""

    inner: CatExpr
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Call(CatExpr):
    """``f(e, ...)`` — builtin function application (span: the callee)."""

    func: str
    args: Tuple[CatExpr, ...]
    span: Optional[Span] = field(default=None, compare=False, repr=False)


class CatStmt:
    """Base class for Cat statements."""


@dataclass(frozen=True)
class Let(CatStmt):
    """``let [rec] n1 = e1 and n2 = e2 ...``

    ``binding_spans`` parallels ``bindings``: the span of each bound
    *name* token, for shadowed/unused-binding diagnostics.
    """

    bindings: Tuple[Tuple[str, CatExpr], ...]
    recursive: bool = False
    span: Optional[Span] = field(default=None, compare=False, repr=False)
    binding_spans: Tuple[Optional[Span], ...] = field(
        default=(), compare=False, repr=False
    )


@dataclass(frozen=True)
class Check(CatStmt):
    """``acyclic|irreflexive|empty [~] expr as name`` (optionally flagged)."""

    kind: str  # "acyclic" | "irreflexive" | "empty"
    expr: CatExpr
    name: str
    negated: bool = False
    flag: bool = False
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Show(CatStmt):
    """``show r`` — ignored (herd uses it for rendering)."""

    names: Tuple[str, ...]
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Include(CatStmt):
    """``include "file.cat"`` — resolved against the model registry."""

    path: str
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class CatModel:
    """A parsed model: a header name plus a statement list."""

    name: str
    statements: Tuple[CatStmt, ...]
