"""Reproduction of *Compiler Testing with Relaxed Memory Models* (CGO 2024).

The T´el´echat compiler-testing technique and every substrate it depends
on, in pure Python:

* :mod:`repro.api` — the supported surface: sessions, campaign plans,
  the streaming campaign engine and its typed events;
* :mod:`repro.core` — events, relations, executions, litmus conditions,
  and the generic registry protocol;
* :mod:`repro.cat` — the Cat model language and the shipped memory models;
* :mod:`repro.lang` — the C11 litmus front-end;
* :mod:`repro.herd` — the axiomatic simulator;
* :mod:`repro.asm` — per-ISA assembly syntax and semantics;
* :mod:`repro.compiler` — the miniature C11-atomics compiler;
* :mod:`repro.tools` — diy, l2c, c2s, s2l, mcompare;
* :mod:`repro.pipeline` — the test_tv driver, campaign runner and CLI;
* :mod:`repro.hw` — operational hardware simulation;
* :mod:`repro.baselines` — C4, cmmtest, validc;
* :mod:`repro.papertests` — the paper's figure tests, verbatim.

Entry points:

>>> from repro.api import CampaignPlan, Session
>>> from repro.lang import parse_c_litmus
"""

__version__ = "1.0.0"
