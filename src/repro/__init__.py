"""Reproduction of *Compiler Testing with Relaxed Memory Models* (CGO 2024).

The T´el´echat compiler-testing technique and every substrate it depends
on, in pure Python:

* :mod:`repro.core` — events, relations, executions, litmus conditions;
* :mod:`repro.cat` — the Cat model language and the shipped memory models;
* :mod:`repro.lang` — the C11 litmus front-end;
* :mod:`repro.herd` — the axiomatic simulator;
* :mod:`repro.asm` — per-ISA assembly syntax and semantics;
* :mod:`repro.compiler` — the miniature C11-atomics compiler;
* :mod:`repro.tools` — diy, l2c, c2s, s2l, mcompare;
* :mod:`repro.pipeline` — the test_tv driver, campaign runner and CLI;
* :mod:`repro.hw` — operational hardware simulation;
* :mod:`repro.baselines` — C4, cmmtest, validc;
* :mod:`repro.papertests` — the paper's figure tests, verbatim.

Entry points:

>>> from repro.lang import parse_c_litmus
>>> from repro.compiler import make_profile
>>> from repro.pipeline import test_compilation
"""

__version__ = "1.0.0"
