"""Operational hardware simulation: the ``litmus``-tool analogue.

``litmus`` [10] runs a test on real silicon many times and reports the
histogram of observed outcomes.  Our simulator reproduces the properties
the paper's C4 comparison depends on:

* a chip's *observable* outcomes are a restriction of the architecture
  model's allowed outcomes (in-order cores drop load-buffering shapes);
* weak outcomes are *rare*: each run surfaces one with the chip's
  weakness probability (raised by stress-testing), otherwise an SC
  outcome appears;
* results are nondeterministic across seeds/machines — but reproducible
  here, because the seed is explicit (the paper's determinism argument
  for T´el´echat, made demonstrable).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..asm.litmus import AsmLitmus
from ..core.execution import Outcome
from ..herd.enumerate import Budget
from ..herd.simulator import simulate_asm
from .chips import ChipSpec, get_chip


@dataclass
class HardwareRunResult:
    """The histogram a litmus-on-hardware campaign produces."""

    test_name: str
    chip: ChipSpec
    runs: int
    counts: Dict[Outcome, int]
    #: outcomes this chip could in principle produce (its restriction of
    #: the architecture model)
    observable: FrozenSet[Outcome]
    #: outcomes the architecture model allows (the full set)
    architecturally_allowed: FrozenSet[Outcome]

    @property
    def observed(self) -> FrozenSet[Outcome]:
        return frozenset(o for o, n in self.counts.items() if n > 0)

    @property
    def missed(self) -> FrozenSet[Outcome]:
        """Architecturally allowed outcomes this campaign never saw — the
        bugs a hardware-based tool cannot flag (paper §IV-A)."""
        return self.architecturally_allowed - self.observed

    def histogram(self) -> str:
        lines = [f"Test {self.test_name} on {self.chip.name} ({self.runs} runs)"]
        for outcome, count in sorted(
            self.counts.items(), key=lambda kv: (-kv[1], kv[0].bindings)
        ):
            lines.append(f"{count:8d}  {outcome}")
        return "\n".join(lines)


def _observable_outcomes(
    litmus: AsmLitmus,
    chip: ChipSpec,
    budget: Optional[Budget] = None,
) -> Tuple[FrozenSet[Outcome], FrozenSet[Outcome], FrozenSet[Outcome]]:
    """(architecturally allowed, chip-observable, SC) outcome sets."""
    arch_result = simulate_asm(litmus, budget=budget, keep_executions=True)
    sc_result = simulate_asm(litmus, model="sc", budget=budget)
    allowed = arch_result.outcomes
    if chip.allows_load_buffering:
        observable = allowed
    else:
        # an in-order pipeline never retires a store before a po-earlier
        # load has bound its value: executions with a (po ∪ rf) cycle are
        # unobservable on such silicon
        kept = set()
        for execution, outcome in arch_result.executions:
            if (execution.po | execution.rf).is_acyclic():
                kept.add(outcome)
        observable = frozenset(kept)
    return allowed, observable, sc_result.outcomes


def run_on_hardware(
    litmus: AsmLitmus,
    chip: str | ChipSpec,
    runs: int = 200,
    seed: int = 0,
    stress: bool = False,
    budget: Optional[Budget] = None,
) -> HardwareRunResult:
    """Run an assembly litmus test on simulated silicon.

    Each run produces one outcome: with the chip's (stress-adjusted)
    weakness probability a uniformly chosen *weak* observable outcome,
    otherwise a uniformly chosen SC outcome.
    """
    spec = get_chip(chip) if isinstance(chip, str) else chip
    if spec.arch != litmus.arch:
        raise ValueError(
            f"chip {spec.name} is {spec.arch}, test is {litmus.arch}"
        )
    allowed, observable, sc_outcomes = _observable_outcomes(litmus, spec, budget)
    strong = sorted(observable & sc_outcomes, key=lambda o: o.bindings)
    weak = sorted(observable - sc_outcomes, key=lambda o: o.bindings)
    rng = random.Random(seed)
    weakness = spec.effective_weakness(stress)
    counts: Counter = Counter()
    for _ in range(runs):
        if weak and rng.random() < weakness:
            counts[rng.choice(weak)] += 1
        elif strong:
            counts[rng.choice(strong)] += 1
        elif weak:  # degenerate: no SC outcome exists
            counts[rng.choice(weak)] += 1
    return HardwareRunResult(
        test_name=litmus.name,
        chip=spec,
        runs=runs,
        counts=dict(counts),
        observable=observable,
        architecturally_allowed=allowed,
    )
