"""Operational hardware simulation: chips and the litmus-tool analogue."""

from .chips import CHIPS, ChipSpec, get_chip, list_chips
from .simulator import HardwareRunResult, run_on_hardware

__all__ = [
    "CHIPS",
    "ChipSpec",
    "get_chip",
    "list_chips",
    "HardwareRunResult",
    "run_on_hardware",
]
