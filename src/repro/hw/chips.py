"""Chip definitions for the operational hardware simulator.

Silicon implements a *restricted variant* of its architecture model
(paper §II-A): behaviours the model allows may never occur on a given
part, or occur only under stress.  Each :class:`ChipSpec` captures the
two properties the paper's C4 comparison turns on:

* whether the part can exhibit load buffering at all (in-order cores
  like the Raspberry Pi's Cortex-A53 cannot — the reason Windsor et al.
  miss the Fig. 7 behaviour [77], while Sarkar et al. observe it on an
  Apple A9 and an Nvidia Tegra2 [70]);
* how often weak outcomes surface per run (raised by "stress-testing").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ChipSpec:
    """One piece of silicon the litmus tool might run on."""

    name: str
    arch: str
    description: str
    #: can the pipeline issue a load's successor store before the load
    #: completes?  False for in-order cores: load buffering unobservable.
    allows_load_buffering: bool
    #: probability that a given run surfaces a weak (non-SC) outcome.
    weak_probability: float
    #: multiplier applied by C4-style "stress-testing".
    stress_factor: float = 4.0

    def effective_weakness(self, stress: bool) -> float:
        if not stress:
            return self.weak_probability
        return min(1.0, self.weak_probability * self.stress_factor)


CHIPS: Dict[str, ChipSpec] = {
    spec.name: spec
    for spec in (
        ChipSpec(
            name="raspberry-pi",
            arch="aarch64",
            description="Cortex-A53-class in-order core (Windsor et al.'s "
                        "C4 test platform [77]): never exhibits LB",
            allows_load_buffering=False,
            weak_probability=0.08,
        ),
        ChipSpec(
            name="apple-a9",
            arch="aarch64",
            description="aggressive out-of-order core; Sarkar et al. "
                        "observe LB here [70], but rarely",
            allows_load_buffering=True,
            weak_probability=0.02,
        ),
        ChipSpec(
            name="tegra2",
            arch="armv7",
            description="Nvidia Tegra2 (Armv7): exhibits LB [70]",
            allows_load_buffering=True,
            weak_probability=0.03,
        ),
        ChipSpec(
            name="thunderx2",
            arch="aarch64",
            description="224-thread server part (the paper's campaign "
                        "machine): weak outcomes comparatively frequent",
            allows_load_buffering=True,
            weak_probability=0.15,
        ),
        ChipSpec(
            name="sc-reference",
            arch="aarch64",
            description="an idealised sequentially consistent machine "
                        "(never shows weak outcomes)",
            allows_load_buffering=False,
            weak_probability=0.0,
        ),
    )
}


def get_chip(name: str) -> ChipSpec:
    if name not in CHIPS:
        raise KeyError(
            f"unknown chip {name!r}; known: {', '.join(sorted(CHIPS))}"
        )
    return CHIPS[name]


def list_chips() -> List[str]:
    return sorted(CHIPS)
