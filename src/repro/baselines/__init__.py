"""State-of-the-art baselines: C4, cmmtest, validc (paper Table I)."""

from .c4 import C4Result, c4_test
from .cmmtest import CmmtestResult, CmmtestWarning, cmmtest_check
from .irsim import elaborate_ir
from .registry import BASELINES, get_baseline, list_baselines
from .validc import ValidcResult, validc_check

__all__ = [
    "BASELINES",
    "C4Result",
    "c4_test",
    "get_baseline",
    "list_baselines",
    "CmmtestResult",
    "CmmtestWarning",
    "cmmtest_check",
    "elaborate_ir",
    "ValidcResult",
    "validc_check",
]
