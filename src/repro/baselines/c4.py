"""The C4 baseline [49][76][77]: hardware-backed metamorphic testing.

C4's test relation (paper §II-C)::

    outcomes(litmus(comp(S), hardware))  ⊆  outcomes(herd(S, M_S))   (testC4)

The *only* difference from T´el´echat's test_tv is the left-hand side:
C4 collects compiled outcomes by running on silicon, T´el´echat by
simulating under the architecture model.  That one change makes C4
nondeterministic and incomplete — a chip that cannot (or rarely does)
exhibit a behaviour hides the bug (the Fig. 7 load-buffering miss on the
Raspberry Pi), which this module reproduces end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Union

from ..compiler.profiles import CompilerProfile
from ..core.execution import Outcome
from ..herd.enumerate import Budget
from ..herd.simulator import simulate_c
from ..hw.chips import ChipSpec, get_chip
from ..hw.simulator import HardwareRunResult, run_on_hardware
from ..lang.ast import CLitmus
from ..tools.c2s import compile_and_disassemble
from ..tools.l2c import prepare
from ..tools.mcompare import default_mapping
from ..tools.s2l import assembly_to_litmus


@dataclass
class C4Result:
    """One C4 test: hardware histogram vs source-model oracle."""

    test_name: str
    chip: ChipSpec
    hardware: HardwareRunResult
    source_outcomes: FrozenSet[Outcome]
    #: hardware outcomes not allowed by the source model: C4's bug signal
    observed_positive: FrozenSet[Outcome]
    #: architecture-model outcomes the hardware never produced — bugs C4
    #: can never flag on this chip/seed (T´el´echat finds these)
    missed_behaviours: FrozenSet[Outcome]

    @property
    def found_bug(self) -> bool:
        return bool(self.observed_positive)

    @property
    def deterministic(self) -> bool:
        """C4 is only deterministic when the chip shows everything it can
        show on every campaign — which silicon does not guarantee."""
        return not self.hardware.missed


def c4_test(
    litmus: CLitmus,
    profile: CompilerProfile,
    chip: Union[str, ChipSpec] = "raspberry-pi",
    runs: int = 200,
    seed: int = 0,
    stress: bool = False,
    source_model: str = "rc11",
    budget: Optional[Budget] = None,
) -> C4Result:
    """Run one testC4 campaign.

    The compiled program is produced by the same tool-chain T´el´echat
    uses (C4 also compiles with the system compiler); only the *test
    environment* differs: simulated silicon instead of the architecture
    model.
    """
    spec = get_chip(chip) if isinstance(chip, str) else chip
    prepared = prepare(litmus, augment=True)
    c2s = compile_and_disassemble(prepared, profile)
    compiled = assembly_to_litmus(c2s.obj, prepared.condition, listing=c2s.listing)
    hardware = run_on_hardware(
        compiled, spec, runs=runs, seed=seed, stress=stress, budget=budget
    )
    source = simulate_c(prepared, source_model, budget=budget)
    mapping = default_mapping(
        list(prepared.init), prepared.condition.observables()
    )
    source_set = frozenset(mapping.apply(o) for o in source.outcomes)
    observed = frozenset(mapping.apply(o) for o in hardware.observed)
    allowed = frozenset(mapping.apply(o) for o in hardware.architecturally_allowed)
    return C4Result(
        test_name=litmus.name,
        chip=spec,
        hardware=hardware,
        source_outcomes=source_set,
        observed_positive=observed - source_set,
        missed_behaviours=allowed - observed - source_set,
    )
