"""The validc baseline [22]: matching bounded executions of optimised IR.

validc compares *all bounded executions* of optimised LLVM IR against
unoptimised IR under a C11-style model — fully at the IR level, never
looking at the generated machine code.  We reproduce that: both IR
versions are simulated with :mod:`repro.baselines.irsim`, and outcome
inclusion is checked under a C/C++ model.

The two Table I properties this preserves:

* validc has *coverage* of IR-level transformation bugs (it sees every
  bounded execution), but is **not general**: it accepts only (LLVM) IR,
  so back-end/instruction-selection bugs — the paper's entire §IV-C
  crop, which live in AArch64 codegen — are invisible to it;
* it focuses on "only the shared memory accesses" (Chakraborty &
  Vafeiadis): deleted thread-local data is out of scope, the §IV-B
  blind spot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Union

from ..cat.interp import Model
from ..compiler.ir import IRProgram
from ..compiler.lower import lower
from ..compiler.passes import optimise
from ..compiler.profiles import CompilerProfile
from ..core.execution import Outcome
from ..herd.enumerate import Budget
from ..herd.simulator import SimulationResult, run_programs
from ..lang.ast import CLitmus
from .irsim import elaborate_ir


@dataclass
class ValidcResult:
    """One validc comparison: optimised-IR outcomes vs reference."""

    test_name: str
    reference: SimulationResult
    optimised: SimulationResult
    new_outcomes: FrozenSet[Outcome]

    @property
    def valid(self) -> bool:
        """True when optimisation introduced no IR-level behaviour."""
        return not self.new_outcomes

    @property
    def needs_expert(self) -> bool:
        return bool(self.new_outcomes)


def _simulate_ir(
    name: str,
    program: IRProgram,
    model: Union[str, Model],
    budget: Optional[Budget],
) -> SimulationResult:
    return run_programs(
        name, dict(program.init), elaborate_ir(program), model, budget=budget
    )


def validc_check(
    litmus: CLitmus,
    profile: CompilerProfile,
    model: Union[str, Model] = "rc11",
    budget: Optional[Budget] = None,
) -> ValidcResult:
    """Check the profile's optimisation pipeline at the IR level.

    Runs the *unoptimised* lowering and the profile's optimised IR under
    the same C11-style model; flags outcomes the optimised program added.
    Because the comparison never leaves the IR, a correct optimiser over
    a buggy back-end (the paper's AArch64 bug reports) passes cleanly —
    the generality gap of Table I.
    """
    program = lower(litmus)
    optimised_fns = tuple(optimise(fn, profile) for fn in program.functions)
    optimised_program = IRProgram(
        name=f"{program.name}+{profile.opt}",
        functions=optimised_fns,
        init=dict(program.init),
        widths=dict(program.widths),
        const_locations=program.const_locations,
    )
    reference = _simulate_ir(litmus.name, program, model, budget)
    optimised_result = _simulate_ir(
        optimised_program.name, optimised_program, model, budget
    )
    # validc matches *shared-memory* behaviour ("we focus on only the
    # shared memory accesses"): thread-local finals are projected away,
    # which is also exactly its §IV-B blind spot
    shared = tuple(program.init)
    reference_set = frozenset(o.project(shared) for o in reference.outcomes)
    optimised_set = frozenset(
        o.project(shared) for o in optimised_result.outcomes
    )
    return ValidcResult(
        test_name=litmus.name,
        reference=reference,
        optimised=optimised_result,
        new_outcomes=optimised_set - reference_set,
    )
