"""Symbolic simulation of IR programs (the validc substrate).

``validc`` [22] matches the bounded executions of *optimised LLVM IR*
against unoptimised IR under a C11-style model.  To reproduce that, we
give our IR the same symbolic semantics the C front-end has: each IR
function elaborates to thread paths over event templates, which the herd
enumerator then turns into executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..compiler.ir import IRFunction, IRInstr, IROp, IRProgram
from ..core.errors import SimulationError
from ..core.events import EventKind, MemoryOrder
from ..core.expr import BinOp, Const, Expr, ReadVal, is_constant
from ..herd.templates import EventTemplate, PathConstraint, ThreadPath, ThreadProgram

_RMW_OPS = {
    "add": lambda old, v: BinOp("+", old, v),
    "sub": lambda old, v: BinOp("-", old, v),
    "or": lambda old, v: BinOp("|", old, v),
    "and": lambda old, v: BinOp("&", old, v),
    "xor": lambda old, v: BinOp("^", old, v),
    "swap": lambda old, v: v,
}

_RMW_SPLIT = {
    MemoryOrder.NA: (MemoryOrder.NA, MemoryOrder.NA),
    MemoryOrder.RLX: (MemoryOrder.RLX, MemoryOrder.RLX),
    MemoryOrder.CON: (MemoryOrder.CON, MemoryOrder.RLX),
    MemoryOrder.ACQ: (MemoryOrder.ACQ, MemoryOrder.RLX),
    MemoryOrder.REL: (MemoryOrder.RLX, MemoryOrder.REL),
    MemoryOrder.ACQ_REL: (MemoryOrder.ACQ, MemoryOrder.REL),
    MemoryOrder.SC: (MemoryOrder.SC, MemoryOrder.SC),
}

_COND_OPS = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

#: step bound: the analogue of herd's loop unroll factor.
_STEP_BUDGET = 256


@dataclass
class _IrState:
    env: Dict[str, Expr]
    templates: List[EventTemplate]
    constraints: List[PathConstraint]
    ctrl: frozenset
    pc: int
    steps: int
    next_placeholder: int

    def fork(self) -> "_IrState":
        return _IrState(
            env=dict(self.env),
            templates=list(self.templates),
            constraints=list(self.constraints),
            ctrl=self.ctrl,
            pc=self.pc,
            steps=self.steps,
            next_placeholder=self.next_placeholder,
        )


class IrElaborator:
    """Explodes one IR function into thread paths."""

    def __init__(self, fn: IRFunction, tid: int) -> None:
        self.fn = fn
        self.tid = tid
        self.labels = fn.labels()

    def run(self) -> ThreadProgram:
        finished: List[_IrState] = []
        work = [
            _IrState(env={}, templates=[], constraints=[], ctrl=frozenset(),
                     pc=0, steps=0, next_placeholder=0)
        ]
        while work:
            state = work.pop()
            while True:
                if state.pc >= len(self.fn.body) or state.steps >= _STEP_BUDGET:
                    finished.append(state)
                    break
                instr = self.fn.body[state.pc]
                state.steps += 1
                successors = self._step(instr, state)
                if successors is None:
                    continue
                if not successors:
                    finished.append(state)
                    break
                state = successors[0]
                work.extend(successors[1:])
        paths = tuple(
            ThreadPath(
                thread_name=self.fn.name,
                templates=tuple(st.templates),
                constraints=tuple(st.constraints),
                finals={
                    name: st.env.get(name, Const(0))
                    for name in self.fn.observed_locals
                },
            )
            for st in finished
        )
        return ThreadProgram(name=self.fn.name, tid=self.tid, paths=paths)

    # ------------------------------------------------------------------ #
    def _operand(self, state: _IrState, operand) -> Expr:
        if isinstance(operand, int):
            return Const(operand)
        if operand in state.env:
            return state.env[operand]
        return Const(0)

    def _step(self, instr: IRInstr, state: _IrState) -> Optional[List[_IrState]]:
        op = instr.op
        if op is IROp.LABEL:
            state.pc += 1
            return None
        if op is IROp.RET:
            return []
        if op is IROp.BR:
            state.pc = self.labels[instr.label]
            return None
        if op is IROp.CONST:
            state.env[instr.dst] = Const(int(instr.a))  # type: ignore[arg-type]
            state.pc += 1
            return None
        if op is IROp.BIN:
            left = self._operand(state, instr.a)
            right = self._operand(state, instr.b)
            state.env[instr.dst] = BinOp(instr.bin_op, left, right).substitute({})
            state.pc += 1
            return None
        if op is IROp.FENCE:
            state.templates.append(
                EventTemplate(kind=EventKind.FENCE, order=instr.order,
                              ctrl_deps=state.ctrl)
            )
            state.pc += 1
            return None
        if op is IROp.LOAD:
            placeholder = state.next_placeholder
            state.next_placeholder += 1
            state.templates.append(
                EventTemplate(kind=EventKind.READ, loc=instr.loc,
                              order=instr.order, placeholder=placeholder,
                              ctrl_deps=state.ctrl, width=instr.width)
            )
            if instr.dst is not None:
                state.env[instr.dst] = ReadVal(placeholder)
            state.pc += 1
            return None
        if op is IROp.STORE:
            state.templates.append(
                EventTemplate(kind=EventKind.WRITE, loc=instr.loc,
                              order=instr.order,
                              value_expr=self._operand(state, instr.a),
                              ctrl_deps=state.ctrl, width=instr.width)
            )
            state.pc += 1
            return None
        if op is IROp.RMW:
            read_order, write_order = _RMW_SPLIT[instr.order]
            placeholder = state.next_placeholder
            state.next_placeholder += 1
            state.templates.append(
                EventTemplate(kind=EventKind.READ, loc=instr.loc,
                              order=read_order, placeholder=placeholder,
                              tags=frozenset({"RMW-R"}), ctrl_deps=state.ctrl,
                              width=instr.width)
            )
            old: Expr = ReadVal(placeholder)
            new = _RMW_OPS[instr.rmw_kind](old, self._operand(state, instr.a))
            if not isinstance(new, Const):
                new = new.substitute({})
            state.templates.append(
                EventTemplate(kind=EventKind.WRITE, loc=instr.loc,
                              order=write_order, value_expr=new,
                              tags=frozenset({"RMW-W"}), rmw_with_prev=True,
                              ctrl_deps=state.ctrl, width=instr.width)
            )
            if instr.dst is not None:
                state.env[instr.dst] = old
            state.pc += 1
            return None
        if op is IROp.CBR:
            left = self._operand(state, instr.a)
            right = self._operand(state, instr.b)
            cond = BinOp(_COND_OPS[instr.cond], left, right).substitute({})
            target = self.labels[instr.label]
            if is_constant(cond):
                state.pc = target if cond.eval({}) else state.pc + 1
                return [state]
            taken = state.fork()
            taken.constraints.append(PathConstraint(cond, True))
            taken.ctrl = taken.ctrl | cond.reads()
            taken.pc = target
            state.constraints.append(PathConstraint(cond, False))
            state.ctrl = state.ctrl | cond.reads()
            state.pc += 1
            return [state, taken]
        raise SimulationError(f"cannot simulate IR instruction {instr!r}")


def elaborate_ir(program: IRProgram) -> List[ThreadProgram]:
    """Produce thread programs for every function of an IR program."""
    return [
        IrElaborator(fn, tid).run() for tid, fn in enumerate(program.functions)
    ]
