"""The baseline-checker registry (paper Table I), on the shared protocol.

Each baseline is a callable taking a C litmus test (plus
technique-specific keyword arguments) and returning its own result type.
Registering them makes the comparison harness pluggable: ``mcompare``
sweeps, the CLI, and sessions can enumerate or overlay baselines by name
instead of importing each module.
"""

from __future__ import annotations

from typing import Callable, List

from ..core.registry import Registry
from .c4 import c4_test
from .cmmtest import cmmtest_check
from .validc import validc_check

BASELINES: Registry[Callable] = Registry("baseline")
BASELINES.register(
    "c4", c4_test,
    doc="concurrent C compiler checker: IR-level simulation diffing",
)
BASELINES.register(
    "cmmtest", cmmtest_check, aliases=("cmm-test",),
    doc="trace matching over compiled executions",
)
BASELINES.register(
    "validc", validc_check, aliases=("valid-c",),
    doc="syntactic validation of atomics lowering",
)


def get_baseline(name: str) -> Callable:
    return BASELINES.get(name)


def list_baselines() -> List[str]:
    return BASELINES.names()
