"""The cmmtest baseline [65]: execution matching, expert required.

cmmtest checks that the (hardware) execution of an *optimised* program
embeds into an execution of the *unoptimised* program — eliminated or
reordered events signal a potential miscompilation, which a concurrency
expert must then turn into a reproducer.

We reproduce the two properties the paper's Table I records:

* cmmtest emits **warnings**, not verdicts — it is semi-automatic;
* per Morisset et al.'s claim that "optimisations affecting only the
  thread-local state cannot induce concurrency compiler bugs", warnings
  about *deleted thread-local data* are suppressed — exactly the blind
  spot (§IV-B) that lets the Fig. 1 / Fig. 10 bug family through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..asm.litmus import AsmLitmus
from ..compiler.profiles import CompilerProfile, make_profile
from ..lang.ast import CLitmus
from ..tools.c2s import compile_and_disassemble
from ..tools.l2c import prepare
from ..tools.s2l import assembly_to_litmus
from ..asm.isa.base import Instruction, Op

#: instruction kinds that touch shared memory
_MEMORY_OPS = (Op.LOAD, Op.STORE, Op.LOADPAIR, Op.STOREPAIR, Op.AMO, Op.LDX, Op.STX)


@dataclass(frozen=True)
class AccessSummary:
    """A thread's shared-memory access trace: (kind, location) pairs."""

    thread: str
    accesses: Tuple[Tuple[str, str], ...]


@dataclass
class CmmtestWarning:
    """A potential miscompilation for an expert to investigate."""

    thread: str
    kind: str       # "eliminated" | "reordered" | "introduced"
    detail: str


@dataclass
class CmmtestResult:
    test_name: str
    warnings: List[CmmtestWarning] = field(default_factory=list)
    #: warnings suppressed by the thread-local-optimisations-are-safe
    #: assumption cmmtest makes (the paper refutes it)
    suppressed: List[CmmtestWarning] = field(default_factory=list)

    @property
    def needs_expert(self) -> bool:
        return bool(self.warnings)


def _trace(litmus: AsmLitmus, thread_name: str) -> AccessSummary:
    thread = next(t for t in litmus.threads if t.name == thread_name)
    accesses: List[Tuple[str, str]] = []
    for instr in thread.instructions:
        if instr.op not in _MEMORY_OPS:
            continue
        # resolve the access location statically where possible
        loc = None
        if instr.addr_reg in thread.addr_env:
            loc = thread.addr_env[instr.addr_reg]
        if loc is None:
            loc = _nearest_symbol(thread.instructions, instr)
        if loc is None or litmus.is_private(loc):
            continue  # cmmtest observes shared traffic only
        kind = "W" if instr.op in (Op.STORE, Op.STOREPAIR, Op.STX) else (
            "RMW" if instr.op is Op.AMO else "R"
        )
        accesses.append((kind, loc))
    return AccessSummary(thread=thread_name, accesses=tuple(accesses))


def _nearest_symbol(
    instructions: Sequence[Instruction], access: Instruction
) -> Optional[str]:
    """Walk back to the address materialisation feeding this access."""
    index = instructions.index(access)
    for earlier in reversed(instructions[:index]):
        if earlier.op is Op.MOVADDR and earlier.dst == access.addr_reg:
            return earlier.symbol
        if earlier.dst == access.addr_reg and earlier.op is not Op.LOAD:
            return None
    return None


def _is_subsequence(small: Sequence, big: Sequence) -> bool:
    it = iter(big)
    return all(item in it for item in small)


def cmmtest_check(
    litmus: CLitmus,
    profile: CompilerProfile,
    reference_opt: str = "-O0",
) -> CmmtestResult:
    """Compare the optimised compilation against the -O0 reference.

    Emits a warning when the optimised shared-access trace of a thread is
    not a subsequence of the reference trace (eliminated/reordered
    accesses) — and *suppresses* warnings that concern only thread-local
    data, reproducing the [65] blind spot.
    """
    # NB: cmmtest does not augment locals — that is T´el´echat's fix
    prepared = prepare(litmus, augment=False)
    reference_profile = make_profile(
        profile.compiler, reference_opt, profile.arch, version=profile.version
    )
    result = CmmtestResult(test_name=litmus.name)
    reference = _compile_to_litmus(prepared, reference_profile)
    optimised = _compile_to_litmus(prepared, profile)
    for thread in prepared.threads:
        ref_trace = _trace(reference, thread.name)
        opt_trace = _trace(optimised, thread.name)
        if _is_subsequence(opt_trace.accesses, ref_trace.accesses):
            continue
        missing = [
            access for access in ref_trace.accesses
            if access not in opt_trace.accesses
        ]
        warning = CmmtestWarning(
            thread=thread.name,
            kind="eliminated" if missing else "reordered",
            detail=(
                f"reference trace {ref_trace.accesses} vs optimised "
                f"{opt_trace.accesses}"
            ),
        )
        result.warnings.append(warning)
    # the blind spot: differences visible only through deleted locals
    ref_regs = {
        t.name: set(t.observed.values()) for t in reference.threads
    }
    for thread in optimised.threads:
        lost = ref_regs.get(thread.name, set()) - set(thread.observed.values())
        if lost:
            result.suppressed.append(
                CmmtestWarning(
                    thread=thread.name,
                    kind="local-deleted",
                    detail=(
                        f"locals {sorted(lost)} no longer observable — "
                        f"suppressed per the thread-local-safety claim [65]"
                    ),
                )
            )
    return result


def _compile_to_litmus(prepared: CLitmus, profile: CompilerProfile) -> AsmLitmus:
    c2s = compile_and_disassemble(prepared, profile)
    return assembly_to_litmus(c2s.obj, prepared.condition, listing=c2s.listing)
