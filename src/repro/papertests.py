"""The paper's figure tests, verbatim.

Each function returns the litmus test shown in the corresponding figure
of *Compiler Testing with Relaxed Memory Models* (CGO 2024), written in
the same C surface syntax and parsed by :mod:`repro.lang.parser` — so
these double as parser fixtures.
"""

from __future__ import annotations

from .lang.ast import CLitmus
from .lang.parser import parse_c_litmus

#: Fig. 1 — the atomic_exchange bug report [38].  The outcome
#: ``P1:r0=0 ∧ y=2`` is forbidden by the C/C++ model; compiled by a buggy
#: LLVM for Armv8.1+ (SWP with an unused destination) it becomes allowed.
FIG1_SOURCE = r"""
C fig1_exchange
{ *x = 0; *y = 0; }
#define relaxed memory_order_relaxed
#define release memory_order_release
#define acquire memory_order_acquire

void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, relaxed);
  atomic_thread_fence(release);
  atomic_store_explicit(y, 1, relaxed);
}

void P1(atomic_int* y, atomic_int* x) {
  atomic_exchange_explicit(y, 2, release);
  atomic_thread_fence(acquire);
  int r0 = atomic_load_explicit(x, relaxed);
}

exists (P1:r0=0 /\ y=2)
"""


#: Fig. 7 — load buffering with relaxed fences.  RC11 forbids the
#: ``P0:r0=1 ∧ P1:r0=1`` outcome; Armv8/Armv7/PPC/RISC-V allow it when
#: compiled.  C4 missed this behaviour [77]; T´el´echat observes it.
FIG7_SOURCE = r"""
C fig7_lb
{ *x = 0; *y = 0; }
#define relaxed memory_order_relaxed
#define load atomic_load_explicit
#define store atomic_store_explicit

void P0(atomic_int* y, atomic_int* x) {
  int r0 = load(x, relaxed);
  atomic_thread_fence(relaxed);
  store(y, 1, relaxed);
}

void P1(atomic_int* y, atomic_int* x) {
  int r0 = load(y, relaxed);
  atomic_thread_fence(relaxed);
  store(x, 1, relaxed);
}

exists (P0:r0=1 /\ P1:r0=1)
"""


#: Fig. 9 (left) — the plain load-buffering test whose unused locals
#: ``clang -O2`` deletes, leaving only the zero outcome (right).
FIG9_SOURCE = r"""
C fig9_lb_plain
{ *x = 0; *y = 0; }

void P0(int* y, int* x) {
  int r0 = *x;
  *y = 1;
}

void P1(int* y, int* x) {
  int r0 = *y;
  *x = 1;
}

exists (P0:r0=1 /\ P1:r0=1)
"""


#: Fig. 10 — message passing through an unused fetch_add.  The outcome
#: ``P1:r0=0 ∧ y=2`` is forbidden by C/C++; past LLVM/GCC allowed it by
#: (a) selecting STADD and (b) zeroing LDADD's destination [53][54].
FIG10_SOURCE = r"""
C fig10_mp_rmw
{ *x = 0; *y = 0; }
#define relaxed memory_order_relaxed

void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, relaxed);
  atomic_thread_fence(memory_order_release);
  atomic_store_explicit(y, 1, relaxed);
}

void P1(atomic_int* y, atomic_int* x) {
  int r1 = atomic_fetch_add_explicit(y, 1, relaxed);
  atomic_thread_fence(memory_order_acquire);
  int r0 = atomic_load_explicit(x, relaxed);
}

exists (P1:r0=0 /\ y=2)
"""


#: Fig. 11 — the three-thread LB chain whose *unoptimised* compiled
#: simulation does not terminate under herd; s2l optimisation brings it
#: to milliseconds (§IV-E, Claim 5).
FIG11_SOURCE = r"""
C fig11_lb3
{ *x = 0; *y = 0; *z = 0; }

void P0(int* y, int* x) {
  int r0 = *x;
  atomic_thread_fence(memory_order_relaxed);
  *y = 1;
}

void P1(int* z, int* y) {
  int r0 = *y;
  atomic_thread_fence(memory_order_relaxed);
  *z = 1;
}

void P2(int* z, int* x) {
  int r0 = *z;
  atomic_thread_fence(memory_order_relaxed);
  *x = 1;
}

exists (P0:r0=1 /\ P1:r0=1 /\ P2:r0=1)
"""


#: Store buffering with seq_cst atomics — the test that exposed the
#: Armv7 model bug [35]: the pre-fix model did not treat ``dmb ish`` as
#: a fence, wrongly allowing the ``0/0`` outcome.
SB_SC_SOURCE = r"""
C sb_sc
{ *x = 0; *y = 0; }

void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_seq_cst);
  int r0 = atomic_load_explicit(y, memory_order_seq_cst);
}

void P1(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(y, 1, memory_order_seq_cst);
  int r0 = atomic_load_explicit(x, memory_order_seq_cst);
}

exists (P0:r0=0 /\ P1:r0=0)
"""


def fig1_exchange() -> CLitmus:
    """Fig. 1: the atomic_exchange reordering bug [38]."""
    return parse_c_litmus(FIG1_SOURCE, "fig1_exchange")


def fig7_lb() -> CLitmus:
    """Fig. 7: load buffering with relaxed fences (the C4 miss)."""
    return parse_c_litmus(FIG7_SOURCE, "fig7_lb")


def fig9_lb_plain() -> CLitmus:
    """Fig. 9: plain LB whose unused locals get deleted."""
    return parse_c_litmus(FIG9_SOURCE, "fig9_lb_plain")


def fig10_mp_rmw() -> CLitmus:
    """Fig. 10: MP through an unused fetch_add (two historical bugs)."""
    return parse_c_litmus(FIG10_SOURCE, "fig10_mp_rmw")


def fig11_lb3() -> CLitmus:
    """Fig. 11: the 3-thread LB chain (state-explosion study)."""
    return parse_c_litmus(FIG11_SOURCE, "fig11_lb3")


def sb_sc() -> CLitmus:
    """Store buffering, seq_cst — the Armv7 model-bug witness [35]."""
    return parse_c_litmus(SB_SC_SOURCE, "sb_sc")


#: 128-bit atomics (paper §IV-C): the seq_cst LDP bug [37], the
#: wrong-endian STP bug [39], and the const-load crash [36] all live on
#: this shape.  ``atomic_int128`` maps to our 128-bit width.
FIG_128_SOURCE = r"""
C atomics_128
{ *x = 0; *y = 0; }

void P0(atomic_int128* x, atomic_int* y) {
  int r1 = atomic_fetch_add_explicit(y, 1, memory_order_seq_cst);
  __int128 r0 = atomic_load_explicit(x, memory_order_seq_cst);
}

void P1(atomic_int128* x, atomic_int* y) {
  atomic_store_explicit(x, 1, memory_order_seq_cst);
  int r0 = atomic_load_explicit(y, memory_order_seq_cst);
}

exists (P0:r0=0 /\ P1:r0=0)
"""


def atomics_128() -> CLitmus:
    """The 128-bit seq_cst shape of the §IV-C bug reports."""
    return parse_c_litmus(FIG_128_SOURCE, "atomics_128")


#: every paper-test factory in this module, in figure order — the
#: corpus ``telechat lint`` and the golden lint tests sweep.
PAPER_TESTS = (
    "fig1_exchange",
    "fig7_lb",
    "fig9_lb_plain",
    "fig10_mp_rmw",
    "fig11_lb3",
    "sb_sc",
    "atomics_128",
)


def all_tests() -> "list[CLitmus]":
    """Instantiate every paper test (:data:`PAPER_TESTS`)."""
    return [globals()[name]() for name in PAPER_TESTS]
