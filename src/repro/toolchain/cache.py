"""The per-stage artifact cache.

PR 1's caches were *per cell*: one entry per (test, profile, model)
combination, so re-checking a test under a second target model or a
second compiler profile recomputed every intermediate product.  The
artifact cache is *per stage*: compiled objects, lifted litmus tests and
outcome sets are cached under their content addresses independently, so

* a campaign re-run under a new target model reuses every ``compile``
  and ``lift`` artifact (only the target simulation and compare re-run);
* the two branches of a differential cell share one ``prepare`` artifact
  and one source-side ``OutcomeSet``;
* two profiles that happen to compile a test identically still cache
  separately (profile identity is part of the key) — soundness over
  opportunism.

Exactly-once semantics, error caching and thread safety come from
:class:`repro.core.cache.KeyedCache`; this module adds the per-stage
partitioning and the hit/miss accounting the cache-reuse benchmarks and
acceptance tests are stated in.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from ..core.cache import KeyedCache


class ArtifactCache:
    """One :class:`KeyedCache` per stage name, created on demand.

    ``max_entries`` (per stage) bounds memory: artifacts hold compiled
    objects, disassembly listings and outcome sets, so an unbounded
    cache grows linearly with the cells a long-lived consumer evaluates.
    When a stage's cache exceeds the bound it is dropped wholesale (the
    next consumer recomputes — correctness is unaffected, only reuse).
    Hits are never sacrificed: the bound is checked on the miss path
    only, so a key already cached replays even at capacity.  Sessions
    bound their cache at 4096 entries per stage by default
    (``Session(artifact_cache_entries=...)``); the campaign engine's
    worker processes use a tighter bound.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self.max_entries = max_entries
        self._stages: Dict[str, KeyedCache] = {}
        self._lock = threading.Lock()

    def stage(self, name: str) -> KeyedCache:
        with self._lock:
            if name not in self._stages:
                self._stages[name] = KeyedCache()
            return self._stages[name]

    def get(self, stage: str, key: str, producer: Callable):
        cache = self.stage(stage)
        if (
            self.max_entries is not None
            and len(cache) >= self.max_entries
            and key not in cache  # never turn a hit into a recompute
        ):
            cache.clear()
        return cache.get(key, producer)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def hits(self, stage: str) -> int:
        return self.stage(stage).hits

    def misses(self, stage: str) -> int:
        """Actual stage executions — the "work done" counter the
        acceptance criteria are stated in (a 2-profile differential
        campaign compiles each (test, profile) exactly once ⇔
        ``misses("compile") == tests × profiles``)."""
        return self.stage(stage).misses

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage counters, for ``Session.toolchain()`` introspection
        and the cache-reuse benchmark."""
        with self._lock:
            snapshot = dict(self._stages)
        return {
            name: {
                "hits": cache.hits,
                "misses": cache.misses,
                "entries": len(cache),
            }
            for name, cache in sorted(snapshot.items())
        }
