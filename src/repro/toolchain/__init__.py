"""``repro.toolchain`` — the staged translation-validation pipeline.

The paper's Fig. 5 chain as a typed artifact graph::

    SourceTest → PreparedSource → CompiledObject → TargetLitmus
                               ↘ OutcomeSet (source)   ↓
                                          OutcomeSet (target) → Verdict

* :class:`Toolchain` — composes registered :class:`Stage` components
  over a content-addressed per-stage :class:`ArtifactCache`;
* :meth:`Toolchain.run_tv` / :meth:`Toolchain.run_differential` — the
  two compositions (source-vs-compiled, compiler-vs-compiler);
* :meth:`Toolchain.explain` — a traced run rendering every stage's
  artifact (the ``repro explain`` CLI command);
* :data:`STAGES` — the global stage registry; sessions overlay it to
  swap in custom compilers, disassemblers or comparators.
"""

from .artifacts import (
    Artifact,
    CompiledObject,
    OutcomeSet,
    PreparedSource,
    SourceTest,
    TargetLitmus,
    Verdict,
    artifact_keys,
    budget_signature,
    make_key,
    model_key,
    profile_signature,
)
from .cache import ArtifactCache
from .chain import Toolchain, ToolchainTrace, TraceEntry
from .results import (
    DifferentialResult,
    TelechatResult,
    comparison_from_record,
    outcomes_from_jsonable,
    outcomes_to_jsonable,
)
from .stages import (
    STAGES,
    CompareStage,
    CompileStage,
    LiftStage,
    PrepareStage,
    SimulateSourceStage,
    SimulateTargetStage,
    Stage,
)

__all__ = [
    "Artifact",
    "ArtifactCache",
    "CompareStage",
    "CompileStage",
    "CompiledObject",
    "DifferentialResult",
    "LiftStage",
    "OutcomeSet",
    "PrepareStage",
    "PreparedSource",
    "STAGES",
    "SimulateSourceStage",
    "SimulateTargetStage",
    "SourceTest",
    "Stage",
    "TargetLitmus",
    "TelechatResult",
    "Toolchain",
    "ToolchainTrace",
    "TraceEntry",
    "Verdict",
    "artifact_keys",
    "budget_signature",
    "comparison_from_record",
    "make_key",
    "model_key",
    "outcomes_from_jsonable",
    "outcomes_to_jsonable",
    "profile_signature",
]
