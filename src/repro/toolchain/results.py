"""Result records of the two tool-chain compositions.

:class:`TelechatResult` (one test_tv run: source vs compiled) moved here
from :mod:`repro.pipeline.telechat` when the chain was decomposed into
stages — the pipeline module re-exports it, so existing imports keep
working.  :class:`DifferentialResult` is its §IV-D sibling: two
compilations of the same source compared against each other, with the
C source optionally simulated as an undefined-behaviour oracle.

Both carry ``artifacts`` — the ``{stage: key}`` map into the toolchain's
content-addressed cache — and both serialise to the JSON-able verdict
records the campaign store and the process-pool backend exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..asm.litmus import AsmLitmus, total_instructions
from ..compiler.profiles import CompilerProfile
from ..core.execution import Outcome
from ..herd.simulator import SimulationResult
from ..tools.mcompare import ComparisonResult
from ..tools.s2l import S2LStats


# --------------------------------------------------------------------------- #
# record (de)serialisation — the persistent campaign store's currency
# --------------------------------------------------------------------------- #
def outcomes_to_jsonable(outcomes: Iterable[Outcome]) -> List[List[List[object]]]:
    """Serialise an outcome set to a canonical (sorted) JSON-able form."""
    return sorted([[k, v] for k, v in o.bindings] for o in outcomes)


def outcomes_from_jsonable(data: Iterable[Iterable[Sequence[object]]]) -> FrozenSet[Outcome]:
    """Rebuild an outcome set serialised by :func:`outcomes_to_jsonable`."""
    return frozenset(
        Outcome(tuple((str(k), int(v)) for k, v in bindings)) for bindings in data
    )


def comparison_from_record(record: Dict[str, object]) -> ComparisonResult:
    """Rebuild a :class:`ComparisonResult` from a stored verdict record.

    Works for both record shapes: test_tv records store the two sides as
    ``source_outcomes``/``target_outcomes``, differential records as
    ``outcomes_a``/``outcomes_b``.
    """
    if record.get("mode") == "differential":
        left = record["outcomes_a"]
        right = record["outcomes_b"]
        source_model = str(record["profile_a"])
        target_model = str(record["profile_b"])
    else:
        left = record["source_outcomes"]
        right = record["target_outcomes"]
        source_model = str(record["source_model"])
        target_model = str(record["target_model"])
    return ComparisonResult(
        test_name=str(record["test"]),
        source_model=source_model,
        target_model=target_model,
        source_outcomes=outcomes_from_jsonable(left),
        target_outcomes=outcomes_from_jsonable(right),
        positive=outcomes_from_jsonable(record["positive"]),
        negative=outcomes_from_jsonable(record["negative"]),
        source_has_ub=bool(record["source_has_ub"]),
    )


@dataclass
class TelechatResult:
    """Everything one test_tv run produced."""

    test_name: str
    profile: CompilerProfile
    comparison: ComparisonResult
    source_result: SimulationResult
    target_result: SimulationResult
    compiled: AsmLitmus
    s2l_stats: S2LStats
    #: wall-clock of the source simulation.  Always the *real* cost of
    #: producing the outcome set — when the simulation was hoisted or
    #: cache-replayed (``source_reused``), this is the original run's
    #: duration, not zero, so campaign timing totals stay honest.
    source_seconds: float
    target_seconds: float
    compile_seconds: float
    #: True when the source simulation was reused (hoisted or cached)
    #: rather than run inside this call
    source_reused: bool = False
    #: True when compile+lift were replayed from the per-stage artifact
    #: cache rather than run inside this call
    compile_reused: bool = False
    #: ``{stage: artifact key}`` into the toolchain cache (empty when the
    #: run bypassed the staged toolchain)
    artifacts: Dict[str, str] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        return self.comparison.verdict()

    @property
    def found_bug(self) -> bool:
        """A positive difference not excused by source undefined behaviour
        (paper def. II.3)."""
        return self.comparison.is_positive

    @property
    def compiled_loc(self) -> int:
        return total_instructions(self.compiled)

    def to_record(self) -> Dict[str, object]:
        """Serialise the verdict and both outcome sets to a JSON-able dict.

        This is the persistent form the campaign store appends: enough to
        replay the cell's Table IV contribution and the mcompare
        drill-down without re-simulating, and to rebuild the comparison
        via :func:`comparison_from_record`.  The heavyweight pieces (the
        compiled litmus, raw executions) intentionally stay out — the
        ``artifacts`` keys point back into the per-stage cache instead.
        """
        record = {
            "test": self.test_name,
            "profile": self.profile.name,
            "verdict": self.verdict,
            "source_model": self.comparison.source_model,
            "target_model": self.comparison.target_model,
            "source_outcomes": outcomes_to_jsonable(self.comparison.source_outcomes),
            "target_outcomes": outcomes_to_jsonable(self.comparison.target_outcomes),
            "positive": outcomes_to_jsonable(self.comparison.positive),
            "negative": outcomes_to_jsonable(self.comparison.negative),
            "source_has_ub": self.comparison.source_has_ub,
            "flags": sorted(self.source_result.flags | self.target_result.flags),
            "compiled_loc": self.compiled_loc,
            "source_reused": self.source_reused,
            "seconds": {
                "source": self.source_seconds,
                "target": self.target_seconds,
                "compile": self.compile_seconds,
            },
        }
        if self.artifacts:
            record["artifacts"] = dict(self.artifacts)
        return record


@dataclass
class DifferentialResult:
    """One differential cell (paper §IV-D): ``comp_a(S)`` vs ``comp_b(S)``.

    The comparison reads branch *a* as the reference side: ``positive``
    outcomes are behaviours profile *b* exhibits that profile *a* does
    not — a compatibility risk, since code from both compilers is
    routinely linked together.  When the C source was simulated as a UB
    oracle (``source_result``), racy sources excuse the difference
    exactly as in test_tv (verdict ``ub-masked``).
    """

    test_name: str
    profile_a: CompilerProfile
    profile_b: CompilerProfile
    comparison: ComparisonResult
    result_a: SimulationResult
    result_b: SimulationResult
    compiled_a: AsmLitmus
    compiled_b: AsmLitmus
    stats_a: S2LStats
    stats_b: S2LStats
    #: the C-source simulation used as the undefined-behaviour oracle
    #: (None when the oracle was skipped)
    source_result: Optional[SimulationResult] = None
    #: the source model the oracle ran under ("" when skipped)
    source_model: str = ""
    source_seconds: float = 0.0
    source_reused: bool = False
    compile_seconds: float = 0.0
    simulate_seconds: float = 0.0
    artifacts: Dict[str, str] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        return self.comparison.verdict()

    @property
    def found_difference(self) -> bool:
        return self.comparison.is_positive

    @property
    def profile_pair(self) -> str:
        """The joined profile name differential records/stores key by."""
        return f"{self.profile_a.name}|{self.profile_b.name}"

    @property
    def compiled_loc(self) -> int:
        return total_instructions(self.compiled_a) + total_instructions(
            self.compiled_b
        )

    def to_record(self) -> Dict[str, object]:
        """The differential verdict record (same store/pool currency as
        :meth:`TelechatResult.to_record`, discriminated by ``mode``)."""
        record = {
            "mode": "differential",
            "test": self.test_name,
            "profile": self.profile_pair,
            "profile_a": self.profile_a.name,
            "profile_b": self.profile_b.name,
            "verdict": self.verdict,
            "outcomes_a": outcomes_to_jsonable(self.comparison.source_outcomes),
            "outcomes_b": outcomes_to_jsonable(self.comparison.target_outcomes),
            "positive": outcomes_to_jsonable(self.comparison.positive),
            "negative": outcomes_to_jsonable(self.comparison.negative),
            "source_has_ub": self.comparison.source_has_ub,
            "flags": sorted(self.result_a.flags | self.result_b.flags),
            "compiled_loc": self.compiled_loc,
            "source_reused": self.source_reused,
            "seconds": {
                "source": self.source_seconds,
                "target": self.simulate_seconds,
                "compile": self.compile_seconds,
            },
        }
        if self.artifacts:
            record["artifacts"] = dict(self.artifacts)
        return record
