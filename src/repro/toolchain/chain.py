"""The staged tool-chain: composition, caching, tracing.

:class:`Toolchain` wires the registered stages into the paper's Fig. 5
graph and owns a per-stage :class:`~repro.toolchain.cache.ArtifactCache`.
The two compositions are

* :meth:`Toolchain.run_tv` — translation validation: source vs compiled
  (what ``run_test_tv`` always did, now with every intermediate product
  cached under its content address);
* :meth:`Toolchain.run_differential` — compiler vs compiler (§IV-D):
  two compile→lift→simulate branches joined at one compare stage,
  sharing the ``prepare`` artifact and, optionally, a C-source
  simulation as the undefined-behaviour oracle.

Because the cache is per *stage*, not per cell, re-running a test under
a second target model reuses the compiled litmus, and a differential
pair whose profiles also appear in a test_tv sweep reuses those
branches' compiles outright.

Cache-identity invariants (what makes replaying an artifact sound):

* an artifact's key is ``(stage name, stage signature, input keys)``
  and the graph's root key is :meth:`CLitmus.digest` — pure *content*
  addresses.  Test names never enter identity, so renamed tests (hunt
  mutants, reduction outputs, re-generated suites) share artifacts;
* a stage ``signature()`` must cover every parameter that changes its
  output — model identity enters as what the name resolves to in the
  toolchain's model registry (``model_key``), so a session that shadows
  ``rc11`` can never replay global-rc11 outcome sets, and a swapped
  stage with a distinct signature never collides with stock artifacts
  in a shared cache;
* replay is observationally equivalent to recomputation: a cache hit
  returns the artifact another run produced under the exact same key,
  with its original ``seconds`` (timing totals stay honest — consumers
  flag reuse, they don't zero costs);
* the cache is *bounded* per stage (see :class:`ArtifactCache`):
  eviction only ever costs recomputation, never wrong answers.

:meth:`Toolchain.explain` runs either composition with a trace and
returns a :class:`ToolchainTrace` whose :meth:`~ToolchainTrace.render`
prints every stage's artifact — the ``repro explain`` CLI command.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Tuple, Union

from ..cat.interp import Model
from ..cat.registry import ARCH_MODEL, MODELS, resolve_model
from ..compiler.profiles import CompilerProfile
from ..core.errors import ModelError, ReproError
from ..core.registry import Registry
from ..herd.enumerate import Budget
from ..herd.simulator import SimulationResult
from ..lang.ast import CLitmus
from .artifacts import (
    Artifact,
    CompiledObject,
    OutcomeSet,
    PreparedSource,
    SourceTest,
    TargetLitmus,
    Verdict,
    artifact_keys,
    make_key,
    model_key,
)
from .cache import ArtifactCache
from .results import DifferentialResult, TelechatResult
from .stages import STAGES, Stage


@dataclass(frozen=True)
class TraceEntry:
    """One stage execution (or cache replay) observed by a traced run."""

    artifact: Artifact
    cached: bool

    def header(self) -> str:
        origin = "cached" if self.cached else f"{self.artifact.seconds*1000:.1f} ms"
        return f"── {self.artifact.stage} [{self.artifact.key}] ({origin})"


@dataclass
class ToolchainTrace:
    """Everything ``repro explain`` prints: stages in execution order."""

    test_name: str
    entries: List[TraceEntry]
    result: object  # TelechatResult | DifferentialResult

    def artifact(self, stage: str) -> Artifact:
        for entry in self.entries:
            if entry.artifact.stage == stage:
                return entry.artifact
        raise KeyError(f"no {stage!r} artifact in this trace")

    def render(self) -> str:
        blocks: List[str] = []
        for entry in self.entries:
            blocks.append(entry.header())
            blocks.append(entry.artifact.render())
            blocks.append("")
        return "\n".join(blocks).rstrip() + "\n"


class Toolchain:
    """The staged test_tv tool-chain over one stage registry and cache.

    Args:
        stages: the stage registry to resolve components against — a
            session passes its overlay so privately registered stages
            (custom compiler drivers, comparators) take effect here only.
        models: the model registry names resolve against (cache identity
            uses what a name resolves *to*, so a session that shadows
            ``rc11`` can never replay global-rc11 artifacts).
        cache: share an :class:`ArtifactCache` across toolchains; by
            default each toolchain owns a fresh one.
    """

    def __init__(
        self,
        *,
        stages: Optional[Registry[Stage]] = None,
        models: Optional[Registry[str]] = None,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        self.stages = stages if stages is not None else STAGES
        self.models = models if models is not None else MODELS
        self.cache = cache if cache is not None else ArtifactCache()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Stage inventory plus per-stage cache counters — the
        ``Session.toolchain()`` introspection surface."""
        return {
            "stages": self.stages.metadata(),
            "cache": self.cache.stats(),
        }

    # ------------------------------------------------------------------ #
    # stage plumbing
    # ------------------------------------------------------------------ #
    def _model(self, model: Union[str, Model]) -> Model:
        return resolve_model(model, self.models)

    def _run(
        self,
        name: str,
        sig_params: Dict[str, object],
        run_params: Dict[str, object],
        inputs: Tuple[str, ...],
        trace: Optional[List[TraceEntry]],
    ) -> Artifact:
        stage = self.stages.get(name)
        key = make_key(name, stage.signature(**sig_params), inputs)
        produced: List[Artifact] = []

        def produce() -> Artifact:
            artifact = stage.run(key, **run_params)
            produced.append(artifact)
            return artifact

        artifact = self.cache.get(name, key, produce)
        if trace is not None:
            trace.append(TraceEntry(artifact=artifact, cached=not produced))
        return artifact

    # ------------------------------------------------------------------ #
    # individual stages
    # ------------------------------------------------------------------ #
    def source(self, litmus: CLitmus) -> SourceTest:
        """Wrap the input test as the graph's root artifact (keyed by its
        content digest — names never enter identity)."""
        return SourceTest(
            key=litmus.digest(), stage="source", litmus=litmus
        )

    def prepare(
        self,
        source: Union[SourceTest, CLitmus],
        augment: bool = True,
        trace: Optional[List[TraceEntry]] = None,
    ) -> PreparedSource:
        if isinstance(source, CLitmus):
            source = self.source(source)
        return self._run(
            "prepare",
            {"augment": augment},
            {"source": source, "augment": augment},
            (source.key,),
            trace,
        )

    def compile(
        self,
        prepared: PreparedSource,
        profile: CompilerProfile,
        trace: Optional[List[TraceEntry]] = None,
    ) -> CompiledObject:
        return self._run(
            "compile",
            {"profile": profile},
            {"prepared": prepared, "profile": profile},
            (prepared.key,),
            trace,
        )

    def lift(
        self,
        prepared: PreparedSource,
        compiled: CompiledObject,
        optimise: bool = True,
        trace: Optional[List[TraceEntry]] = None,
    ) -> TargetLitmus:
        return self._run(
            "lift",
            {"optimise": optimise},
            {"prepared": prepared, "compiled": compiled, "optimise": optimise},
            (compiled.key,),
            trace,
        )

    def simulate_source(
        self,
        prepared: PreparedSource,
        model: Union[str, Model] = "rc11",
        unroll: int = 2,
        budget: Optional[Budget] = None,
        keep_executions: bool = False,
        trace: Optional[List[TraceEntry]] = None,
        seed: Optional[SimulationResult] = None,
    ) -> OutcomeSet:
        """Source-side herd run.  ``seed`` injects a pre-computed
        simulation (the campaign runner hoists source simulation out of
        its per-cell loop) under the key this stage would have used, so
        later differential/explain calls replay it from the cache."""
        sig = {
            "model_sig": model_key(model, self.models),
            "unroll": unroll,
            "budget": budget,
            "keep_executions": keep_executions,
        }
        if seed is not None:
            # a hoisted result is cached session-wide under *this call's*
            # key; a seed simulated under a different model would poison
            # every later consumer, so the one part of its provenance a
            # SimulationResult records — the model — is checked here
            expected = model.name if isinstance(model, Model) else str(model)
            try:
                expected = self.models.resolve(expected)
                provided = self.models.resolve(seed.model_name)
            except Exception:
                provided = expected  # unregistered models: trust the caller
            if provided != expected:
                raise ReproError(
                    f"source_result was simulated under "
                    f"{seed.model_name!r} but this run asked for "
                    f"{expected!r} — refusing to cache a mismatched hoist"
                )
            stage = self.stages.get("simulate-source")
            key = make_key(
                "simulate-source", stage.signature(**sig), (prepared.key,)
            )
            inserted: List[OutcomeSet] = []

            def seeded() -> OutcomeSet:
                artifact = OutcomeSet(
                    key=key,
                    stage="simulate-source",
                    inputs=(prepared.key,),
                    seconds=seed.elapsed_seconds,
                    result=seed,
                    side="source",
                )
                inserted.append(artifact)
                return artifact

            artifact = self.cache.get("simulate-source", key, seeded)
            if trace is not None:
                trace.append(
                    TraceEntry(artifact=artifact, cached=not inserted)
                )
            return artifact
        return self._run(
            "simulate-source",
            sig,
            {
                "prepared": prepared,
                "model": self._model(model),
                "unroll": unroll,
                "budget": budget,
                "keep_executions": keep_executions,
            },
            (prepared.key,),
            trace,
        )

    def simulate_target(
        self,
        target: TargetLitmus,
        model: Optional[Union[str, Model]] = None,
        budget: Optional[Budget] = None,
        keep_executions: bool = False,
        trace: Optional[List[TraceEntry]] = None,
    ) -> OutcomeSet:
        if model is None:
            arch = target.litmus.arch
            if arch not in ARCH_MODEL:
                raise ModelError(
                    f"no architecture model registered for {arch!r}"
                )
            model = ARCH_MODEL[arch]
        return self._run(
            "simulate-target",
            {
                "model_sig": model_key(model, self.models),
                "budget": budget,
                "keep_executions": keep_executions,
            },
            {
                "target": target,
                "model": self._model(model),
                "budget": budget,
                "keep_executions": keep_executions,
            },
            (target.key,),
            trace,
        )

    def compare(
        self,
        left: OutcomeSet,
        right: OutcomeSet,
        prepared: PreparedSource,
        trace: Optional[List[TraceEntry]] = None,
    ) -> Verdict:
        return self._run(
            "compare",
            {},
            {"left": left, "right": right, "prepared": prepared},
            (left.key, right.key),
            trace,
        )

    # ------------------------------------------------------------------ #
    # compositions
    # ------------------------------------------------------------------ #
    def run_tv(
        self,
        litmus: CLitmus,
        profile: CompilerProfile,
        *,
        source_model: Union[str, Model] = "rc11",
        target_model: Optional[Union[str, Model]] = None,
        augment: bool = True,
        optimise: bool = True,
        unroll: int = 2,
        budget: Optional[Budget] = None,
        source_result: Optional[SimulationResult] = None,
        keep_executions: bool = False,
        trace: Optional[List[TraceEntry]] = None,
    ) -> TelechatResult:
        """Translation validation of one test under one profile — the
        Fig. 5 chain as a composition over the cached stage graph."""
        t: List[TraceEntry] = []
        prepared = self.prepare(litmus, augment=augment, trace=t)
        compiled = self.compile(prepared, profile, trace=t)
        lifted = self.lift(prepared, compiled, optimise=optimise, trace=t)
        source_out = self.simulate_source(
            prepared, source_model, unroll=unroll, budget=budget,
            keep_executions=keep_executions, trace=t, seed=source_result,
        )
        target_out = self.simulate_target(
            lifted, target_model, budget=budget,
            keep_executions=keep_executions, trace=t,
        )
        verdict = self.compare(source_out, target_out, prepared, trace=t)
        if trace is not None:
            trace.extend(t)
        cached = {e.artifact.stage: e.cached for e in t}
        return TelechatResult(
            test_name=litmus.name,
            profile=profile,
            comparison=verdict.comparison,
            source_result=source_out.result,
            target_result=target_out.result,
            compiled=lifted.litmus,
            s2l_stats=lifted.stats,
            source_seconds=source_out.seconds,
            target_seconds=target_out.seconds,
            compile_seconds=compiled.seconds + lifted.seconds,
            source_reused=bool(
                source_result is not None or cached.get("simulate-source")
            ),
            compile_reused=bool(
                cached.get("compile") and cached.get("lift")
            ),
            artifacts=artifact_keys(
                prepared, compiled, lifted, source_out, target_out, verdict
            ),
        )

    def run_differential(
        self,
        litmus: CLitmus,
        profile_a: CompilerProfile,
        profile_b: CompilerProfile,
        *,
        source_model: Optional[Union[str, Model]] = None,
        target_model: Optional[Union[str, Model]] = None,
        augment: bool = True,
        optimise: bool = True,
        unroll: int = 2,
        budget: Optional[Budget] = None,
        source_result: Optional[SimulationResult] = None,
        keep_executions: bool = False,
        trace: Optional[List[TraceEntry]] = None,
    ) -> DifferentialResult:
        """Differential testing (paper §IV-D): two compile→lift→simulate
        branches joined at one compare stage.

        Unlike the old hand-rolled path this shares the toolchain's
        artifact cache — each (test, profile) compiles once no matter how
        many pairs or test_tv sweeps also need it — and runs the *full*
        s2l optimiser on both branches.  ``source_model`` (or a hoisted
        ``source_result``) switches on the undefined-behaviour oracle:
        the C source is simulated once and racy tests excuse the
        difference, exactly as in test_tv.
        """
        if profile_a.arch != profile_b.arch:
            raise ReproError(
                "differential testing requires a common architecture"
            )
        t: List[TraceEntry] = []
        prepared = self.prepare(litmus, augment=augment, trace=t)

        def branch(profile: CompilerProfile):
            compiled = self.compile(prepared, profile, trace=t)
            lifted = self.lift(prepared, compiled, optimise=optimise, trace=t)
            out = self.simulate_target(
                lifted, target_model, budget=budget,
                keep_executions=keep_executions, trace=t,
            )
            return compiled, lifted, out

        compiled_a, lifted_a, out_a = branch(profile_a)
        compiled_b, lifted_b, out_b = branch(profile_b)
        verdict = self.compare(out_a, out_b, prepared, trace=t)
        comparison = verdict.comparison

        source_out: Optional[OutcomeSet] = None
        if source_model is not None or source_result is not None:
            source_out = self.simulate_source(
                prepared,
                source_model if source_model is not None else "rc11",
                unroll=unroll, budget=budget,
                keep_executions=keep_executions, trace=t, seed=source_result,
            )
            # the oracle overrides the UB flag mcompare read off branch a
            # (an asm simulation never carries C-level data-race UB)
            comparison = dc_replace(
                comparison,
                source_has_ub=source_out.result.has_undefined_behaviour,
            )
            # the traced compare entry must render the *final*
            # classification — an explain whose stage dump contradicts
            # its closing verdict line would mislead; the cached verdict
            # artifact stays oracle-independent on purpose
            overridden = dc_replace(verdict, comparison=comparison)
            for i, entry in enumerate(t):
                if entry.artifact is verdict:
                    t[i] = TraceEntry(
                        artifact=overridden, cached=entry.cached
                    )
        if trace is not None:
            trace.extend(t)
        cached = {e.artifact.stage: e.cached for e in t}

        artifacts = artifact_keys(prepared, verdict, source_out)
        for suffix, compiled, lifted, out in (
            ("a", compiled_a, lifted_a, out_a),
            ("b", compiled_b, lifted_b, out_b),
        ):
            artifacts[f"compile:{suffix}"] = compiled.key
            artifacts[f"lift:{suffix}"] = lifted.key
            artifacts[f"simulate-target:{suffix}"] = out.key
        model_name = ""
        if source_out is not None:
            model_name = source_out.result.model_name
        return DifferentialResult(
            test_name=litmus.name,
            profile_a=profile_a,
            profile_b=profile_b,
            comparison=comparison,
            result_a=out_a.result,
            result_b=out_b.result,
            compiled_a=lifted_a.litmus,
            compiled_b=lifted_b.litmus,
            stats_a=lifted_a.stats,
            stats_b=lifted_b.stats,
            source_result=source_out.result if source_out else None,
            source_model=model_name,
            source_seconds=source_out.seconds if source_out else 0.0,
            source_reused=bool(
                source_out is not None
                and (source_result is not None
                     or cached.get("simulate-source"))
            ),
            compile_seconds=(
                compiled_a.seconds + lifted_a.seconds
                + compiled_b.seconds + lifted_b.seconds
            ),
            simulate_seconds=out_a.seconds + out_b.seconds,
            artifacts=artifacts,
        )

    # ------------------------------------------------------------------ #
    def explain(
        self,
        litmus: CLitmus,
        profile: CompilerProfile,
        *,
        differential_with: Optional[CompilerProfile] = None,
        source_model: Union[str, Model] = "rc11",
        target_model: Optional[Union[str, Model]] = None,
        augment: bool = True,
        optimise: bool = True,
        unroll: int = 2,
        budget: Optional[Budget] = None,
        keep_executions: bool = True,
    ) -> ToolchainTrace:
        """Run the chain with a trace and keep executions for the dot
        dumps — the engine behind ``repro explain <test>``."""
        trace: List[TraceEntry] = []
        if differential_with is not None:
            result: object = self.run_differential(
                litmus, profile, differential_with,
                source_model=source_model, target_model=target_model,
                augment=augment, optimise=optimise, unroll=unroll,
                budget=budget, keep_executions=keep_executions, trace=trace,
            )
        else:
            result = self.run_tv(
                litmus, profile,
                source_model=source_model, target_model=target_model,
                augment=augment, optimise=optimise, unroll=unroll,
                budget=budget, keep_executions=keep_executions, trace=trace,
            )
        return ToolchainTrace(
            test_name=litmus.name, entries=trace, result=result
        )
