"""The registered stage components of the test_tv tool-chain.

Each :class:`Stage` turns input artifacts into one output artifact and
contributes two things to the artifact's identity: its registry *name*
and its parameter *signature*.  The default six stages reproduce the
paper's Fig. 5 chain:

========  =====================================  =========================
name      maps                                   engine behind it
========  =====================================  =========================
prepare   SourceTest → PreparedSource            :func:`repro.tools.l2c.prepare`
compile   PreparedSource → CompiledObject        :func:`repro.tools.c2s.compile_and_disassemble`
lift      CompiledObject → TargetLitmus          :func:`repro.tools.s2l.assembly_to_litmus`
simulate-source  PreparedSource → OutcomeSet     :func:`repro.herd.simulator.simulate_c`
simulate-target  TargetLitmus → OutcomeSet       :func:`repro.herd.simulator.simulate_asm`
compare   OutcomeSet × OutcomeSet → Verdict      :func:`repro.tools.mcompare.mcompare`
========  =====================================  =========================

Stages live in the :data:`STAGES` registry (the shared
:class:`repro.core.registry.Registry` protocol), so embedders can swap a
custom compiler driver, disassembler or comparator per session —
``session.stages.register("compile", MyCompileStage())`` — without
touching process-global state.  A replacement stage that computes
something different should return a different :meth:`Stage.signature`
(e.g. include a version string) so its artifacts never collide with the
stock ones in a shared cache.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from ..cat.interp import Model
from ..core.errors import ReproError
from ..core.registry import Registry
from ..herd.enumerate import Budget
from ..herd.simulator import simulate_asm, simulate_c
from ..tools.c2s import compile_and_disassemble
from ..tools.l2c import prepare as l2c_prepare
from ..tools.mcompare import mcompare
from ..tools.s2l import S2LStats, assembly_to_litmus
from .artifacts import (
    CompiledObject,
    OutcomeSet,
    PreparedSource,
    SourceTest,
    TargetLitmus,
    Verdict,
    budget_signature,
    make_key,
)


class Stage:
    """Base class of tool-chain stages.

    Subclasses set :attr:`name`, implement :meth:`run` (and usually
    :meth:`signature`).  ``run`` receives the input artifacts plus the
    stage's resolved parameters and returns the produced artifact —
    construction of the artifact (key derivation included) is the
    stage's job, via the ``key`` the toolchain hands it.
    """

    name = "stage"

    def signature(self, **params) -> str:
        """A canonical rendering of the parameters that change the
        output.  The default renders everything sorted by name; stages
        with non-trivially-printable parameters override this."""
        return "|".join(f"{k}={params[k]!r}" for k in sorted(params))

    def run(self, key: str, **params):
        raise NotImplementedError


class PrepareStage(Stage):
    """l2c: local-variable augmentation (paper §IV-B)."""

    name = "prepare"

    def signature(self, *, augment: bool = True) -> str:
        return f"augment={int(bool(augment))}"

    def run(self, key: str, *, source: SourceTest, augment: bool = True):
        start = time.perf_counter()
        prepared = l2c_prepare(source.litmus, augment=augment)
        return PreparedSource(
            key=key,
            stage=self.name,
            inputs=(source.key,),
            seconds=time.perf_counter() - start,
            litmus=prepared,
            augmented=bool(augment),
        )


class CompileStage(Stage):
    """c2s: compile with a profile and disassemble the object file."""

    name = "compile"

    def signature(self, *, profile) -> str:
        from .artifacts import profile_signature

        return profile_signature(profile)

    def run(self, key: str, *, prepared: PreparedSource, profile):
        start = time.perf_counter()
        c2s = compile_and_disassemble(prepared.litmus, profile)
        return CompiledObject(
            key=key,
            stage=self.name,
            inputs=(prepared.key,),
            seconds=time.perf_counter() - start,
            c2s=c2s,
            profile=profile,
        )


class LiftStage(Stage):
    """s2l: parse + bridge + (optionally) optimise into an asm litmus."""

    name = "lift"

    def signature(self, *, optimise: bool = True) -> str:
        return f"optimise={int(bool(optimise))}"

    def run(
        self,
        key: str,
        *,
        prepared: PreparedSource,
        compiled: CompiledObject,
        optimise: bool = True,
    ):
        start = time.perf_counter()
        stats = S2LStats()
        litmus = assembly_to_litmus(
            compiled.c2s.obj,
            prepared.litmus.condition,
            listing=compiled.c2s.listing,
            optimise=optimise,
            stats=stats,
        )
        return TargetLitmus(
            key=key,
            stage=self.name,
            inputs=(compiled.key,),
            seconds=time.perf_counter() - start,
            litmus=litmus,
            stats=stats,
            optimised=bool(optimise),
        )


class SimulateSourceStage(Stage):
    """herd(S′, M_S): enumerate the source test under the C/C++ model."""

    name = "simulate-source"

    def signature(
        self,
        *,
        model_sig: str,
        unroll: int = 2,
        budget: Optional[Budget] = None,
        keep_executions: bool = False,
    ) -> str:
        return "|".join(
            (model_sig, f"unroll={unroll}", budget_signature(budget),
             f"exec={int(bool(keep_executions))}")
        )

    def run(
        self,
        key: str,
        *,
        prepared: PreparedSource,
        model: Union[str, Model],
        unroll: int = 2,
        budget: Optional[Budget] = None,
        keep_executions: bool = False,
    ):
        result = simulate_c(
            prepared.litmus, model, unroll=unroll, budget=budget,
            keep_executions=keep_executions,
        )
        return OutcomeSet(
            key=key,
            stage=self.name,
            inputs=(prepared.key,),
            seconds=result.elapsed_seconds,
            result=result,
            side="source",
        )


class SimulateTargetStage(Stage):
    """herd(C, M_C): enumerate the compiled test under the arch model."""

    name = "simulate-target"

    def signature(
        self,
        *,
        model_sig: str,
        budget: Optional[Budget] = None,
        keep_executions: bool = False,
    ) -> str:
        return "|".join(
            (model_sig, budget_signature(budget),
             f"exec={int(bool(keep_executions))}")
        )

    def run(
        self,
        key: str,
        *,
        target: TargetLitmus,
        model: Optional[Union[str, Model]] = None,
        budget: Optional[Budget] = None,
        keep_executions: bool = False,
    ):
        result = simulate_asm(
            target.litmus, model, budget=budget,
            keep_executions=keep_executions,
        )
        return OutcomeSet(
            key=key,
            stage=self.name,
            inputs=(target.key,),
            seconds=result.elapsed_seconds,
            result=result,
            side="target",
        )


class CompareStage(Stage):
    """mcompare: classify target outcomes against source outcomes."""

    name = "compare"

    def signature(self) -> str:
        return ""

    def run(
        self,
        key: str,
        *,
        left: OutcomeSet,
        right: OutcomeSet,
        prepared: PreparedSource,
    ):
        start = time.perf_counter()
        comparison = mcompare(
            left.result,
            right.result,
            shared_locations=list(prepared.litmus.init),
            condition_observables=prepared.litmus.condition.observables(),
        )
        return Verdict(
            key=key,
            stage=self.name,
            inputs=(left.key, right.key),
            seconds=time.perf_counter() - start,
            comparison=comparison,
        )


#: the global stage registry; sessions overlay it (``STAGES.overlay()``)
#: to swap stages privately.
STAGES: Registry[Stage] = Registry("toolchain stage", error=ReproError)
STAGES.register(PrepareStage.name, PrepareStage(),
                doc="l2c local-variable augmentation (paper §IV-B)")
STAGES.register(CompileStage.name, CompileStage(),
                doc="c2s compile + disassemble (paper Fig. 6 step 3)")
STAGES.register(LiftStage.name, LiftStage(), aliases=("s2l",),
                doc="s2l parse/bridge/optimise (paper §III, §IV-E)")
STAGES.register(SimulateSourceStage.name, SimulateSourceStage(),
                doc="herd(S′, M_S) source-side enumeration")
STAGES.register(SimulateTargetStage.name, SimulateTargetStage(),
                doc="herd(C, M_C) target-side enumeration")
STAGES.register(CompareStage.name, CompareStage(), aliases=("mcompare",),
                doc="mcompare outcome-set classification (paper def. II.2)")

# make_key is re-exported here because custom stages need it to mint
# their artifact identities the same way the stock ones do
__all__ = [
    "STAGES",
    "Stage",
    "PrepareStage",
    "CompileStage",
    "LiftStage",
    "SimulateSourceStage",
    "SimulateTargetStage",
    "CompareStage",
    "make_key",
]
