"""Typed artifacts of the test_tv tool-chain (paper Fig. 5).

The chain ``S ──l2c──> S′ ──c2s──> O ──s2l──> C`` plus the two herd
simulations and the mcompare verdict used to live as locals inside one
monolithic function; each intermediate product is now a first-class,
*content-addressed* artifact:

    SourceTest → PreparedSource → CompiledObject → TargetLitmus
                               ↘ OutcomeSet (source)   ↓
                                          OutcomeSet (target) → Verdict

An artifact's :attr:`~Artifact.key` is derived from the producing stage's
name, its parameter signature, and the keys of its input artifacts — so
identity flows through the derivation chain from the source test's
content digest.  Two calls that would compute the same artifact share one
key no matter which session, thread or worker process asks, which is
what makes the per-stage cache (:mod:`repro.toolchain.cache`) sound: a
re-check under a *new target model* reuses the compiled litmus (same
compile/lift keys), and the two branches of a differential run share one
``prepare`` artifact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..asm.litmus import AsmLitmus, total_instructions
from ..cat.interp import Model
from ..cat.registry import MODELS, model_signature
from ..compiler.profiles import CompilerProfile
from ..core.registry import Registry
from ..herd.enumerate import Budget
from ..herd.simulator import SimulationResult
from ..lang.ast import CLitmus
from ..lang.printer import print_c_litmus
from ..tools.c2s import C2SResult
from ..tools.mcompare import ComparisonResult
from ..tools.s2l import S2LStats


# --------------------------------------------------------------------------- #
# identity helpers
# --------------------------------------------------------------------------- #
def make_key(stage: str, signature: str, inputs: Tuple[str, ...] = ()) -> str:
    """The content address of one stage invocation.

    Deterministic across threads, processes and machines: every part is
    itself a content digest or a canonical parameter rendering, so the
    key can serve as a cross-process cache/store identity.
    """
    payload = "\x1f".join((stage, signature) + tuple(inputs))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def profile_signature(profile: CompilerProfile) -> str:
    """Everything about a compiler profile that can change its output.

    The profile *name* carries no version and no bug set — a session that
    re-registers an epoch must not replay artifacts compiled under the
    old bug set — so the signature spells them all out.
    """
    return "|".join(
        (
            profile.compiler,
            str(profile.version),
            profile.opt,
            profile.arch,
            "+".join(sorted(profile.bug_flags)),
            f"lse={int(profile.lse)}",
            f"rcpc={int(profile.rcpc)}",
            f"v84={int(profile.v84)}",
            f"pic={int(profile.pic)}",
        )
    )


def budget_signature(budget: Optional[Budget]) -> str:
    """Budgets bound the work a simulation may do, so they are part of a
    simulation artifact's identity (a result computed under a tight
    budget must not answer for an unbudgeted run)."""
    if budget is None:
        return "none"
    return f"{budget.max_candidates}|{budget.deadline_seconds}"


def model_key(
    model: Union[str, Model], registry: Optional[Registry] = None
) -> str:
    """A content digest of the model — what it *resolves to*, not what it
    is called (the PR 2 cache-identity rule)."""
    name = model.name if isinstance(model, Model) else model
    registry = registry if registry is not None else MODELS
    try:
        return model_signature(name, registry)
    except Exception:
        # a Model instance built outside any registry: its name is the
        # only identity we have (documented limitation — register the
        # model in the session to get content identity)
        return hashlib.sha256(f"model:{name}".encode()).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# the artifact types
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Artifact:
    """One node of the tool-chain's artifact graph.

    ``key`` is the content address (see :func:`make_key`); ``inputs``
    holds the keys of the artifacts this one was derived from, making the
    provenance graph walkable; ``seconds`` is the wall-clock the original
    production took (cache replays keep it — it is the artifact's cost,
    not the lookup's).
    """

    key: str
    stage: str
    inputs: Tuple[str, ...] = ()
    seconds: float = 0.0

    def summary(self) -> str:
        """One line for progress logs and ``CellFinished.artifacts``."""
        return f"{self.stage}:{self.key}"

    def render(self) -> str:
        """A human-readable dump for ``repro explain`` (overridden)."""
        return self.summary()


@dataclass(frozen=True)
class SourceTest(Artifact):
    """``S`` — the input C litmus test."""

    litmus: CLitmus = None  # type: ignore[assignment]

    def render(self) -> str:
        return print_c_litmus(self.litmus)


@dataclass(frozen=True)
class PreparedSource(Artifact):
    """``S′`` — the l2c output (locals persisted into ``out_*`` globals)."""

    litmus: CLitmus = None  # type: ignore[assignment]
    augmented: bool = True

    def render(self) -> str:
        return print_c_litmus(self.litmus)


@dataclass(frozen=True)
class CompiledObject(Artifact):
    """``O`` — the relocatable object file plus its disassembly."""

    c2s: C2SResult = None  # type: ignore[assignment]
    profile: CompilerProfile = None  # type: ignore[assignment]

    def render(self) -> str:
        lines = [f"; compiled with {self.profile.name} "
                 f"(v{self.profile.version})"]
        for thread, listing in sorted(self.c2s.listing.items()):
            lines.append(f"{thread}:")
            lines.extend(f"  {line}" for line in listing)
        return "\n".join(lines)


@dataclass(frozen=True)
class TargetLitmus(Artifact):
    """``C`` — the lifted (and, by default, s2l-optimised) asm litmus."""

    litmus: AsmLitmus = None  # type: ignore[assignment]
    stats: S2LStats = None  # type: ignore[assignment]
    optimised: bool = True

    @property
    def instructions(self) -> int:
        return total_instructions(self.litmus)

    def render(self) -> str:
        header = (
            f"; s2l: {self.stats.parsed_instructions} parsed, "
            f"{self.stats.total_removed} removed "
            f"({'optimised' if self.optimised else 'raw'})"
        )
        return header + "\n" + self.litmus.pretty()


@dataclass(frozen=True)
class OutcomeSet(Artifact):
    """``herd(·, M)`` — the allowed outcomes of one simulation."""

    result: SimulationResult = None  # type: ignore[assignment]
    side: str = "source"  # "source" | "target"

    def render(self) -> str:
        lines = [
            f"{self.side} outcomes under {self.result.model_name} "
            f"({len(self.result.outcomes)} allowed"
            + (f", flags: {', '.join(sorted(self.result.flags))}"
               if self.result.flags else "")
            + "):"
        ]
        lines.extend(
            f"  {o}" for o in sorted(
                self.result.outcomes, key=lambda o: o.bindings
            )
        )
        if self.result.executions:
            from ..herd.dot import simulation_to_dot

            lines.append("")
            lines.append(simulation_to_dot(
                self.result.executions,
                name=f"{self.side}_executions",
            ))
        return "\n".join(lines)


@dataclass(frozen=True)
class Verdict(Artifact):
    """The mcompare classification of two outcome sets."""

    comparison: ComparisonResult = None  # type: ignore[assignment]

    @property
    def verdict(self) -> str:
        return self.comparison.verdict()

    def render(self) -> str:
        return self.comparison.pretty()


def artifact_keys(*artifacts: Artifact) -> Dict[str, str]:
    """The ``{stage: key}`` projection events and records carry — small,
    deterministic, and enough to correlate a verdict with the cached
    artifacts that produced it."""
    return {a.stage: a.key for a in artifacts if a is not None}
