"""Static analysis for the two in-tree DSLs.

``repro.analysis`` is the fail-fast gate in front of the expensive
machinery: :mod:`~repro.analysis.catlint` sort-checks Cat memory models
before they reach the interpreter's compiled kernels, and
:mod:`~repro.analysis.litmuslint` cross-checks litmus tests before a
campaign schedules a single cell. Both emit :class:`Diagnostic`\\ s
(stable code, severity, source span) collected into
:class:`LintReport`\\ s; registration paths raise :class:`LintError` on
error-severity findings and collect warnings.

Entry points:

* :func:`lint_cat_source` / :func:`lint_cat` — Cat models,
* :func:`lint_c_source` / :func:`lint_litmus` — C litmus tests,
* ``Session.lint()`` and ``telechat lint`` — whole-corpus sweeps.
"""

from ..core.errors import LintError
from .catlint import Kind, builtin_kinds, lint_cat, lint_cat_source
from .diagnostics import (
    CODES,
    Diagnostic,
    LintReport,
    Severity,
    diag,
    severity_of_code,
)
from .litmuslint import (
    check_mutant,
    lint_c_source,
    lint_litmus,
    lint_litmus_report,
    summarize_thread,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "Kind",
    "LintError",
    "LintReport",
    "Severity",
    "builtin_kinds",
    "check_mutant",
    "diag",
    "lint_c_source",
    "lint_cat",
    "lint_cat_source",
    "lint_litmus",
    "lint_litmus_report",
    "severity_of_code",
    "summarize_thread",
]
