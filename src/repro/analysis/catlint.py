"""Static sort-checking and semantic lint for Cat models.

The Cat language has two sorts: *event sets* (``R``, ``W``, ``ACQ``, ...)
and *relations* (``po``, ``rf``, ...). The interpreter silently coerces
sets to identity relations in relation position (``_as_relation``) but
hard-fails the other way (``_as_set`` raises :class:`ModelError` on a
relation) — so misuses like ``[po]`` or ``rf * W`` only explode at
simulation time, deep inside a campaign worker. This analyzer infers the
sort of every expression and reports:

* errors for the constructs the interpreter would reject or loop on:
  brackets / cartesian products / ``toid`` / ``fencerel`` over relations,
  undefined names, unknown builtins, wrong arities, negated checks over
  literally-empty expressions, and — the subtle one — **non-monotone**
  ``let rec`` bodies. The fixpoint in :mod:`repro.cat.interp` is a
  Knaster–Tarski iteration, sound only when each recursive body is
  monotone in the recursive names; a recursive name under ``~`` or on
  the right-hand side of ``\\`` can make the iteration oscillate forever
  (the interpreter cuts it off at an arbitrary cap and returns whatever
  it had).
* warnings for the silent coercions and the smells: sets coerced to
  identity relations in ``;`` / closures / checks, mixed-sort unions,
  shadowed and unused ``let`` bindings, duplicate check names, trivially
  true checks.

The builtin name/sort table is derived from :mod:`repro.cat.stdlib`
itself (by building a static environment over zero events) so it can
never drift from what models actually see at run time.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set, Tuple

from ..core.errors import ParseError
from ..core.span import Span
from ..cat.ast import (
    Binary,
    Bracket,
    Call,
    CatExpr,
    CatModel,
    Check,
    Complement,
    EmptySet,
    Let,
    Name,
    Postfix,
    Show,
    Universe,
)
from ..cat.interp import DYNAMIC_BASE_NAMES
from .diagnostics import Diagnostic, LintReport, diag


class Kind(enum.Enum):
    """The sort of a Cat expression."""

    SET = "set"
    REL = "relation"
    #: unknown / polymorphic (``0``, ``{}``, results of errors)
    TOP = "top"

    def __str__(self) -> str:
        return self.value


#: builtin functions: name -> (arity, argument Kind, result Kind)
BUILTIN_FUNCTIONS: Dict[str, Tuple[int, Kind, Kind]] = {
    "domain": (1, Kind.REL, Kind.SET),
    "range": (1, Kind.REL, Kind.SET),
    "toid": (1, Kind.SET, Kind.REL),
    "fencerel": (1, Kind.SET, Kind.REL),
}

_BUILTIN_KINDS: Optional[Dict[str, Kind]] = None


def builtin_kinds() -> Dict[str, Kind]:
    """Name -> sort for every builtin binding a model can reference.

    Derived from the actual static environment :func:`build_static_env`
    constructs (over zero events), plus the dynamic per-candidate
    relations (``rf``, ``co``, ...) the interpreter injects — the lint
    table stays in lock-step with the runtime by construction.
    """
    global _BUILTIN_KINDS
    if _BUILTIN_KINDS is None:
        from ..cat.stdlib import build_static_env
        from ..core.relations import Relation

        kinds: Dict[str, Kind] = {}
        env = build_static_env((), Relation.empty()).env
        for name, value in env.bindings.items():
            kinds[name] = Kind.REL if isinstance(value, Relation) else Kind.SET
        for name in DYNAMIC_BASE_NAMES:
            kinds[name] = Kind.REL
        _BUILTIN_KINDS = kinds
    return dict(_BUILTIN_KINDS)


def _is_literal_empty(expr: CatExpr) -> bool:
    """Is ``expr`` empty for *every* candidate execution, structurally?"""
    if isinstance(expr, EmptySet):
        return True
    if isinstance(expr, Bracket):
        return _is_literal_empty(expr.inner)
    if isinstance(expr, Binary):
        if expr.op in ("&", ";", "*"):
            return _is_literal_empty(expr.left) or _is_literal_empty(expr.right)
        if expr.op == "|":
            return _is_literal_empty(expr.left) and _is_literal_empty(expr.right)
        if expr.op == "\\":
            return _is_literal_empty(expr.left)
    if isinstance(expr, Postfix) and expr.op in ("^+", "^-1"):
        # ?/^* of empty is the identity relation, not empty
        return _is_literal_empty(expr.inner)
    return False


class _CatLinter:
    def __init__(self, model: CatModel, source_name: str = "") -> None:
        self.model = model
        self.source_name = source_name or model.name or "<model>"
        self.diagnostics: List[Diagnostic] = []
        self.env: Dict[str, Kind] = builtin_kinds()
        #: user let bindings: name -> span of the defining name token
        self.user_defs: Dict[str, Optional[Span]] = {}
        #: names referenced anywhere outside their own defining binding
        self.used: Set[str] = set()
        self.check_names: Dict[str, Optional[Span]] = {}

    def emit(self, code: str, message: str, span: Optional[Span]) -> None:
        self.diagnostics.append(diag(code, message, span, self.source_name))

    # ------------------------------------------------------------------ #
    # sort inference
    # ------------------------------------------------------------------ #
    def infer(self, expr: CatExpr) -> Kind:
        if isinstance(expr, Name):
            kind = self.env.get(expr.ident)
            if kind is None:
                self.emit("CAT002", f"undefined name {expr.ident!r}", expr.span)
                return Kind.TOP
            return kind
        if isinstance(expr, EmptySet):
            return Kind.TOP
        if isinstance(expr, Universe):
            return Kind.SET
        if isinstance(expr, Bracket):
            inner = self.infer(expr.inner)
            if inner is Kind.REL:
                self.emit(
                    "CAT001",
                    "[...] needs an event set, got a relation "
                    "(the interpreter would reject this)",
                    expr.span,
                )
            return Kind.REL
        if isinstance(expr, Complement):
            return self.infer(expr.inner)
        if isinstance(expr, Postfix):
            inner = self.infer(expr.inner)
            if inner is Kind.SET:
                self.emit(
                    "CAT103",
                    f"{expr.op} applies to relations; this event set is "
                    "coerced to an identity relation",
                    expr.span,
                )
            return Kind.REL
        if isinstance(expr, Binary):
            return self._infer_binary(expr)
        if isinstance(expr, Call):
            return self._infer_call(expr)
        return Kind.TOP  # pragma: no cover - exhaustive over the AST

    def _infer_binary(self, expr: Binary) -> Kind:
        left = self.infer(expr.left)
        right = self.infer(expr.right)
        if expr.op == "*":
            for side, kind in (("left", left), ("right", right)):
                if kind is Kind.REL:
                    self.emit(
                        "CAT003",
                        f"* builds a relation from two event sets; the {side} "
                        "operand is a relation (the interpreter would reject this)",
                        expr.span,
                    )
            return Kind.REL
        if expr.op == ";":
            for side, kind in (("left", left), ("right", right)):
                if kind is Kind.SET:
                    self.emit(
                        "CAT103",
                        f"; composes relations; the {side} event-set operand "
                        "is coerced to an identity relation",
                        expr.span,
                    )
            return Kind.REL
        # | & \  — sort-preserving on matching operands
        if left is Kind.TOP:
            return right
        if right is Kind.TOP:
            return left
        if left is not right:
            self.emit(
                "CAT104",
                f"{expr.op} mixes an event set and a relation; the set is "
                "coerced to an identity relation",
                expr.span,
            )
            return Kind.REL
        return left

    def _infer_call(self, expr: Call) -> Kind:
        spec = BUILTIN_FUNCTIONS.get(expr.func)
        if spec is None:
            self.emit("CAT004", f"unknown builtin function {expr.func!r}", expr.span)
            for arg in expr.args:
                self.infer(arg)
            return Kind.TOP
        arity, arg_kind, result = spec
        if len(expr.args) != arity:
            self.emit(
                "CAT005",
                f"{expr.func} takes {arity} argument(s), got {len(expr.args)}",
                expr.span,
            )
        for arg in expr.args:
            got = self.infer(arg)
            if arg_kind is Kind.SET and got is Kind.REL:
                self.emit(
                    "CAT006",
                    f"{expr.func} needs an event set, got a relation "
                    "(the interpreter would reject this)",
                    expr.span,
                )
            elif arg_kind is Kind.REL and got is Kind.SET:
                self.emit(
                    "CAT103",
                    f"{expr.func} applies to relations; this event set is "
                    "coerced to an identity relation",
                    expr.span,
                )
        return result

    # ------------------------------------------------------------------ #
    # monotonicity of let rec
    # ------------------------------------------------------------------ #
    def _check_monotone(
        self, expr: CatExpr, rec_names: Set[str], positive: bool
    ) -> None:
        """Walk ``expr`` tracking polarity; a recursive name reached in
        negative polarity makes the fixpoint non-monotone."""
        if isinstance(expr, Name):
            if expr.ident in rec_names and not positive:
                self.emit(
                    "CAT007",
                    f"recursive name {expr.ident!r} occurs in a non-monotone "
                    "position (under ~ or on the right of \\); the fixpoint "
                    "iteration is ill-defined",
                    expr.span,
                )
            return
        if isinstance(expr, Complement):
            self._check_monotone(expr.inner, rec_names, not positive)
            return
        if isinstance(expr, Binary):
            self._check_monotone(expr.left, rec_names, positive)
            flip = not positive if expr.op == "\\" else positive
            self._check_monotone(expr.right, rec_names, flip)
            return
        if isinstance(expr, (Bracket, Postfix)):
            self._check_monotone(expr.inner, rec_names, positive)
            return
        if isinstance(expr, Call):
            for arg in expr.args:
                self._check_monotone(arg, rec_names, positive)
            return

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _free_names(self, expr: CatExpr, out: Set[str]) -> None:
        if isinstance(expr, Name):
            out.add(expr.ident)
        elif isinstance(expr, (Bracket, Complement, Postfix)):
            self._free_names(expr.inner, out)
        elif isinstance(expr, Binary):
            self._free_names(expr.left, out)
            self._free_names(expr.right, out)
        elif isinstance(expr, Call):
            for arg in expr.args:
                self._free_names(arg, out)

    def _binding_span(self, stmt: Let, index: int) -> Optional[Span]:
        if index < len(stmt.binding_spans):
            return stmt.binding_spans[index]
        return stmt.span

    def lint_let(self, stmt: Let) -> None:
        rec_names = {name for name, _ in stmt.bindings} if stmt.recursive else set()
        if stmt.recursive:
            # all names are visible (as relations) inside every body
            for index, (name, _) in enumerate(stmt.bindings):
                self._mark_defined(name, self._binding_span(stmt, index), Kind.REL)
        for index, (name, body) in enumerate(stmt.bindings):
            span = self._binding_span(stmt, index)
            free: Set[str] = set()
            self._free_names(body, free)
            # a binding referencing only itself does not count as used
            self.used.update(free - {name})
            kind = self.infer(body)
            if stmt.recursive:
                self._check_monotone(body, rec_names, positive=True)
            else:
                self._mark_defined(name, span, kind)

    def _mark_defined(self, name: str, span: Optional[Span], kind: Kind) -> None:
        if name in self.env:
            origin = (
                "an earlier binding" if name in self.user_defs else "a builtin"
            )
            self.emit("CAT101", f"binding {name!r} shadows {origin}", span)
        self.env[name] = kind
        self.user_defs.setdefault(name, span)

    def lint_check(self, stmt: Check) -> None:
        kind = self.infer(stmt.expr)
        if stmt.kind in ("acyclic", "irreflexive") and kind is Kind.SET:
            self.emit(
                "CAT103",
                f"{stmt.kind} applies to relations; this event set is "
                "coerced to an identity relation",
                stmt.span,
            )
        free: Set[str] = set()
        self._free_names(stmt.expr, free)
        self.used.update(free)
        if _is_literal_empty(stmt.expr):
            if stmt.negated:
                self.emit(
                    "CAT008",
                    f"~{stmt.kind} over a literally empty expression can "
                    "never be satisfied",
                    stmt.span,
                )
            else:
                self.emit(
                    "CAT106",
                    f"{stmt.kind} over a literally empty expression is "
                    "trivially true",
                    stmt.span,
                )
        if stmt.name in self.check_names:
            self.emit(
                "CAT105",
                f"duplicate check name {stmt.name!r} (give each check a "
                "distinct 'as' name)",
                stmt.span,
            )
        else:
            self.check_names[stmt.name] = stmt.span

    def run(self) -> List[Diagnostic]:
        for stmt in self.model.statements:
            if isinstance(stmt, Let):
                self.lint_let(stmt)
            elif isinstance(stmt, Check):
                self.lint_check(stmt)
            elif isinstance(stmt, Show):
                self.used.update(stmt.names)
        for name, span in self.user_defs.items():
            if name not in self.used:
                self.emit("CAT102", f"binding {name!r} is never used", span)
        self.diagnostics.sort(
            key=lambda d: (d.span.line if d.span else 0, d.span.column if d.span else 0)
        )
        return self.diagnostics


def lint_cat(model: CatModel, source_name: str = "") -> List[Diagnostic]:
    """Lint a parsed :class:`CatModel`; returns all diagnostics, in source order."""
    return _CatLinter(model, source_name).run()


def lint_cat_source(source: str, name: str = "") -> LintReport:
    """Parse and lint Cat source text; parse failures become ``CAT000``."""
    from ..cat.parser import parse

    try:
        model = parse(source, name)
    except ParseError as exc:
        d = diag(
            "CAT000",
            exc.message,
            Span.at(exc.line, exc.column),
            name or "<model>",
        )
        return LintReport(name or "<model>", "cat", (d,))
    target = name or model.name or "<model>"
    return LintReport(target, "cat", tuple(lint_cat(model, target)))
