"""Semantic lint for C litmus tests.

A litmus test whose ``exists`` clause reads a register no thread ever
assigns, or a location nothing initializes, does not fail — it silently
evaluates the missing observable as 0 across *every* execution and an
entire campaign of verdicts goes vacuous. This analyzer cross-checks the
three parts of a test (init section, thread bodies, final-state
condition) against each other:

* errors for conditions over registers never assigned (``LIT001``) or
  locations neither initialized nor written (``LIT002``), and malformed
  or duplicate thread names (``LIT003``) — the compiler and simulator
  both key on ``Pn``;
* warnings for the smells: condition locations written but missing from
  init (``LIT101``), dead init variables (``LIT102``), threads with no
  observable effect (``LIT103``), conditions observing nothing
  (``LIT104``), and threads touching locations outside init (``LIT105``).

The same checks serve as mutation-safety prechecks:
:func:`check_mutant` lets :mod:`repro.tools.mutate` refuse operators
that would produce an ill-formed mutant (e.g. one whose condition went
vacuous) instead of burning simulator budget on it.

When the original source text is available (file targets, hunt-artifact
round-trips) a lightweight span finder locates the condition line, init
entries and thread headers so diagnostics carry real ``line:col``
positions; lints over programmatically-built tests carry no span.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.errors import ParseError
from ..core.litmus import LitmusBase
from ..core.span import Span
from ..lang.ast import (
    Assign,
    AtomicLoad,
    AtomicRMW,
    AtomicStore,
    BinExpr,
    CExpr,
    CLitmus,
    CStmt,
    CThread,
    Decl,
    ExprStmt,
    Fence,
    If,
    PlainLoad,
    PlainStore,
    UnExpr,
    While,
)
from .diagnostics import Diagnostic, LintReport, Severity, diag


# --------------------------------------------------------------------------- #
# span recovery from source text
# --------------------------------------------------------------------------- #
class _SpanFinder:
    """Locate condition / init / thread-header constructs in litmus source.

    The surface syntax is line-oriented enough (Fig. 1 shape) that plain
    substring search per construct recovers exact positions without
    re-tokenizing: the condition is the ``exists``/``forall`` line, the
    init section precedes the first thread header, and thread headers
    match ``name(``.
    """

    def __init__(self, source: str) -> None:
        self.lines = source.splitlines()

    def _span_at(self, line_index: int, column_index: int, width: int) -> Span:
        return Span.at(line_index + 1, column_index + 1, width)

    def condition_span(self, token: str = "") -> Optional[Span]:
        for index in range(len(self.lines) - 1, -1, -1):
            text = self.lines[index]
            match = re.search(r"\b(exists|forall)\b", text)
            if not match:
                continue
            if token:
                at = text.find(token, match.end())
                if at >= 0:
                    return self._span_at(index, at, len(token))
            return self._span_at(index, match.start(), len(match.group()))
        return None

    def _first_thread_line(self) -> int:
        for index, text in enumerate(self.lines):
            if re.search(r"\bP\d+\s*\(", text):
                return index
        return len(self.lines)

    def init_span(self, var: str) -> Optional[Span]:
        pattern = re.compile(rf"\b{re.escape(var)}\b\s*=")
        for index in range(self._first_thread_line()):
            match = pattern.search(self.lines[index])
            if match:
                return self._span_at(index, match.start(), len(var))
        return None

    def thread_span(self, name: str) -> Optional[Span]:
        pattern = re.compile(rf"\b{re.escape(name)}\s*\(")
        for index, text in enumerate(self.lines):
            match = pattern.search(text)
            if match:
                return self._span_at(index, match.start(), len(name))
        return None


class _NoSpans:
    """Span finder for programmatically-built tests: everything is None."""

    def condition_span(self, token: str = "") -> Optional[Span]:
        return None

    def init_span(self, var: str) -> Optional[Span]:
        return None

    def thread_span(self, name: str) -> Optional[Span]:
        return None


# --------------------------------------------------------------------------- #
# thread summaries
# --------------------------------------------------------------------------- #
@dataclass
class _ThreadInfo:
    regs_assigned: Set[str] = dc_field(default_factory=set)
    locs_read: Set[str] = dc_field(default_factory=set)
    locs_written: Set[str] = dc_field(default_factory=set)

    @property
    def shared_write(self) -> bool:
        return bool(self.locs_written)

    @property
    def locs_accessed(self) -> Set[str]:
        return self.locs_read | self.locs_written


def _scan_expr(expr: CExpr, info: _ThreadInfo) -> None:
    if isinstance(expr, (PlainLoad, AtomicLoad)):
        info.locs_read.add(expr.loc)
    elif isinstance(expr, AtomicRMW):
        info.locs_read.add(expr.loc)
        info.locs_written.add(expr.loc)
        _scan_expr(expr.operand, info)
    elif isinstance(expr, BinExpr):
        _scan_expr(expr.left, info)
        _scan_expr(expr.right, info)
    elif isinstance(expr, UnExpr):
        _scan_expr(expr.operand, info)
    # IntLit / Var: no shared-memory effect


def _scan_stmts(body: Sequence[CStmt], info: _ThreadInfo) -> None:
    for stmt in body:
        if isinstance(stmt, (Decl, Assign)):
            info.regs_assigned.add(stmt.var)
            _scan_expr(stmt.expr, info)
        elif isinstance(stmt, (PlainStore, AtomicStore)):
            info.locs_written.add(stmt.loc)
            _scan_expr(stmt.expr, info)
        elif isinstance(stmt, ExprStmt):
            _scan_expr(stmt.expr, info)
        elif isinstance(stmt, If):
            _scan_expr(stmt.cond, info)
            _scan_stmts(stmt.then_body, info)
            _scan_stmts(stmt.else_body, info)
        elif isinstance(stmt, While):
            _scan_expr(stmt.cond, info)
            _scan_stmts(stmt.body, info)
        elif isinstance(stmt, Fence):
            pass


def summarize_thread(thread: CThread) -> Tuple[Set[str], Set[str], Set[str]]:
    """(registers assigned, locations read, locations written) for a thread."""
    info = _ThreadInfo()
    _scan_stmts(thread.body, info)
    return info.regs_assigned, info.locs_read, info.locs_written


# --------------------------------------------------------------------------- #
# the linter
# --------------------------------------------------------------------------- #
def lint_litmus(
    litmus: LitmusBase,
    source: str = "",
    source_name: str = "",
) -> List[Diagnostic]:
    """Lint a litmus test; returns all diagnostics.

    ``source`` (when available) recovers real spans for the diagnostics;
    ``source_name`` labels them. Non-C litmus variants (assembly
    front-ends) are out of scope and lint clean.
    """
    if not isinstance(litmus, CLitmus):
        return []
    name = source_name or litmus.name or "<litmus>"
    spans = _SpanFinder(source) if source else _NoSpans()
    diagnostics: List[Diagnostic] = []

    def emit(code: str, message: str, span: Optional[Span]) -> None:
        diagnostics.append(diag(code, message, span, name))

    # thread names ------------------------------------------------------- #
    infos: Dict[str, _ThreadInfo] = {}
    for thread in litmus.threads:
        try:
            thread.tid
        except ValueError:
            emit(
                "LIT003",
                f"thread name {thread.name!r} is not of the form Pn",
                spans.thread_span(thread.name),
            )
        if thread.name in infos:
            emit(
                "LIT003",
                f"duplicate thread name {thread.name!r}",
                spans.thread_span(thread.name),
            )
            continue
        info = _ThreadInfo()
        _scan_stmts(thread.body, info)
        infos[thread.name] = info

    written_anywhere: Set[str] = set()
    read_anywhere: Set[str] = set()
    for info in infos.values():
        written_anywhere |= info.locs_written
        read_anywhere |= info.locs_read

    # condition vs. threads ---------------------------------------------- #
    observables = litmus.condition.observables()
    observed_locs: Set[str] = set()
    observed_regs: Dict[str, Set[str]] = {}
    for obs in sorted(observables):
        if ":" in obs:
            thread_name, reg = obs.split(":", 1)
            observed_regs.setdefault(thread_name, set()).add(reg)
            info = infos.get(thread_name)
            if info is None:
                emit(
                    "LIT001",
                    f"condition reads {obs!r} but there is no thread "
                    f"{thread_name!r}",
                    spans.condition_span(obs),
                )
            elif reg not in info.regs_assigned:
                emit(
                    "LIT001",
                    f"condition reads {obs!r} but {thread_name} never "
                    f"assigns {reg!r}; the observable is vacuously 0",
                    spans.condition_span(obs),
                )
        else:
            observed_locs.add(obs)
            if obs in litmus.init:
                continue
            if obs in written_anywhere:
                emit(
                    "LIT101",
                    f"condition reads location {obs!r} which is written but "
                    "missing from the init section",
                    spans.condition_span(obs),
                )
            else:
                emit(
                    "LIT002",
                    f"condition reads location {obs!r} which is never "
                    "initialized and never written; the observable is "
                    "vacuously 0",
                    spans.condition_span(obs),
                )
    if not observables:
        emit(
            "LIT104",
            "condition observes nothing; its verdict does not depend on "
            "the program",
            spans.condition_span(),
        )

    # init vs. threads ---------------------------------------------------- #
    for loc in sorted(litmus.init):
        if loc not in read_anywhere and loc not in observed_locs:
            emit(
                "LIT102",
                f"init location {loc!r} is never read by any thread and not "
                "observed by the condition",
                spans.init_span(loc),
            )
    for thread in litmus.threads:
        info = infos.get(thread.name)
        if info is None:
            continue
        for loc in sorted(info.locs_accessed - set(litmus.init)):
            emit(
                "LIT105",
                f"thread {thread.name} accesses location {loc!r} which is "
                "missing from the init section",
                spans.thread_span(thread.name),
            )
        if not info.shared_write and not (
            info.regs_assigned & observed_regs.get(thread.name, set())
        ):
            emit(
                "LIT103",
                f"thread {thread.name} has no observable effect (no shared "
                "store or RMW, and the condition observes none of its "
                "registers)",
                spans.thread_span(thread.name),
            )

    diagnostics.sort(
        key=lambda d: (d.span.line if d.span else 0, d.span.column if d.span else 0)
    )
    return diagnostics


def lint_litmus_report(
    litmus: LitmusBase,
    source: str = "",
    source_name: str = "",
) -> LintReport:
    """:func:`lint_litmus` wrapped in a :class:`LintReport`."""
    name = source_name or litmus.name or "<litmus>"
    return LintReport(name, "litmus", tuple(lint_litmus(litmus, source, name)))


def lint_c_source(source: str, name: str = "") -> LintReport:
    """Parse and lint C litmus source text; parse failures become ``LIT000``."""
    from ..lang.parser import parse_c_litmus

    try:
        litmus = parse_c_litmus(source, name or "test")
    except ParseError as exc:
        d = diag(
            "LIT000",
            exc.message,
            Span.at(exc.line, exc.column) if exc.line else None,
            name or "<litmus>",
        )
        return LintReport(name or "<litmus>", "litmus", (d,))
    return lint_litmus_report(litmus, source, name or litmus.name)


def check_mutant(litmus: LitmusBase) -> List[Diagnostic]:
    """Mutation-safety precheck: the error-severity diagnostics of a mutant.

    :mod:`repro.tools.mutate` refuses any mutant this returns findings
    for — a mutation that disconnects the condition from the program
    (e.g. by removing the only write a ``LIT001`` register depends on)
    would otherwise burn simulation budget on a vacuous test.
    """
    return [d for d in lint_litmus(litmus) if d.severity is Severity.ERROR]
