"""Diagnostics framework shared by the static analyzers.

A :class:`Diagnostic` is one finding: a stable ``code`` (``CAT001``,
``LIT102``, ...), a :class:`Severity`, a human message, and — when the
analyzer could locate the construct — a :class:`~repro.core.span.Span`
into the source. A :class:`LintReport` bundles every diagnostic for one
target (a model, a litmus test) behind ``ok`` / ``errors`` / ``warnings``
accessors and uniform text / JSON renderings.

The full code catalogue lives in :data:`CODES`; ``docs/analysis.md`` and
the negative-fixture tests are kept in sync with it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..core.span import Span


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make registration raise and campaigns refuse to
    dispatch; ``WARNING`` findings collect but never block.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


#: Every diagnostic code the analyzers can emit, with a one-line summary.
#: CAT0xx / LIT0xx are errors; CAT1xx / LIT1xx are warnings; the ``000``
#: codes wrap parse failures so a lint run over a corpus never throws.
CODES: Dict[str, str] = {
    # --- catlint: errors -------------------------------------------------- #
    "CAT000": "cat source failed to parse",
    "CAT001": "bracket [e] applied to a relation (needs an event set)",
    "CAT002": "reference to an undefined name",
    "CAT003": "cartesian product * applied to a relation (needs event sets)",
    "CAT004": "call to an unknown builtin function",
    "CAT005": "wrong number of arguments to a builtin function",
    "CAT006": "set-valued builtin (toid/fencerel) applied to a relation",
    "CAT007": "non-monotone let rec body (recursive name under ~ or on the "
    "right of \\); the fixpoint iteration is ill-defined",
    "CAT008": "unsatisfiable check (negated check over a literally empty "
    "expression always fails)",
    # --- catlint: warnings ------------------------------------------------ #
    "CAT101": "let binding shadows a builtin or an earlier binding",
    "CAT102": "let binding is never used",
    "CAT103": "event set silently coerced to an identity relation where a "
    "relation is expected",
    "CAT104": "set and relation mixed as operands of | & or \\",
    "CAT105": "duplicate check name",
    "CAT106": "trivially true check over a literally empty expression",
    # --- litmuslint: errors ----------------------------------------------- #
    "LIT000": "litmus source failed to parse",
    "LIT001": "condition reads a register its thread never assigns (or an "
    "unknown thread)",
    "LIT002": "condition reads a location that is never initialized and "
    "never written",
    "LIT003": "thread name is not of the form Pn, or duplicates another",
    # --- litmuslint: warnings --------------------------------------------- #
    "LIT101": "condition reads a location that is written but missing from "
    "the init section",
    "LIT102": "init location is never read by any thread and not observed "
    "by the condition",
    "LIT103": "thread has no observable effect (no shared store/RMW, no "
    "register the condition observes)",
    "LIT104": "condition observes nothing (trivially true or false)",
    "LIT105": "thread accesses a location missing from the init section",
}


def severity_of_code(code: str) -> Severity:
    """Severity is encoded in the hundreds digit: ``XXX0nn`` error, ``XXX1nn`` warning."""
    if code not in CODES:
        raise KeyError(f"unknown diagnostic code {code!r}")
    return Severity.WARNING if code[3] == "1" else Severity.ERROR


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, renderable as ``file:line:col: severity CODE: msg``."""

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    source_name: str = ""

    def render(self, source_name: str = "") -> str:
        name = source_name or self.source_name or "<input>"
        line = self.span.line if self.span else 0
        column = self.span.column if self.span else 0
        position = f"{line}:{column}" if column else str(line)
        return f"{name}:{position}: {self.severity} {self.code}: {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "source": self.source_name,
            "line": self.span.line if self.span else 0,
            "column": self.span.column if self.span else 0,
        }


def diag(
    code: str,
    message: str,
    span: Optional[Span] = None,
    source_name: str = "",
) -> Diagnostic:
    """Build a :class:`Diagnostic`, deriving severity from the code."""
    return Diagnostic(code, severity_of_code(code), message, span, source_name)


@dataclass(frozen=True)
class LintReport:
    """All diagnostics for one lint target.

    ``kind`` is ``"cat"`` or ``"litmus"`` — which analyzer produced it.
    """

    target: str
    kind: str
    diagnostics: Tuple[Diagnostic, ...] = field(default=())

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        if not self.diagnostics:
            return f"{self.target}: clean"
        return "\n".join(d.render(self.target) for d in self.diagnostics)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "kind": self.kind,
            "ok": self.ok,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }
