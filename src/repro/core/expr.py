"""Symbolic value expressions.

During thread-local symbolic execution (both of C litmus threads and of
compiled assembly), the value loaded by each read is unknown until an rf
(reads-from) choice is made.  Registers and written values are therefore
*expressions* over read placeholders.  The herd enumerator later solves
them: once each read is wired to a source write, values are computed by
evaluating expressions in topological order of ``data-dependency ∪ rf``.

The expression language is deliberately small: constants, read
placeholders, unary/binary integer operations, and comparisons (which
evaluate to 0/1 as in C).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Mapping


class Expr:
    """Base class for value expressions."""

    def reads(self) -> FrozenSet[int]:
        """The set of read-event ids this expression depends on (data deps)."""
        raise NotImplementedError

    def eval(self, env: Mapping[int, int]) -> int:
        """Evaluate under a read-id -> value environment."""
        raise NotImplementedError

    def substitute(self, env: Mapping[int, int]) -> "Expr":
        """Partially evaluate: replace known reads with constants."""
        raise NotImplementedError

    # conveniences so semantics code reads naturally ---------------------- #
    def __add__(self, other: "Expr") -> "Expr":
        return BinOp("+", self, other)

    def __sub__(self, other: "Expr") -> "Expr":
        return BinOp("-", self, other)

    def __mul__(self, other: "Expr") -> "Expr":
        return BinOp("*", self, other)


@dataclass(frozen=True)
class Const(Expr):
    """A literal integer."""

    value: int

    def reads(self) -> FrozenSet[int]:
        return frozenset()

    def eval(self, env: Mapping[int, int]) -> int:
        return self.value

    def substitute(self, env: Mapping[int, int]) -> Expr:
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return str(self.value)


@dataclass(frozen=True)
class ReadVal(Expr):
    """The value returned by the read event with id ``read_eid``."""

    read_eid: int

    def reads(self) -> FrozenSet[int]:
        return frozenset({self.read_eid})

    def eval(self, env: Mapping[int, int]) -> int:
        if self.read_eid not in env:
            raise KeyError(f"read {self.read_eid} unresolved")
        return env[self.read_eid]

    def substitute(self, env: Mapping[int, int]) -> Expr:
        if self.read_eid in env:
            return Const(env[self.read_eid])
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"r@{self.read_eid}"


_BINOPS: Dict[str, Callable[[int, int], int]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": lambda a, b: a // b if b else 0,
    "%": lambda a, b: a % b if b else 0,
    "&": operator.and_,
    "|": operator.or_,
    "^": operator.xor,
    "<<": lambda a, b: a << (b & 127),
    ">>": lambda a, b: a >> (b & 127),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}

_UNOPS: Dict[str, Callable[[int], int]] = {
    "-": operator.neg,
    "!": lambda a: int(not a),
    "~": operator.invert,
}


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation; comparisons yield 0/1 as in C."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def reads(self) -> FrozenSet[int]:
        return self.left.reads() | self.right.reads()

    def eval(self, env: Mapping[int, int]) -> int:
        return _BINOPS[self.op](self.left.eval(env), self.right.eval(env))

    def substitute(self, env: Mapping[int, int]) -> Expr:
        left = self.left.substitute(env)
        right = self.right.substitute(env)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(_BINOPS[self.op](left.value, right.value))
        return BinOp(self.op, left, right)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in _UNOPS:
            raise ValueError(f"unknown unary operator {self.op!r}")

    def reads(self) -> FrozenSet[int]:
        return self.operand.reads()

    def eval(self, env: Mapping[int, int]) -> int:
        return _UNOPS[self.op](self.operand.eval(env))

    def substitute(self, env: Mapping[int, int]) -> Expr:
        inner = self.operand.substitute(env)
        if isinstance(inner, Const):
            return Const(_UNOPS[self.op](inner.value))
        return UnOp(self.op, inner)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.op}{self.operand!r}"


def const(value: int) -> Const:
    return Const(value)


def is_constant(expr: Expr) -> bool:
    return isinstance(expr, Const)
