"""Core data structures: events, relations, executions, litmus skeletons."""

from .events import INIT_TID, Event, EventKind, MemoryOrder, make_init_writes
from .execution import Execution, Outcome
from .expr import BinOp, Const, Expr, ReadVal, UnOp, const, is_constant
from .litmus import (
    And,
    Condition,
    LitmusBase,
    LocEq,
    Not,
    Or,
    Prop,
    RegEq,
    TrueProp,
    conj,
)
from .registry import Registry, RegistryError
from .relations import EventUniverse, Relation, RelationBuilder
from .errors import (
    CompilationError,
    ConstViolation,
    MappingError,
    ModelError,
    ParseError,
    ReproError,
    SimulationError,
    SimulationTimeout,
)

__all__ = [
    "INIT_TID",
    "Event",
    "EventKind",
    "MemoryOrder",
    "make_init_writes",
    "Execution",
    "Outcome",
    "BinOp",
    "Const",
    "Expr",
    "ReadVal",
    "UnOp",
    "const",
    "is_constant",
    "And",
    "Condition",
    "LitmusBase",
    "LocEq",
    "Not",
    "Or",
    "Prop",
    "RegEq",
    "TrueProp",
    "conj",
    "Registry",
    "RegistryError",
    "EventUniverse",
    "Relation",
    "RelationBuilder",
    "CompilationError",
    "ConstViolation",
    "MappingError",
    "ModelError",
    "ParseError",
    "ReproError",
    "SimulationError",
    "SimulationTimeout",
]
