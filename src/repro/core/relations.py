"""A small relational algebra over event ids, on integer-bitmask kernels.

Memory models in the Cat language (Alglave et al. [2]) are predicates over
relations between events: unions, intersections, sequential composition,
transitive closures, inverses and identity restrictions, finished off with
``acyclic`` / ``irreflexive`` / ``empty`` checks.  This module provides an
immutable :class:`Relation` value type implementing exactly that vocabulary,
used both by the Cat interpreter and directly by Python-coded models.

Representation
--------------

A relation is stored as *per-event integer bitmask adjacency rows*: a
mapping ``{a: row}`` where bit ``b`` of ``row`` is set iff the pair
``(a, b)`` is in the relation.  Rows are arbitrary-precision Python ints,
so every operation over the successor set of an event is a single
word-parallel bitwise operation:

* union / intersection / difference  — row-wise ``|`` / ``&`` / ``& ~``;
* composition ``r ; s``              — for each set bit ``b`` of a row of
  ``r``, OR in the row of ``b`` in ``s``;
* ``r^+``                            — genuine repeated squaring,
  ``R ← R ∪ R∘R``, doubling the covered path length each round
  (``⌈log₂ n⌉`` rounds instead of ``n`` relaxation sweeps);
* acyclicity                         — bitset Kahn elimination: repeatedly
  strip the vertices no live vertex points to;
* restriction / domain / codomain    — row masking and bit collection.

Identity invariants the kernels rely on (checked by the differential
property tests in ``tests/test_relations.py``):

* event ids are **non-negative integers**; bit position *is* event id, so
  relations over the same execution need no re-alignment before a binary
  kernel op (the solver's :class:`EventUniverse` interns each execution's
  events densely as ``0..n-1``, making every row an ``n``-bit integer);
* stored rows are never zero — the row mapping is canonical, so equality
  and hashing compare mappings directly;
* every kernel op is extensionally equal to the reference
  frozenset-of-pairs semantics it replaced; ``pairs`` materialises that
  view lazily for callers that still want tuples.

:class:`EventUniverse` interns an event-id set and caches the identity
and full (cartesian) relations over it, so ``r^*`` / ``r?`` / ``~r`` do
not rebuild them per call.  :class:`RelationBuilder` is the mutable
accumulator the enumerator uses to build coherence orders incrementally
(with cheap bitmask reachability queries for cycle pruning) before
freezing them.  All operations return new relations; nothing mutates.
"""

from __future__ import annotations

from functools import lru_cache
from typing import (Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple)

Pair = Tuple[int, int]

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - older interpreters
    def _popcount(x: int) -> int:
        return bin(x).count("1")


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _mask_of(ids: Iterable[int]) -> int:
    mask = 0
    for e in ids:
        mask |= 1 << e
    return mask


def _rows_from_pairs(pairs: Iterable[Pair]) -> Dict[int, int]:
    rows: Dict[int, int] = {}
    get = rows.get
    for a, b in pairs:
        if a < 0 or b < 0:
            raise ValueError(
                f"relation pair ({a}, {b}): event ids must be non-negative"
            )
        rows[a] = get(a, 0) | (1 << b)
    return rows


def _compose_rows(left: Mapping[int, int], right: Mapping[int, int]) -> Dict[int, int]:
    """Row-level kernel for ``left ; right``."""
    out: Dict[int, int] = {}
    rget = right.get
    for a, mask in left.items():
        acc = 0
        while mask:
            low = mask & -mask
            acc |= rget(low.bit_length() - 1, 0)
            mask ^= low
        if acc:
            out[a] = acc
    return out


@lru_cache(maxsize=512)
def identity_over(ids: FrozenSet[int]) -> "Relation":
    """``[S]`` over a frozen id set, cached so the per-execution universe
    builds its identity relation once, not once per ``^*``/``?`` call."""
    return Relation._from_rows({e: 1 << e for e in sorted(ids)})


@lru_cache(maxsize=512)
def full_over(ids: FrozenSet[int]) -> "Relation":
    """``S * S`` over a frozen id set, cached (used by ``~`` complement)."""
    mask = _mask_of(ids)
    return Relation._from_rows({e: mask for e in sorted(ids)})


class Relation:
    """An immutable binary relation over event ids (bitmask rows)."""

    __slots__ = ("_rows", "_pairs", "_len", "_hash")

    def __init__(self, pairs: Iterable[Pair] = ()) -> None:
        self._rows: Dict[int, int] = _rows_from_pairs(pairs)
        self._pairs: Optional[FrozenSet[Pair]] = None
        self._len: Optional[int] = None
        self._hash: Optional[int] = None

    @classmethod
    def _from_rows(cls, rows: Dict[int, int]) -> "Relation":
        """Wrap an owned, canonical (no zero rows) row mapping — no copy."""
        out = cls.__new__(cls)
        out._rows = rows
        out._pairs = None
        out._len = None
        out._hash = None
        return out

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "Relation":
        return _EMPTY

    @staticmethod
    def from_rows(rows: Mapping[int, int]) -> "Relation":
        """Build from ``{event: successor-bitmask}`` adjacency rows."""
        clean: Dict[int, int] = {}
        for a, mask in rows.items():
            if a < 0 or mask < 0:
                raise ValueError("event ids and row masks must be non-negative")
            if mask:
                clean[a] = mask
        return Relation._from_rows(clean)

    @staticmethod
    def identity(elements: Iterable[int]) -> "Relation":
        """``[S]`` — the identity relation restricted to ``elements``."""
        ids = elements if isinstance(elements, frozenset) else frozenset(elements)
        return identity_over(ids)

    @staticmethod
    def cartesian(domain: Iterable[int], codomain: Iterable[int]) -> "Relation":
        """``A * B`` — all pairs from ``domain`` to ``codomain``."""
        mask = _mask_of(codomain)
        if not mask:
            return _EMPTY
        return Relation._from_rows({a: mask for a in domain})

    @staticmethod
    def from_order(chain: Iterable[int]) -> "Relation":
        """The strict total order induced by a sequence (transitive)."""
        rows: Dict[int, int] = {}
        after = 0
        for e in reversed(list(chain)):
            if after:
                rows[e] = rows.get(e, 0) | after
            after |= 1 << e
        return Relation._from_rows(rows)

    @staticmethod
    def from_successive(chain: Iterable[int]) -> "Relation":
        """Adjacent pairs of a sequence (the immediate-successor relation)."""
        items = list(chain)
        return Relation(zip(items, items[1:]))

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def pairs(self) -> FrozenSet[Pair]:
        """The set-of-pairs view, materialised lazily from the rows."""
        if self._pairs is None:
            self._pairs = frozenset(
                (a, b) for a, mask in self._rows.items() for b in _iter_bits(mask)
            )
        return self._pairs

    def successor_mask(self, a: int) -> int:
        """The adjacency row of ``a``: bit ``b`` set iff ``(a, b)`` holds."""
        return self._rows.get(a, 0)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        if self._len is None:
            self._len = sum(_popcount(mask) for mask in self._rows.values())
        return self._len

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __contains__(self, pair: Pair) -> bool:
        try:
            a, b = pair
            return b >= 0 and (self._rows.get(a, 0) >> b) & 1 == 1
        except (TypeError, ValueError):
            return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Relation) and self._rows == other._rows

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._rows.items()))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{a}->{b}" for a, b in sorted(self.pairs))
        return f"Relation({{{inner}}})"

    # ------------------------------------------------------------------ #
    # the cat operator suite
    # ------------------------------------------------------------------ #
    def union(self, *others: "Relation") -> "Relation":
        if not others:
            return self
        rows = dict(self._rows)
        for other in others:
            get = rows.get
            for a, mask in other._rows.items():
                rows[a] = get(a, 0) | mask
        return Relation._from_rows(rows)

    def intersection(self, other: "Relation") -> "Relation":
        small, big = self._rows, other._rows
        if len(big) < len(small):
            small, big = big, small
        get = big.get
        rows: Dict[int, int] = {}
        for a, mask in small.items():
            both = mask & get(a, 0)
            if both:
                rows[a] = both
        return Relation._from_rows(rows)

    def difference(self, other: "Relation") -> "Relation":
        get = other._rows.get
        rows: Dict[int, int] = {}
        for a, mask in self._rows.items():
            rest = mask & ~get(a, 0)
            if rest:
                rows[a] = rest
        return Relation._from_rows(rows)

    def __or__(self, other: "Relation") -> "Relation":
        return self.union(other)

    def __and__(self, other: "Relation") -> "Relation":
        return self.intersection(other)

    def __sub__(self, other: "Relation") -> "Relation":
        return self.difference(other)

    def inverse(self) -> "Relation":
        """``r^-1`` — the transpose of the adjacency rows."""
        rows: Dict[int, int] = {}
        get = rows.get
        for a, mask in self._rows.items():
            bit = 1 << a
            for b in _iter_bits(mask):
                rows[b] = get(b, 0) | bit
        return Relation._from_rows(rows)

    def successors(self) -> Mapping[int, Tuple[int, ...]]:
        """The adjacency index ``{a: (b, ...)}`` as explicit tuples.

        Kept for callers that want to walk successors as ints; the
        bitmask rows themselves are exposed via :meth:`successor_mask`.
        """
        return {a: tuple(_iter_bits(mask)) for a, mask in self._rows.items()}

    def extend(self, pairs: Iterable[Pair]) -> "Relation":
        """A new relation with ``pairs`` added (``self`` if all present)."""
        rows: Optional[Dict[int, int]] = None
        for a, b in pairs:
            bit = 1 << b
            current = (rows or self._rows).get(a, 0)
            if current & bit:
                continue
            if rows is None:
                rows = dict(self._rows)
            rows[a] = current | bit
        if rows is None:
            return self
        return Relation._from_rows(rows)

    def compose(self, other: "Relation") -> "Relation":
        """``self ; other`` — sequential composition."""
        return Relation._from_rows(_compose_rows(self._rows, other._rows))

    def seq(self, *others: "Relation") -> "Relation":
        rel = self
        for other in others:
            rel = rel.compose(other)
        return rel

    def transitive_closure(self) -> "Relation":
        """``r^+`` by repeated squaring: ``R ← R ∪ R∘R`` until fixpoint.

        Each round doubles the maximum path length already covered, so a
        relation whose longest simple path has length ``k`` converges in
        ``⌈log₂ k⌉ + 1`` rounds of row-level kernel ops.
        """
        rows = dict(self._rows)
        while True:
            changed = False
            for a, mask in _compose_rows(rows, rows).items():
                old = rows.get(a, 0)
                if mask | old != old:
                    rows[a] = old | mask
                    changed = True
            if not changed:
                return Relation._from_rows(rows)

    def reflexive_transitive_closure(self, universe: Iterable[int]) -> "Relation":
        """``r^*`` — needs the event universe to add the identity."""
        return self.transitive_closure() | Relation.identity(universe)

    def optional(self, universe: Iterable[int]) -> "Relation":
        """``r?`` — reflexive closure over the universe."""
        return self | Relation.identity(universe)

    # ------------------------------------------------------------------ #
    # restrictions
    # ------------------------------------------------------------------ #
    def restrict_domain(self, elements: Iterable[int]) -> "Relation":
        allowed = set(elements)
        return Relation._from_rows(
            {a: mask for a, mask in self._rows.items() if a in allowed}
        )

    def restrict_range(self, elements: Iterable[int]) -> "Relation":
        mask = _mask_of(e for e in elements if e >= 0)
        rows: Dict[int, int] = {}
        for a, row in self._rows.items():
            kept = row & mask
            if kept:
                rows[a] = kept
        return Relation._from_rows(rows)

    def restrict(self, elements: Iterable[int]) -> "Relation":
        allowed = set(elements)
        mask = _mask_of(e for e in allowed if e >= 0)
        rows: Dict[int, int] = {}
        for a, row in self._rows.items():
            if a not in allowed:
                continue
            kept = row & mask
            if kept:
                rows[a] = kept
        return Relation._from_rows(rows)

    def filter(self, predicate: Callable[[int, int], bool]) -> "Relation":
        return Relation(p for p in self.pairs if predicate(*p))

    def domain(self) -> FrozenSet[int]:
        return frozenset(self._rows)

    def codomain(self) -> FrozenSet[int]:
        targets = 0
        for mask in self._rows.values():
            targets |= mask
        return frozenset(_iter_bits(targets))

    def field(self) -> FrozenSet[int]:
        return self.domain() | self.codomain()

    # ------------------------------------------------------------------ #
    # checks
    # ------------------------------------------------------------------ #
    def is_irreflexive(self) -> bool:
        return all(not (mask >> a) & 1 for a, mask in self._rows.items())

    def is_acyclic(self) -> bool:
        """True iff the relation (viewed as a digraph) has no cycle.

        Bitset Kahn elimination: repeatedly strip the live vertices that
        no live vertex points to.  Only vertices with outgoing edges can
        lie on a cycle, so the live set starts as the row keys; the
        relation is cyclic iff elimination stalls.  Self-loops count as
        cycles (a self-looping vertex always points to itself).
        """
        rows = self._rows
        alive = _mask_of(rows)
        while alive:
            incoming = 0
            probe = alive
            while probe:
                low = probe & -probe
                incoming |= rows[low.bit_length() - 1]
                probe ^= low
            roots = alive & ~incoming
            if not roots:
                return False
            alive ^= roots
        return True

    def is_empty(self) -> bool:
        return not self._rows

    def is_total_over(self, elements: Iterable[int]) -> bool:
        """True iff for every distinct a,b in elements, a->b or b->a holds."""
        items = list(elements)
        get = self._rows.get
        for i, a in enumerate(items):
            row_a = get(a, 0)
            for b in items[i + 1 :]:
                if not ((row_a >> b) & 1 or (get(b, 0) >> a) & 1):
                    return False
        return True

    def topological_order(self) -> List[int]:
        """A topological order of the field; raises ValueError on cycles."""
        rows = self._rows
        indeg: Dict[int, int] = {n: 0 for n in self.field()}
        for mask in rows.values():
            for b in _iter_bits(mask):
                indeg[b] += 1
        ready = sorted(n for n, d in indeg.items() if d == 0)
        out: List[int] = []
        while ready:
            node = ready.pop()
            out.append(node)
            for child in _iter_bits(rows.get(node, 0)):
                indeg[child] -= 1
                if indeg[child] == 0:
                    ready.append(child)
        if len(out) != len(indeg):
            raise ValueError("relation is cyclic; no topological order exists")
        return out


_EMPTY = Relation()


class EventUniverse:
    """A dense interning of one execution's event ids.

    The solver assigns global event ids ``0..n-1`` per path combination;
    this class pins that invariant down as *the* encoding contract of the
    relation kernels: bit position equals event id, so every relation
    over the universe is a tuple-of-``n``-rows of ``n``-bit integers and
    binary kernel ops between them need no re-alignment.  Sparse id sets
    (tests, hand-built relations) still work — unused bit positions are
    simply never set.

    The universe caches its identity and full (cartesian) relations, so
    ``r^*`` / ``r?`` / ``~r`` over one execution reuse them instead of
    rebuilding per call.
    """

    __slots__ = ("eids", "index", "mask", "_ids_frozen")

    def __init__(self, eids: Iterable[int]) -> None:
        ordered = sorted(set(eids))
        if ordered and ordered[0] < 0:
            raise ValueError("event ids must be non-negative")
        #: the interned ids, ascending; position in this tuple is the
        #: dense index of the id
        self.eids: Tuple[int, ...] = tuple(ordered)
        #: id -> dense index (the identity mapping when ids are 0..n-1)
        self.index: Dict[int, int] = {e: i for i, e in enumerate(ordered)}
        #: bitmask with one bit per interned id
        self.mask: int = _mask_of(ordered)
        self._ids_frozen: FrozenSet[int] = frozenset(ordered)

    def __len__(self) -> int:
        return len(self.eids)

    def __contains__(self, eid: int) -> bool:
        return eid in self.index

    def __iter__(self) -> Iterator[int]:
        return iter(self.eids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventUniverse(n={len(self.eids)}, dense={self.is_dense()})"

    def is_dense(self) -> bool:
        """True iff the ids are exactly ``0..n-1`` (the solver case)."""
        return self.mask == (1 << len(self.eids)) - 1

    def ids(self) -> FrozenSet[int]:
        return self._ids_frozen

    def mask_of(self, ids: Iterable[int]) -> int:
        """Encode a subset of the universe as a bitmask."""
        return _mask_of(ids)

    def events_of(self, mask: int) -> FrozenSet[int]:
        """Decode a bitmask back to the event-id set."""
        return frozenset(_iter_bits(mask))

    def identity(self) -> Relation:
        """``[U]`` — cached across the universe's lifetime."""
        return identity_over(self._ids_frozen)

    def full(self) -> Relation:
        """``U * U`` — cached across the universe's lifetime."""
        return full_over(self._ids_frozen)

    def relation(self, pairs: Iterable[Pair] = ()) -> Relation:
        return Relation(pairs)

    def relation_from_rows(self, rows: Mapping[int, int]) -> Relation:
        return Relation.from_rows(rows)


class RelationBuilder:
    """A mutable accumulator for building a :class:`Relation` incrementally.

    The enumerator grows coherence orders write-by-write; this builder
    keeps bitmask adjacency rows as pairs arrive so that reachability
    (and hence would-this-close-a-cycle) queries are word-parallel mask
    walks, and :meth:`freeze` hands the finished rows straight to the
    resulting immutable relation instead of rebuilding them.
    """

    __slots__ = ("_rows", "_count")

    def __init__(self, pairs: Iterable[Pair] = ()) -> None:
        self._rows: Dict[int, int] = {}
        self._count = 0
        for a, b in pairs:
            self.add(a, b)

    def __len__(self) -> int:
        return self._count

    def __contains__(self, pair: Pair) -> bool:
        a, b = pair
        return b >= 0 and (self._rows.get(a, 0) >> b) & 1 == 1

    def add(self, a: int, b: int) -> bool:
        """Add one pair; returns False if it was already present."""
        if a < 0 or b < 0:
            raise ValueError(
                f"relation pair ({a}, {b}): event ids must be non-negative"
            )
        bit = 1 << b
        current = self._rows.get(a, 0)
        if current & bit:
            return False
        self._rows[a] = current | bit
        self._count += 1
        return True

    def add_chain(self, chain: Iterable[int], transitive: bool = True) -> None:
        """Add a sequence as a (transitive or successive) order."""
        items = list(chain)
        if transitive:
            for i in range(len(items)):
                for j in range(i + 1, len(items)):
                    self.add(items[i], items[j])
        else:
            for a, b in zip(items, items[1:]):
                self.add(a, b)

    def has_path(self, src: int, dst: int) -> bool:
        """True iff ``dst`` is reachable from ``src`` along added pairs."""
        if src == dst:
            return True
        rows = self._rows
        target = 1 << dst
        seen = 1 << src
        frontier = rows.get(src, 0)
        while frontier:
            if frontier & target:
                return True
            seen |= frontier
            step = 0
            while frontier:
                low = frontier & -frontier
                step |= rows.get(low.bit_length() - 1, 0)
                frontier ^= low
            frontier = step & ~seen
        return False

    def would_close_cycle(self, a: int, b: int) -> bool:
        """True iff adding ``(a, b)`` would create a cycle (or self-loop)."""
        return a == b or self.has_path(b, a)

    def freeze(self) -> Relation:
        """The immutable relation, donating a copy of the rows."""
        return Relation._from_rows(dict(self._rows))
