"""A small relational algebra over event ids.

Memory models in the Cat language (Alglave et al. [2]) are predicates over
relations between events: unions, intersections, sequential composition,
transitive closures, inverses and identity restrictions, finished off with
``acyclic`` / ``irreflexive`` / ``empty`` checks.  This module provides an
immutable :class:`Relation` value type implementing exactly that vocabulary,
used both by the Cat interpreter and directly by Python-coded models.

Relations are sets of ``(eid, eid)`` pairs.  All operations return new
relations; nothing mutates.

Two additions support the staged solver engine: :meth:`Relation.extend`
grows a relation pair-by-pair while reusing the successor index of the
parent, and :class:`RelationBuilder` is the mutable accumulator the
enumerator uses to build coherence orders incrementally (with cheap
reachability queries for cycle pruning) before freezing them.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Set,
    Tuple,
)

Pair = Tuple[int, int]


class Relation:
    """An immutable binary relation over event ids."""

    __slots__ = ("_pairs", "_succ_cache")

    def __init__(self, pairs: Iterable[Pair] = ()) -> None:
        self._pairs: FrozenSet[Pair] = frozenset(pairs)
        self._succ_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "Relation":
        return _EMPTY

    @staticmethod
    def identity(elements: Iterable[int]) -> "Relation":
        """``[S]`` — the identity relation restricted to ``elements``."""
        return Relation((e, e) for e in elements)

    @staticmethod
    def cartesian(domain: Iterable[int], codomain: Iterable[int]) -> "Relation":
        """``A * B`` — all pairs from ``domain`` to ``codomain``."""
        cod = tuple(codomain)
        return Relation((a, b) for a in domain for b in cod)

    @staticmethod
    def from_order(chain: Iterable[int]) -> "Relation":
        """The strict total order induced by a sequence (transitive)."""
        items = list(chain)
        return Relation(
            (items[i], items[j])
            for i in range(len(items))
            for j in range(i + 1, len(items))
        )

    @staticmethod
    def from_successive(chain: Iterable[int]) -> "Relation":
        """Adjacent pairs of a sequence (the immediate-successor relation)."""
        items = list(chain)
        return Relation(zip(items, items[1:]))

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def pairs(self) -> FrozenSet[Pair]:
        return self._pairs

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pairs

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Relation) and self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{a}->{b}" for a, b in sorted(self._pairs))
        return f"Relation({{{inner}}})"

    # ------------------------------------------------------------------ #
    # the cat operator suite
    # ------------------------------------------------------------------ #
    def union(self, *others: "Relation") -> "Relation":
        pairs: Set[Pair] = set(self._pairs)
        for other in others:
            pairs |= other._pairs
        return Relation(pairs)

    def intersection(self, other: "Relation") -> "Relation":
        return Relation(self._pairs & other._pairs)

    def difference(self, other: "Relation") -> "Relation":
        return Relation(self._pairs - other._pairs)

    def __or__(self, other: "Relation") -> "Relation":
        return self.union(other)

    def __and__(self, other: "Relation") -> "Relation":
        return self.intersection(other)

    def __sub__(self, other: "Relation") -> "Relation":
        return self.difference(other)

    def inverse(self) -> "Relation":
        """``r^-1``"""
        return Relation((b, a) for a, b in self._pairs)

    def _successors(self) -> Dict[int, Tuple[int, ...]]:
        if not self._succ_cache and self._pairs:
            succ: Dict[int, List[int]] = {}
            for a, b in self._pairs:
                succ.setdefault(a, []).append(b)
            self._succ_cache.update({k: tuple(v) for k, v in succ.items()})
        return self._succ_cache

    def successors(self) -> Mapping[int, Tuple[int, ...]]:
        """The adjacency index ``{a: (b, ...)}``, built once and cached.

        Exposed so incremental callers (the enumerator, builders) can
        reuse the index instead of re-deriving it from the pair set.
        """
        return self._successors()

    def extend(self, pairs: Iterable[Pair]) -> "Relation":
        """A new relation with ``pairs`` added.

        Unlike ``self | Relation(pairs)`` this reuses the already-built
        successor index of ``self``, so growing a relation pair-by-pair
        does not re-index the whole set each step.  Returns ``self``
        unchanged when every pair is already present.
        """
        extra = frozenset(pairs) - self._pairs
        if not extra:
            return self
        out = Relation(self._pairs | extra)
        if self._succ_cache:
            succ: Dict[int, List[int]] = {
                k: list(v) for k, v in self._succ_cache.items()
            }
            for a, b in extra:
                succ.setdefault(a, []).append(b)
            out._succ_cache.update({k: tuple(v) for k, v in succ.items()})
        return out

    def compose(self, other: "Relation") -> "Relation":
        """``self ; other`` — sequential composition."""
        succ = other._successors()
        out: Set[Pair] = set()
        for a, b in self._pairs:
            for c in succ.get(b, ()):
                out.add((a, c))
        return Relation(out)

    def seq(self, *others: "Relation") -> "Relation":
        rel = self
        for other in others:
            rel = rel.compose(other)
        return rel

    def transitive_closure(self) -> "Relation":
        """``r^+`` via repeated squaring over the adjacency sets."""
        succ: Dict[int, Set[int]] = {}
        for a, b in self._pairs:
            succ.setdefault(a, set()).add(b)
        changed = True
        while changed:
            changed = False
            for a in list(succ):
                reachable = succ[a]
                extra: Set[int] = set()
                for b in reachable:
                    extra |= succ.get(b, set())
                new = extra - reachable
                if new:
                    reachable |= new
                    changed = True
        return Relation((a, b) for a, targets in succ.items() for b in targets)

    def reflexive_transitive_closure(self, universe: Iterable[int]) -> "Relation":
        """``r^*`` — needs the event universe to add the identity."""
        return self.transitive_closure() | Relation.identity(universe)

    def optional(self, universe: Iterable[int]) -> "Relation":
        """``r?`` — reflexive closure over the universe."""
        return self | Relation.identity(universe)

    # ------------------------------------------------------------------ #
    # restrictions
    # ------------------------------------------------------------------ #
    def restrict_domain(self, elements: Iterable[int]) -> "Relation":
        allowed = set(elements)
        return Relation(p for p in self._pairs if p[0] in allowed)

    def restrict_range(self, elements: Iterable[int]) -> "Relation":
        allowed = set(elements)
        return Relation(p for p in self._pairs if p[1] in allowed)

    def restrict(self, elements: Iterable[int]) -> "Relation":
        allowed = set(elements)
        return Relation(p for p in self._pairs if p[0] in allowed and p[1] in allowed)

    def filter(self, predicate: Callable[[int, int], bool]) -> "Relation":
        return Relation(p for p in self._pairs if predicate(*p))

    def domain(self) -> FrozenSet[int]:
        return frozenset(a for a, _ in self._pairs)

    def codomain(self) -> FrozenSet[int]:
        return frozenset(b for _, b in self._pairs)

    def field(self) -> FrozenSet[int]:
        return self.domain() | self.codomain()

    # ------------------------------------------------------------------ #
    # checks
    # ------------------------------------------------------------------ #
    def is_irreflexive(self) -> bool:
        return all(a != b for a, b in self._pairs)

    def is_acyclic(self) -> bool:
        """True iff the relation (viewed as a digraph) has no cycle.

        Iterative DFS with colouring over the cached successor index —
        no transitive closure is materialised, so the check is linear in
        the number of pairs.  Self-loops count as cycles.
        """
        succ = self._successors()
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[int, int] = {}
        for root in {a for a, _ in self._pairs}:
            if colour.get(root, WHITE) is not WHITE:
                continue
            stack: List[Tuple[int, Iterator[int]]] = [(root, iter(succ.get(root, ())))]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for child in it:
                    c = colour.get(child, WHITE)
                    if c == GREY:
                        return False
                    if c == WHITE:
                        colour[child] = GREY
                        stack.append((child, iter(succ.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return True

    def is_empty(self) -> bool:
        return not self._pairs

    def is_total_over(self, elements: Iterable[int]) -> bool:
        """True iff for every distinct a,b in elements, a->b or b->a holds."""
        items = list(elements)
        for i, a in enumerate(items):
            for b in items[i + 1 :]:
                if (a, b) not in self._pairs and (b, a) not in self._pairs:
                    return False
        return True

    def topological_order(self) -> List[int]:
        """A topological order of the field; raises ValueError on cycles."""
        succ = self._successors()
        indeg: Dict[int, int] = {n: 0 for n in self.field()}
        for _, b in self._pairs:
            indeg[b] += 1
        ready = sorted(n for n, d in indeg.items() if d == 0)
        out: List[int] = []
        while ready:
            node = ready.pop()
            out.append(node)
            for child in succ.get(node, ()):
                indeg[child] -= 1
                if indeg[child] == 0:
                    ready.append(child)
        if len(out) != len(indeg):
            raise ValueError("relation is cyclic; no topological order exists")
        return out


_EMPTY = Relation()


class RelationBuilder:
    """A mutable accumulator for building a :class:`Relation` incrementally.

    The enumerator grows coherence orders write-by-write; this builder
    keeps a successor index as pairs arrive so that reachability (and
    hence would-this-close-a-cycle) queries are cheap, and
    :meth:`freeze` hands the finished index straight to the resulting
    immutable relation instead of rebuilding it.
    """

    __slots__ = ("_pairs", "_succ")

    def __init__(self, pairs: Iterable[Pair] = ()) -> None:
        self._pairs: Set[Pair] = set()
        self._succ: Dict[int, List[int]] = {}
        for a, b in pairs:
            self.add(a, b)

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pairs

    def add(self, a: int, b: int) -> bool:
        """Add one pair; returns False if it was already present."""
        if (a, b) in self._pairs:
            return False
        self._pairs.add((a, b))
        self._succ.setdefault(a, []).append(b)
        return True

    def add_chain(self, chain: Iterable[int], transitive: bool = True) -> None:
        """Add a sequence as a (transitive or successive) order."""
        items = list(chain)
        if transitive:
            for i in range(len(items)):
                for j in range(i + 1, len(items)):
                    self.add(items[i], items[j])
        else:
            for a, b in zip(items, items[1:]):
                self.add(a, b)

    def has_path(self, src: int, dst: int) -> bool:
        """True iff ``dst`` is reachable from ``src`` along added pairs."""
        if src == dst:
            return True
        seen = {src}
        stack = [src]
        while stack:
            node = stack.pop()
            for child in self._succ.get(node, ()):
                if child == dst:
                    return True
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return False

    def would_close_cycle(self, a: int, b: int) -> bool:
        """True iff adding ``(a, b)`` would create a cycle (or self-loop)."""
        return a == b or self.has_path(b, a)

    def freeze(self) -> Relation:
        """The immutable relation, donating the successor index."""
        out = Relation(self._pairs)
        if self._pairs:
            out._succ_cache.update(
                {k: tuple(v) for k, v in self._succ.items()}
            )
        return out
