"""Source spans: where in a model or test a construct came from.

Both in-tree DSLs (the Cat model language and the C litmus surface
syntax) tokenize with line/column bookkeeping; a :class:`Span` carries
that position onto AST nodes and diagnostics so sort errors and semantic
lints (:mod:`repro.analysis`) point at the offending token instead of
"somewhere in the model".

Spans never participate in AST equality (nodes carry them in
``compare=False`` fields): two parses of the same text are equal, and a
hand-built AST equals a parsed one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Span:
    """A half-open source region, 1-based; ``end_*`` of 0 means unknown."""

    line: int
    column: int = 0
    end_line: int = 0
    end_column: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    @staticmethod
    def at(line: int, column: int = 0, width: int = 0) -> "Span":
        """The span of a token at ``line``/``column``, ``width`` chars wide."""
        end_column = column + width if width and column else 0
        return Span(line, column, line if width and column else 0, end_column)


def span_of(node: object) -> Optional[Span]:
    """The span attached to an AST node, if any (``None``-safe)."""
    return getattr(node, "span", None)
