"""A thread-safe exactly-once keyed cache with hit/miss counters.

Grown out of the campaign runner's source-simulation cache (PR 1) and
now shared by every caching layer in the tree — the campaign's
source/result caches and the toolchain's per-stage artifact caches all
need the same contract:

* ``get(key, producer)`` runs ``producer`` at most once per key, even
  under a worker pool — concurrent callers for the same key block until
  the first producer lands, distinct keys produce concurrently;
* the produced value (or the :class:`~repro.core.errors.ReproError` /
  :class:`~repro.core.errors.SimulationTimeout` it raised) is replayed
  to every later caller, so a timing-out simulation is paid for once;
* unexpected exceptions are *not* cached — the claim is released and
  waiters retry, so one transient crash cannot poison a key forever.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict

from .errors import ReproError, SimulationTimeout


class KeyedCache:
    """An exactly-once ``key → value`` cache (see module docstring)."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._store: Dict = {}
        self._inflight: set = set()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key) -> bool:
        with self._cond:
            return key in self._store

    def clear(self) -> int:
        """Drop every cached entry (counters keep running).

        Safe under concurrency: in-flight producers are untouched — a
        waiter that finds its key gone simply claims and recomputes, the
        same path as a cold miss.  Returns the number of entries dropped.
        """
        with self._cond:
            dropped = len(self._store)
            self._store.clear()
            self._cond.notify_all()
        return dropped

    def get(self, key, producer: Callable):
        with self._cond:
            while True:
                if key in self._store:
                    self.hits += 1
                    kind, payload = self._store[key]
                    if kind == "error":
                        raise payload
                    return payload
                if key not in self._inflight:
                    # we claim this key; the producer runs outside the
                    # lock so distinct keys simulate concurrently
                    self._inflight.add(key)
                    self.misses += 1
                    break
                self._cond.wait()
        try:
            entry = ("value", producer())
        except (SimulationTimeout, ReproError) as exc:
            entry = ("error", exc)
        except BaseException:
            # unexpected failure: don't cache, don't strand the waiters
            with self._cond:
                self._inflight.discard(key)
                self._cond.notify_all()
            raise
        with self._cond:
            self._store[key] = entry
            self._inflight.discard(key)
            self._cond.notify_all()
        if entry[0] == "error":
            raise entry[1]
        return entry[1]
