"""Memory events: the nodes of candidate executions.

Executions (paper def. II.1) are graphs whose nodes are *events*: reads,
writes, read-modify-writes and fences issued by threads against shared
memory.  Events abstract machine operations as mathematical objects — a
pipeline or store buffer is modelled only through its effect on the order
in which events reach memory.

An RMW operation is represented herd-style as *two* events — a read and a
write — linked by the ``rmw`` relation of the surrounding execution.  This
matters for the paper's §IV-B bug class: when a compiler deletes the unused
destination register of an RMW (``STADD`` aliasing ``LDADD xzr``), the read
event disappears and with it every ordering the read provided.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple


class MemoryOrder(enum.IntEnum):
    """C11 memory orders, ordered by strength for convenience.

    ``NA`` marks a non-atomic (plain) access; plain accesses participate in
    data races, which the C/C++ model treats as undefined behaviour.
    """

    NA = 0
    RLX = 1
    CON = 2
    ACQ = 3
    REL = 4
    ACQ_REL = 5
    SC = 6

    @property
    def is_atomic(self) -> bool:
        return self is not MemoryOrder.NA

    @property
    def at_least_acquire(self) -> bool:
        return self in (MemoryOrder.ACQ, MemoryOrder.ACQ_REL, MemoryOrder.SC)

    @property
    def at_least_release(self) -> bool:
        return self in (MemoryOrder.REL, MemoryOrder.ACQ_REL, MemoryOrder.SC)

    @property
    def is_seq_cst(self) -> bool:
        return self is MemoryOrder.SC

    @classmethod
    def parse(cls, text: str) -> "MemoryOrder":
        """Parse a C11 spelling such as ``memory_order_relaxed``."""
        key = text.strip().lower()
        key = key.replace("memory_order_", "")
        table = {
            "na": cls.NA,
            "plain": cls.NA,
            "relaxed": cls.RLX,
            "rlx": cls.RLX,
            "consume": cls.CON,
            "con": cls.CON,
            "acquire": cls.ACQ,
            "acq": cls.ACQ,
            "release": cls.REL,
            "rel": cls.REL,
            "acq_rel": cls.ACQ_REL,
            "acqrel": cls.ACQ_REL,
            "seq_cst": cls.SC,
            "sc": cls.SC,
        }
        if key not in table:
            raise ValueError(f"unknown memory order: {text!r}")
        return table[key]

    def c11_spelling(self) -> str:
        names = {
            MemoryOrder.NA: "plain",
            MemoryOrder.RLX: "memory_order_relaxed",
            MemoryOrder.CON: "memory_order_consume",
            MemoryOrder.ACQ: "memory_order_acquire",
            MemoryOrder.REL: "memory_order_release",
            MemoryOrder.ACQ_REL: "memory_order_acq_rel",
            MemoryOrder.SC: "memory_order_seq_cst",
        }
        return names[self]


class EventKind(enum.Enum):
    """The kind of a memory event."""

    READ = "R"
    WRITE = "W"
    FENCE = "F"
    # Branch events carry control dependencies in assembly executions; they
    # never access memory and most models ignore them except through ctrl.
    BRANCH = "B"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The thread id used for initial-state writes.
INIT_TID = -1


@dataclass(frozen=True)
class Event:
    """A node of an execution graph.

    Attributes:
        eid: unique id within one execution (init writes come first).
        tid: issuing thread, or :data:`INIT_TID` for initial-state writes.
        kind: read / write / fence / branch.
        loc: symbolic shared-memory location (``None`` for fences/branches).
        value: the value read or written once the execution is concrete.
        order: C11 memory order (``NA`` for plain accesses and all
            architecture-level events, which use ``tags`` instead).
        tags: architecture refinement sets — e.g. ``"A"`` (LDAR acquire),
            ``"Q"`` (LDAPR weak acquire), ``"L"`` (STLR release), ``"X"``
            (exclusive), fence names like ``"DMB.SY"``, ``"SYNC"``; and the
            ``"RMW-R"`` / ``"RMW-W"`` markers on RMW halves.
        label: source-level label (e.g. the register receiving a load) used
            in diagnostics and state mapping.
    """

    eid: int
    tid: int
    kind: EventKind
    loc: Optional[str] = None
    value: Optional[int] = None
    order: MemoryOrder = MemoryOrder.NA
    tags: FrozenSet[str] = frozenset()
    label: str = ""

    # ------------------------------------------------------------------ #
    # classification helpers
    # ------------------------------------------------------------------ #
    @property
    def is_read(self) -> bool:
        return self.kind is EventKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is EventKind.WRITE

    @property
    def is_fence(self) -> bool:
        return self.kind is EventKind.FENCE

    @property
    def is_branch(self) -> bool:
        return self.kind is EventKind.BRANCH

    @property
    def is_access(self) -> bool:
        return self.kind in (EventKind.READ, EventKind.WRITE)

    @property
    def is_init(self) -> bool:
        return self.tid == INIT_TID

    @property
    def is_rmw_half(self) -> bool:
        return "RMW-R" in self.tags or "RMW-W" in self.tags

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    def with_value(self, value: int) -> "Event":
        return replace(self, value=value)

    def with_tags(self, *extra: str) -> "Event":
        return replace(self, tags=self.tags | frozenset(extra))

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def pretty(self) -> str:
        """Render like the paper's Fig. 2 node labels, e.g. ``a: W(Rlx)[x]=1``."""
        name = chr(ord("a") + self.eid % 26)
        if self.is_fence:
            mo = self.order.name.title() if self.order.is_atomic else ",".join(sorted(self.tags)) or "F"
            return f"{name}: F({mo})"
        if self.is_branch:
            return f"{name}: B"
        mo = self.order.name.title() if self.order.is_atomic else ("Na" if not self.tags else ",".join(sorted(self.tags)))
        val = "?" if self.value is None else str(self.value)
        return f"{name}: {self.kind.value}({mo})[{self.loc}]={val}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.pretty()


def make_init_writes(init: "dict[str, int]", start_eid: int = 0) -> Tuple[Event, ...]:
    """Build the initial-state write events for the given ``loc -> value`` map.

    Litmus tests fix the initial state (paper §II-A); herd models this as a
    set of writes by a virtual initial thread that precede everything.
    """
    events = []
    for offset, (loc, value) in enumerate(sorted(init.items())):
        events.append(
            Event(
                eid=start_eid + offset,
                tid=INIT_TID,
                kind=EventKind.WRITE,
                loc=loc,
                value=value,
                order=MemoryOrder.NA,
                tags=frozenset({"INIT"}),
            )
        )
    return tuple(events)
