"""Exception hierarchy for the reproduction library."""

from __future__ import annotations

from typing import Iterable, Tuple


class ReproError(Exception):
    """Base class for all library errors."""


class ParseError(ReproError):
    """A litmus test, Cat model or assembly file failed to parse.

    Every raise site supplies what it knows — ``line``, ``column``, the
    offending source ``snippet`` and the ``source_name`` of the input —
    and the top-level parse entry points backfill the snippet from the
    source text, so one rendering (:meth:`render`) serves them all:
    ``file:line:col: message`` plus the source line with a caret.
    """

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        snippet: str = "",
        source_name: str = "",
    ) -> None:
        location = f" at line {line}" if line else ""
        location += f", column {column}" if column else ""
        super().__init__(message + location)
        self.message = message
        self.line = line
        self.column = column
        self.snippet = snippet
        self.source_name = source_name

    def attach_source(self, source: str, name: str = "") -> "ParseError":
        """Backfill ``snippet`` (from ``source``'s offending line) and
        ``source_name`` without clobbering what a raise site provided."""
        if name and not self.source_name:
            self.source_name = name
        if not self.snippet and self.line:
            lines = source.splitlines()
            if 1 <= self.line <= len(lines):
                self.snippet = lines[self.line - 1]
        return self

    def render(self, source_name: str = "") -> str:
        """The uniform ``file:line:col: message`` rendering (plus the
        source line and a column caret when known)."""
        name = source_name or self.source_name or "<input>"
        position = f"{self.line}:{self.column}" if self.column else str(self.line)
        out = f"{name}:{position}: {self.message}"
        if self.snippet:
            out += f"\n  {self.snippet}"
            if self.column:
                out += "\n  " + " " * (self.column - 1) + "^"
        return out


class LintError(ReproError):
    """A model or test failed static analysis (:mod:`repro.analysis`).

    Carries the error-severity :class:`~repro.analysis.Diagnostic`\\ s
    that caused the failure, so callers (``Session.register_model``, the
    campaign engine, the CLI) can render precise ``file:line:col``
    locations instead of one opaque message.
    """

    def __init__(self, message: str, diagnostics: Iterable = ()) -> None:
        self.diagnostics: Tuple = tuple(diagnostics)
        detail = "\n".join(
            "  " + d.render() for d in self.diagnostics
        )
        super().__init__(message + (":\n" + detail if detail else ""))


class ModelError(ReproError):
    """A Cat model referenced an unknown relation/set or misused an operator."""


class SimulationError(ReproError):
    """The herd-style simulator could not enumerate executions."""


class SimulationTimeout(SimulationError):
    """Enumeration exceeded the configured budget (state explosion, §IV-E)."""

    def __init__(self, message: str, candidates_explored: int = 0) -> None:
        super().__init__(message)
        self.candidates_explored = candidates_explored


class CompilationError(ReproError):
    """The miniature compiler rejected or crashed on an input (ICE analogue)."""


class ConstViolation(ReproError):
    """A write reached read-only memory — the run-time crash analogue of the
    128-bit const atomic load bug (paper §IV-E, LLVM issue 61770)."""

    def __init__(self, location: str, instruction: str = "") -> None:
        detail = f" by {instruction}" if instruction else ""
        super().__init__(f"write to read-only location {location!r}{detail}")
        self.location = location
        self.instruction = instruction


class MappingError(ReproError):
    """mcompare could not map compiled observables back to source names."""
