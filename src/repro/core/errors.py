"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ParseError(ReproError):
    """A litmus test, Cat model or assembly file failed to parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}" if line else ""
        location += f", column {column}" if column else ""
        super().__init__(message + location)
        self.line = line
        self.column = column


class ModelError(ReproError):
    """A Cat model referenced an unknown relation/set or misused an operator."""


class SimulationError(ReproError):
    """The herd-style simulator could not enumerate executions."""


class SimulationTimeout(SimulationError):
    """Enumeration exceeded the configured budget (state explosion, §IV-E)."""

    def __init__(self, message: str, candidates_explored: int = 0) -> None:
        super().__init__(message)
        self.candidates_explored = candidates_explored


class CompilationError(ReproError):
    """The miniature compiler rejected or crashed on an input (ICE analogue)."""


class ConstViolation(ReproError):
    """A write reached read-only memory — the run-time crash analogue of the
    128-bit const atomic load bug (paper §IV-E, LLVM issue 61770)."""

    def __init__(self, location: str, instruction: str = "") -> None:
        detail = f" by {instruction}" if instruction else ""
        super().__init__(f"write to read-only location {location!r}{detail}")
        self.location = location
        self.instruction = instruction


class MappingError(ReproError):
    """mcompare could not map compiled observables back to source names."""
