"""Litmus-test skeletons and final-state conditions.

A litmus test (paper §II-A) has a fixed initial state, a small concurrent
program, and a predicate over the final state.  This module provides the
language-independent parts: the condition AST (``exists (P1:r0=0 /\\ y=2)``)
and a base class carrying name, initial state and condition.  The C and
assembly front-ends subclass it with their own thread representations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from .execution import Outcome


# --------------------------------------------------------------------------- #
# condition AST
# --------------------------------------------------------------------------- #
class Prop:
    """A proposition over final-state observables."""

    def evaluate(self, outcome: Mapping[str, int]) -> bool:
        raise NotImplementedError

    def observables(self) -> FrozenSet[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class LocEq(Prop):
    """``loc = value`` — the final value of a shared location."""

    loc: str
    value: int

    def evaluate(self, outcome: Mapping[str, int]) -> bool:
        return outcome.get(self.loc, 0) == self.value

    def observables(self) -> FrozenSet[str]:
        return frozenset({self.loc})

    def __str__(self) -> str:
        return f"{self.loc}={self.value}"


@dataclass(frozen=True)
class RegEq(Prop):
    """``Pn:r = value`` — the final value of a thread-local observable."""

    thread: str
    reg: str
    value: int

    @property
    def name(self) -> str:
        return f"{self.thread}:{self.reg}"

    def evaluate(self, outcome: Mapping[str, int]) -> bool:
        return outcome.get(self.name, 0) == self.value

    def observables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"{self.thread}:{self.reg}={self.value}"


@dataclass(frozen=True)
class And(Prop):
    left: Prop
    right: Prop

    def evaluate(self, outcome: Mapping[str, int]) -> bool:
        return self.left.evaluate(outcome) and self.right.evaluate(outcome)

    def observables(self) -> FrozenSet[str]:
        return self.left.observables() | self.right.observables()

    def __str__(self) -> str:
        return f"({self.left} /\\ {self.right})"


@dataclass(frozen=True)
class Or(Prop):
    left: Prop
    right: Prop

    def evaluate(self, outcome: Mapping[str, int]) -> bool:
        return self.left.evaluate(outcome) or self.right.evaluate(outcome)

    def observables(self) -> FrozenSet[str]:
        return self.left.observables() | self.right.observables()

    def __str__(self) -> str:
        return f"({self.left} \\/ {self.right})"


@dataclass(frozen=True)
class Not(Prop):
    inner: Prop

    def evaluate(self, outcome: Mapping[str, int]) -> bool:
        return not self.inner.evaluate(outcome)

    def observables(self) -> FrozenSet[str]:
        return self.inner.observables()

    def __str__(self) -> str:
        return f"~({self.inner})"


@dataclass(frozen=True)
class TrueProp(Prop):
    def evaluate(self, outcome: Mapping[str, int]) -> bool:
        return True

    def observables(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


def conj(props: Sequence[Prop]) -> Prop:
    """Fold a sequence of propositions into a conjunction."""
    if not props:
        return TrueProp()
    acc = props[0]
    for p in props[1:]:
        acc = And(acc, p)
    return acc


@dataclass(frozen=True)
class Condition:
    """A quantified final-state condition.

    ``exists P`` is satisfied if *some* outcome satisfies P (the litmus
    convention: interesting/forbidden behaviours are phrased as exists
    clauses).  ``forall P`` requires every outcome to satisfy P.
    """

    quantifier: str  # "exists" | "forall"
    prop: Prop

    def __post_init__(self) -> None:
        if self.quantifier not in ("exists", "forall"):
            raise ValueError(f"bad quantifier {self.quantifier!r}")

    def holds_over(self, outcomes: Iterable[Outcome]) -> bool:
        dicts = [o.as_dict() for o in outcomes]
        if self.quantifier == "exists":
            return any(self.prop.evaluate(d) for d in dicts)
        return all(self.prop.evaluate(d) for d in dicts)

    def witnesses(self, outcomes: Iterable[Outcome]) -> List[Outcome]:
        """The outcomes satisfying the proposition."""
        return [o for o in outcomes if self.prop.evaluate(o.as_dict())]

    def observables(self) -> FrozenSet[str]:
        return self.prop.observables()

    def __str__(self) -> str:
        return f"{self.quantifier} {self.prop}"


# --------------------------------------------------------------------------- #
# litmus base
# --------------------------------------------------------------------------- #
@dataclass
class LitmusBase:
    """Common litmus-test fields, independent of the thread language."""

    name: str
    init: Dict[str, int]
    condition: Condition

    def shared_locations(self) -> Tuple[str, ...]:
        return tuple(sorted(self.init))

    def observed_names(self) -> FrozenSet[str]:
        return self.condition.observables()
