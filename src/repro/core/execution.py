"""Candidate executions and outcomes.

A *candidate execution* (paper def. II.1) packages a set of events with the
base relations the Cat models consume:

* ``po``    — program order (per thread, as written on the page)
* ``rf``    — reads-from (one source write per read)
* ``co``    — coherence (a total order of writes per location)
* ``rmw``   — links the read half of an RMW to its write half
* ``addr`` / ``data`` / ``ctrl`` — syntactic dependencies
* derived: ``fr = rf^-1 ; co``, ``po-loc``, ``int``/``ext``, etc.

An *outcome* (def. II.2) is the observable result of one execution: the
final value of every shared location (the co-maximal write) plus the final
values of observed thread-local registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from .events import Event, MemoryOrder
from .relations import Relation


@dataclass(frozen=True)
class Outcome:
    """The observable result of an execution.

    ``bindings`` maps observable names to integer values.  Shared locations
    use their symbolic name (``"y"``), thread-local observables use the
    litmus convention ``"P1:r0"``.
    """

    bindings: Tuple[Tuple[str, int], ...]

    @staticmethod
    def of(mapping: Mapping[str, int]) -> "Outcome":
        return Outcome(tuple(sorted(mapping.items())))

    def as_dict(self) -> Dict[str, int]:
        return dict(self.bindings)

    def project(self, names: Iterable[str]) -> "Outcome":
        keep = set(names)
        return Outcome(tuple((k, v) for k, v in self.bindings if k in keep))

    def rename(self, mapping: Mapping[str, str]) -> "Outcome":
        return Outcome(
            tuple(sorted((mapping.get(k, k), v) for k, v in self.bindings))
        )

    def __str__(self) -> str:
        inner = " ".join(f"{k}={v};" for k, v in self.bindings)
        return "{ " + inner + " }"


class Execution:
    """One candidate execution of a litmus test.

    The constructor computes the derived relations every model needs; the
    object is immutable afterwards.
    """

    def __init__(
        self,
        events: Iterable[Event],
        po: Relation,
        rf: Relation,
        co: Relation,
        rmw: Relation = Relation.empty(),
        addr: Relation = Relation.empty(),
        data: Relation = Relation.empty(),
        ctrl: Relation = Relation.empty(),
    ) -> None:
        self.events: Tuple[Event, ...] = tuple(sorted(events, key=lambda e: e.eid))
        self.by_id: Dict[int, Event] = {e.eid: e for e in self.events}
        if len(self.by_id) != len(self.events):
            raise ValueError("duplicate event ids in execution")
        self.po = po
        self.rf = rf
        self.co = co
        self.rmw = rmw
        self.addr = addr
        self.data = data
        self.ctrl = ctrl
        # fr: the read reads a write co-before another write => read is
        # "from-read" before the later write.
        self.fr = rf.inverse().compose(co)

    # ------------------------------------------------------------------ #
    # event-set views
    # ------------------------------------------------------------------ #
    def ids(self) -> FrozenSet[int]:
        return frozenset(self.by_id)

    def reads(self) -> FrozenSet[int]:
        return frozenset(e.eid for e in self.events if e.is_read)

    def writes(self) -> FrozenSet[int]:
        return frozenset(e.eid for e in self.events if e.is_write)

    def fences(self) -> FrozenSet[int]:
        return frozenset(e.eid for e in self.events if e.is_fence)

    def accesses(self) -> FrozenSet[int]:
        return frozenset(e.eid for e in self.events if e.is_access)

    def tagged(self, tag: str) -> FrozenSet[int]:
        return frozenset(e.eid for e in self.events if e.has_tag(tag))

    def with_order_at_least(self, *orders: MemoryOrder) -> FrozenSet[int]:
        wanted = set(orders)
        return frozenset(e.eid for e in self.events if e.order in wanted)

    def atomics(self) -> FrozenSet[int]:
        return frozenset(
            e.eid for e in self.events if e.is_access and e.order.is_atomic
        )

    def non_atomics(self) -> FrozenSet[int]:
        return frozenset(
            e.eid
            for e in self.events
            if e.is_access and not e.order.is_atomic and not e.is_init
        )

    def locations(self) -> FrozenSet[str]:
        return frozenset(e.loc for e in self.events if e.loc is not None)

    def threads(self) -> FrozenSet[int]:
        return frozenset(e.tid for e in self.events if not e.is_init)

    # ------------------------------------------------------------------ #
    # derived base relations
    # ------------------------------------------------------------------ #
    def same_location(self) -> Relation:
        """``loc`` — all pairs of accesses to the same location."""
        loc_masks: Dict[str, int] = {}
        for e in self.events:
            if e.is_access and e.loc is not None:
                loc_masks[e.loc] = loc_masks.get(e.loc, 0) | (1 << e.eid)
        rows: Dict[int, int] = {}
        for e in self.events:
            if e.is_access and e.loc is not None:
                row = loc_masks[e.loc] & ~(1 << e.eid)
                if row:
                    rows[e.eid] = row
        return Relation.from_rows(rows)

    def po_loc(self) -> Relation:
        loc = self.same_location()
        return self.po & loc

    def internal(self) -> Relation:
        """``int`` — same-thread pairs (over all events)."""
        tid_masks: Dict[int, int] = {}
        for e in self.events:
            tid_masks[e.tid] = tid_masks.get(e.tid, 0) | (1 << e.eid)
        rows: Dict[int, int] = {}
        for e in self.events:
            if e.is_init:
                continue
            row = tid_masks[e.tid] & ~(1 << e.eid)
            if row:
                rows[e.eid] = row
        return Relation.from_rows(rows)

    def external(self) -> Relation:
        """``ext`` — different-thread pairs (init counts as external)."""
        tid_masks: Dict[int, int] = {}
        all_mask = 0
        for e in self.events:
            tid_masks[e.tid] = tid_masks.get(e.tid, 0) | (1 << e.eid)
            all_mask |= 1 << e.eid
        rows: Dict[int, int] = {}
        for e in self.events:
            row = all_mask & ~tid_masks[e.tid]
            if row:
                rows[e.eid] = row
        return Relation.from_rows(rows)

    def rfe(self) -> Relation:
        return self.rf & self.external()

    def rfi(self) -> Relation:
        return self.rf & self.internal()

    def coe(self) -> Relation:
        return self.co & self.external()

    def coi(self) -> Relation:
        return self.co & self.internal()

    def fre(self) -> Relation:
        return self.fr & self.external()

    def fri(self) -> Relation:
        return self.fr & self.internal()

    def com(self) -> Relation:
        """Communication: ``rf | co | fr``."""
        return self.rf | self.co | self.fr

    # ------------------------------------------------------------------ #
    # outcome extraction
    # ------------------------------------------------------------------ #
    def final_memory(self) -> Dict[str, int]:
        """Final value per location: the co-maximal write."""
        final: Dict[str, int] = {}
        co = self.co
        by_loc: Dict[str, List[Event]] = {}
        loc_masks: Dict[str, int] = {}
        for e in self.events:
            if e.is_write and e.loc is not None:
                by_loc.setdefault(e.loc, []).append(e)
                loc_masks[e.loc] = loc_masks.get(e.loc, 0) | (1 << e.eid)
        for loc, writes in by_loc.items():
            mask = loc_masks[loc]
            maximal = [
                w for w in writes if not (co.successor_mask(w.eid) & mask)
            ]
            if len(maximal) != 1:
                raise ValueError(
                    f"co is not total over writes to {loc!r}: "
                    f"{[w.eid for w in maximal]} all maximal"
                )
            value = maximal[0].value
            final[loc] = 0 if value is None else value
        return final

    # ------------------------------------------------------------------ #
    # well-formedness
    # ------------------------------------------------------------------ #
    def check_well_formed(self) -> None:
        """Raise ValueError on structurally broken executions.

        Checks: rf sources are writes to the same location with the same
        value; every read has exactly one rf source; co totally orders the
        writes of each location and relates only same-location writes.
        """
        sources: Dict[int, int] = {}
        for w, r in self.rf:
            we, re = self.by_id[w], self.by_id[r]
            if not we.is_write or not re.is_read:
                raise ValueError(f"rf pair ({w},{r}) is not write->read")
            if we.loc != re.loc:
                raise ValueError(f"rf pair ({w},{r}) crosses locations")
            if we.value != re.value:
                raise ValueError(
                    f"rf pair ({w},{r}) value mismatch {we.value}!={re.value}"
                )
            if r in sources:
                raise ValueError(f"read {r} has two rf sources")
            sources[r] = w
        for r in self.reads():
            if r not in sources:
                raise ValueError(f"read {r} has no rf source")
        for a, b in self.co:
            ea, eb = self.by_id[a], self.by_id[b]
            if not (ea.is_write and eb.is_write and ea.loc == eb.loc):
                raise ValueError(f"co pair ({a},{b}) is not same-location W->W")
        by_loc: Dict[str, List[int]] = {}
        for e in self.events:
            if e.is_write and e.loc is not None:
                by_loc.setdefault(e.loc, []).append(e.eid)
        for loc, ws in by_loc.items():
            if not self.co.restrict(ws).is_total_over(ws):
                raise ValueError(f"co is not total over writes to {loc!r}")
        if not self.co.is_acyclic():
            raise ValueError("co is cyclic")

    def pretty(self) -> str:
        """Multi-line rendering for diagnostics."""
        lines = [e.pretty() for e in self.events]
        for name, rel in (("po", self.po), ("rf", self.rf), ("co", self.co), ("fr", self.fr)):
            if rel:
                lines.append(f"{name}: " + " ".join(f"{a}->{b}" for a, b in sorted(rel)))
        return "\n".join(lines)
