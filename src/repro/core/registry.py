"""One pluggable registry protocol for every name→thing table in the tree.

Before this module each layer grew its own ad-hoc dict — ``cat.registry``
had ``_SOURCES`` + a hand-rolled ``normalise``, ``asm.isa`` had
``_ISA_REGISTRY``, ``tools.diy`` had ``_SHAPES``, ``compiler.profiles``
had ``_EPOCH_BUGS`` — each with different lookup errors, no alias story,
and process-global mutable state that multi-tenant callers (sessions
registering private models) would trample.  :class:`Registry` is the one
protocol they all speak now:

* **decorator or direct registration** — ``@reg.register("name")`` on a
  factory/class, or ``reg.register("name", value)``;
* **name normalisation** — a per-registry hook (case folding, suffix
  stripping) applied to every name at registration and lookup;
* **aliases** — alternate spellings resolving to a canonical entry
  (``x86-tso`` → ``x86tso``), listed in the entry's metadata;
* **did-you-mean errors** — unknown names raise the registry's own error
  class naming the closest matches;
* **per-session overlays** — ``reg.overlay()`` returns a child registry
  whose registrations shadow the parent without mutating it, so embedders
  can plug in private entries per :class:`repro.api.Session`.
"""

from __future__ import annotations

import difflib
import threading
from typing import (
    Callable,
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
    TypeVar,
)

T = TypeVar("T")


class RegistryError(KeyError):
    """An unknown name was looked up (default error class).

    Subclasses ``KeyError`` so registry lookups still behave like dict
    lookups to exception handlers, but carries a readable message (plain
    ``KeyError`` quotes its args, mangling multi-line suggestions).
    """

    def __str__(self) -> str:  # KeyError repr()s its message otherwise
        return self.args[0] if self.args else ""


def default_normalise(name: str) -> str:
    """Case-insensitive, whitespace-tolerant names."""
    return name.strip().lower()


class Registry(Generic[T]):
    """A named table of ``str → T`` with aliases, overlays and metadata.

    ``kind`` names what is being registered ("model", "shape", …) and
    shapes every error message.  ``error`` is the exception class raised
    for unknown names — layers keep their historical error types
    (``ModelError``, ``IsaError``…) by passing them here.
    """

    def __init__(
        self,
        kind: str,
        *,
        normalise: Callable[[str], str] = default_normalise,
        error: Type[Exception] = RegistryError,
        parent: Optional["Registry[T]"] = None,
    ) -> None:
        self.kind = kind
        self.error = error
        self._normalise = normalise
        self._parent = parent
        self._entries: Dict[str, T] = {}
        self._aliases: Dict[str, str] = {}
        self._meta: Dict[str, Dict[str, object]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        value: Optional[T] = None,
        *,
        aliases: Tuple[str, ...] = (),
        **meta: object,
    ):
        """Register ``value`` under ``name`` (plus ``aliases``).

        With a value, registers immediately and returns the value (so
        ``ISA = reg.register("x86", X86())`` keeps working).  Without one
        it returns a decorator::

            @MODELS.register("rc11", doc="the repaired C11 model")
            def rc11_source() -> str: ...
        """
        if value is None:
            def decorator(obj: T) -> T:
                self.register(name, obj, aliases=aliases, **meta)
                return obj
            return decorator
        key = self._normalise(name)
        with self._lock:
            self._entries[key] = value
            self._meta[key] = dict(meta)
            for alias in aliases:
                self._aliases[self._normalise(alias)] = key
        return value

    def alias(self, alias: str, target: str) -> None:
        """Make ``alias`` resolve to the (already resolvable) ``target``."""
        key = self.resolve(target)
        with self._lock:
            self._aliases[self._normalise(alias)] = key

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def resolve(self, name: str) -> str:
        """The canonical key ``name`` refers to, or raise with suggestions."""
        key = self._try_resolve(name)
        if key is None:
            raise self.error(self._unknown_message(name))
        return key

    def _try_resolve(self, name: str) -> Optional[str]:
        key = self._normalise(name)
        registry: Optional[Registry[T]] = self
        while registry is not None:
            if key in registry._entries:
                return key
            if key in registry._aliases:
                # aliases may point at parent entries and vice versa, so
                # restart resolution from the overlay top
                target = registry._aliases[key]
                return self._try_resolve(target) if target != key else None
            registry = registry._parent
        return None

    def get(self, name: str) -> T:
        key = self.resolve(name)
        registry: Optional[Registry[T]] = self
        while registry is not None:
            if key in registry._entries:
                return registry._entries[key]
            registry = registry._parent
        raise self.error(self._unknown_message(name))  # pragma: no cover

    def __contains__(self, name: str) -> bool:
        return self._try_resolve(name) is not None

    def __getitem__(self, name: str) -> T:
        return self.get(name)

    def __len__(self) -> int:
        return len(self._all_keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def names(self) -> List[str]:
        """All canonical names (parent chain included), sorted."""
        return sorted(self._all_keys())

    def items(self) -> List[Tuple[str, T]]:
        return [(name, self.get(name)) for name in self.names()]

    def is_local(self, name: str) -> bool:
        """Does ``name`` (under full alias resolution — including aliases
        a parent defines) refer to an entry registered on *this*
        registry, not a parent?"""
        key = self._try_resolve(name)
        return key is not None and key in self._entries

    def describe(self, name: str) -> Dict[str, object]:
        """Metadata for one entry: name, sorted aliases, any register() kwargs."""
        key = self.resolve(name)
        meta: Dict[str, object] = {"name": key}
        aliases = set()
        entry_meta: Optional[Dict[str, object]] = None
        registry: Optional[Registry[T]] = self
        while registry is not None:
            if entry_meta is None and key in registry._meta:
                entry_meta = registry._meta[key]
            # overlays can add aliases to parent entries; collect them all
            for alias, target in registry._aliases.items():
                if target == key:
                    aliases.add(alias)
            registry = registry._parent
        if entry_meta:
            meta.update(entry_meta)
        meta["name"] = key
        meta["aliases"] = sorted(aliases)
        return meta

    def metadata(self) -> List[Dict[str, object]]:
        """``describe`` every entry — the ``--json`` inventory listing."""
        return [self.describe(name) for name in self.names()]

    # ------------------------------------------------------------------ #
    # overlays
    # ------------------------------------------------------------------ #
    def overlay(self) -> "Registry[T]":
        """A child registry: local registrations shadow, parent shines through."""
        return Registry(
            self.kind, normalise=self._normalise, error=self.error, parent=self
        )

    # ------------------------------------------------------------------ #
    def _all_keys(self) -> Dict[str, None]:
        keys: Dict[str, None] = {}
        registry: Optional[Registry[T]] = self
        while registry is not None:
            for key in registry._entries:
                keys.setdefault(key)
            registry = registry._parent
        return keys

    def _candidate_names(self) -> List[str]:
        names = list(self._all_keys())
        registry: Optional[Registry[T]] = self
        while registry is not None:
            names.extend(registry._aliases)
            registry = registry._parent
        return names

    def _unknown_message(self, name: str) -> str:
        known = self.names()
        close = difflib.get_close_matches(
            self._normalise(name), self._candidate_names(), n=3, cutoff=0.6
        )
        message = f"unknown {self.kind} {name!r}"
        if close:
            message += f" — did you mean {', '.join(sorted(set(close)))}?"
        message += f"; available: {', '.join(known)}"
        return message
