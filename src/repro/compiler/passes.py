"""Optimisation passes over the IR.

The passes implement exactly the transformations the paper's bug studies
hinge on:

* **dead-local elimination** (§IV-B, Fig. 9): locals never used again are
  deleted.  A *plain* load with a dead destination disappears entirely; an
  atomic RMW keeps its memory effect but loses its destination
  (``dst=None``), which is what lets the back-end select the ST-form /
  zero-destination encodings of Fig. 10 and Fig. 1.
* **identical-branch merging** (§IV-D, the gcc ``-O1`` Armv7 quirk):
  ``if (c) *y=v; else *y=v;`` → ``*y=v``, deleting a control dependency.
* **if-conversion to select** (``-O2`` and above): a store diamond becomes
  a branch-free arithmetic select, which *introduces a data dependency* —
  masking the reordering the merged branch exposed (the paper's
  explanation of the 3480 vs 2352 positive-difference gap).
* constant folding, copy propagation and branch folding — the scaffolding
  that makes the above fire on diy-generated tests.

Passes are pure functions ``body -> body``; :func:`pipeline_for` assembles
the per-profile pass list.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.events import MemoryOrder
from . import bugs
from .ir import IRFunction, IRInstr, IROp, Operand
from .profiles import CompilerProfile

Pass = Callable[[List[IRInstr]], List[IRInstr]]

_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
}


# --------------------------------------------------------------------------- #
# scaffolding passes
# --------------------------------------------------------------------------- #
def const_fold(body: List[IRInstr]) -> List[IRInstr]:
    """Block-local constant propagation and folding."""
    out: List[IRInstr] = []
    consts: Dict[str, int] = {}

    def resolve(operand: Optional[Operand]) -> Optional[Operand]:
        if isinstance(operand, str) and operand in consts:
            return consts[operand]
        return operand

    for instr in body:
        if instr.op in (IROp.LABEL, IROp.BR, IROp.CBR):
            if instr.op is IROp.CBR:
                instr = replace(instr, a=resolve(instr.a), b=resolve(instr.b))
            # control flow joins invalidate block-local knowledge
            out.append(instr)
            consts.clear()
            continue
        instr = replace(instr, a=resolve(instr.a), b=resolve(instr.b))
        if instr.op is IROp.CONST and instr.dst is not None:
            consts[instr.dst] = int(instr.a)  # type: ignore[arg-type]
        elif (
            instr.op is IROp.BIN
            and isinstance(instr.a, int)
            and isinstance(instr.b, int)
            and instr.bin_op in _FOLDABLE
            and instr.dst is not None
        ):
            value = _FOLDABLE[instr.bin_op](instr.a, instr.b)
            consts[instr.dst] = value
            out.append(IRInstr(op=IROp.CONST, dst=instr.dst, a=value))
            continue
        elif instr.dst is not None:
            consts.pop(instr.dst, None)
        out.append(instr)
    return out


def copy_prop(body: List[IRInstr]) -> List[IRInstr]:
    """Forward copies ``x := y + 0`` block-locally."""
    out: List[IRInstr] = []
    copies: Dict[str, str] = {}

    def resolve(operand: Optional[Operand]) -> Optional[Operand]:
        if isinstance(operand, str):
            return copies.get(operand, operand)
        return operand

    for instr in body:
        if instr.op in (IROp.LABEL, IROp.BR):
            out.append(instr)
            copies.clear()
            continue
        instr = replace(instr, a=resolve(instr.a), b=resolve(instr.b))
        if instr.dst is not None:
            # defining x kills copies of x and copies *through* x
            copies.pop(instr.dst, None)
            copies = {k: v for k, v in copies.items() if v != instr.dst}
        if (
            instr.op is IROp.BIN
            and instr.bin_op == "+"
            and instr.b == 0
            and isinstance(instr.a, str)
            and instr.dst is not None
        ):
            copies[instr.dst] = instr.a
        out.append(instr)
    return out


def branch_fold(body: List[IRInstr]) -> List[IRInstr]:
    """Resolve constant conditional branches; drop unreachable tails."""
    out: List[IRInstr] = []
    for instr in body:
        if instr.op is IROp.CBR and isinstance(instr.a, int) and isinstance(instr.b, int):
            taken = _FOLDABLE[_COND_TO_OP[instr.cond]](instr.a, instr.b)
            if taken:
                out.append(IRInstr(op=IROp.BR, label=instr.label))
            continue
        out.append(instr)
    # remove code between an unconditional BR/RET and the next label
    pruned: List[IRInstr] = []
    dead = False
    for instr in out:
        if instr.op is IROp.LABEL:
            dead = False
        if not dead:
            pruned.append(instr)
        if instr.op in (IROp.BR, IROp.RET):
            dead = True
    return pruned


_COND_TO_OP = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}


# --------------------------------------------------------------------------- #
# the paper's passes
# --------------------------------------------------------------------------- #
def dead_local_elim(observed: Tuple[str, ...] = ()) -> Pass:
    """Delete definitions of locals that are never used (paper §IV-B).

    The compiler cannot see the litmus final-state condition — a local is
    dead if the *program* never uses it, which is precisely why unmodified
    tests lose their observables (Fig. 9) and why l2c's augmentation
    (storing locals to ``out_*`` globals *inside the program*) restores
    them.  ``observed`` exists for callers that want to model a harness
    that takes locals' addresses; the production pipelines pass nothing.
    """

    def run(body: List[IRInstr]) -> List[IRInstr]:
        changed = True
        current = list(body)
        while changed:
            changed = False
            used: Set[str] = set(observed)
            for instr in current:
                used |= instr.uses()
            out: List[IRInstr] = []
            for instr in current:
                dst = instr.dst
                if dst is not None and dst not in used:
                    if instr.op in (IROp.CONST, IROp.BIN):
                        changed = True
                        continue  # pure computation: delete outright
                    if instr.op is IROp.LOAD and instr.order is MemoryOrder.NA:
                        # Fig. 9: an unused plain load disappears
                        changed = True
                        continue
                    if instr.op is IROp.RMW:
                        # keep the memory effect, drop the result — the
                        # Fig. 10 / Fig. 1 precondition
                        instr = replace(instr, dst=None)
                        changed = True
                    if instr.op is IROp.LOAD and instr.order.is_atomic:
                        # conservatively keep unused atomic loads (as
                        # production compilers do)
                        pass
                out.append(instr)
            current = out
        return current

    return run


def merge_identical_branches(body: List[IRInstr]) -> List[IRInstr]:
    """``if (c) S; else S;`` → ``S`` — drops the control dependency.

    Models the GCC ``-O1`` Armv7 behaviour of §IV-D.  Only fires on the
    diamond shape produced by our lowerer, with structurally identical
    single-store arms.
    """
    out: List[IRInstr] = []
    i = 0
    while i < len(body):
        instr = body[i]
        match = _match_store_diamond(body, i)
        if match is not None:
            then_store, else_store, end = match
            if then_store == else_store:
                out.append(then_store)
                i = end
                continue
        out.append(instr)
        i += 1
    return out


def if_convert_select(body: List[IRInstr]) -> List[IRInstr]:
    """Store diamond → branch-free select (``-O2`` and above).

    ``if (c) *y=a; else *y=b;`` becomes ``*y = c̄·b + c·a`` where ``c̄``/``c``
    are the 0/1 branch condition — replacing the control dependency with a
    *data* dependency, which masks the §IV-D reordering at ``-O2+``.
    """
    out: List[IRInstr] = []
    temp_counter = [0]

    def fresh() -> str:
        temp_counter[0] += 1
        return f"%sel{temp_counter[0]}"

    i = 0
    while i < len(body):
        match = _match_store_diamond(body, i)
        if match is not None:
            then_store, else_store, end = match
            cbr = body[i]
            if (
                then_store.loc == else_store.loc
                and then_store.order == else_store.order
            ):
                # cbr jumps to the ELSE arm when (a cond b) holds, so the
                # fall-through (then) arm runs when the condition FAILS
                cond = fresh()
                out.append(
                    IRInstr(op=IROp.BIN, dst=cond, a=cbr.a, b=cbr.b,
                            bin_op=_COND_TO_OP[cbr.cond])
                )
                take_else = fresh()
                take_then = fresh()
                out.append(IRInstr(op=IROp.BIN, dst=take_else, a=cond,
                                   b=else_store.a, bin_op="*"))
                inv = fresh()
                out.append(IRInstr(op=IROp.BIN, dst=inv, a=1, b=cond, bin_op="-"))
                out.append(IRInstr(op=IROp.BIN, dst=take_then, a=inv,
                                   b=then_store.a, bin_op="*"))
                value = fresh()
                out.append(IRInstr(op=IROp.BIN, dst=value, a=take_else,
                                   b=take_then, bin_op="+"))
                out.append(replace(then_store, a=value))
                i = match[2]
                continue
        out.append(body[i])
        i += 1
    return out


def _match_store_diamond(
    body: List[IRInstr], i: int
) -> Optional[Tuple[IRInstr, IRInstr, int]]:
    """Match the lowerer's diamond at index ``i``.

    Shape::

        CBR a cond b -> Lelse
        STORE loc := v1
        BR Lend
        LABEL Lelse
        STORE loc := v2
        LABEL Lend

    Returns ``(then_store, else_store, index_after_diamond)``.
    """
    try:
        cbr, s1, br, lelse, s2, lend = body[i : i + 6]
    except ValueError:
        return None
    if cbr.op is not IROp.CBR or s1.op is not IROp.STORE:
        return None
    if br.op is not IROp.BR or lelse.op is not IROp.LABEL:
        return None
    if s2.op is not IROp.STORE or lend.op is not IROp.LABEL:
        return None
    if cbr.label != lelse.label or br.label != lend.label:
        return None
    if s1.loc != s2.loc:
        return None
    return s1, s2, i + 6


# --------------------------------------------------------------------------- #
# pipelines
# --------------------------------------------------------------------------- #
def pipeline_for(profile: CompilerProfile, fn: IRFunction) -> List[Pass]:
    """The pass list a given profile runs on one function."""
    if profile.opt == "-O0":
        return []
    passes: List[Pass] = [const_fold, copy_prop, branch_fold]
    if profile.opt == "-Og":
        return passes
    passes.append(dead_local_elim())
    if (
        profile.opt_rank == 1
        and profile.compiler == "gcc"
        and profile.arch == "armv7"
        and profile.has_bug(bugs.ARMV7_O1_CTRL_DROP)
    ):
        passes.append(merge_identical_branches)
    if profile.opt_rank >= 2:
        passes.append(if_convert_select)
        passes.append(const_fold)
        passes.append(copy_prop)
        passes.append(dead_local_elim())
    return passes


def optimise(fn: IRFunction, profile: CompilerProfile) -> IRFunction:
    """Run the profile's pipeline over one function."""
    body = list(fn.body)
    for p in pipeline_for(profile, fn):
        body = p(body)
    return IRFunction(
        name=fn.name,
        params=fn.params,
        body=body,
        atomic_params=fn.atomic_params,
        observed_locals=fn.observed_locals,
    )
