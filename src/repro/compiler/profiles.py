"""Compiler profiles: tool-chain × flags × architecture (paper §IV-D).

A *profile* captures everything T´el´echat needs to know about one
compiler-under-test configuration: which compiler and version, the
optimisation level, the target architecture (and its model), the
architecture extensions in play (LSE atomics, RCpc LDAPR, v8.4 128-bit
single-copy-atomic pairs), and which historical bugs the version carries.

Profile names follow the paper's artefact convention, e.g.
``llvm-O3-AArch64`` — resolved against a compiler *epoch* (``llvm-11`` is
the buggy past version, ``llvm-16`` the current one).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Optional

from ..core.errors import CompilationError
from ..core.registry import Registry
from . import bugs

#: Optimisation levels, per compiler (paper Table III; clang has no -Og).
LLVM_OPT_LEVELS = ("-O0", "-O1", "-O2", "-O3", "-Ofast")
GCC_OPT_LEVELS = ("-O0", "-O1", "-O2", "-O3", "-Ofast", "-Og")

#: Architectures under test (paper Table III) and their litmus arch names.
ARCHES = ("aarch64", "armv7", "x86_64", "riscv64", "ppc64", "mips64")

_ARCH_ALIASES = {
    "aarch64": "AArch64",
    "armv7": "ARM",
    "x86_64": "x86-64",
    "riscv64": "RISC-V",
    "ppc64": "PPC",
    "mips64": "MIPS",
}


@dataclass(frozen=True)
class CompilerProfile:
    """One compiler-under-test configuration."""

    compiler: str              # "llvm" | "gcc"
    version: int               # e.g. 11, 16 (llvm); 9, 12 (gcc)
    opt: str                   # "-O0" … "-Ofast", "-Og"
    arch: str                  # litmus arch name ("aarch64", …)
    #: Armv8.1 Large Systems Extension: LSE atomics (LDADD/SWP…).
    lse: bool = False
    #: Armv8.3 RCpc: acquire loads compile to LDAPR instead of LDAR.
    rcpc: bool = False
    #: Armv8.4 LSE2: 16-byte aligned LDP/STP are single-copy atomic.
    v84: bool = False
    #: position-independent code: shared-location addresses load from the
    #: GOT (one extra read event per access before s2l optimisation).
    pic: bool = True
    #: historical bug flags carried by this compiler version (see bugs.py).
    bug_flags: FrozenSet[str] = frozenset()

    @property
    def name(self) -> str:
        level = self.opt.lstrip("-")
        return f"{self.compiler}-{level}-{_ARCH_ALIASES.get(self.arch, self.arch)}"

    @property
    def opt_rank(self) -> int:
        """Numeric optimisation strength: -O0/-Og < -O1 < -O2 <= -O3/-Ofast."""
        return {"-O0": 0, "-Og": 0, "-O1": 1, "-O2": 2, "-O3": 3, "-Ofast": 3}[self.opt]

    def has_bug(self, flag: str) -> bool:
        return flag in self.bug_flags

    def with_bugs(self, *flags: str) -> "CompilerProfile":
        return replace(self, bug_flags=self.bug_flags | frozenset(flags))

    def without_bugs(self, *flags: str) -> "CompilerProfile":
        return replace(self, bug_flags=self.bug_flags - frozenset(flags))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.compiler}-{self.version} {self.opt} → {self.arch}"


#: Bug sets per compiler epoch (paper §IV-B/C; see bugs.py for details),
#: keyed ``"<compiler>-<version>"`` on the shared registry protocol so
#: sessions can register private epochs (e.g. a patched compiler under
#: validation) without touching the global table.
EPOCHS: Registry[FrozenSet[str]] = Registry("compiler epoch", error=CompilationError)
# the "past versions of LLVM and GCC" of Fig. 10
EPOCHS.register("llvm-11", frozenset({
    bugs.RMW_ST_FORM,
    bugs.XCHG_DROP_READ,
    bugs.ATOMIC_128_VIA_LOOP,
}), doc="the paper's past LLVM (Fig. 10 bugs present)")
EPOCHS.register("gcc-9", frozenset({
    bugs.RMW_ST_FORM,
    bugs.ATOMIC_128_VIA_LOOP,
    bugs.ARMV7_O1_CTRL_DROP,
}), doc="the paper's past GCC (Fig. 10 bugs present)")
# current versions: Fig. 10 bugs fixed; the 2023 reports [37][38][39]
# were found by the paper against these
EPOCHS.register("llvm-16", frozenset({
    bugs.XCHG_DROP_READ,
    bugs.LDP_SEQCST_UNORDERED,
    bugs.STP_WRONG_ENDIAN,
}), doc="current LLVM (2023 report bugs present)")
EPOCHS.register("gcc-12", frozenset({
    bugs.ARMV7_O1_CTRL_DROP,
}), doc="current GCC")
# hypothetical fully fixed versions (for the "validate the fix" flows)
EPOCHS.register("llvm-17", frozenset(), doc="fully fixed LLVM")
EPOCHS.register("gcc-13", frozenset(), doc="fully fixed GCC")

#: Default (current) version per compiler.
DEFAULT_VERSION = {"llvm": 16, "gcc": 12}


def make_profile(
    compiler: str,
    opt: str,
    arch: str,
    version: Optional[int] = None,
    lse: Optional[bool] = None,
    rcpc: bool = False,
    v84: bool = False,
    pic: bool = True,
    epochs: Optional[Registry] = None,
) -> CompilerProfile:
    """Build a profile, validating paper Table III's combinations.

    ``epochs`` selects the compiler-epoch registry to resolve
    ``(compiler, version)`` against — sessions pass their overlay here so
    privately registered epochs work without touching the global table.
    """
    if compiler not in ("llvm", "gcc"):
        raise CompilationError(f"unknown compiler {compiler!r}")
    levels = LLVM_OPT_LEVELS if compiler == "llvm" else GCC_OPT_LEVELS
    if opt not in levels:
        raise CompilationError(
            f"{compiler} does not support {opt} (paper Tab. IV: clang has no -Og)"
        )
    if arch not in ARCHES:
        raise CompilationError(f"unknown architecture {arch!r}")
    if version is None:
        version = DEFAULT_VERSION[compiler]
    epoch_bugs = (epochs if epochs is not None else EPOCHS).get(
        f"{compiler}-{version}"
    )
    if lse is None:
        lse = arch == "aarch64"  # default to Armv8.1-a for AArch64
    return CompilerProfile(
        compiler=compiler,
        version=version,
        opt=opt,
        arch=arch,
        lse=lse and arch == "aarch64",
        rcpc=rcpc and arch == "aarch64",
        v84=v84 and arch == "aarch64",
        pic=pic,
        bug_flags=epoch_bugs,
    )


#: profile-name architecture aliases, reversed (``AArch64`` → ``aarch64``).
_ALIAS_ARCH = {alias.lower(): arch for arch, alias in _ARCH_ALIASES.items()}


def parse_profile(name: str, epochs: Optional[Registry] = None) -> CompilerProfile:
    """Parse an artefact-style profile name (``llvm-O3-AArch64``) back
    into a profile, so CLI and API callers can address profiles by the
    string the paper uses.  A trailing ``-<version>`` component selects
    a non-default epoch (``gcc-Og-ARM-9``).

    Caveat: :attr:`CompilerProfile.name` follows the artefact convention
    and does **not** encode the version, so this is only the inverse of
    ``.name`` for default-epoch profiles — re-parsing the ``.name`` of a
    ``version=`` profile resolves the *default* epoch.  Serialise the
    version separately (as the campaign store's records do via the
    ``version``-free profile name plus the session's epoch overlay)."""
    parts = name.strip().split("-")
    if len(parts) < 3:
        raise CompilationError(
            f"bad profile name {name!r}; expected <compiler>-<opt>-<arch>"
            f"[-<version>], e.g. llvm-O3-AArch64"
        )
    compiler, level = parts[0].lower(), parts[1]
    rest = parts[2:]
    version: Optional[int] = None
    # a trailing integer is an epoch version — unless it belongs to a
    # hyphenated arch alias ("x86-64", "RISC-V" has none)
    if len(rest) > 1 and rest[-1].isdigit() and "-".join(rest).lower() not in _ALIAS_ARCH:
        version = int(rest[-1])
        rest = rest[:-1]
    arch_alias = "-".join(rest)
    arch = _ALIAS_ARCH.get(arch_alias.lower(), arch_alias.lower())
    return make_profile(compiler, f"-{level}", arch, version=version,
                        epochs=epochs)


def default_profiles(arch: str, opts: Optional[List[str]] = None) -> List[CompilerProfile]:
    """The per-architecture profile set of the paper's campaign (Tab. III):
    LLVM and GCC at every supported optimisation level."""
    out = []
    for compiler in ("llvm", "gcc"):
        levels = LLVM_OPT_LEVELS if compiler == "llvm" else GCC_OPT_LEVELS
        for opt in levels:
            if opt == "-O0":
                continue  # the campaign tests -O1 and above (Tab. IV)
            if opts and opt not in opts:
                continue
            out.append(make_profile(compiler, opt, arch))
    return out
