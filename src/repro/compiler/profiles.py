"""Compiler profiles: tool-chain × flags × architecture (paper §IV-D).

A *profile* captures everything T´el´echat needs to know about one
compiler-under-test configuration: which compiler and version, the
optimisation level, the target architecture (and its model), the
architecture extensions in play (LSE atomics, RCpc LDAPR, v8.4 128-bit
single-copy-atomic pairs), and which historical bugs the version carries.

Profile names follow the paper's artefact convention, e.g.
``llvm-O3-AArch64`` — resolved against a compiler *epoch* (``llvm-11`` is
the buggy past version, ``llvm-16`` the current one).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.errors import CompilationError
from . import bugs

#: Optimisation levels, per compiler (paper Table III; clang has no -Og).
LLVM_OPT_LEVELS = ("-O0", "-O1", "-O2", "-O3", "-Ofast")
GCC_OPT_LEVELS = ("-O0", "-O1", "-O2", "-O3", "-Ofast", "-Og")

#: Architectures under test (paper Table III) and their litmus arch names.
ARCHES = ("aarch64", "armv7", "x86_64", "riscv64", "ppc64", "mips64")

_ARCH_ALIASES = {
    "aarch64": "AArch64",
    "armv7": "ARM",
    "x86_64": "x86-64",
    "riscv64": "RISC-V",
    "ppc64": "PPC",
    "mips64": "MIPS",
}


@dataclass(frozen=True)
class CompilerProfile:
    """One compiler-under-test configuration."""

    compiler: str              # "llvm" | "gcc"
    version: int               # e.g. 11, 16 (llvm); 9, 12 (gcc)
    opt: str                   # "-O0" … "-Ofast", "-Og"
    arch: str                  # litmus arch name ("aarch64", …)
    #: Armv8.1 Large Systems Extension: LSE atomics (LDADD/SWP…).
    lse: bool = False
    #: Armv8.3 RCpc: acquire loads compile to LDAPR instead of LDAR.
    rcpc: bool = False
    #: Armv8.4 LSE2: 16-byte aligned LDP/STP are single-copy atomic.
    v84: bool = False
    #: position-independent code: shared-location addresses load from the
    #: GOT (one extra read event per access before s2l optimisation).
    pic: bool = True
    #: historical bug flags carried by this compiler version (see bugs.py).
    bug_flags: FrozenSet[str] = frozenset()

    @property
    def name(self) -> str:
        level = self.opt.lstrip("-")
        return f"{self.compiler}-{level}-{_ARCH_ALIASES.get(self.arch, self.arch)}"

    @property
    def opt_rank(self) -> int:
        """Numeric optimisation strength: -O0/-Og < -O1 < -O2 <= -O3/-Ofast."""
        return {"-O0": 0, "-Og": 0, "-O1": 1, "-O2": 2, "-O3": 3, "-Ofast": 3}[self.opt]

    def has_bug(self, flag: str) -> bool:
        return flag in self.bug_flags

    def with_bugs(self, *flags: str) -> "CompilerProfile":
        return replace(self, bug_flags=self.bug_flags | frozenset(flags))

    def without_bugs(self, *flags: str) -> "CompilerProfile":
        return replace(self, bug_flags=self.bug_flags - frozenset(flags))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.compiler}-{self.version} {self.opt} → {self.arch}"


#: Bug sets per compiler epoch (paper §IV-B/C; see bugs.py for details).
_EPOCH_BUGS: Dict[Tuple[str, int], FrozenSet[str]] = {
    # the "past versions of LLVM and GCC" of Fig. 10
    ("llvm", 11): frozenset({
        bugs.RMW_ST_FORM,
        bugs.XCHG_DROP_READ,
        bugs.ATOMIC_128_VIA_LOOP,
    }),
    ("gcc", 9): frozenset({
        bugs.RMW_ST_FORM,
        bugs.ATOMIC_128_VIA_LOOP,
        bugs.ARMV7_O1_CTRL_DROP,
    }),
    # current versions: Fig. 10 bugs fixed; the 2023 reports [37][38][39]
    # were found by the paper against these
    ("llvm", 16): frozenset({
        bugs.XCHG_DROP_READ,
        bugs.LDP_SEQCST_UNORDERED,
        bugs.STP_WRONG_ENDIAN,
    }),
    ("gcc", 12): frozenset({
        bugs.ARMV7_O1_CTRL_DROP,
    }),
    # hypothetical fully fixed versions (for the "validate the fix" flows)
    ("llvm", 17): frozenset(),
    ("gcc", 13): frozenset(),
}

#: Default (current) version per compiler.
DEFAULT_VERSION = {"llvm": 16, "gcc": 12}


def make_profile(
    compiler: str,
    opt: str,
    arch: str,
    version: Optional[int] = None,
    lse: Optional[bool] = None,
    rcpc: bool = False,
    v84: bool = False,
    pic: bool = True,
) -> CompilerProfile:
    """Build a profile, validating paper Table III's combinations."""
    if compiler not in ("llvm", "gcc"):
        raise CompilationError(f"unknown compiler {compiler!r}")
    levels = LLVM_OPT_LEVELS if compiler == "llvm" else GCC_OPT_LEVELS
    if opt not in levels:
        raise CompilationError(
            f"{compiler} does not support {opt} (paper Tab. IV: clang has no -Og)"
        )
    if arch not in ARCHES:
        raise CompilationError(f"unknown architecture {arch!r}")
    if version is None:
        version = DEFAULT_VERSION[compiler]
    key = (compiler, version)
    if key not in _EPOCH_BUGS:
        raise CompilationError(
            f"unknown compiler epoch {compiler}-{version}; known: "
            f"{sorted(_EPOCH_BUGS)}"
        )
    if lse is None:
        lse = arch == "aarch64"  # default to Armv8.1-a for AArch64
    return CompilerProfile(
        compiler=compiler,
        version=version,
        opt=opt,
        arch=arch,
        lse=lse and arch == "aarch64",
        rcpc=rcpc and arch == "aarch64",
        v84=v84 and arch == "aarch64",
        pic=pic,
        bug_flags=_EPOCH_BUGS[key],
    )


def default_profiles(arch: str, opts: Optional[List[str]] = None) -> List[CompilerProfile]:
    """The per-architecture profile set of the paper's campaign (Tab. III):
    LLVM and GCC at every supported optimisation level."""
    out = []
    for compiler in ("llvm", "gcc"):
        levels = LLVM_OPT_LEVELS if compiler == "llvm" else GCC_OPT_LEVELS
        for opt in levels:
            if opt == "-O0":
                continue  # the campaign tests -O1 and above (Tab. IV)
            if opts and opt not in opts:
                continue
            out.append(make_profile(compiler, opt, arch))
    return out
