"""The relocatable object file model (paper §III-D).

Real T´el´echat compiles with ``-c -g`` and reads the ELF: sections lay
locations out at numeric addresses, the symbol table names their extents,
relocations mark address-materialisation sites, and DWARF maps source
variables to machine locations.  This module models exactly that
*information content* — everything ``s2l`` needs to bridge the numeric
address view of compiled code back to the symbolic view of litmus tests.

Layout convention (documented so tests can assert on it):

* ``.data``   base ``0x11000`` — mutable shared locations,
* ``.rodata`` base ``0x12000`` — ``const`` locations,
* ``.got``    base ``0x13000`` — one 8-byte slot per PIC-addressed symbol,
* per-thread stacks at ``0x7f0000 + tid * 0x1000``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asm.isa.base import Instruction, Op
from .codegen import CompiledUnit

DATA_BASE = 0x11000
RODATA_BASE = 0x12000
GOT_BASE = 0x13000
STACK_BASE = 0x7F0000
STACK_STRIDE = 0x1000


@dataclass(frozen=True)
class Symbol:
    """A symbol-table entry: name, section, address and size in bytes."""

    name: str
    section: str
    address: int
    size: int

    def covers(self, address: int) -> bool:
        return self.address <= address < self.address + self.size


@dataclass(frozen=True)
class Relocation:
    """A relocation record: *this instruction materialises that symbol*.

    ``kind`` is ``"GOT"`` for GOT-slot references (PIC) and ``"ABS"`` for
    direct address materialisation.
    """

    thread: str
    instr_index: int
    symbol: str
    kind: str


@dataclass
class DebugInfo:
    """The DWARF-like metadata c2s preserves.

    ``var_registers[thread][local]`` names the machine register holding a
    source local at function exit; missing entries mean the compiler
    deleted the local (§IV-B).  ``stack_symbols`` names each thread's
    spill region.
    """

    var_registers: Dict[str, Dict[str, str]] = field(default_factory=dict)
    stack_symbols: Dict[str, str] = field(default_factory=dict)


@dataclass
class ObjectFile:
    """A compiled, relocatable translation unit."""

    name: str
    arch: str
    profile_name: str
    text: Dict[str, List[Instruction]]
    symbols: List[Symbol]
    relocations: List[Relocation]
    got_entries: Dict[str, str]            # got slot symbol -> target symbol
    debug: DebugInfo
    init: Dict[str, int]
    widths: Dict[str, int]
    const_locations: Tuple[str, ...] = ()
    stack_sizes: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def symbol(self, name: str) -> Symbol:
        for sym in self.symbols:
            if sym.name == name:
                return sym
        raise KeyError(name)

    def address_of(self, name: str) -> int:
        return self.symbol(name).address

    def symbol_at(self, address: int) -> Optional[Symbol]:
        """Symbol-table lookup by address — how s2l resolves the numeric
        operands the disassembler prints."""
        for sym in self.symbols:
            if sym.covers(address):
                return sym
        return None

    def layout(self) -> Dict[str, int]:
        return {sym.name: sym.address for sym in self.symbols}


def link_layout(unit: CompiledUnit) -> ObjectFile:
    """Assign section addresses and build the object-file metadata."""
    symbols: List[Symbol] = []
    # .data / .rodata: the shared locations
    data_cursor, rodata_cursor = DATA_BASE, RODATA_BASE
    for loc in sorted(unit.init):
        size = max(unit.widths.get(loc, 32) // 8, 4)
        aligned = max(size, 16) if size > 8 else 8
        if loc in unit.const_locations:
            symbols.append(Symbol(loc, ".rodata", rodata_cursor, size))
            rodata_cursor += aligned
        else:
            symbols.append(Symbol(loc, ".data", data_cursor, size))
            data_cursor += aligned
    # .got
    got_entries: Dict[str, str] = {}
    got_cursor = GOT_BASE
    for thread in unit.threads:
        for slot in thread.got_slots:
            if slot not in got_entries:
                got_entries[slot] = slot[len("got_"):]
                symbols.append(Symbol(slot, ".got", got_cursor, 8))
                got_cursor += 8
    # stacks
    stack_sizes: Dict[str, int] = {}
    debug = DebugInfo()
    for index, thread in enumerate(unit.threads):
        if thread.stack_size:
            name = f"stack_{thread.name}"
            symbols.append(
                Symbol(name, ".stack", STACK_BASE + index * STACK_STRIDE,
                       thread.stack_size)
            )
            debug.stack_symbols[thread.name] = name
            stack_sizes[thread.name] = thread.stack_size
        debug.var_registers[thread.name] = dict(thread.reg_of_observed)

    # relocations: every MOVADDR site references a symbol
    relocations: List[Relocation] = []
    text: Dict[str, List[Instruction]] = {}
    for thread in unit.threads:
        text[thread.name] = list(thread.instructions)
        for index, instr in enumerate(thread.instructions):
            if instr.op is Op.MOVADDR and instr.symbol:
                kind = "GOT" if instr.symbol.startswith("got_") else "ABS"
                relocations.append(
                    Relocation(thread.name, index, instr.symbol, kind)
                )

    return ObjectFile(
        name=unit.name,
        arch=unit.arch,
        profile_name=unit.profile.name,
        text=text,
        symbols=symbols,
        relocations=relocations,
        got_entries=got_entries,
        debug=debug,
        init=dict(unit.init),
        widths=dict(unit.widths),
        const_locations=unit.const_locations,
        stack_sizes=stack_sizes,
    )
