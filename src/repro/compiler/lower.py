"""Lowering: C litmus AST → IR.

A structural translation — no optimisation happens here.  Control flow
becomes labels and conditional branches; expressions flatten to
three-address form with fresh temporaries.
"""

from __future__ import annotations

from typing import List

from ..core.errors import CompilationError
from ..core.events import MemoryOrder
from ..lang.ast import (
    Assign,
    AtomicLoad,
    AtomicRMW,
    AtomicStore,
    BinExpr,
    CExpr,
    CLitmus,
    CStmt,
    CThread,
    Decl,
    ExprStmt,
    Fence,
    If,
    IntLit,
    PlainLoad,
    PlainStore,
    UnExpr,
    Var,
    While,
)
from .ir import IRFunction, IRInstr, IROp, IRProgram, Operand


class _FunctionLowerer:
    """Lowers one thread body."""

    def __init__(self, thread: CThread, litmus: CLitmus) -> None:
        self.thread = thread
        self.litmus = litmus
        self.body: List[IRInstr] = []
        self.next_temp = 0
        self.next_label = 0

    def fresh_temp(self) -> str:
        name = f"%t{self.next_temp}"
        self.next_temp += 1
        return name

    def fresh_label(self, hint: str) -> str:
        name = f".L{self.thread.name}_{hint}{self.next_label}"
        self.next_label += 1
        return name

    # ------------------------------------------------------------------ #
    def run(self) -> IRFunction:
        for stmt in self.thread.body:
            self.lower_stmt(stmt)
        self.body.append(IRInstr(op=IROp.RET))
        observed = tuple(
            self.litmus.locals_read_in_condition().get(self.thread.name, ())
        )
        return IRFunction(
            name=self.thread.name,
            params=self.thread.params,
            body=self.body,
            atomic_params=self.thread.atomic_params,
            observed_locals=observed,
        )

    # ------------------------------------------------------------------ #
    def lower_stmt(self, stmt: CStmt) -> None:
        if isinstance(stmt, (Decl, Assign)):
            value = self.lower_expr(stmt.expr)
            self.emit_assign(stmt.var, value)
        elif isinstance(stmt, PlainStore):
            value = self.lower_expr(stmt.expr)
            self.body.append(
                IRInstr(op=IROp.STORE, loc=stmt.loc, a=value,
                        order=MemoryOrder.NA, width=self.litmus.width_of(stmt.loc))
            )
        elif isinstance(stmt, AtomicStore):
            value = self.lower_expr(stmt.expr)
            self.body.append(
                IRInstr(op=IROp.STORE, loc=stmt.loc, a=value, order=stmt.order,
                        width=self.litmus.width_of(stmt.loc))
            )
        elif isinstance(stmt, Fence):
            if stmt.order is not MemoryOrder.NA and stmt.order is not MemoryOrder.RLX:
                self.body.append(IRInstr(op=IROp.FENCE, order=stmt.order))
            # a relaxed fence compiles to nothing (paper Fig. 7): it only
            # constrains compiler reorderings that our IR never performs
            # across atomics anyway
        elif isinstance(stmt, ExprStmt):
            self.lower_expr(stmt.expr, result_used=False)
        elif isinstance(stmt, If):
            self.lower_if(stmt)
        elif isinstance(stmt, While):
            self.lower_while(stmt)
        else:
            raise CompilationError(f"cannot lower statement {stmt!r}")

    def emit_assign(self, var: str, value: Operand) -> None:
        if isinstance(value, int):
            self.body.append(IRInstr(op=IROp.CONST, dst=var, a=value))
        elif value != var:
            # register copy: dst := value + 0 folds away in the back-end
            self.body.append(IRInstr(op=IROp.BIN, dst=var, a=value, b=0, bin_op="+"))

    def lower_if(self, stmt: If) -> None:
        cond = self.lower_expr(stmt.cond)
        else_label = self.fresh_label("else")
        end_label = self.fresh_label("end")
        self.body.append(
            IRInstr(op=IROp.CBR, a=cond, b=0, cond="eq",
                    label=else_label if stmt.else_body else end_label)
        )
        for inner in stmt.then_body:
            self.lower_stmt(inner)
        if stmt.else_body:
            self.body.append(IRInstr(op=IROp.BR, label=end_label))
            self.body.append(IRInstr(op=IROp.LABEL, label=else_label))
            for inner in stmt.else_body:
                self.lower_stmt(inner)
        self.body.append(IRInstr(op=IROp.LABEL, label=end_label))

    def lower_while(self, stmt: While) -> None:
        head = self.fresh_label("loop")
        end = self.fresh_label("endloop")
        self.body.append(IRInstr(op=IROp.LABEL, label=head))
        cond = self.lower_expr(stmt.cond)
        self.body.append(IRInstr(op=IROp.CBR, a=cond, b=0, cond="eq", label=end))
        for inner in stmt.body:
            self.lower_stmt(inner)
        self.body.append(IRInstr(op=IROp.BR, label=head))
        self.body.append(IRInstr(op=IROp.LABEL, label=end))

    # ------------------------------------------------------------------ #
    def lower_expr(self, expr: CExpr, result_used: bool = True) -> Operand:
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, Var):
            return expr.name
        if isinstance(expr, BinExpr):
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            dst = self.fresh_temp()
            self.body.append(
                IRInstr(op=IROp.BIN, dst=dst, a=left, b=right, bin_op=expr.op)
            )
            return dst
        if isinstance(expr, UnExpr):
            inner = self.lower_expr(expr.operand)
            dst = self.fresh_temp()
            if expr.op == "-":
                self.body.append(IRInstr(op=IROp.BIN, dst=dst, a=0, b=inner, bin_op="-"))
            elif expr.op == "!":
                self.body.append(IRInstr(op=IROp.BIN, dst=dst, a=inner, b=0, bin_op="=="))
            elif expr.op == "~":
                self.body.append(IRInstr(op=IROp.BIN, dst=dst, a=inner, b=-1, bin_op="^"))
            else:
                raise CompilationError(f"cannot lower unary {expr.op!r}")
            return dst
        if isinstance(expr, PlainLoad):
            dst = self.fresh_temp()
            self.body.append(
                IRInstr(op=IROp.LOAD, dst=dst, loc=expr.loc, order=MemoryOrder.NA,
                        width=self.litmus.width_of(expr.loc))
            )
            return dst
        if isinstance(expr, AtomicLoad):
            dst = self.fresh_temp()
            self.body.append(
                IRInstr(op=IROp.LOAD, dst=dst, loc=expr.loc, order=expr.order,
                        width=self.litmus.width_of(expr.loc))
            )
            return dst
        if isinstance(expr, AtomicRMW):
            operand = self.lower_expr(expr.operand)
            dst = self.fresh_temp() if result_used else None
            kind = "swap" if expr.kind == "xchg" else expr.kind
            self.body.append(
                IRInstr(op=IROp.RMW, dst=dst, rmw_kind=kind, loc=expr.loc,
                        a=operand, order=expr.order,
                        width=self.litmus.width_of(expr.loc))
            )
            return dst if dst is not None else 0
        raise CompilationError(f"cannot lower expression {expr!r}")


def lower(litmus: CLitmus) -> IRProgram:
    """Lower every thread of a C litmus test to IR."""
    functions = tuple(_FunctionLowerer(t, litmus).run() for t in litmus.threads)
    return IRProgram(
        name=litmus.name,
        functions=functions,
        init=dict(litmus.init),
        widths=dict(litmus.widths),
        const_locations=litmus.const_locations,
    )
