"""The objdump-like disassembler.

``c2s`` disassembles the object file to text before ``s2l`` parses it back
(paper Fig. 6).  Crucially, the disassembler presents the *numeric* view:
address-materialisation instructions show resolved hex addresses, exactly
the gap §III-D describes between compiled programs (``0xf00``) and litmus
tests (``x``).  ``s2l`` undoes this using the symbol table and relocations.

Output format per thread::

       0:   adrp x8, 0x13000
       4:   ldr x8, [x8]
       8:   ldr w12, [x8]
       ...
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from ..asm.isa.base import Op, get_isa
from .objfile import ObjectFile


def disassemble_thread(
    obj: ObjectFile, thread: str, numeric: bool = True
) -> List[str]:
    """Render one thread's text section as objdump-style lines."""
    isa = get_isa(obj.arch)
    layout = obj.layout()
    lines: List[str] = []
    address = 0
    for instr in obj.text[thread]:
        if instr.op is Op.LABEL:
            lines.append(f"{instr.label}:")
            continue
        shown = instr
        if numeric and instr.op is Op.MOVADDR and instr.symbol in layout:
            # the numeric view: the symbol becomes a bare hex address
            resolved = layout[instr.symbol] + instr.offset
            shown = replace(instr, symbol=f"0x{resolved:x}", offset=0)
        lines.append(f"{address:8x}:   {isa.print_instruction(shown)}")
        address += 4
    return lines


def disassemble(obj: ObjectFile, numeric: bool = True) -> Dict[str, List[str]]:
    """Disassemble every thread (the whole ``.text`` section)."""
    return {
        thread: disassemble_thread(obj, thread, numeric=numeric)
        for thread in obj.text
    }


def strip_listing(lines: List[str]) -> List[str]:
    """Drop the address column, leaving bare assembly for the parser."""
    out = []
    for line in lines:
        if line.endswith(":") and not line.lstrip()[0].isdigit():
            out.append(line)
            continue
        _, _, text = line.partition(":   ")
        out.append(text if text else line)
    return out
