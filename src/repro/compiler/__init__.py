"""The miniature C11-atomics compiler: IR, passes, back-ends, object files."""

from .backends import compile_program
from .codegen import CompiledThread, CompiledUnit
from .disasm import disassemble, disassemble_thread, strip_listing
from .ir import IRFunction, IRInstr, IROp, IRProgram
from .lower import lower
from .objfile import DebugInfo, ObjectFile, Relocation, Symbol, link_layout
from .passes import optimise, pipeline_for
from .profiles import (
    ARCHES,
    GCC_OPT_LEVELS,
    LLVM_OPT_LEVELS,
    CompilerProfile,
    default_profiles,
    make_profile,
)

__all__ = [
    "compile_program",
    "CompiledThread",
    "CompiledUnit",
    "disassemble",
    "disassemble_thread",
    "strip_listing",
    "IRFunction",
    "IRInstr",
    "IROp",
    "IRProgram",
    "lower",
    "DebugInfo",
    "ObjectFile",
    "Relocation",
    "Symbol",
    "link_layout",
    "optimise",
    "pipeline_for",
    "ARCHES",
    "GCC_OPT_LEVELS",
    "LLVM_OPT_LEVELS",
    "CompilerProfile",
    "default_profiles",
    "make_profile",
]
