"""The historical-bug injection layer.

Each constant names one concurrency bug the paper reports or reproduces;
compiler epochs carry a set of these flags (see
:mod:`repro.compiler.profiles`).  Code generation consults the flags to
emit the buggy instruction selection; *fixed* epochs take the correct
path.  This is the reproduction analogue of installing LLVM 11 next to
LLVM 16 in the paper's Docker artefact.

Every flag maps to a paper reference:

===========================  ================================================
flag                          paper reference
===========================  ================================================
``RMW_ST_FORM``               Fig. 10 / [54][33]: a relaxed ``fetch_add``
                              whose result is unused compiles to ``STADD``
                              (or ``LDADD`` with its destination zeroed by
                              the dead-register-definitions pass [53]) even
                              when a later acquire fence needs the read;
                              the RMW read becomes ``NORET``.
``XCHG_DROP_READ``            Fig. 1 / [38]: same mechanism for
                              ``atomic_exchange`` (``SWP`` with an unused
                              destination), reported *new* by the paper.
``LDP_SEQCST_UNORDERED``      [37]: 128-bit seq_cst load on Armv8.4 uses a
                              bare ``LDP`` with no ordering, so it can
                              reorder before a prior RMW's store.
``STP_WRONG_ENDIAN``          [39]: 128-bit atomic store writes its two
                              64-bit registers to memory in flipped order.
``ATOMIC_128_VIA_LOOP``       [36]: 128-bit atomic loads implemented with a
                              store-pair (LDXP/STXP) loop — a *write* to
                              the location, which crashes at run time when
                              the data is ``const`` (read-only memory).
``ARMV7_O1_CTRL_DROP``        §IV-D: GCC at ``-O1`` for Armv7 merges
                              branch arms that perform identical stores,
                              deleting a control dependency (masked at
                              ``-O2+`` by if-conversion's data dependency).
===========================  ================================================
"""

from __future__ import annotations

from typing import Dict, Tuple

RMW_ST_FORM = "rmw-st-form"
XCHG_DROP_READ = "xchg-drop-read"
LDP_SEQCST_UNORDERED = "ldp-seqcst-unordered"
STP_WRONG_ENDIAN = "stp-wrong-endian"
ATOMIC_128_VIA_LOOP = "atomic-128-via-loop"
ARMV7_O1_CTRL_DROP = "armv7-o1-ctrl-drop"

ALL_BUGS: Tuple[str, ...] = (
    RMW_ST_FORM,
    XCHG_DROP_READ,
    LDP_SEQCST_UNORDERED,
    STP_WRONG_ENDIAN,
    ATOMIC_128_VIA_LOOP,
    ARMV7_O1_CTRL_DROP,
)

#: Human-readable one-liners, used by reporting.
DESCRIPTIONS: Dict[str, str] = {
    RMW_ST_FORM: (
        "unused-result atomic RMW emitted as ST<OP> (NORET read escapes "
        "acquire-fence ordering) — paper Fig. 10, LLVM bug 35094 / GCC LSE"
    ),
    XCHG_DROP_READ: (
        "unused-result atomic_exchange emitted as SWP with zero destination "
        "— paper Fig. 1, LLVM issue 68428"
    ),
    LDP_SEQCST_UNORDERED: (
        "128-bit seq_cst load uses bare LDP; may reorder before a prior "
        "RMW store — LLVM issue 62652"
    ),
    STP_WRONG_ENDIAN: (
        "128-bit atomic store flips its register pair — LLVM issue 61431"
    ),
    ATOMIC_128_VIA_LOOP: (
        "128-bit atomic load via exclusive store loop writes to (possibly "
        "const) memory — LLVM issue 61770"
    ),
    ARMV7_O1_CTRL_DROP: (
        "GCC -O1 Armv7 merges identical branch arms, dropping a control "
        "dependency — paper §IV-D"
    ),
}


def describe(flag: str) -> str:
    return DESCRIPTIONS.get(flag, flag)
