"""The miniature compiler's intermediate representation.

A thread body lowers to a linear sequence of three-address instructions
over virtual registers.  Source-level locals keep their names (``r0``);
compiler temporaries are ``%t0``, ``%t1``, …  This mirrors the level at
which the paper's bug mechanisms live: C11 atomic operations are still
visible as single IR operations (so back-ends choose instruction
mappings), while locals are plain virtual registers (so the dead-local
elimination of §IV-B can delete them).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from ..core.events import MemoryOrder

#: An IR operand: a virtual register name or an integer literal.
Operand = Union[str, int]


class IROp(enum.Enum):
    """IR operation kinds."""

    CONST = "const"    # dst := imm
    BIN = "bin"        # dst := a <op> b
    LOAD = "load"      # dst := [loc]            (atomic iff order != NA)
    STORE = "store"    # [loc] := src
    RMW = "rmw"        # dst := fetch_<kind>([loc], operand)
    FENCE = "fence"    # atomic_thread_fence(order)
    LABEL = "label"
    BR = "br"          # goto label
    CBR = "cbr"        # if a <cond> b goto label
    RET = "ret"


@dataclass(frozen=True)
class IRInstr:
    """One IR instruction.

    Only the fields relevant to ``op`` are populated; the rest stay at
    their defaults.  ``dst=None`` on an RMW means the fetched value is
    unused — the state the paper's Fig. 10 dead-register bugs key on.
    """

    op: IROp
    dst: Optional[str] = None
    a: Optional[Operand] = None
    b: Optional[Operand] = None
    bin_op: str = ""
    loc: Optional[str] = None
    order: MemoryOrder = MemoryOrder.NA
    rmw_kind: str = ""
    width: int = 32
    label: Optional[str] = None
    cond: str = ""

    def uses(self) -> FrozenSet[str]:
        """Virtual registers this instruction reads."""
        out = set()
        for operand in (self.a, self.b):
            if isinstance(operand, str):
                out.add(operand)
        return frozenset(out)

    def defines(self) -> Optional[str]:
        return self.dst

    def is_memory(self) -> bool:
        return self.op in (IROp.LOAD, IROp.STORE, IROp.RMW)

    def is_atomic(self) -> bool:
        return self.is_memory() and self.order is not MemoryOrder.NA

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.op is IROp.CONST:
            return f"{self.dst} = {self.a}"
        if self.op is IROp.BIN:
            return f"{self.dst} = {self.a} {self.bin_op} {self.b}"
        if self.op is IROp.LOAD:
            return f"{self.dst} = load[{self.order.name}] {self.loc}"
        if self.op is IROp.STORE:
            return f"store[{self.order.name}] {self.loc} := {self.a}"
        if self.op is IROp.RMW:
            return (
                f"{self.dst or '_'} = rmw.{self.rmw_kind}[{self.order.name}] "
                f"{self.loc}, {self.a}"
            )
        if self.op is IROp.FENCE:
            return f"fence[{self.order.name}]"
        if self.op is IROp.LABEL:
            return f"{self.label}:"
        if self.op is IROp.BR:
            return f"br {self.label}"
        if self.op is IROp.CBR:
            return f"if {self.a} {self.cond} {self.b} br {self.label}"
        return self.op.value


@dataclass
class IRFunction:
    """One compiled thread: name, pointer parameters, linear body."""

    name: str
    params: Tuple[str, ...]
    body: List[IRInstr]
    #: parameters declared ``atomic_int*`` in the source.
    atomic_params: Tuple[str, ...] = ()
    #: locals the final-state condition observes (must stay addressable
    #: for mcompare; the l2c augmentation of §IV-B persists them).
    observed_locals: Tuple[str, ...] = ()

    def labels(self) -> Dict[str, int]:
        return {
            instr.label: index
            for index, instr in enumerate(self.body)
            if instr.op is IROp.LABEL and instr.label
        }

    def pretty(self) -> str:
        lines = [f"func {self.name}({', '.join(self.params)}):"]
        for instr in self.body:
            indent = "" if instr.op is IROp.LABEL else "  "
            lines.append(f"{indent}{instr}")
        return "\n".join(lines)


@dataclass
class IRProgram:
    """All threads of a litmus test, ready for code generation."""

    name: str
    functions: Tuple[IRFunction, ...]
    init: Dict[str, int]
    widths: Dict[str, int] = field(default_factory=dict)
    const_locations: Tuple[str, ...] = ()

    def function(self, name: str) -> IRFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
