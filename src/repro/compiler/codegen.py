"""Code generation: IR → per-ISA machine instructions.

Implements the C11 atomics mappings each back-end uses, the calling/PIC
conventions that create the address-materialisation traffic of §IV-E, and
the instruction-selection decisions where the paper's historical bugs
live (ST-form RMWs, 128-bit pairs).  See :mod:`repro.compiler.bugs` for
the bug flags consulted here.

Register allocation is deliberately simple: value virtual registers map
to a per-ISA scratch pool with last-use freeing; at ``-O0`` every local
lives in a stack slot and every use reloads it (the spill traffic that —
together with GOT loads under PIC — blows up un-optimised simulation,
paper Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asm.isa.base import Instruction, Isa, Op
from ..core.errors import CompilationError
from ..core.events import MemoryOrder
from .ir import IRFunction, IRInstr, IROp, IRProgram, Operand
from .profiles import CompilerProfile


@dataclass
class CompiledThread:
    """One compiled thread plus the metadata later tools rely on.

    ``reg_of_observed`` is the DWARF-like variable-location map of §III-D:
    source local name → machine register holding it at function exit.
    ``stack_size`` is the thread's spill area in bytes (0 above -O0).
    ``got_slots`` lists the GOT entries the thread's PIC sequences read.
    """

    name: str
    instructions: List[Instruction]
    reg_of_observed: Dict[str, str] = field(default_factory=dict)
    stack_size: int = 0
    got_slots: Tuple[str, ...] = ()


@dataclass
class CompiledUnit:
    """The translation unit: all compiled threads + global metadata."""

    name: str
    arch: str
    profile: CompilerProfile
    threads: List[CompiledThread]
    init: Dict[str, int]
    widths: Dict[str, int]
    const_locations: Tuple[str, ...] = ()

    def thread(self, name: str) -> CompiledThread:
        for t in self.threads:
            if t.name == name:
                return t
        raise KeyError(name)


# --------------------------------------------------------------------------- #
# per-thread code generation
# --------------------------------------------------------------------------- #
class _ThreadCodegen:
    """Generates code for one IR function under one profile."""

    def __init__(
        self, fn: IRFunction, program: IRProgram, profile: CompilerProfile, isa: Isa
    ) -> None:
        self.fn = fn
        self.program = program
        self.profile = profile
        self.isa = isa
        self.out: List[Instruction] = []
        self.vreg_map: Dict[str, str] = {}
        self.free_regs: List[str] = list(isa.value_regs)
        self.last_use = self._compute_last_uses()
        self.addr_cache: Dict[str, str] = {}
        self.free_addr_regs: List[str] = list(isa.addr_regs)
        self.slot_of: Dict[str, int] = {}
        self.got_slots: List[str] = []
        self.label_counter = 0
        self._temp_rotation = 0
        self.at_o0 = profile.opt == "-O0"
        # scratch registers reserved for -O0 reload traffic; three suffice
        # for the longest emission sequence (compare lowering)
        if self.at_o0:
            self.scratch = [self.free_regs.pop(), self.free_regs.pop(),
                            self.free_regs.pop()]
            self.scratch_toggle = 0
        else:
            self.scratch = []

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _compute_last_uses(self) -> Dict[str, int]:
        last: Dict[str, int] = {}
        for index, instr in enumerate(self.fn.body):
            for vreg in instr.uses():
                last[vreg] = index
        for name in self.fn.observed_locals:
            last[name] = len(self.fn.body)
        return last

    def fresh_label(self, hint: str) -> str:
        self.label_counter += 1
        return f".L{self.fn.name}_{hint}{self.label_counter}"

    def emit(self, instr: Instruction) -> None:
        self.out.append(self.isa.render(instr))

    # ---- value registers ----------------------------------------------- #
    def _alloc_reg(self, vreg: str) -> str:
        if vreg in self.vreg_map:
            return self.vreg_map[vreg]
        if not self.free_regs:
            raise CompilationError(
                f"{self.fn.name}: register pressure too high for the "
                f"modelled {self.isa.name} allocator"
            )
        reg = self.free_regs.pop(0)
        self.vreg_map[vreg] = reg
        return reg

    def _free_dead(self, index: int) -> None:
        dead = [v for v, last in self.last_use.items() if last <= index]
        for vreg in dead:
            reg = self.vreg_map.pop(vreg, None)
            if reg is not None and reg not in self.free_regs:
                self.free_regs.append(reg)
            self.last_use.pop(vreg, None)

    def _next_scratch(self) -> str:
        reg = self.scratch[self.scratch_toggle % len(self.scratch)]
        self.scratch_toggle += 1
        return reg

    def def_reg(self, vreg: Optional[str]) -> str:
        """The register a definition of ``vreg`` should target."""
        if vreg is None:
            return self._next_scratch() if self.at_o0 else self._temp_reg()
        if self.at_o0:
            if vreg not in self.slot_of:
                self.slot_of[vreg] = 8 * len(self.slot_of)
            return self._next_scratch()
        return self._alloc_reg(vreg)

    def _temp_reg(self) -> str:
        if not self.free_regs:
            raise CompilationError(f"{self.fn.name}: out of scratch registers")
        reg = self.free_regs[self._temp_rotation % len(self.free_regs)]
        self._temp_rotation += 1
        return reg

    def store_def(self, vreg: Optional[str], reg: str) -> None:
        """At -O0, spill a freshly defined local to its stack slot."""
        if vreg is None or not self.at_o0:
            return
        slot = self.slot_of.setdefault(vreg, 8 * len(self.slot_of))
        self.emit(Instruction(op=Op.STORE, src1=reg, addr_reg=self._sp(),
                              offset=slot, width=32))

    def use_reg(self, operand: Operand) -> str:
        """Materialise an operand into a register."""
        if isinstance(operand, int):
            reg = self._next_scratch() if self.at_o0 else self._temp_reg()
            self.emit(Instruction(op=Op.MOVI, dst=reg, imm=operand))
            return reg
        if self.at_o0:
            if operand not in self.slot_of:
                # use of a never-defined local: zero-init slot
                self.slot_of[operand] = 8 * len(self.slot_of)
            reg = self._next_scratch()
            self.emit(Instruction(op=Op.LOAD, dst=reg, addr_reg=self._sp(),
                                  offset=self.slot_of[operand], width=32))
            return reg
        if operand not in self.vreg_map:
            raise CompilationError(
                f"{self.fn.name}: use of {operand!r} before definition"
            )
        return self.vreg_map[operand]

    def _sp(self) -> str:
        return "sp"

    # ---- addresses ------------------------------------------------------ #
    def addr_of(self, loc: str) -> str:
        """A register holding the address of shared location ``loc``.

        PIC profiles go through the GOT: materialise the GOT slot address,
        then *load* the location's address from it — the extra read event
        the paper's s2l optimisation removes.  At -O0 the sequence repeats
        before every access; at -O1+ it is emitted once per location.
        """
        if not self.at_o0 and loc in self.addr_cache:
            return self.addr_cache[loc]
        if not self.free_addr_regs:
            # recycle: drop the oldest cached address
            if self.addr_cache:
                victim = next(iter(self.addr_cache))
                self.free_addr_regs.append(self.addr_cache.pop(victim))
            else:
                raise CompilationError(f"{self.fn.name}: out of address registers")
        reg = (
            self.free_addr_regs[0]
            if self.at_o0
            else self.free_addr_regs.pop(0)
        )
        if self.profile.pic:
            slot = f"got_{loc}"
            if slot not in self.got_slots:
                self.got_slots.append(slot)
            self.emit(Instruction(op=Op.MOVADDR, dst=reg, symbol=slot))
            self.emit(Instruction(op=Op.LOAD, dst=reg, addr_reg=reg, width=64))
        else:
            self.emit(Instruction(op=Op.MOVADDR, dst=reg, symbol=loc))
        if not self.at_o0:
            self.addr_cache[loc] = reg
        return reg

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self) -> CompiledThread:
        for index, instr in enumerate(self.fn.body):
            self.emit_ir(instr, index)
            if not self.at_o0:
                self._free_dead(index)
        reg_of_observed = self._final_locations()
        return CompiledThread(
            name=self.fn.name,
            instructions=self.out,
            reg_of_observed=reg_of_observed,
            stack_size=8 * len(self.slot_of),
            got_slots=tuple(self.got_slots),
        )

    def _final_locations(self) -> Dict[str, str]:
        """Where each observed local lives at exit (the debug map).

        At -O0 observed locals live on the stack; the compiler reloads
        them into registers before returning so the litmus harness can
        observe them (what real builds do via the frame's DWARF entries
        — we normalise to registers to keep the litmus format simple).
        """
        out: Dict[str, str] = {}
        for name in self.fn.observed_locals:
            if self.at_o0:
                if name in self.slot_of:
                    reg = self._next_scratch()
                    # insert before the final ret
                    self.out.insert(
                        len(self.out) - 1,
                        self.isa.render(
                            Instruction(op=Op.LOAD, dst=reg, addr_reg=self._sp(),
                                        offset=self.slot_of[name], width=32)
                        ),
                    )
                    out[name] = reg
            elif name in self.vreg_map:
                out[name] = self.vreg_map[name]
            # a deleted local has no location: exactly the paper's §IV-B
            # observability problem
        return out

    def emit_ir(self, instr: IRInstr, index: int) -> None:
        op = instr.op
        if op is IROp.LABEL:
            self.emit(Instruction(op=Op.LABEL, label=instr.label))
            # control-flow join: a cached address may have been
            # materialised on only one incoming path, so drop the cache
            # (real compilers re-materialise or rely on dominance; we
            # re-materialise, which is always sound)
            for reg in self.addr_cache.values():
                if reg not in self.free_addr_regs:
                    self.free_addr_regs.append(reg)
            self.addr_cache.clear()
            return
        if op is IROp.RET:
            self.emit(Instruction(op=Op.RET))
            return
        if op is IROp.BR:
            self.emit(Instruction(op=Op.B, label=instr.label))
            return
        if op is IROp.CBR:
            self.emit_cbr(instr)
            return
        if op is IROp.CONST:
            reg = self.def_reg(instr.dst)
            self.emit(Instruction(op=Op.MOVI, dst=reg, imm=int(instr.a)))  # type: ignore[arg-type]
            self.store_def(instr.dst, reg)
            return
        if op is IROp.BIN:
            self.emit_bin(instr)
            return
        if op is IROp.FENCE:
            self.emit_fence(instr.order)
            return
        if op is IROp.LOAD:
            self.emit_load(instr, index)
            return
        if op is IROp.STORE:
            self.emit_store(instr)
            return
        if op is IROp.RMW:
            self.emit_rmw(instr, index)
            return
        raise CompilationError(f"cannot emit {instr!r}")

    # ------------------------------------------------------------------ #
    # generic emission (per-ISA hooks below)
    # ------------------------------------------------------------------ #
    def alu(
        self,
        dst: str,
        src1: str,
        op: str,
        src2: Optional[str] = None,
        imm: Optional[int] = None,
    ) -> None:
        """Emit an ALU op, honouring x86's two-operand constraint."""
        if self.isa.name == "x86_64" and dst != src1:
            if src2 == dst or (src2 is None and False):
                raise CompilationError("x86 operand aliasing not representable")
            self.emit(Instruction(op=Op.MOV, dst=dst, src1=src1))
            src1 = dst
        self.emit(Instruction(op=Op.ALU, dst=dst, src1=src1, src2=src2,
                              imm=imm, alu_op=op))

    def emit_bin(self, instr: IRInstr) -> None:
        alu = _BIN_TO_ALU.get(instr.bin_op)
        if alu is not None:
            a_reg = self.use_reg(instr.a)  # type: ignore[arg-type]
            if isinstance(instr.b, int) and alu == "mul":
                # no ISA has a multiply-immediate: materialise the constant
                b_reg = self.use_reg(instr.b)
                dst = self.def_reg(instr.dst)
                self.alu(dst, a_reg, alu, src2=b_reg)
            elif isinstance(instr.b, int):
                dst = self.def_reg(instr.dst)
                self.alu(dst, a_reg, alu, imm=instr.b)
            else:
                b_reg = self.use_reg(instr.b)
                dst = self.def_reg(instr.dst)
                self.alu(dst, a_reg, alu, src2=b_reg)
            self.store_def(instr.dst, dst)
            return
        if instr.bin_op in _CMP_OPS:
            self.emit_compare_to_flag(instr)
            return
        raise CompilationError(f"cannot emit binary op {instr.bin_op!r}")

    def emit_compare_to_flag(self, instr: IRInstr) -> None:
        """``dst := (a cmp b)`` as a 0/1 value, branch-free.

        Lowered arithmetically (sign-bit extraction) so the *data*
        dependency from the compared registers survives into the
        execution graph — essential for the §IV-D if-conversion story.
        With arbitrary-precision evaluation there is no overflow:
        ``(a-b) >> 31 & 1`` is 1 exactly when ``a < b``.
        """
        swap = instr.bin_op in (">", "<=")
        lhs, rhs = (instr.b, instr.a) if swap else (instr.a, instr.b)
        a_reg = self.use_reg(lhs)  # type: ignore[arg-type]
        dst = self.def_reg(instr.dst)
        # diff := lhs - rhs  (into dst, which is free to clobber)
        if isinstance(rhs, int):
            self.alu(dst, a_reg, "sub", imm=rhs)
        else:
            self.alu(dst, a_reg, "sub", src2=self.use_reg(rhs))
        if instr.bin_op in ("==", "!="):
            # normalise diff to 0/1: (diff | -diff) has its sign bit set
            # exactly when diff != 0
            neg = self.def_reg(None)
            if neg == dst:
                raise CompilationError("scratch collision in compare lowering")
            self.emit(Instruction(op=Op.MOVI, dst=neg, imm=0))
            self.alu(neg, neg, "sub", src2=dst)
            self.alu(dst, dst, "or", src2=neg)
        self.alu(dst, dst, "lsr", imm=31)
        self.alu(dst, dst, "and", imm=1)
        if instr.bin_op in ("==", ">=", "<="):
            self.alu(dst, dst, "xor", imm=1)
        self.store_def(instr.dst, dst)

    def emit_cbr(self, instr: IRInstr) -> None:
        a_reg = self.use_reg(instr.a)  # type: ignore[arg-type]
        if instr.b == 0 and instr.cond in ("eq", "ne") and self.isa.name not in (
            "ppc64", "armv7", "x86_64"
        ):
            op = Op.CBZ if instr.cond == "eq" else Op.CBNZ
            self.emit(Instruction(op=op, src1=a_reg, label=instr.label))
            return
        if self.isa.name in ("riscv64", "mips64"):
            b_reg = (
                self.isa.zero_reg
                if instr.b == 0
                else self.use_reg(instr.b)  # type: ignore[arg-type]
            )
            cond, first, second = _fused_branch(instr.cond, a_reg, b_reg)
            self.emit(Instruction(op=Op.BCOND, cond=cond, src1=first,
                                  src2=second, label=instr.label))
            return
        if isinstance(instr.b, int):
            self.emit(Instruction(op=Op.CMP, src1=a_reg, imm=instr.b))
        else:
            self.emit(Instruction(op=Op.CMP, src1=a_reg,
                                  src2=self.use_reg(instr.b)))
        self.emit(Instruction(op=Op.BCOND, cond=instr.cond, label=instr.label))

    # ------------------------------------------------------------------ #
    # per-ISA hooks (overridden by subclasses)
    # ------------------------------------------------------------------ #
    def emit_fence(self, order: MemoryOrder) -> None:
        raise NotImplementedError

    def emit_load(self, instr: IRInstr, index: int) -> None:
        raise NotImplementedError

    def emit_store(self, instr: IRInstr) -> None:
        raise NotImplementedError

    def emit_rmw(self, instr: IRInstr, index: int) -> None:
        raise NotImplementedError

    # ---- shared analysis ------------------------------------------------ #
    def acquire_context_follows(self, index: int) -> bool:
        """Is there a po-later acquire fence or acquire load in this
        function?  Fixed compilers consult this before choosing an
        ST-form RMW (the sound version of the Fig. 10 selection)."""
        for later in self.fn.body[index + 1 :]:
            if later.op is IROp.FENCE and later.order.at_least_acquire:
                return True
            if later.op is IROp.LOAD and later.order.at_least_acquire:
                return True
            if later.op is IROp.RMW and later.order.at_least_acquire:
                return True
        return False

    def _fence(self, *tags: str) -> None:
        self.emit(Instruction(op=Op.FENCE, fence_tags=frozenset(tags)))


_BIN_TO_ALU = {
    "+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
    "<<": "lsl", ">>": "lsr", "*": "mul",
}
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


def _fused_branch(cond: str, a: str, b: str) -> Tuple[str, str, str]:
    """RISC-V/MIPS have beq/bne/blt/bge; derive le/gt by operand swap."""
    if cond in ("eq", "ne", "lt", "ge"):
        return cond, a, b
    if cond == "gt":
        return "lt", b, a
    if cond == "le":
        return "ge", b, a
    raise CompilationError(f"unknown branch condition {cond!r}")
