"""Per-architecture back-ends: the C11 atomics mappings under test.

Each back-end subclasses the generic :class:`~repro.compiler.codegen._ThreadCodegen`
and supplies ``emit_fence`` / ``emit_load`` / ``emit_store`` / ``emit_rmw``
— the mapping tables real compilers implement and the paper tests.  Bug
flags (see :mod:`repro.compiler.bugs`) divert instruction selection onto
the historical buggy paths.

Mapping summary (loads/stores/RMW per memory order):

==========  =====================  ======================  =================
target      load                   store                   RMW
==========  =====================  ======================  =================
AArch64     LDR / LDAR(/LDAPR)     STR / STLR              LSE LDADD/SWP… or
                                                           LDXR/STXR loop
Armv7       LDR (+DMB ISH)         (DMB ISH+) STR (+DMB)   LDREX/STREX loop
x86-64      MOV                    MOV / XCHG(llvm),       LOCK XADD / XCHG
                                   MOV+MFENCE(gcc)
RISC-V      LW (+fences)           (fence+) SW             AMO<op>.aq/.rl
PowerPC     LWZ (+LWSYNC/SYNC)     (LWSYNC/SYNC+) STW      LWARX/STWCX. loop
MIPS        SYNC+LW+SYNC           SYNC+SW+SYNC            SYNC+LL/SC+SYNC
==========  =====================  ======================  =================

MIPS brackets *every* atomic access in SYNC — GCC treats atomic data as
volatile (paper §IV-C) — which is why MIPS shows zero positive differences
but the most negative ones in Table IV.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..asm.isa.base import Instruction, Op, get_isa
from ..core.errors import CompilationError
from ..core.events import MemoryOrder
from . import bugs
from .codegen import CompiledThread, CompiledUnit, _ThreadCodegen
from .ir import IRInstr, IRProgram
from .passes import optimise
from .profiles import CompilerProfile


# --------------------------------------------------------------------------- #
# AArch64
# --------------------------------------------------------------------------- #
class AArch64Codegen(_ThreadCodegen):
    """Armv8 AArch64 back-end (LSE and exclusive-loop variants)."""

    def emit_fence(self, order: MemoryOrder) -> None:
        if order is MemoryOrder.ACQ:
            self._fence("DMB.LD")
        else:
            self._fence("DMB.SY")

    def emit_load(self, instr: IRInstr, index: int) -> None:
        if instr.width == 128:
            self._emit_load_128(instr)
            return
        addr = self.addr_of(instr.loc)
        dst = self.def_reg(instr.dst)
        acquire = instr.order.at_least_acquire
        use_ldapr = acquire and self.profile.rcpc and not instr.order.is_seq_cst
        self.emit(Instruction(
            op=Op.LOAD, dst=dst, addr_reg=addr,
            acquire=acquire and not use_ldapr, acquire_pc=use_ldapr,
            width=instr.width,
        ))
        self.store_def(instr.dst, dst)

    def _emit_load_128(self, instr: IRInstr) -> None:
        addr = self.addr_of(instr.loc)
        lo = self.def_reg(instr.dst)
        hi = self.def_reg(None if instr.dst is None else f"{instr.dst}.hi")
        use_pair = self.profile.v84 and not self.profile.has_bug(
            bugs.ATOMIC_128_VIA_LOOP
        )
        if use_pair:
            # v8.4 LSE2: an aligned LDP is single-copy atomic [56]; but a
            # bare LDP has NO ordering — the seq_cst bug [37]: it may
            # reorder before a prior RMW's store.  The fix adds
            # synchronisation following GCC [28]: a full barrier before
            # (ordering against prior stores) and a load barrier after.
            fixed = not self.profile.has_bug(bugs.LDP_SEQCST_UNORDERED)
            if instr.order.is_seq_cst and fixed:
                self._fence("DMB.SY")
            self.emit(Instruction(op=Op.LOADPAIR, dst=lo, dst2=hi,
                                  addr_reg=addr, width=128))
            if instr.order.at_least_acquire and fixed:
                self._fence("DMB.LD")
        else:
            # pre-v8.4 (or the unfixed v8.4 path [36]): an exclusive-pair
            # loop — which *writes back*, crashing on const data
            retry = self.fresh_label("ld128")
            status = self.def_reg(None)
            self.emit(Instruction(op=Op.LABEL, label=retry))
            self.emit(Instruction(
                op=Op.LDX, dst=lo, dst2=hi, addr_reg=addr, width=128,
                acquire=instr.order.at_least_acquire, exclusive=True,
            ))
            self.emit(Instruction(
                op=Op.STX, status=status, src1=lo, src2=hi, addr_reg=addr,
                width=128, exclusive=True,
            ))
            self.emit(Instruction(op=Op.CBNZ, src1=status, label=retry))
        self.store_def(instr.dst, lo)

    def emit_store(self, instr: IRInstr) -> None:
        if instr.width == 128:
            self._emit_store_128(instr)
            return
        value = self.use_reg(instr.a)  # type: ignore[arg-type]
        addr = self.addr_of(instr.loc)
        self.emit(Instruction(
            op=Op.STORE, src1=value, addr_reg=addr,
            release=instr.order.at_least_release, width=instr.width,
        ))

    def _emit_store_128(self, instr: IRInstr) -> None:
        lo = self.use_reg(instr.a)  # type: ignore[arg-type]
        hi = self.def_reg(None)
        self.emit(Instruction(op=Op.MOVI, dst=hi, imm=0))
        addr = self.addr_of(instr.loc)
        # the wrong-endian bug [39]: the register pair is flipped
        first, second = (
            (hi, lo) if self.profile.has_bug(bugs.STP_WRONG_ENDIAN) else (lo, hi)
        )
        use_pair = self.profile.v84 and not self.profile.has_bug(
            bugs.ATOMIC_128_VIA_LOOP
        )
        if use_pair:
            if instr.order.at_least_release:
                self._fence("DMB.SY")
            self.emit(Instruction(op=Op.STOREPAIR, src1=first, src2=second,
                                  addr_reg=addr, width=128))
            if instr.order.is_seq_cst:
                self._fence("DMB.SY")
        else:
            retry = self.fresh_label("st128")
            status = self.def_reg(None)
            self.emit(Instruction(op=Op.LABEL, label=retry))
            self.emit(Instruction(op=Op.LDX, dst=self.isa.zero_reg,
                                  dst2=self.isa.zero_reg, addr_reg=addr,
                                  width=128, exclusive=True))
            self.emit(Instruction(
                op=Op.STX, status=status, src1=first, src2=second,
                addr_reg=addr, width=128, exclusive=True,
                release=instr.order.at_least_release,
            ))
            self.emit(Instruction(op=Op.CBNZ, src1=status, label=retry))

    def emit_rmw(self, instr: IRInstr, index: int) -> None:
        if self.profile.lse:
            self._emit_rmw_lse(instr, index)
        else:
            self._emit_rmw_loop(instr)

    def _emit_rmw_lse(self, instr: IRInstr, index: int) -> None:
        operand = self.use_reg(instr.a)  # type: ignore[arg-type]
        addr = self.addr_of(instr.loc)
        acquire = instr.order.at_least_acquire
        release = instr.order.at_least_release
        result_unused = instr.dst is None
        if result_unused:
            if instr.rmw_kind == "swap":
                buggy = self.profile.has_bug(bugs.XCHG_DROP_READ)
            else:
                buggy = self.profile.has_bug(bugs.RMW_ST_FORM)
            # the *sound* ST-form condition: relaxed RMW with no po-later
            # acquire context (otherwise the NORET read breaks ordering,
            # exactly the Fig. 1 / Fig. 10 failure)
            sound = (
                instr.order is MemoryOrder.RLX
                and not self.acquire_context_follows(index)
            )
            use_st_form = buggy or sound
        else:
            use_st_form = False
        if use_st_form:
            # ST<OP> / SWP-with-XZR: the read half becomes NORET
            self.emit(Instruction(
                op=Op.AMO, amo_kind=instr.rmw_kind, src1=operand, dst=None,
                addr_reg=addr, acquire=False, release=release,
                width=instr.width,
            ))
            return
        dst = self.def_reg(instr.dst)
        self.emit(Instruction(
            op=Op.AMO, amo_kind=instr.rmw_kind, src1=operand, dst=dst,
            addr_reg=addr, acquire=acquire, release=release, width=instr.width,
        ))
        self.store_def(instr.dst, dst)

    def _emit_rmw_loop(self, instr: IRInstr) -> None:
        operand = self.use_reg(instr.a)  # type: ignore[arg-type]
        addr = self.addr_of(instr.loc)
        retry = self.fresh_label("rmw")
        old = self.def_reg(instr.dst)
        new = self.def_reg(None)
        status = new  # reuse: status only needed after new is consumed
        self.emit(Instruction(op=Op.LABEL, label=retry))
        self.emit(Instruction(
            op=Op.LDX, dst=old, addr_reg=addr, exclusive=True,
            acquire=instr.order.at_least_acquire, width=instr.width,
        ))
        if instr.rmw_kind == "swap":
            new_reg = operand
        else:
            self.alu(new, old, _RMW_ALU[instr.rmw_kind], src2=operand)
            new_reg = new
        self.emit(Instruction(
            op=Op.STX, status=status, src1=new_reg, addr_reg=addr,
            exclusive=True, release=instr.order.at_least_release,
            width=instr.width,
        ))
        self.emit(Instruction(op=Op.CBNZ, src1=status, label=retry))
        self.store_def(instr.dst, old)


_RMW_ALU = {"add": "add", "sub": "sub", "or": "or", "and": "and", "xor": "xor"}


# --------------------------------------------------------------------------- #
# Armv7
# --------------------------------------------------------------------------- #
class Armv7Codegen(_ThreadCodegen):
    """Armv7-A back-end: DMB ISH bracketing + LDREX/STREX loops."""

    def emit_fence(self, order: MemoryOrder) -> None:
        self._fence("DMB.ISH")

    def emit_load(self, instr: IRInstr, index: int) -> None:
        addr = self.addr_of(instr.loc)
        dst = self.def_reg(instr.dst)
        if instr.order.is_seq_cst:
            self._fence("DMB.ISH")
        self.emit(Instruction(op=Op.LOAD, dst=dst, addr_reg=addr,
                              width=instr.width))
        if instr.order.at_least_acquire:
            self._fence("DMB.ISH")
        self.store_def(instr.dst, dst)

    def emit_store(self, instr: IRInstr) -> None:
        value = self.use_reg(instr.a)  # type: ignore[arg-type]
        addr = self.addr_of(instr.loc)
        if instr.order.at_least_release:
            self._fence("DMB.ISH")
        self.emit(Instruction(op=Op.STORE, src1=value, addr_reg=addr,
                              width=instr.width))
        if instr.order.is_seq_cst:
            self._fence("DMB.ISH")

    def emit_rmw(self, instr: IRInstr, index: int) -> None:
        operand = self.use_reg(instr.a)  # type: ignore[arg-type]
        addr = self.addr_of(instr.loc)
        if instr.order.at_least_release:
            self._fence("DMB.ISH")
        retry = self.fresh_label("rmw")
        old = self.def_reg(instr.dst)
        new = self.def_reg(None)
        status = new
        self.emit(Instruction(op=Op.LABEL, label=retry))
        self.emit(Instruction(op=Op.LDX, dst=old, addr_reg=addr,
                              exclusive=True, width=instr.width))
        if instr.rmw_kind == "swap":
            new_reg = operand
        else:
            self.alu(new, old, _RMW_ALU[instr.rmw_kind], src2=operand)
            new_reg = new
        self.emit(Instruction(op=Op.STX, status=status, src1=new_reg,
                              addr_reg=addr, exclusive=True, width=instr.width))
        self.emit(Instruction(op=Op.CMP, src1=status, imm=0))
        self.emit(Instruction(op=Op.BCOND, cond="ne", label=retry))
        if instr.order.at_least_acquire:
            self._fence("DMB.ISH")
        self.store_def(instr.dst, old)


# --------------------------------------------------------------------------- #
# x86-64
# --------------------------------------------------------------------------- #
class X86Codegen(_ThreadCodegen):
    """x86-64 back-end: plain MOVs under TSO, locked RMWs."""

    def emit_fence(self, order: MemoryOrder) -> None:
        if order.is_seq_cst:
            self._fence("MFENCE")
        # weaker fences are compiler-only barriers on TSO: no instruction

    def emit_load(self, instr: IRInstr, index: int) -> None:
        addr = self.addr_of(instr.loc)
        dst = self.def_reg(instr.dst)
        self.emit(Instruction(op=Op.LOAD, dst=dst, addr_reg=addr,
                              width=instr.width))
        self.store_def(instr.dst, dst)

    def emit_store(self, instr: IRInstr) -> None:
        addr = self.addr_of(instr.loc)
        if instr.order.is_seq_cst:
            if self.profile.compiler == "llvm":
                # clang: seq_cst store = XCHG (implicitly locked); copy to
                # a scratch first — XCHG clobbers its register operand
                value = self.use_reg(instr.a)  # type: ignore[arg-type]
                scratch = self.def_reg(None)
                if scratch != value:
                    self.emit(Instruction(op=Op.MOV, dst=scratch, src1=value))
                self.emit(Instruction(op=Op.AMO, amo_kind="swap", src1=scratch,
                                      dst=scratch, addr_reg=addr,
                                      exclusive=True, width=instr.width))
            else:
                # gcc: seq_cst store = MOV + MFENCE
                value = self.use_reg(instr.a)  # type: ignore[arg-type]
                self.emit(Instruction(op=Op.STORE, src1=value, addr_reg=addr,
                                      width=instr.width))
                self._fence("MFENCE")
            return
        if isinstance(instr.a, int):
            # x86 can store immediates directly
            self.emit(Instruction(op=Op.STORE, imm=instr.a, addr_reg=addr,
                                  width=instr.width))
        else:
            value = self.use_reg(instr.a)
            self.emit(Instruction(op=Op.STORE, src1=value, addr_reg=addr,
                                  width=instr.width))

    def emit_rmw(self, instr: IRInstr, index: int) -> None:
        addr = self.addr_of(instr.loc)
        result_unused = instr.dst is None
        if instr.rmw_kind == "swap":
            value = self.use_reg(instr.a)  # type: ignore[arg-type]
            dst = value if result_unused else self.def_reg(instr.dst)
            if dst != value:
                self.emit(Instruction(op=Op.MOV, dst=dst, src1=value))
            self.emit(Instruction(op=Op.AMO, amo_kind="swap", src1=dst, dst=dst,
                                  addr_reg=addr, exclusive=True,
                                  width=instr.width))
            self.store_def(instr.dst, dst)
            return
        if instr.rmw_kind == "add":
            value = self.use_reg(instr.a)  # type: ignore[arg-type]
            dst = value if result_unused else self.def_reg(instr.dst)
            if dst != value:
                self.emit(Instruction(op=Op.MOV, dst=dst, src1=value))
            self.emit(Instruction(op=Op.AMO, amo_kind="add", src1=dst, dst=dst,
                                  addr_reg=addr, exclusive=True,
                                  width=instr.width))
            self.store_def(instr.dst, dst)
            return
        if result_unused:
            # memory-destination form: lock or/and/xor/sub
            if isinstance(instr.a, int):
                self.emit(Instruction(op=Op.AMO, amo_kind=instr.rmw_kind,
                                      imm=instr.a, addr_reg=addr,
                                      exclusive=True, width=instr.width))
            else:
                value = self.use_reg(instr.a)
                self.emit(Instruction(op=Op.AMO, amo_kind=instr.rmw_kind,
                                      src1=value, addr_reg=addr,
                                      exclusive=True, width=instr.width))
            return
        raise CompilationError(
            f"x86 fetch_{instr.rmw_kind} returning the old value needs a "
            f"CMPXCHG loop, which is outside the modelled subset"
        )


# --------------------------------------------------------------------------- #
# RISC-V
# --------------------------------------------------------------------------- #
class RiscVCodegen(_ThreadCodegen):
    """RV64 back-end: fence-based loads/stores, annotated AMOs."""

    def emit_fence(self, order: MemoryOrder) -> None:
        if order is MemoryOrder.ACQ:
            self._fence("FENCE.R.RW")
        elif order is MemoryOrder.REL:
            self._fence("FENCE.RW.W")
        else:
            self._fence("FENCE.RW.RW")

    def emit_load(self, instr: IRInstr, index: int) -> None:
        addr = self.addr_of(instr.loc)
        dst = self.def_reg(instr.dst)
        if instr.order.is_seq_cst:
            self._fence("FENCE.RW.RW")
        self.emit(Instruction(op=Op.LOAD, dst=dst, addr_reg=addr,
                              width=instr.width))
        if instr.order.at_least_acquire:
            self._fence("FENCE.R.RW")
        self.store_def(instr.dst, dst)

    def emit_store(self, instr: IRInstr) -> None:
        value = self.use_reg(instr.a)  # type: ignore[arg-type]
        addr = self.addr_of(instr.loc)
        if instr.order.at_least_release:
            self._fence("FENCE.RW.W")
        self.emit(Instruction(op=Op.STORE, src1=value, addr_reg=addr,
                              width=instr.width))
        if instr.order.is_seq_cst:
            self._fence("FENCE.RW.RW")

    def emit_rmw(self, instr: IRInstr, index: int) -> None:
        operand = self.use_reg(instr.a)  # type: ignore[arg-type]
        addr = self.addr_of(instr.loc)
        dst = None if instr.dst is None else self.def_reg(instr.dst)
        self.emit(Instruction(
            op=Op.AMO, amo_kind=instr.rmw_kind, src1=operand, dst=dst,
            addr_reg=addr, acquire=instr.order.at_least_acquire,
            release=instr.order.at_least_release, exclusive=True,
            width=instr.width,
        ))
        if dst is not None:
            self.store_def(instr.dst, dst)


# --------------------------------------------------------------------------- #
# PowerPC
# --------------------------------------------------------------------------- #
class PpcCodegen(_ThreadCodegen):
    """PowerPC64 back-end: SYNC/LWSYNC bracketing, LWARX/STWCX. loops."""

    def emit_fence(self, order: MemoryOrder) -> None:
        if order.is_seq_cst:
            self._fence("SYNC")
        else:
            self._fence("LWSYNC")

    def emit_load(self, instr: IRInstr, index: int) -> None:
        addr = self.addr_of(instr.loc)
        dst = self.def_reg(instr.dst)
        if instr.order.is_seq_cst:
            self._fence("SYNC")
        self.emit(Instruction(op=Op.LOAD, dst=dst, addr_reg=addr,
                              width=instr.width))
        if instr.order.at_least_acquire:
            self._fence("LWSYNC")
        self.store_def(instr.dst, dst)

    def emit_store(self, instr: IRInstr) -> None:
        value = self.use_reg(instr.a)  # type: ignore[arg-type]
        addr = self.addr_of(instr.loc)
        if instr.order.is_seq_cst:
            self._fence("SYNC")
        elif instr.order.at_least_release:
            self._fence("LWSYNC")
        self.emit(Instruction(op=Op.STORE, src1=value, addr_reg=addr,
                              width=instr.width))

    def emit_rmw(self, instr: IRInstr, index: int) -> None:
        operand = self.use_reg(instr.a)  # type: ignore[arg-type]
        addr = self.addr_of(instr.loc)
        if instr.order.is_seq_cst:
            self._fence("SYNC")
        elif instr.order.at_least_release:
            self._fence("LWSYNC")
        retry = self.fresh_label("rmw")
        old = self.def_reg(instr.dst)
        new = self.def_reg(None)
        self.emit(Instruction(op=Op.LABEL, label=retry))
        self.emit(Instruction(op=Op.LDX, dst=old, addr_reg=addr,
                              exclusive=True, width=instr.width))
        if instr.rmw_kind == "swap":
            new_reg = operand
        else:
            self.alu(new, old, _RMW_ALU[instr.rmw_kind], src2=operand)
            new_reg = new
        # stwcx. reports through CR0 (status=None → flags)
        self.emit(Instruction(op=Op.STX, src1=new_reg, addr_reg=addr,
                              exclusive=True, width=instr.width))
        self.emit(Instruction(op=Op.BCOND, cond="ne", label=retry))
        if instr.order.at_least_acquire:
            self._fence("LWSYNC")
        self.store_def(instr.dst, old)


# --------------------------------------------------------------------------- #
# MIPS
# --------------------------------------------------------------------------- #
class MipsCodegen(_ThreadCodegen):
    """MIPS64 back-end: conservative SYNC bracketing of every atomic
    access (GCC treats atomics as volatile — paper §IV-C [40])."""

    def emit_fence(self, order: MemoryOrder) -> None:
        self._fence("MIPS.SYNC")

    def emit_load(self, instr: IRInstr, index: int) -> None:
        addr = self.addr_of(instr.loc)
        dst = self.def_reg(instr.dst)
        if instr.order.is_atomic:
            self._fence("MIPS.SYNC")
        self.emit(Instruction(op=Op.LOAD, dst=dst, addr_reg=addr,
                              width=instr.width))
        if instr.order.is_atomic:
            self._fence("MIPS.SYNC")
        self.store_def(instr.dst, dst)

    def emit_store(self, instr: IRInstr) -> None:
        value = self.use_reg(instr.a)  # type: ignore[arg-type]
        addr = self.addr_of(instr.loc)
        if instr.order.is_atomic:
            self._fence("MIPS.SYNC")
        self.emit(Instruction(op=Op.STORE, src1=value, addr_reg=addr,
                              width=instr.width))
        if instr.order.is_atomic:
            self._fence("MIPS.SYNC")

    def emit_rmw(self, instr: IRInstr, index: int) -> None:
        operand = self.use_reg(instr.a)  # type: ignore[arg-type]
        addr = self.addr_of(instr.loc)
        self._fence("MIPS.SYNC")
        retry = self.fresh_label("rmw")
        old = self.def_reg(instr.dst)
        new = self.def_reg(None)
        self.emit(Instruction(op=Op.LABEL, label=retry))
        self.emit(Instruction(op=Op.LDX, dst=old, addr_reg=addr,
                              exclusive=True, width=instr.width))
        if instr.rmw_kind == "swap":
            self.emit(Instruction(op=Op.MOV, dst=new, src1=operand))
        else:
            self.alu(new, old, _RMW_ALU[instr.rmw_kind], src2=operand)
        # MIPS sc consumes the value register and writes 1 on success
        self.emit(Instruction(op=Op.STX, status=new, src1=new, addr_reg=addr,
                              imm=1, exclusive=True, width=instr.width))
        self.emit(Instruction(op=Op.CBZ, src1=new, label=retry))
        self._fence("MIPS.SYNC")
        self.store_def(instr.dst, old)


# --------------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------------- #
_BACKENDS: Dict[str, Type[_ThreadCodegen]] = {
    "aarch64": AArch64Codegen,
    "armv7": Armv7Codegen,
    "x86_64": X86Codegen,
    "riscv64": RiscVCodegen,
    "ppc64": PpcCodegen,
    "mips64": MipsCodegen,
}


def compile_program(program: IRProgram, profile: CompilerProfile) -> CompiledUnit:
    """Optimise and code-generate every thread of an IR program."""
    if profile.arch not in _BACKENDS:
        raise CompilationError(f"no back-end for architecture {profile.arch!r}")
    isa = get_isa(profile.arch)
    backend = _BACKENDS[profile.arch]
    threads: List[CompiledThread] = []
    for fn in program.functions:
        optimised = optimise(fn, profile)
        threads.append(backend(optimised, program, profile, isa).run())
    return CompiledUnit(
        name=program.name,
        arch=profile.arch,
        profile=profile,
        threads=threads,
        init=dict(program.init),
        widths=dict(program.widths),
        const_locations=program.const_locations,
    )
