"""Typed campaign events — the streaming currency of :meth:`Session.campaign`.

A campaign is no longer only an end-of-run batch report: the engine
*yields* these events as cells finish, so progress UIs, early-exit
fuzzing loops, and services can react mid-run.  The stream grammar is::

    CampaignStarted (CellFinished | ShardMerged)* CampaignFinished

with two hunt-mode extras interleaved — :class:`HuntProgress` after each
mutation round's cells and :class:`TestReduced` once per minimised
positive — and :func:`repro.api.fold_events` folds any complete stream
back into the legacy :class:`~repro.pipeline.campaign.CampaignReport`,
byte-for-byte identical to what ``run_campaign`` used to return
(hunt extras fold as annotations: they never change cell tallies).

Every event is a frozen dataclass with an :meth:`as_dict` JSON projection
(the CLI's ``--json`` output is exactly one event per line).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..pipeline.campaign import CampaignReport


@dataclass(frozen=True)
class CampaignEvent:
    """Base class of everything a campaign stream yields."""

    #: the JSON ``event`` discriminator, overridden per subclass.
    kind = "event"

    def as_dict(self) -> Dict[str, object]:
        return {"event": self.kind}


@dataclass(frozen=True)
class CampaignStarted(CampaignEvent):
    """The work list is fixed: sizes, parallelism and shard are known."""

    kind = "campaign_started"

    source_model: str = "rc11"
    tests_input: int = 0
    #: total cells in this (possibly sharded) run's work list
    cells_total: int = 0
    #: cells that will actually run (the rest replay from the store)
    pending: int = 0
    workers: int = 1
    processes: int = 0
    shard: Optional[Tuple[int, int]] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "event": self.kind,
            "source_model": self.source_model,
            "tests_input": self.tests_input,
            "cells_total": self.cells_total,
            "pending": self.pending,
            "workers": self.workers,
            "processes": self.processes,
            "shard": list(self.shard) if self.shard else None,
        }


@dataclass(frozen=True)
class CellFinished(CampaignEvent):
    """One (test × arch × opt × compiler) cell has a verdict record."""

    kind = "cell_finished"

    #: position in the deterministic work list — folding sorts on this,
    #: so events may arrive in any completion order
    index: int = 0
    test: str = ""
    digest: str = ""
    arch: str = ""
    opt: str = ""
    compiler: str = ""
    #: the full verdict record (the store/process-pool currency)
    record: Mapping[str, object] = field(default_factory=dict)
    #: True when replayed from the persistent store, not re-simulated
    from_store: bool = False
    shard: Optional[Tuple[int, int]] = None
    #: "tv" or "differential" — for differential cells ``compiler``
    #: carries the profile-pair label and ``opt`` is ``"diff"``
    mode: str = "tv"

    @property
    def status(self) -> str:
        return str(self.record.get("status", ""))

    @property
    def verdict(self) -> Optional[str]:
        value = self.record.get("verdict")
        return None if value is None else str(value)

    @property
    def artifacts(self) -> Dict[str, str]:
        """The ``{stage: artifact key}`` map into the toolchain's
        content-addressed cache — which compiled litmus, outcome sets
        and verdict produced this cell.  Empty for error/timeout cells
        and for records persisted before the toolchain redesign."""
        value = self.record.get("artifacts")
        if not isinstance(value, Mapping):
            return {}
        return {str(k): str(v) for k, v in value.items()}

    def as_dict(self) -> Dict[str, object]:
        return {
            "event": self.kind,
            "index": self.index,
            "test": self.test,
            "digest": self.digest,
            "arch": self.arch,
            "opt": self.opt,
            "compiler": self.compiler,
            "from_store": self.from_store,
            "shard": list(self.shard) if self.shard else None,
            "mode": self.mode,
            "record": dict(self.record),
        }


@dataclass(frozen=True)
class HuntProgress(CampaignEvent):
    """One hunt round finished: what the feedback loop learned and what
    it scheduled next.  Emitted after the round's cells, before the next
    round's — so ``round_index`` partitions the cell stream."""

    kind = "hunt_progress"

    #: the round whose cells have just finished (0 = the seeds)
    round_index: int = 0
    #: cells evaluated in this round
    cells: int = 0
    #: distinct positive *tests* (by digest) across the hunt so far
    positives: int = 0
    #: new mutants scheduled for the next round (0 = hunt is done)
    scheduled: int = 0
    #: distinct tests scheduled since round 0 (seeds included)
    unique_tests: int = 0
    #: mutants dropped because their digest was already scheduled
    duplicates_skipped: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "event": self.kind,
            "round": self.round_index,
            "cells": self.cells,
            "positives": self.positives,
            "scheduled": self.scheduled,
            "unique_tests": self.unique_tests,
            "duplicates_skipped": self.duplicates_skipped,
        }


@dataclass(frozen=True)
class TestReduced(CampaignEvent):
    """A hunt positive was minimised to a 1-minimal reproducer.

    ``record`` is the reduced test's re-verified verdict record — the
    same store currency as a cell record, carrying ``reduced_from`` /
    ``reduction_steps`` lineage — so consumers (and the session store)
    get the reproducer without re-simulating anything.
    """

    kind = "test_reduced"
    __test__ = False  # pytest: an event class, not a test class

    #: the positive test reduction started from
    test: str = ""
    digest: str = ""
    #: the minimal reproducer
    reduced_name: str = ""
    reduced_digest: str = ""
    original_statements: int = 0
    reduced_statements: int = 0
    #: accepted shrink steps (0 = the positive was already minimal)
    steps: int = 0
    #: oracle re-verifications the reduction spent
    checks: int = 0
    record: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "event": self.kind,
            "test": self.test,
            "digest": self.digest,
            "reduced_name": self.reduced_name,
            "reduced_digest": self.reduced_digest,
            "original_statements": self.original_statements,
            "reduced_statements": self.reduced_statements,
            "steps": self.steps,
            "checks": self.checks,
            "record": dict(self.record),
        }


@dataclass(frozen=True)
class ShardMerged(CampaignEvent):
    """One shard of a :meth:`Session.campaign_sharded` run completed and
    was folded into the running merge."""

    kind = "shard_merged"

    shard: Tuple[int, int] = (0, 1)
    report: CampaignReport = field(default_factory=lambda: CampaignReport(""))

    def as_dict(self) -> Dict[str, object]:
        return {
            "event": self.kind,
            "shard": list(self.shard),
            "report": self.report.to_jsonable(),
        }


@dataclass(frozen=True)
class FarmStarted(CampaignEvent):
    """A regression-farm pass begins: the manifest is loaded and every
    selected suite's content digest has been re-verified."""

    kind = "farm_started"

    root: str = ""
    #: suites selected for this pass (after plan filters)
    suites: Tuple[str, ...] = ()
    #: (suite, profile, model) baseline cells selected for this pass
    baselines: int = 0
    tests_total: int = 0
    workers: int = 1
    processes: int = 0
    bless: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "event": self.kind,
            "root": self.root,
            "suites": list(self.suites),
            "baselines": self.baselines,
            "tests_total": self.tests_total,
            "workers": self.workers,
            "processes": self.processes,
            "bless": self.bless,
        }


@dataclass(frozen=True)
class SuiteFinished(CampaignEvent):
    """One (suite, profile, model) baseline cell has run and been diffed
    against its blessed baseline (or re-blessed)."""

    kind = "suite_finished"

    suite: str = ""
    profile: str = ""
    model: str = ""
    #: tests the suite streamed through the toolchain
    tests: int = 0
    #: verdict records produced (error/timeout cells included)
    records: int = 0
    #: drifting cells vs the blessed baseline (0 after a bless)
    drift: int = 0
    #: per-kind drift tallies (``new-positive``, ``lost-positive``, …)
    drift_counts: Mapping[str, int] = field(default_factory=dict)
    #: the human-readable mcompare-style drift report
    report: str = ""
    #: True when this pass re-blessed the baseline file
    blessed: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "event": self.kind,
            "suite": self.suite,
            "profile": self.profile,
            "model": self.model,
            "tests": self.tests,
            "records": self.records,
            "drift": self.drift,
            "drift_counts": dict(self.drift_counts),
            "report": self.report,
            "blessed": self.blessed,
        }


@dataclass(frozen=True)
class FarmFinished(CampaignEvent):
    """End of a farm pass: the totals drift decisions key off."""

    kind = "farm_finished"

    #: baseline cells run
    baselines: int = 0
    #: toolchain cells evaluated across every suite
    cells: int = 0
    #: total drifting cells (a non-bless run with ``drift > 0`` is a
    #: regression — the CLI exits non-zero on it)
    drift: int = 0
    #: baseline files (re-)written by this pass
    blessed: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "event": self.kind,
            "baselines": self.baselines,
            "cells": self.cells,
            "drift": self.drift,
            "blessed": self.blessed,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass(frozen=True)
class CampaignFinished(CampaignEvent):
    """End of stream: the aggregates only the whole run can know."""

    kind = "campaign_finished"

    source_model: str = "rc11"
    compiled_tests: int = 0
    elapsed_seconds: float = 0.0
    #: distinct source-simulation cache keys produced by this run —
    #: carried (not just counted) so shard merges can de-duplicate
    source_sim_keys: FrozenSet[Tuple] = frozenset()
    cached_cells: int = 0
    store_hits: int = 0

    @property
    def source_simulations(self) -> int:
        return len(self.source_sim_keys)

    def as_dict(self) -> Dict[str, object]:
        return {
            "event": self.kind,
            "source_model": self.source_model,
            "compiled_tests": self.compiled_tests,
            "elapsed_seconds": self.elapsed_seconds,
            "source_simulations": self.source_simulations,
            "cached_cells": self.cached_cells,
            "store_hits": self.store_hits,
        }
