"""The streaming campaign engine: cell producers feeding a typed event stream.

This is the old ``run_campaign`` body rebuilt as a producer: the serial,
thread-pool and process-pool backends all *yield* :class:`CellFinished`
events as verdicts land (completion order, not work-list order), and
:func:`fold_events` reconstructs the deterministic
:class:`~repro.pipeline.campaign.CampaignReport` — byte-for-byte what the
batch API returned — from any complete stream.

All three campaign modes run through the one skeleton:

* ``mode="tv"`` — translation validation, one cell per (test × arch ×
  opt × compiler), evaluated by the staged toolchain's ``run_tv``;
* ``mode="differential"`` — compiler vs compiler (paper §IV-D), one
  cell per (test × profile pair), evaluated by ``run_differential``.
  Cells tally under ``(arch, "diff", "<spec_a>|<spec_b>")``, so shard
  merging, store replay and event folding need no special cases;
* ``mode="hunt"`` — the §V mutation loop (:func:`iter_hunt`): tv cells
  over a work list that *grows* round by round from verdict feedback,
  plus reduction of every positive (:mod:`repro.hunt`).

Invariants the rest of the system builds on:

* **event ordering** — a stream is ``CampaignStarted`` first,
  ``CampaignFinished`` last (absent only if the run raised); cells may
  arrive in any completion order but carry their deterministic
  work-list ``index``, so folding sorts and any complete stream of the
  same run folds identically.  Hunt streams interleave
  :class:`HuntProgress` after each round's cells (``round_index``
  partitions the cell stream) and :class:`TestReduced` before
  ``CampaignFinished``; neither changes cell tallies.
* **cache identity** — every cache key includes what names resolve *to*
  in the session (model signatures, epoch bug sets, the stage token)
  next to :meth:`CLitmus.digest` content identity, so shadowing a model
  or swapping a stage re-simulates instead of replaying stale verdicts;
  verdicts persisted before the shadowing are equally unreachable.
  Session-local definitions are refused for process pools (workers
  resolve against the globals) and for persistent stores (records key
  by name).
* **shard determinism** — ``shard=(k, n)`` evaluates exactly every n-th
  cell of the deterministic work list starting at the k-th; the n shard
  reports merge back to the unsharded report byte-for-byte.  Hunt work
  lists are dynamic, so hunts refuse cell-sharding (shard the seed
  source instead) — their determinism comes from round-synchronous
  scheduling: the same seeds and verdicts schedule the same rounds on
  every backend.
* **persistence** — each freshly computed record is stored *before* its
  event is yielded, so an interrupted campaign resumes from every
  finished cell.

Extension surface note: the executors and the per-cell tool-chain entries
are late-bound through :mod:`repro.pipeline.campaign`'s namespace
(``campaign.ThreadPoolExecutor``, ``campaign.ProcessPoolExecutor``,
``campaign.test_compilation``, ``campaign.run_differential``), which has
always been the place tests and embedders swap them.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import as_completed
from dataclasses import replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..cat.registry import ARCH_MODEL
from ..compiler.profiles import DEFAULT_VERSION, make_profile, parse_profile
from ..core.errors import ModelError, ReproError
from ..herd.enumerate import Budget
from ..herd.simulator import SimulationResult, simulate_c
from ..hunt.reduce import ReductionError, reduce_test
from ..hunt.scheduler import HuntScheduler
from ..lang.ast import CLitmus
from ..lang.printer import print_c_litmus
from ..pipeline import campaign as campaign_mod
from ..pipeline.campaign import (
    STORE_SCHEMA,
    CampaignReport,
    SourceSimCache,
    _campaign_cells,
    _profile_name,
    _shape_record,
    _verdict_record,
    merge_reports,
)
from ..pipeline.store import cell_key
from ..toolchain import ArtifactCache, Toolchain, profile_signature
from ..tools.l2c import prepare
from ..tools.mutate import DEFAULT_OPERATORS, MutationError
from .events import (
    CampaignEvent,
    CampaignFinished,
    CampaignStarted,
    CellFinished,
    HuntProgress,
    ShardMerged,
    TestReduced,
)
from .plan import CampaignPlan, PlanError

#: one work item: (test, arch, opt, compiler) for tv cells, and
#: (test, arch, "diff", "<spec_a>|<spec_b>") for differential cells —
#: one tuple shape so replay, events and folding share every code path.
Cell = Tuple[CLitmus, str, str, str]

#: per-process source caches for the ProcessPoolExecutor backend, keyed by
#: the campaign parameters that change a source simulation.
_WORKER_SOURCE_CACHES: Dict[Tuple, SourceSimCache] = {}

#: per-process staged toolchain — artifact keys are content addresses, so
#: worker-local caches stay sound and reuse compiles across that worker's
#: cells exactly like the in-process path does.  The cache is *bounded*:
#: workers live as long as the pool, and artifacts hold disassembly
#: listings and outcome sets — an unbounded cache would grow linearly
#: with the cells a worker evaluates (a 10k-test campaign would OOM).
_WORKER_TOOLCHAIN = Toolchain(cache=ArtifactCache(max_entries=512))


def _pool_cell(task: Tuple) -> Dict[str, object]:
    """Evaluate one campaign cell in a worker process.

    Runs the same tool-chain as the in-process path but returns a
    JSON-able verdict record instead of a ``TelechatResult`` — the record
    is the cross-process (and on-disk) currency.  Each worker process
    keeps its own source cache; the parent de-duplicates source
    simulations across workers by cache key.  Worker processes resolve
    models against the *global* registries — session overlays do not
    cross the process boundary (the session refuses to try).
    """
    litmus, arch, opt, compiler, source_model, augment, budget_candidates = task
    cache = _WORKER_SOURCE_CACHES.setdefault(
        (source_model, augment, budget_candidates), SourceSimCache()
    )
    source_key = (litmus.digest(), source_model, augment, budget_candidates)

    def produce_result():
        source_result = cache.get(
            source_key,
            lambda: simulate_c(
                prepare(litmus, augment=augment),
                source_model,
                budget=Budget(max_candidates=budget_candidates),
            ),
        )
        return campaign_mod.test_compilation(
            litmus,
            make_profile(compiler, opt, arch),
            source_model=source_model,
            augment=augment,
            budget=Budget(max_candidates=budget_candidates),
            source_result=source_result,
            toolchain=_WORKER_TOOLCHAIN,
        )

    misses_before = cache.misses
    record = _verdict_record(
        litmus, arch, opt, compiler, source_model, augment, budget_candidates,
        produce_result,
    )
    record["source_simulated"] = cache.misses > misses_before
    return record


def _diff_base_record(
    litmus: CLitmus,
    arch: str,
    label: str,
    spec_a: str,
    spec_b: str,
    source_model: str,
    augment: bool,
    budget_candidates: int,
) -> Dict[str, object]:
    """The identity half of a differential verdict record.

    ``label`` (``"<spec_a>|<spec_b>"``) stands in for the profile name in
    the store key, so differential verdicts persist and resume through
    the unchanged PR 2 store format.
    """
    return {
        "schema": STORE_SCHEMA,
        "digest": litmus.digest(),
        "test": litmus.name,
        "mode": "differential",
        "arch": arch,
        "opt": "diff",
        "compiler": label,
        "profile": label,
        "profile_a": spec_a,
        "profile_b": spec_b,
        "source_model": source_model,
        "augment": bool(augment),
        "budget_candidates": budget_candidates,
    }


def _diff_verdict_record(
    litmus: CLitmus,
    arch: str,
    label: str,
    spec_a: str,
    spec_b: str,
    source_model: str,
    augment: bool,
    budget_candidates: int,
    produce_result,
) -> Dict[str, object]:
    """Run one differential cell and shape its outcome as a verdict
    record — same status contract (``_shape_record``) as tv cells."""
    record = _shape_record(
        _diff_base_record(
            litmus, arch, label, spec_a, spec_b, source_model, augment,
            budget_candidates,
        ),
        produce_result,
    )
    # identity fields win over the result's name-based rendering: plan
    # profile *specs* may carry a version suffix profile names drop
    record.update(
        profile=label, profile_a=spec_a, profile_b=spec_b,
        source_model=source_model,
    )
    return record


def _pool_diff_cell(task: Tuple) -> Dict[str, object]:
    """Evaluate one differential cell in a worker process (profiles are
    re-parsed against the global registries; the session refuses to send
    session-local epochs across the process boundary)."""
    (litmus, arch, label, spec_a, spec_b, source_model, augment,
     budget_candidates) = task
    cache = _WORKER_SOURCE_CACHES.setdefault(
        (source_model, augment, budget_candidates), SourceSimCache()
    )
    source_key = (litmus.digest(), source_model, augment, budget_candidates)

    def produce_result():
        source_result = cache.get(
            source_key,
            lambda: simulate_c(
                prepare(litmus, augment=augment),
                source_model,
                budget=Budget(max_candidates=budget_candidates),
            ),
        )
        return campaign_mod.run_differential(
            litmus,
            parse_profile(spec_a),
            parse_profile(spec_b),
            source_model=source_model,
            augment=augment,
            budget=Budget(max_candidates=budget_candidates),
            source_result=source_result,
            toolchain=_WORKER_TOOLCHAIN,
        )

    misses_before = cache.misses
    record = _diff_verdict_record(
        litmus, arch, label, spec_a, spec_b, source_model, augment,
        budget_candidates, produce_result,
    )
    record["source_simulated"] = cache.misses > misses_before
    return record


def _run_pending(
    pending: List[Tuple[int, Cell]],
    plan: CampaignPlan,
    evaluate,
    pool_task,
    pool_fn,
) -> Iterator[Tuple[int, Cell, Dict[str, object]]]:
    """Stream ``(index, item, record)`` for every pending cell under the
    plan's execution backend — the one backend selector every campaign
    mode shares.

    Invariants: records arrive in *completion* order (events carry their
    deterministic index, so folding is order-independent); in the pool
    branches an unexpected exception from one cell never discards the
    verdicts of cells that still ran (everything streams, then the first
    failure re-raises); a consumer that abandons the stream early cancels
    everything still queued, so pool shutdown only waits for the cells
    already running.  Serial execution propagates failures immediately,
    the historical behaviour.
    """
    first_error: Optional[BaseException] = None
    if pending and plan.processes > 0:
        with campaign_mod.ProcessPoolExecutor(
            max_workers=plan.processes
        ) as pool:
            future_map = {}
            try:
                for index, item in pending:
                    future_map[pool.submit(pool_fn, pool_task(*item))] = (
                        index, item
                    )
                for future in as_completed(future_map):
                    index, item = future_map[future]
                    try:
                        record = future.result()
                    except Exception as exc:
                        first_error = (
                            first_error if first_error is not None else exc
                        )
                        continue
                    yield index, item, record
            finally:
                for future in future_map:
                    future.cancel()
    elif pending and plan.workers > 1:
        # the with-block shuts the pool down even when an unexpected
        # exception escapes future.result(), so workers never leak
        with campaign_mod.ThreadPoolExecutor(
            max_workers=plan.workers
        ) as pool:
            future_map = {
                pool.submit(evaluate, *item): (index, item)
                for index, item in pending
            }
            try:
                for future in as_completed(future_map):
                    index, item = future_map[future]
                    try:
                        record = future.result()
                    except Exception as exc:
                        first_error = (
                            first_error if first_error is not None else exc
                        )
                        continue
                    yield index, item, record
            finally:
                for future in future_map:  # see the process branch
                    future.cancel()
    else:
        for index, item in pending:
            yield index, item, evaluate(*item)
    if first_error is not None:
        raise first_error


class _CellContext:
    """The tv-cell evaluation context campaign and hunt runs share.

    Owns the session-resolved cache identity (model/arch/epoch
    signatures, stage token — the PR 2 rule: verdicts key by what names
    *resolve to*, never names alone), the hoisted source simulation, and
    the two faces of one tv cell: the in-process ``evaluate`` (through
    the session's result cache and toolchain) and the ``pool_task``
    tuple the process backend ships to :func:`_pool_cell`.
    """

    def __init__(self, plan: CampaignPlan, session) -> None:
        self.session = session
        self.source_model = plan.source_model
        self.augment = plan.augment
        self.budget_candidates = plan.budget_candidates
        self.source_cache = session.source_cache
        self.result_cache = session.result_cache
        self.toolchain = session.toolchain()
        self.stages_token = session.stages_token()
        self.source_sig = self.model_sig(plan.source_model)
        self._arch_sigs: Dict[str, str] = {}
        self._epoch_sigs: Dict[str, str] = {}
        #: source-simulation keys actually produced during this run
        self.simulated_sources: set = set()

    # -- cache identity ------------------------------------------------ #
    def model_sig(self, name: str) -> str:
        # an unresolvable name contributes no identity: it surfaces as
        # per-cell error records, the legacy behaviour, never an abort
        try:
            return self.session.model_signature(name)
        except ModelError:
            return ""

    def arch_sig(self, arch: str) -> str:
        if arch not in self._arch_sigs:
            self._arch_sigs[arch] = (
                self.model_sig(ARCH_MODEL[arch]) if arch in ARCH_MODEL else ""
            )
        return self._arch_sigs[arch]

    def epoch_sig(self, compiler: str) -> str:
        # the bug set behind a profile *name* is part of a verdict's
        # identity (names carry no version), so a session re-run after
        # epochs.register() re-simulates instead of replaying
        if compiler not in self._epoch_sigs:
            try:
                flags = self.session.epochs.get(
                    f"{compiler}-{DEFAULT_VERSION[compiler]}"
                )
                self._epoch_sigs[compiler] = "|".join(sorted(flags))
            except (KeyError, ReproError):
                self._epoch_sigs[compiler] = ""
        return self._epoch_sigs[compiler]

    # -- source hoisting ----------------------------------------------- #
    def source_key_of(self, litmus: CLitmus) -> Tuple:
        return (litmus.digest(), self.source_model, self.source_sig,
                self.augment, self.budget_candidates)

    def simulate_source(self, litmus: CLitmus) -> SimulationResult:
        key = self.source_key_of(litmus)

        def produce() -> SimulationResult:
            self.simulated_sources.add(key)
            return simulate_c(
                prepare(litmus, augment=self.augment),
                self.session.model(self.source_model),
                budget=Budget(max_candidates=self.budget_candidates),
            )

        return self.source_cache.get(key, produce)

    # -- one tv cell, three faces -------------------------------------- #
    def run_cell(self, litmus: CLitmus, arch: str, opt: str, compiler: str):
        # the session's epoch overlay decides which compiler bugs this
        # cell simulates (private epochs are process/store-guarded by
        # the engine entry points)
        profile = make_profile(
            compiler, opt, arch, epochs=self.session.epochs
        )
        return self.result_cache.get(
            (litmus.digest(), profile.name, self.source_model,
             self.source_sig, self.arch_sig(arch), self.epoch_sig(compiler),
             self.augment, self.budget_candidates, self.stages_token),
            lambda: campaign_mod.test_compilation(
                litmus,
                profile,
                source_model=self.session.model(self.source_model),
                target_model=self.session.arch_model(profile.arch),
                augment=self.augment,
                budget=Budget(max_candidates=self.budget_candidates),
                source_result=self.simulate_source(litmus),
                toolchain=self.toolchain,
            ),
        )

    def evaluate(
        self, litmus: CLitmus, arch: str, opt: str, compiler: str
    ) -> Dict[str, object]:
        return _verdict_record(
            litmus, arch, opt, compiler, self.source_model, self.augment,
            self.budget_candidates,
            lambda: self.run_cell(litmus, arch, opt, compiler),
        )

    def pool_task(
        self, litmus: CLitmus, arch: str, opt: str, compiler: str
    ) -> Tuple:
        return (litmus, arch, opt, compiler, self.source_model, self.augment,
                self.budget_candidates)


def _lint_tests(tests, plan: CampaignPlan, what: str = "test") -> None:
    """Fail fast on ill-formed litmus tests (``plan.lint``).

    Runs :mod:`repro.analysis.litmuslint` over every materialised test;
    error-severity findings (vacuous conditions, malformed threads)
    raise a :class:`PlanError` carrying the diagnostics — before any
    cell is scheduled, so a bad corpus costs nothing but the lint.
    """
    if not plan.lint:
        return
    from ..analysis import Severity, lint_litmus

    errors = []
    for litmus in tests:
        errors.extend(
            d for d in lint_litmus(litmus, source_name=litmus.name)
            if d.severity is Severity.ERROR
        )
    if errors:
        rendered = "; ".join(d.render() for d in errors[:5])
        more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
        exc = PlanError(
            f"{len(errors)} {what}(s) failed static analysis — fix the "
            f"corpus or pass lint=False: {rendered}{more}"
        )
        exc.diagnostics = tuple(errors)
        raise exc


def _check_session_constraints(plan: CampaignPlan, session) -> None:
    """The store/process-pool guards every campaign mode enforces."""
    if plan.resume and session.store is None:
        raise PlanError("resume=True needs a store to resume from")
    if plan.processes > 0 and session.caches_explicit:
        raise PlanError(
            "in-memory source/result caches are not shared with worker "
            "processes; persist across process-pool campaigns with a store"
        )
    local = sorted(
        session.local_model_names(plan)
        | session.local_epoch_names(plan)
        | session.local_stage_names(plan)
    )
    if local and plan.processes > 0:
        raise PlanError(
            f"session-registered definitions {local} are not visible to "
            f"worker processes; register them globally or use thread "
            f"workers"
        )
    if local and session.store is not None:
        # store records key verdicts by model/profile *name* (the PR 2
        # on-disk format) — a session-local definition behind one of
        # those names would poison, or replay poison from, the store
        raise PlanError(
            f"session-registered definitions {local} cannot be keyed in "
            f"a persistent store (records key by name); register them "
            f"globally or run this session without a store"
        )


def iter_campaign(plan: CampaignPlan, session) -> Iterator[CampaignEvent]:
    """Run ``plan`` inside ``session``, yielding events as cells finish.

    Validation and work-list construction happen eagerly (errors raise
    here, not at first ``next()``); simulation happens lazily as the
    returned stream is consumed.
    """
    if plan.mode == "hunt":
        return iter_hunt(plan, session)
    differential = plan.mode == "differential"
    _check_session_constraints(plan, session)

    # differential mode: resolve the profile pairs eagerly — an
    # unresolvable or cross-architecture pairing is a plan mistake, not
    # a per-cell error (there is nothing meaningful left to run)
    pair_map: Dict[str, Tuple] = {}
    if differential:
        resolved_profiles = []
        for spec in plan.profiles:
            try:
                resolved_profiles.append((spec, session.profile(spec)))
            except ReproError as exc:
                raise PlanError(
                    f"differential profile {spec!r} failed to resolve: {exc}"
                )
        arches_used = sorted({p.arch for _, p in resolved_profiles})
        if len(arches_used) != 1:
            raise PlanError(
                f"differential testing requires a common architecture; "
                f"profiles target {arches_used}"
            )
        diff_arch = arches_used[0]
        for (spec_a, prof_a), (spec_b, prof_b) in itertools.combinations(
            resolved_profiles, 2
        ):
            pair_map[f"{spec_a}|{spec_b}"] = (spec_a, prof_a, spec_b, prof_b)

    tests = plan.resolve_tests(shapes=session.shapes)
    _lint_tests(tests, plan)
    store = session.store
    result_cache = session.result_cache
    ctx = _CellContext(plan, session)
    source_model = plan.source_model
    augment = plan.augment
    budget_candidates = plan.budget_candidates

    if differential:
        work: List[Cell] = [
            (litmus, diff_arch, "diff", label)
            for litmus in tests
            for label in pair_map
        ]
    else:
        work = _campaign_cells(
            tests, plan.arches, plan.opts, plan.compilers
        )
    if plan.shard is not None:
        shard_k, shard_n = plan.shard
        work = work[shard_k::shard_n]

    start = time.perf_counter()
    result_hits_before = result_cache.hits

    def run_diff_cell(litmus: CLitmus, arch: str, label: str):
        spec_a, prof_a, spec_b, prof_b = pair_map[label]
        return result_cache.get(
            (litmus.digest(), "diff", label, profile_signature(prof_a),
             profile_signature(prof_b), source_model, ctx.source_sig,
             ctx.arch_sig(arch), augment, budget_candidates,
             ctx.stages_token),
            lambda: campaign_mod.run_differential(
                litmus,
                prof_a,
                prof_b,
                source_model=session.model(source_model),
                target_model=session.arch_model(arch),
                augment=augment,
                budget=Budget(max_candidates=budget_candidates),
                source_result=ctx.simulate_source(litmus),
                toolchain=ctx.toolchain,
            ),
        )

    def evaluate(
        litmus: CLitmus, arch: str, opt: str, compiler: str
    ) -> Dict[str, object]:
        if differential:
            spec_a, _, spec_b, _ = pair_map[compiler]
            return _diff_verdict_record(
                litmus, arch, compiler, spec_a, spec_b, source_model,
                augment, budget_candidates,
                lambda: run_diff_cell(litmus, arch, compiler),
            )
        return ctx.evaluate(litmus, arch, opt, compiler)

    def pool_task(litmus: CLitmus, arch: str, opt: str, compiler: str) -> Tuple:
        if differential:
            spec_a, _, spec_b, _ = pair_map[compiler]
            return (litmus, arch, compiler, spec_a, spec_b, source_model,
                    augment, budget_candidates)
        return ctx.pool_task(litmus, arch, opt, compiler)

    pool_fn = _pool_diff_cell if differential else _pool_cell

    def store_profile_label(arch: str, opt: str, compiler: str) -> str:
        if differential:
            return compiler  # the "<spec_a>|<spec_b>" pair label
        return _profile_name(compiler, opt, arch)

    # replay whatever the persistent store already knows (eager: cheap,
    # and the CampaignStarted event reports exact pending counts)
    replayed: List[Tuple[int, Cell, Dict[str, object]]] = []
    pending: List[Tuple[int, Cell]] = []
    for index, (litmus, arch, opt, compiler) in enumerate(work):
        if store is not None and plan.resume:
            key = cell_key(
                litmus.digest(), store_profile_label(arch, opt, compiler),
                source_model, augment, budget_candidates,
            )
            stored = store.get(key)
            if stored is not None:
                replayed.append((index, (litmus, arch, opt, compiler), stored))
                continue
        pending.append((index, (litmus, arch, opt, compiler)))

    def cell_event(
        index: int, item: Cell, record: Dict[str, object], from_store: bool
    ) -> CellFinished:
        litmus, arch, opt, compiler = item
        return CellFinished(
            index=index,
            test=litmus.name,
            digest=str(record.get("digest", "")),
            arch=arch,
            opt=opt,
            compiler=compiler,
            record=record,
            from_store=from_store,
            shard=plan.shard,
            mode=plan.mode,
        )

    def events() -> Iterator[CampaignEvent]:
        ok_cells = 0
        yield CampaignStarted(
            source_model=source_model,
            tests_input=len(tests),
            cells_total=len(work),
            pending=len(pending),
            workers=plan.workers,
            processes=plan.processes,
            shard=plan.shard,
        )
        for index, item, record in replayed:
            if record.get("status") == "ok":
                ok_cells += 1
            yield cell_event(index, item, record, True)

        def finish(
            index: int, item: Cell, record: Dict[str, object]
        ) -> CellFinished:
            """Land one freshly computed verdict — persisting it *now*,
            so an interrupted campaign resumes from every finished cell."""
            nonlocal ok_cells
            if store is not None:
                store.put(record)
            if record.get("status") == "ok":
                ok_cells += 1
            return cell_event(index, item, record, False)

        # evaluate the cells the store could not answer (see
        # _run_pending for the error/cancellation contract)
        producer = _run_pending(pending, plan, evaluate, pool_task, pool_fn)
        try:
            for index, item, record in producer:
                if record.get("source_simulated"):
                    # a worker process simulated this source; fold it
                    # into the run's de-duplicated source-sim tally
                    ctx.simulated_sources.add(ctx.source_key_of(item[0]))
                yield finish(index, item, record)
        finally:
            # a consumer that abandons the stream early (fuzzing loops
            # break at the first positive) must not pay for the whole
            # campaign: closing the producer cancels everything queued
            producer.close()

        yield CampaignFinished(
            source_model=source_model,
            compiled_tests=ok_cells,
            elapsed_seconds=time.perf_counter() - start,
            source_sim_keys=frozenset(ctx.simulated_sources),
            cached_cells=result_cache.hits - result_hits_before,
            store_hits=len(replayed),
        )

    return events()


def iter_hunt(plan: CampaignPlan, session) -> Iterator[CampaignEvent]:
    """Run a ``mode="hunt"`` plan: feedback-driven mutation rounds plus
    automatic reduction of every positive (see :mod:`repro.hunt`).

    Round 0 evaluates the plan's tests (the *seeds*) over the tv sweep
    axes; each later round mutates what the verdicts so far suggest —
    positives first, deduplicated by content digest — up to
    ``mutation_rounds`` rounds of at most ``mutation_limit`` new mutants.
    After the last round every distinct positive is delta-debugged to a
    1-minimal reproducer through the session's cached toolchain, emitted
    as a :class:`TestReduced` event and persisted (store records carry
    ``mode="hunt"`` plus the mutation and reduction lineage).

    Determinism: scheduling depends only on seeds and verdicts, indexes
    are assigned in schedule order, and cell evaluation is the same
    tv-cell contract as ``mode="tv"`` — so the same hunt folds to the
    same report on the serial, thread-pool and process-pool backends.
    """
    if plan.mode != "hunt":
        raise PlanError(f'iter_hunt needs mode="hunt", got {plan.mode!r}')
    _check_session_constraints(plan, session)
    seeds = plan.resolve_tests(shapes=session.shapes)
    if not seeds:
        raise PlanError("a hunt needs at least one seed test")
    _lint_tests(seeds, plan, what="seed")
    operators = (
        plan.mutations if plan.mutations is not None else DEFAULT_OPERATORS
    )
    try:
        for name in operators:
            session.mutations.resolve(name)
    except MutationError as exc:
        raise PlanError(f"bad hunt mutations: {exc}")

    scheduler = HuntScheduler(
        seeds,
        operators=operators,
        registry=session.mutations,
        round_limit=plan.mutation_limit,
    )
    ctx = _CellContext(plan, session)
    store = session.store
    result_cache = session.result_cache
    source_model = plan.source_model
    augment = plan.augment
    budget_candidates = plan.budget_candidates
    start = time.perf_counter()
    result_hits_before = result_cache.hits

    def annotate(record: Dict[str, object], digest: str) -> Dict[str, object]:
        """Stamp a cell record with hunt mode + mutation lineage (records
        from worker processes arrive tv-shaped; the scheduler state never
        leaves this process)."""
        record = dict(record, mode="hunt")
        record.update(scheduler.lineage(digest).as_record())
        return record

    def split_replay(work: List[Cell], base: int):
        """Partition one round's work into store-replayed and pending
        cells, with indexes continuing from ``base``."""
        replayed: List[Tuple[int, Cell, Dict[str, object]]] = []
        pending: List[Tuple[int, Cell]] = []
        for offset, (litmus, arch, opt, compiler) in enumerate(work):
            if store is not None and plan.resume:
                key = cell_key(
                    litmus.digest(), _profile_name(compiler, opt, arch),
                    source_model, augment, budget_candidates,
                )
                stored = store.get(key)
                if stored is not None:
                    replayed.append(
                        (base + offset, (litmus, arch, opt, compiler), stored)
                    )
                    continue
            pending.append((base + offset, (litmus, arch, opt, compiler)))
        return replayed, pending

    def cell_event(
        index: int, item: Cell, record: Dict[str, object], from_store: bool
    ) -> CellFinished:
        litmus, arch, opt, compiler = item
        return CellFinished(
            index=index,
            test=litmus.name,
            digest=str(record.get("digest", "")),
            arch=arch,
            opt=opt,
            compiler=compiler,
            record=record,
            from_store=from_store,
            shard=None,
            mode="hunt",
        )

    def reduction_check(profile):
        """The reduction oracle: "run_tv still says positive", straight
        through the session's toolchain (per-stage cache) — deliberately
        *not* through the result cache, whose hit counter feeds report
        parity and must only ever count campaign cells."""
        def check(candidate: CLitmus) -> bool:
            result = campaign_mod.test_compilation(
                candidate,
                profile,
                source_model=session.model(source_model),
                target_model=session.arch_model(profile.arch),
                augment=augment,
                budget=Budget(max_candidates=budget_candidates),
                toolchain=ctx.toolchain,
            )
            return result.verdict == "positive"
        return check

    def events() -> Iterator[CampaignEvent]:
        ok_cells = 0
        store_hits = 0
        next_index = 0
        round_index = 0
        positive_digests: set = set()
        #: first positive cell per digest, in index order — what gets
        #: reduced (deterministic across backends and completion orders)
        positive_cells: List[Tuple[int, Cell]] = []
        round_tests = scheduler.initial()

        first_round = True
        while round_tests:
            work = _campaign_cells(
                round_tests, plan.arches, plan.opts, plan.compilers
            )
            replayed, pending = split_replay(work, next_index)
            next_index += len(work)
            store_hits += len(replayed)
            if first_round:
                first_round = False
                yield CampaignStarted(
                    source_model=source_model,
                    tests_input=len(seeds),
                    cells_total=len(work),
                    pending=len(pending),
                    workers=plan.workers,
                    processes=plan.processes,
                    shard=None,
                )

            #: every positive cell of this round, whatever its digest —
            #: the per-digest representative is chosen *after* the round,
            #: by index, so completion order (thread/process backends)
            #: cannot change which cell gets reduced
            round_positives: List[Tuple[int, Cell]] = []

            def land(index: int, item: Cell, record: Dict[str, object]):
                nonlocal ok_cells
                if record.get("status") == "ok":
                    ok_cells += 1
                if record.get("verdict") == "positive":
                    round_positives.append((index, item))

            for index, item, record in replayed:
                land(index, item, record)
                yield cell_event(index, item, record, True)

            producer = _run_pending(
                pending, plan, ctx.evaluate, ctx.pool_task, _pool_cell
            )
            try:
                for index, item, record in producer:
                    if record.get("source_simulated"):
                        ctx.simulated_sources.add(ctx.source_key_of(item[0]))
                    record = annotate(record, item[0].digest())
                    if store is not None:
                        store.put(record)
                    land(index, item, record)
                    yield cell_event(index, item, record, False)
            finally:
                producer.close()

            # events may have landed in completion order; reduction (and
            # the next round's feedback) must not depend on it
            for index, item in sorted(round_positives):
                digest = item[0].digest()
                if digest not in positive_digests:
                    positive_digests.add(digest)
                    positive_cells.append((index, item))

            if round_index < plan.mutation_rounds:
                scheduled = scheduler.next_round(positive_digests)
            else:
                scheduled = []
            yield HuntProgress(
                round_index=round_index,
                cells=len(work),
                positives=len(positive_digests),
                scheduled=len(scheduled),
                unique_tests=scheduler.unique_tests,
                duplicates_skipped=scheduler.duplicates_skipped,
            )
            round_tests = scheduled
            round_index += 1

        if plan.reduce:
            for index, item in positive_cells:
                litmus, arch, opt, compiler = item
                digest = litmus.digest()
                profile = make_profile(
                    compiler, opt, arch, epochs=session.epochs
                )
                try:
                    reduction = reduce_test(litmus, reduction_check(profile))
                except ReductionError:
                    # the stored verdict said positive but the oracle
                    # disagrees (e.g. a stale store) — nothing to reduce
                    continue
                record = _verdict_record(
                    reduction.reduced, arch, opt, compiler, source_model,
                    augment, budget_candidates,
                    lambda: campaign_mod.test_compilation(
                        reduction.reduced,
                        profile,
                        source_model=session.model(source_model),
                        target_model=session.arch_model(profile.arch),
                        augment=augment,
                        budget=Budget(max_candidates=budget_candidates),
                        toolchain=ctx.toolchain,
                    ),
                )
                record["mode"] = "hunt"
                record.update(reduction.lineage())
                # the stored reproducer is self-contained: the printed C
                # source rides along (digest-preserving, like write_suite),
                # so a bug report needs nothing but the store record
                record["source"] = print_c_litmus(reduction.reduced)
                if store is not None:
                    store.put(record)
                yield TestReduced(
                    test=litmus.name,
                    digest=digest,
                    reduced_name=reduction.reduced.name,
                    reduced_digest=reduction.reduced.digest(),
                    original_statements=reduction.original_statements,
                    reduced_statements=reduction.reduced_statements,
                    steps=len(reduction.steps),
                    checks=reduction.checks,
                    record=record,
                )

        yield CampaignFinished(
            source_model=source_model,
            compiled_tests=ok_cells,
            elapsed_seconds=time.perf_counter() - start,
            source_sim_keys=frozenset(ctx.simulated_sources),
            cached_cells=result_cache.hits - result_hits_before,
            store_hits=store_hits,
        )

    return events()


def iter_sharded(
    plan: CampaignPlan, session, shards: int
) -> Iterator[CampaignEvent]:
    """Run every shard of ``plan`` through ``session`` sequentially,
    yielding each shard's events plus a :class:`ShardMerged` checkpoint
    after each — the streaming form of run-shards-then-``merge_reports``.
    """
    # resolve the test list once: every shard partitions the same
    # materialised suite instead of re-running diy generation per shard
    resolved = replace(
        plan, tests=plan.resolve_tests(shapes=session.shapes), config=None
    )
    sub_plans = resolved.split(shards)

    def events() -> Iterator[CampaignEvent]:
        for sub in sub_plans:
            stream = CampaignStream(iter_campaign(sub, session))
            for event in stream:
                yield event
            yield ShardMerged(shard=sub.shard, report=stream.report())

    return events()


def fold_events(events: Iterable[CampaignEvent]) -> CampaignReport:
    """Fold a complete event stream back into the batch report.

    The reconstruction is exact: cells are tallied in work-list order
    (events carry their index, so any completion order folds the same),
    and the aggregates only the run can know come from
    :class:`CampaignFinished`.  A stream containing :class:`ShardMerged`
    checkpoints folds through :func:`merge_reports` instead.  Holds for
    every mode: differential cells tally under their ``(arch, "diff",
    pair)`` key with the same verdict vocabulary, and hunt streams fold
    by their cells alone — :class:`HuntProgress` and
    :class:`TestReduced` are annotations, ignored here.
    """
    started: Optional[CampaignStarted] = None
    finished: Optional[CampaignFinished] = None
    cells: List[CellFinished] = []
    shard_reports: List[CampaignReport] = []
    for event in events:
        if isinstance(event, CellFinished):
            cells.append(event)
        elif isinstance(event, ShardMerged):
            shard_reports.append(event.report)
        elif isinstance(event, CampaignStarted):
            started = started if started is not None else event
        elif isinstance(event, CampaignFinished):
            finished = event
    if shard_reports:
        return merge_reports(shard_reports)
    if started is None or finished is None:
        raise ValueError(
            "cannot fold an incomplete campaign stream (missing "
            "CampaignStarted/CampaignFinished)"
        )
    report = CampaignReport(
        source_model=started.source_model,
        workers=started.workers,
        processes=started.processes,
        shard=started.shard,
    )
    report.tests_input = started.tests_input
    for event in sorted(cells, key=lambda e: e.index):
        cell = report.cell(event.arch, event.opt, event.compiler)
        status = event.record["status"]
        if status == "timeout":
            cell.timeouts += 1
            continue
        if status == "error":
            cell.errors += 1
            continue
        report.compiled_tests += 1
        verdict = str(event.record["verdict"])
        cell.record(verdict)
        if verdict == "positive":
            report.positives.append(
                (event.test, event.arch, event.opt, event.compiler)
            )
    report.source_sim_keys = finished.source_sim_keys
    report.source_simulations = len(finished.source_sim_keys)
    report.cached_cells = finished.cached_cells
    report.store_hits = finished.store_hits
    report.elapsed_seconds = finished.elapsed_seconds
    return report


class CampaignStream:
    """An iterator of campaign events that can fold itself into a report.

    Iterate it for live events; call :meth:`report` at any point to drain
    whatever remains and get the batch :class:`CampaignReport`.  Events
    already consumed are remembered, so iterate-then-fold never loses
    cells.
    """

    def __init__(self, events: Iterator[CampaignEvent]) -> None:
        self._events = events
        self._seen: List[CampaignEvent] = []

    def __iter__(self) -> Iterator[CampaignEvent]:
        for event in self._events:
            self._seen.append(event)
            yield event

    def report(self) -> CampaignReport:
        for _ in self:
            pass  # drain whatever the consumer has not pulled yet
        return fold_events(self._seen)
