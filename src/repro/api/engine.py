"""The streaming campaign engine: cell producers feeding a typed event stream.

This is the old ``run_campaign`` body rebuilt as a producer: the serial,
thread-pool and process-pool backends all *yield* :class:`CellFinished`
events as verdicts land (completion order, not work-list order), and
:func:`fold_events` reconstructs the deterministic
:class:`~repro.pipeline.campaign.CampaignReport` — byte-for-byte what the
batch API returned — from any complete stream.

Both campaign modes run through the one skeleton:

* ``mode="tv"`` — translation validation, one cell per (test × arch ×
  opt × compiler), evaluated by the staged toolchain's ``run_tv``;
* ``mode="differential"`` — compiler vs compiler (paper §IV-D), one
  cell per (test × profile pair), evaluated by ``run_differential``.
  Cells tally under ``(arch, "diff", "<spec_a>|<spec_b>")``, so shard
  merging, store replay and event folding need no special cases.

Cell evaluation routes through the session's
:class:`~repro.toolchain.Toolchain`, so the per-stage artifact cache is
shared across cells, modes and models — a 2-profile differential
campaign compiles each (test, profile) exactly once, and a model sweep
over the same suite reuses every compiled litmus.

Extension surface note: the executors and the per-cell tool-chain entries
are late-bound through :mod:`repro.pipeline.campaign`'s namespace
(``campaign.ThreadPoolExecutor``, ``campaign.ProcessPoolExecutor``,
``campaign.test_compilation``, ``campaign.run_differential``), which has
always been the place tests and embedders swap them.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import as_completed
from dataclasses import replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..cat.registry import ARCH_MODEL
from ..compiler.profiles import DEFAULT_VERSION, make_profile, parse_profile
from ..core.errors import ModelError, ReproError
from ..herd.enumerate import Budget
from ..herd.simulator import SimulationResult, simulate_c
from ..lang.ast import CLitmus
from ..pipeline import campaign as campaign_mod
from ..pipeline.campaign import (
    STORE_SCHEMA,
    CampaignReport,
    SourceSimCache,
    _campaign_cells,
    _profile_name,
    _shape_record,
    _verdict_record,
    merge_reports,
)
from ..pipeline.store import cell_key
from ..toolchain import ArtifactCache, Toolchain, profile_signature
from ..tools.l2c import prepare
from .events import (
    CampaignEvent,
    CampaignFinished,
    CampaignStarted,
    CellFinished,
    ShardMerged,
)
from .plan import CampaignPlan, PlanError

#: one work item: (test, arch, opt, compiler) for tv cells, and
#: (test, arch, "diff", "<spec_a>|<spec_b>") for differential cells —
#: one tuple shape so replay, events and folding share every code path.
Cell = Tuple[CLitmus, str, str, str]

#: per-process source caches for the ProcessPoolExecutor backend, keyed by
#: the campaign parameters that change a source simulation.
_WORKER_SOURCE_CACHES: Dict[Tuple, SourceSimCache] = {}

#: per-process staged toolchain — artifact keys are content addresses, so
#: worker-local caches stay sound and reuse compiles across that worker's
#: cells exactly like the in-process path does.  The cache is *bounded*:
#: workers live as long as the pool, and artifacts hold disassembly
#: listings and outcome sets — an unbounded cache would grow linearly
#: with the cells a worker evaluates (a 10k-test campaign would OOM).
_WORKER_TOOLCHAIN = Toolchain(cache=ArtifactCache(max_entries=512))


def _pool_cell(task: Tuple) -> Dict[str, object]:
    """Evaluate one campaign cell in a worker process.

    Runs the same tool-chain as the in-process path but returns a
    JSON-able verdict record instead of a ``TelechatResult`` — the record
    is the cross-process (and on-disk) currency.  Each worker process
    keeps its own source cache; the parent de-duplicates source
    simulations across workers by cache key.  Worker processes resolve
    models against the *global* registries — session overlays do not
    cross the process boundary (the session refuses to try).
    """
    litmus, arch, opt, compiler, source_model, augment, budget_candidates = task
    cache = _WORKER_SOURCE_CACHES.setdefault(
        (source_model, augment, budget_candidates), SourceSimCache()
    )
    source_key = (litmus.digest(), source_model, augment, budget_candidates)

    def produce_result():
        source_result = cache.get(
            source_key,
            lambda: simulate_c(
                prepare(litmus, augment=augment),
                source_model,
                budget=Budget(max_candidates=budget_candidates),
            ),
        )
        return campaign_mod.test_compilation(
            litmus,
            make_profile(compiler, opt, arch),
            source_model=source_model,
            augment=augment,
            budget=Budget(max_candidates=budget_candidates),
            source_result=source_result,
            toolchain=_WORKER_TOOLCHAIN,
        )

    misses_before = cache.misses
    record = _verdict_record(
        litmus, arch, opt, compiler, source_model, augment, budget_candidates,
        produce_result,
    )
    record["source_simulated"] = cache.misses > misses_before
    return record


def _diff_base_record(
    litmus: CLitmus,
    arch: str,
    label: str,
    spec_a: str,
    spec_b: str,
    source_model: str,
    augment: bool,
    budget_candidates: int,
) -> Dict[str, object]:
    """The identity half of a differential verdict record.

    ``label`` (``"<spec_a>|<spec_b>"``) stands in for the profile name in
    the store key, so differential verdicts persist and resume through
    the unchanged PR 2 store format.
    """
    return {
        "schema": STORE_SCHEMA,
        "digest": litmus.digest(),
        "test": litmus.name,
        "mode": "differential",
        "arch": arch,
        "opt": "diff",
        "compiler": label,
        "profile": label,
        "profile_a": spec_a,
        "profile_b": spec_b,
        "source_model": source_model,
        "augment": bool(augment),
        "budget_candidates": budget_candidates,
    }


def _diff_verdict_record(
    litmus: CLitmus,
    arch: str,
    label: str,
    spec_a: str,
    spec_b: str,
    source_model: str,
    augment: bool,
    budget_candidates: int,
    produce_result,
) -> Dict[str, object]:
    """Run one differential cell and shape its outcome as a verdict
    record — same status contract (``_shape_record``) as tv cells."""
    record = _shape_record(
        _diff_base_record(
            litmus, arch, label, spec_a, spec_b, source_model, augment,
            budget_candidates,
        ),
        produce_result,
    )
    # identity fields win over the result's name-based rendering: plan
    # profile *specs* may carry a version suffix profile names drop
    record.update(
        profile=label, profile_a=spec_a, profile_b=spec_b,
        source_model=source_model,
    )
    return record


def _pool_diff_cell(task: Tuple) -> Dict[str, object]:
    """Evaluate one differential cell in a worker process (profiles are
    re-parsed against the global registries; the session refuses to send
    session-local epochs across the process boundary)."""
    (litmus, arch, label, spec_a, spec_b, source_model, augment,
     budget_candidates) = task
    cache = _WORKER_SOURCE_CACHES.setdefault(
        (source_model, augment, budget_candidates), SourceSimCache()
    )
    source_key = (litmus.digest(), source_model, augment, budget_candidates)

    def produce_result():
        source_result = cache.get(
            source_key,
            lambda: simulate_c(
                prepare(litmus, augment=augment),
                source_model,
                budget=Budget(max_candidates=budget_candidates),
            ),
        )
        return campaign_mod.run_differential(
            litmus,
            parse_profile(spec_a),
            parse_profile(spec_b),
            source_model=source_model,
            augment=augment,
            budget=Budget(max_candidates=budget_candidates),
            source_result=source_result,
            toolchain=_WORKER_TOOLCHAIN,
        )

    misses_before = cache.misses
    record = _diff_verdict_record(
        litmus, arch, label, spec_a, spec_b, source_model, augment,
        budget_candidates, produce_result,
    )
    record["source_simulated"] = cache.misses > misses_before
    return record


def iter_campaign(plan: CampaignPlan, session) -> Iterator[CampaignEvent]:
    """Run ``plan`` inside ``session``, yielding events as cells finish.

    Validation and work-list construction happen eagerly (errors raise
    here, not at first ``next()``); simulation happens lazily as the
    returned stream is consumed.
    """
    differential = plan.mode == "differential"
    if plan.resume and session.store is None:
        raise PlanError("resume=True needs a store to resume from")
    if plan.processes > 0 and session.caches_explicit:
        raise PlanError(
            "in-memory source/result caches are not shared with worker "
            "processes; persist across process-pool campaigns with a store"
        )
    local = sorted(
        session.local_model_names(plan)
        | session.local_epoch_names(plan)
        | session.local_stage_names(plan)
    )
    if local and plan.processes > 0:
        raise PlanError(
            f"session-registered definitions {local} are not visible to "
            f"worker processes; register them globally or use thread "
            f"workers"
        )
    if local and session.store is not None:
        # store records key verdicts by model/profile *name* (the PR 2
        # on-disk format) — a session-local definition behind one of
        # those names would poison, or replay poison from, the store
        raise PlanError(
            f"session-registered definitions {local} cannot be keyed in "
            f"a persistent store (records key by name); register them "
            f"globally or run this session without a store"
        )

    # differential mode: resolve the profile pairs eagerly — an
    # unresolvable or cross-architecture pairing is a plan mistake, not
    # a per-cell error (there is nothing meaningful left to run)
    pair_map: Dict[str, Tuple] = {}
    if differential:
        resolved_profiles = []
        for spec in plan.profiles:
            try:
                resolved_profiles.append((spec, session.profile(spec)))
            except ReproError as exc:
                raise PlanError(
                    f"differential profile {spec!r} failed to resolve: {exc}"
                )
        arches_used = sorted({p.arch for _, p in resolved_profiles})
        if len(arches_used) != 1:
            raise PlanError(
                f"differential testing requires a common architecture; "
                f"profiles target {arches_used}"
            )
        diff_arch = arches_used[0]
        for (spec_a, prof_a), (spec_b, prof_b) in itertools.combinations(
            resolved_profiles, 2
        ):
            pair_map[f"{spec_a}|{spec_b}"] = (spec_a, prof_a, spec_b, prof_b)

    tests = plan.resolve_tests(shapes=session.shapes)
    store = session.store
    source_cache = session.source_cache
    result_cache = session.result_cache
    toolchain = session.toolchain()
    source_model = plan.source_model
    augment = plan.augment
    budget_candidates = plan.budget_candidates

    if differential:
        work: List[Cell] = [
            (litmus, diff_arch, "diff", label)
            for litmus in tests
            for label in pair_map
        ]
    else:
        work = _campaign_cells(
            tests, plan.arches, plan.opts, plan.compilers
        )
    if plan.shard is not None:
        shard_k, shard_n = plan.shard
        work = work[shard_k::shard_n]

    start = time.perf_counter()
    result_hits_before = result_cache.hits

    # cache identity includes what the model *names* resolve to in this
    # session (the PR 2 rule — content, never names alone), so a session
    # that shadows "rc11" can never replay verdicts computed under the
    # global rc11, and shared cross-session caches stay sound.  An
    # unresolvable name contributes no identity: it surfaces as per-cell
    # error records, the legacy behaviour, not an up-front abort.
    def model_sig(name: str) -> str:
        try:
            return session.model_signature(name)
        except ModelError:
            return ""

    source_sig = model_sig(source_model)
    arch_sigs: Dict[str, str] = {}

    def arch_sig(arch: str) -> str:
        if arch not in arch_sigs:
            arch_sigs[arch] = (
                model_sig(ARCH_MODEL[arch]) if arch in ARCH_MODEL else ""
            )
        return arch_sigs[arch]

    # ...and likewise for compiler epochs: the bug set behind a profile
    # *name* is part of a verdict's identity (profile names carry no
    # version), so a session re-run after epochs.register() re-simulates
    epoch_sigs: Dict[str, str] = {}

    def epoch_sig(compiler: str) -> str:
        if compiler not in epoch_sigs:
            try:
                flags = session.epochs.get(
                    f"{compiler}-{DEFAULT_VERSION[compiler]}"
                )
                epoch_sigs[compiler] = "|".join(sorted(flags))
            except (KeyError, ReproError):
                epoch_sigs[compiler] = ""
        return epoch_sigs[compiler]

    #: source-simulation keys actually produced during *this* run
    simulated_sources: set = set()

    def source_key_of(litmus: CLitmus) -> Tuple:
        return (litmus.digest(), source_model, source_sig, augment,
                budget_candidates)

    def simulate_source(litmus: CLitmus) -> SimulationResult:
        key = source_key_of(litmus)

        def produce() -> SimulationResult:
            simulated_sources.add(key)
            return simulate_c(
                prepare(litmus, augment=augment),
                session.model(source_model),
                budget=Budget(max_candidates=budget_candidates),
            )

        return source_cache.get(key, produce)

    # the result cache must never replay cells computed by a stage set
    # the session has since swapped out — the token is part of the key
    stages_token = session.stages_token()

    def run_cell(litmus: CLitmus, arch: str, opt: str, compiler: str):
        # the session's epoch overlay decides which compiler bugs this
        # cell simulates (private epochs are process/store-guarded above)
        profile = make_profile(compiler, opt, arch, epochs=session.epochs)
        return result_cache.get(
            (litmus.digest(), profile.name, source_model, source_sig,
             arch_sig(arch), epoch_sig(compiler), augment,
             budget_candidates, stages_token),
            lambda: campaign_mod.test_compilation(
                litmus,
                profile,
                source_model=session.model(source_model),
                target_model=session.arch_model(profile.arch),
                augment=augment,
                budget=Budget(max_candidates=budget_candidates),
                source_result=simulate_source(litmus),
                toolchain=toolchain,
            ),
        )

    def run_diff_cell(litmus: CLitmus, arch: str, label: str):
        spec_a, prof_a, spec_b, prof_b = pair_map[label]
        return result_cache.get(
            (litmus.digest(), "diff", label, profile_signature(prof_a),
             profile_signature(prof_b), source_model, source_sig,
             arch_sig(arch), augment, budget_candidates, stages_token),
            lambda: campaign_mod.run_differential(
                litmus,
                prof_a,
                prof_b,
                source_model=session.model(source_model),
                target_model=session.arch_model(arch),
                augment=augment,
                budget=Budget(max_candidates=budget_candidates),
                source_result=simulate_source(litmus),
                toolchain=toolchain,
            ),
        )

    def evaluate(
        litmus: CLitmus, arch: str, opt: str, compiler: str
    ) -> Dict[str, object]:
        if differential:
            spec_a, _, spec_b, _ = pair_map[compiler]
            return _diff_verdict_record(
                litmus, arch, compiler, spec_a, spec_b, source_model,
                augment, budget_candidates,
                lambda: run_diff_cell(litmus, arch, compiler),
            )
        return _verdict_record(
            litmus, arch, opt, compiler, source_model, augment,
            budget_candidates,
            lambda: run_cell(litmus, arch, opt, compiler),
        )

    def pool_task(litmus: CLitmus, arch: str, opt: str, compiler: str) -> Tuple:
        if differential:
            spec_a, _, spec_b, _ = pair_map[compiler]
            return (litmus, arch, compiler, spec_a, spec_b, source_model,
                    augment, budget_candidates)
        return (litmus, arch, opt, compiler, source_model, augment,
                budget_candidates)

    pool_fn = _pool_diff_cell if differential else _pool_cell

    def store_profile_label(arch: str, opt: str, compiler: str) -> str:
        if differential:
            return compiler  # the "<spec_a>|<spec_b>" pair label
        return _profile_name(compiler, opt, arch)

    # replay whatever the persistent store already knows (eager: cheap,
    # and the CampaignStarted event reports exact pending counts)
    replayed: List[Tuple[int, Cell, Dict[str, object]]] = []
    pending: List[Tuple[int, Cell]] = []
    for index, (litmus, arch, opt, compiler) in enumerate(work):
        if store is not None and plan.resume:
            key = cell_key(
                litmus.digest(), store_profile_label(arch, opt, compiler),
                source_model, augment, budget_candidates,
            )
            stored = store.get(key)
            if stored is not None:
                replayed.append((index, (litmus, arch, opt, compiler), stored))
                continue
        pending.append((index, (litmus, arch, opt, compiler)))

    def cell_event(
        index: int, item: Cell, record: Dict[str, object], from_store: bool
    ) -> CellFinished:
        litmus, arch, opt, compiler = item
        return CellFinished(
            index=index,
            test=litmus.name,
            digest=str(record.get("digest", "")),
            arch=arch,
            opt=opt,
            compiler=compiler,
            record=record,
            from_store=from_store,
            shard=plan.shard,
            mode=plan.mode,
        )

    def events() -> Iterator[CampaignEvent]:
        ok_cells = 0
        yield CampaignStarted(
            source_model=source_model,
            tests_input=len(tests),
            cells_total=len(work),
            pending=len(pending),
            workers=plan.workers,
            processes=plan.processes,
            shard=plan.shard,
        )
        for index, item, record in replayed:
            if record.get("status") == "ok":
                ok_cells += 1
            yield cell_event(index, item, record, True)

        def finish(
            index: int, item: Cell, record: Dict[str, object]
        ) -> CellFinished:
            """Land one freshly computed verdict — persisting it *now*,
            so an interrupted campaign resumes from every finished cell."""
            nonlocal ok_cells
            if store is not None:
                store.put(record)
            if record.get("status") == "ok":
                ok_cells += 1
            return cell_event(index, item, record, False)

        # evaluate the cells the store could not answer.  In the pool
        # branches an unexpected exception from one cell must not discard
        # the verdicts of cells that still ran to completion (pool
        # shutdown waits for them) — stream and persist everything, then
        # re-raise the first failure.
        first_error: Optional[BaseException] = None
        if pending and plan.processes > 0:
            with campaign_mod.ProcessPoolExecutor(
                max_workers=plan.processes
            ) as pool:
                future_map = {}
                try:
                    for index, item in pending:
                        future_map[pool.submit(pool_fn, pool_task(*item))] = (
                            index, item
                        )
                    for future in as_completed(future_map):
                        index, item = future_map[future]
                        try:
                            record = future.result()
                        except Exception as exc:
                            first_error = first_error if first_error is not None else exc
                            continue
                        if record.get("source_simulated"):
                            simulated_sources.add(source_key_of(item[0]))
                        yield finish(index, item, record)
                finally:
                    # a consumer that abandons the stream early (fuzzing
                    # loops break at the first positive) must not pay for
                    # the whole campaign: cancel everything still queued,
                    # so pool shutdown only waits for the cells already
                    # running.  A no-op when the stream was drained.
                    for future in future_map:
                        future.cancel()
        elif pending and plan.workers > 1:
            # the with-block shuts the pool down even when an unexpected
            # exception escapes future.result(), so workers never leak
            with campaign_mod.ThreadPoolExecutor(
                max_workers=plan.workers
            ) as pool:
                future_map = {
                    pool.submit(evaluate, *item): (index, item)
                    for index, item in pending
                }
                try:
                    for future in as_completed(future_map):
                        index, item = future_map[future]
                        try:
                            record = future.result()
                        except Exception as exc:
                            first_error = first_error if first_error is not None else exc
                            continue
                        yield finish(index, item, record)
                finally:
                    for future in future_map:  # see the process branch
                        future.cancel()
        else:
            for index, item in pending:
                yield finish(index, item, evaluate(*item))
        if first_error is not None:
            raise first_error

        yield CampaignFinished(
            source_model=source_model,
            compiled_tests=ok_cells,
            elapsed_seconds=time.perf_counter() - start,
            source_sim_keys=frozenset(simulated_sources),
            cached_cells=result_cache.hits - result_hits_before,
            store_hits=len(replayed),
        )

    return events()


def iter_sharded(
    plan: CampaignPlan, session, shards: int
) -> Iterator[CampaignEvent]:
    """Run every shard of ``plan`` through ``session`` sequentially,
    yielding each shard's events plus a :class:`ShardMerged` checkpoint
    after each — the streaming form of run-shards-then-``merge_reports``.
    """
    # resolve the test list once: every shard partitions the same
    # materialised suite instead of re-running diy generation per shard
    resolved = replace(
        plan, tests=plan.resolve_tests(shapes=session.shapes), config=None
    )
    sub_plans = resolved.split(shards)

    def events() -> Iterator[CampaignEvent]:
        for sub in sub_plans:
            stream = CampaignStream(iter_campaign(sub, session))
            for event in stream:
                yield event
            yield ShardMerged(shard=sub.shard, report=stream.report())

    return events()


def fold_events(events: Iterable[CampaignEvent]) -> CampaignReport:
    """Fold a complete event stream back into the batch report.

    The reconstruction is exact: cells are tallied in work-list order
    (events carry their index, so any completion order folds the same),
    and the aggregates only the run can know come from
    :class:`CampaignFinished`.  A stream containing :class:`ShardMerged`
    checkpoints folds through :func:`merge_reports` instead.  Holds for
    both modes: differential cells tally under their ``(arch, "diff",
    pair)`` key with the same verdict vocabulary.
    """
    started: Optional[CampaignStarted] = None
    finished: Optional[CampaignFinished] = None
    cells: List[CellFinished] = []
    shard_reports: List[CampaignReport] = []
    for event in events:
        if isinstance(event, CellFinished):
            cells.append(event)
        elif isinstance(event, ShardMerged):
            shard_reports.append(event.report)
        elif isinstance(event, CampaignStarted):
            started = started if started is not None else event
        elif isinstance(event, CampaignFinished):
            finished = event
    if shard_reports:
        return merge_reports(shard_reports)
    if started is None or finished is None:
        raise ValueError(
            "cannot fold an incomplete campaign stream (missing "
            "CampaignStarted/CampaignFinished)"
        )
    report = CampaignReport(
        source_model=started.source_model,
        workers=started.workers,
        processes=started.processes,
        shard=started.shard,
    )
    report.tests_input = started.tests_input
    for event in sorted(cells, key=lambda e: e.index):
        cell = report.cell(event.arch, event.opt, event.compiler)
        status = event.record["status"]
        if status == "timeout":
            cell.timeouts += 1
            continue
        if status == "error":
            cell.errors += 1
            continue
        report.compiled_tests += 1
        verdict = str(event.record["verdict"])
        cell.record(verdict)
        if verdict == "positive":
            report.positives.append(
                (event.test, event.arch, event.opt, event.compiler)
            )
    report.source_sim_keys = finished.source_sim_keys
    report.source_simulations = len(finished.source_sim_keys)
    report.cached_cells = finished.cached_cells
    report.store_hits = finished.store_hits
    report.elapsed_seconds = finished.elapsed_seconds
    return report


class CampaignStream:
    """An iterator of campaign events that can fold itself into a report.

    Iterate it for live events; call :meth:`report` at any point to drain
    whatever remains and get the batch :class:`CampaignReport`.  Events
    already consumed are remembered, so iterate-then-fold never loses
    cells.
    """

    def __init__(self, events: Iterator[CampaignEvent]) -> None:
        self._events = events
        self._seen: List[CampaignEvent] = []

    def __iter__(self) -> Iterator[CampaignEvent]:
        for event in self._events:
            self._seen.append(event)
            yield event

    def report(self) -> CampaignReport:
        for _ in self:
            pass  # drain whatever the consumer has not pulled yet
        return fold_events(self._seen)
