"""The session: the embeddable, state-owning entry point to the system.

A :class:`Session` owns what used to be process-global mutable state —
model/shape/ISA/epoch/baseline registries (as per-session overlays over
the shipped globals), the source-simulation and result caches, a default
budget, and an optional persistent :class:`CampaignStore`.  Two sessions
never trample each other: a service can hold one per tenant, each with
private models and profiles, over one shared process.

    >>> from repro.api import CampaignPlan, Session
    >>> session = Session()
    >>> result = session.test(litmus, "llvm-O3-AArch64")
    >>> for event in session.campaign(CampaignPlan(config=my_config)):
    ...     print(event.as_dict())
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional, Set, Tuple, Union

from ..asm.isa.base import ISAS, Isa, ensure_registered
from ..baselines.registry import BASELINES
from ..cat.interp import Model
from ..cat.registry import ARCH_MODEL, MODELS, model_signature, resolve_model
from ..compiler.profiles import (
    DEFAULT_VERSION,
    EPOCHS,
    CompilerProfile,
    make_profile,
    parse_profile,
)
from ..core.errors import ModelError, ReproError
from ..herd.enumerate import Budget
from ..lang.ast import CLitmus
from ..pipeline.campaign import CampaignReport, ResultCache, SourceSimCache
from ..pipeline.store import CampaignStore
from ..pipeline.telechat import (
    DifferentialResult,
    TelechatResult,
    run_differential,
    run_test_tv,
)
from ..hunt.reduce import ReductionResult, reduce_test
from ..toolchain import STAGES, ArtifactCache, Stage, Toolchain, ToolchainTrace
from ..tools.diy import SHAPES, Shape
from ..tools.mutate import MUTATIONS
from ..tools.sources import TestSource
from .engine import CampaignStream, iter_campaign, iter_hunt, iter_sharded
from .plan import CampaignPlan, FarmPlan, PlanError


class Session:
    """Session-scoped registries, caches, budgets and storage.

    Args:
        store: a :class:`CampaignStore` (or a path to one) that campaigns
            run in this session persist verdicts to and resume from.
        budget_candidates: default enumeration budget for
            :meth:`test` calls that pass no explicit budget
            (``None`` = unbudgeted, the engine default).
        source_cache / result_cache: share caches *across* sessions (a
            re-run service); by default each session gets fresh ones.
        artifact_cache_entries: per-stage bound on the toolchain's
            artifact cache (compiled objects, listings and outcome sets
            are heavyweight — unbounded, the cache grows linearly with
            the cells a long-lived session evaluates).  When a stage
            exceeds the bound its cache is dropped and recomputed on
            demand; pass ``None`` for unbounded.
    """

    def __init__(
        self,
        *,
        store: Optional[Union[str, "os.PathLike[str]", CampaignStore]] = None,
        budget_candidates: Optional[int] = None,
        source_cache: Optional[SourceSimCache] = None,
        result_cache: Optional[ResultCache] = None,
        artifact_cache_entries: Optional[int] = 4096,
    ) -> None:
        #: per-session registry overlays — register here without
        #: touching the process-global tables
        ensure_registered()  # ISA registration is an import side effect
        self.models = MODELS.overlay()
        self.shapes = SHAPES.overlay()
        self.isas = ISAS.overlay()
        self.epochs = EPOCHS.overlay()
        self.baselines = BASELINES.overlay()
        self.stages = STAGES.overlay()
        self.mutations = MUTATIONS.overlay()
        #: the session's staged tool-chain: stage resolution through the
        #: session overlay, model identity through the session models,
        #: and a per-session content-addressed artifact cache shared by
        #: every test/differential/campaign run in this session
        self._toolchain = Toolchain(
            stages=self.stages,
            models=self.models,
            cache=ArtifactCache(max_entries=artifact_cache_entries),
        )

        self.caches_explicit = (
            source_cache is not None or result_cache is not None
        )
        self.source_cache = (
            source_cache if source_cache is not None else SourceSimCache()
        )
        self.result_cache = (
            result_cache if result_cache is not None else ResultCache()
        )
        if store is not None and not isinstance(store, CampaignStore):
            store = CampaignStore(store)
        self.store: Optional[CampaignStore] = store
        self.budget_candidates = budget_candidates
        #: warning-severity diagnostics collected from lint-validated
        #: registrations (errors raise instead of landing here)
        self.lint_warnings: list = []

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_model(
        self, name: str, source: str, *, lint: bool = True, **meta: object
    ) -> str:
        """Register a private Cat model for this session only.

        The source is statically validated first
        (:mod:`repro.analysis.catlint`): error-severity findings raise
        :class:`~repro.core.errors.LintError` and nothing is registered;
        warnings collect in :attr:`lint_warnings`. Pass ``lint=False``
        to register a deliberately broken model (e.g. to test engine
        error paths)."""
        from ..cat.registry import register_model_source

        warnings = register_model_source(
            name, source, registry=self.models, validate=lint, **meta
        )
        self.lint_warnings.extend(warnings)
        return self.models.resolve(name)

    def register_shape(self, shape: Shape, **meta: object) -> Shape:
        """Register a private litmus shape for this session only.

        Campaign plans run through this session can name it in their
        ``DiyConfig.shapes`` — test generation resolves against the
        session overlay (and generated tests cross the process boundary
        as values, so this works under every backend)."""
        return self.shapes.register(shape.name, shape, display=shape.name,
                                    threads=len(shape.threads), **meta)

    def register_isa(self, isa: Isa, **meta: object) -> Isa:
        """Register an ISA in this session's overlay.

        Scope note: the overlay currently feeds :meth:`isa` lookups and
        inventory listings only — the compile/disassemble/s2l tool-chain
        still resolves architectures through the global registry
        (threading the overlay through c2s/s2l is future work), so a
        session-local ISA does not change what :meth:`test` compiles.
        """
        return self.isas.register(isa.name, isa, **meta)

    def register_baseline(self, name: str, check: Callable, **meta: object) -> Callable:
        return self.baselines.register(name, check, **meta)

    def register_mutation(self, name: str, operator, **meta: object):
        """Register a private mutation operator for this session's hunts.

        ``operator`` is a callable ``(CLitmus) -> iterator of (mutated
        test, site description)`` pairs — see :mod:`repro.tools.mutate`.
        Hunt plans run through this session can name it in
        ``mutations=``; mutants are generated in this process and cross
        pool boundaries as values, so (unlike models or stages) a
        session-local operator works under every backend and store.
        """
        return self.mutations.register(name, operator, **meta)

    def register_stage(self, stage: Stage, **meta: object) -> Stage:
        """Swap a tool-chain stage for this session only.

        ``stage.name`` decides which slot it fills ("prepare",
        "compile", "lift", "simulate-source", "simulate-target",
        "compare") — registering under an existing name shadows the
        stock stage for every :meth:`test`/:meth:`differential`/campaign
        run through this session.  A replacement that computes something
        different should return a distinct :meth:`Stage.signature` so
        its artifacts never collide with stock ones in a shared cache.
        """
        return self.stages.register(stage.name, stage, **meta)

    # ------------------------------------------------------------------ #
    # resolution (overlay-aware)
    # ------------------------------------------------------------------ #
    def model(self, name: Union[str, Model]) -> Model:
        """The compiled model ``name`` under this session's registry."""
        return resolve_model(name, self.models)

    def arch_model(self, arch: str) -> Model:
        """The architecture model for a compilation target."""
        if arch not in ARCH_MODEL:
            raise ModelError(f"no architecture model registered for {arch!r}")
        return self.model(ARCH_MODEL[arch])

    def model_signature(self, name: Union[str, Model]) -> str:
        """A content digest of what ``name`` resolves to here — cache-key
        identity, so a session that shadows a model name can never replay
        verdicts computed under the global model of the same name."""
        return model_signature(name, self.models)

    def lint(self, *targets) -> list:
        """Run the static analyzers, returning one
        :class:`~repro.analysis.LintReport` per target.

        Targets may be model names (resolved against this session's
        overlay, so shadowed models lint as shadowed), compiled
        :class:`Model` objects, or litmus tests (:class:`CLitmus`).
        With no targets, every model visible to the session is linted.
        """
        from ..analysis import lint_cat, lint_cat_source, lint_litmus_report
        from ..analysis.diagnostics import LintReport

        if not targets:
            targets = tuple(self.models.names())
        reports = []
        for target in targets:
            if isinstance(target, CLitmus):
                reports.append(lint_litmus_report(target))
            elif isinstance(target, Model):
                diags = tuple(lint_cat(target.ast, target.name))
                reports.append(LintReport(target.name, "cat", diags))
            else:
                key = self.models.resolve(target)
                reports.append(lint_cat_source(self.models.get(key), key))
        return reports

    def shape(self, name: str) -> Shape:
        return self.shapes.get(name)

    def isa(self, name: str) -> Isa:
        return self.isas.get(name)

    def baseline(self, name: str) -> Callable:
        return self.baselines.get(name)

    def profile(self, spec: Union[str, CompilerProfile, tuple]) -> CompilerProfile:
        """Resolve a profile: a :class:`CompilerProfile` passes through, a
        ``(compiler, opt, arch)`` tuple builds one, and an artefact-style
        name (``llvm-O3-AArch64``) parses — all against this session's
        compiler-epoch registry."""
        if isinstance(spec, CompilerProfile):
            return spec
        if isinstance(spec, tuple):
            return make_profile(*spec, epochs=self.epochs)
        return parse_profile(spec, epochs=self.epochs)

    def _plan_arches(self, plan: CampaignPlan) -> Set[str]:
        """The architectures a plan will actually compile for — the
        sweep's arches in tv mode, the profiles' (common) arch in
        differential mode."""
        if plan.mode == "differential" and plan.profiles:
            arches: Set[str] = set()
            for spec in plan.profiles:
                try:
                    arches.add(self.profile(spec).arch)
                except ReproError:
                    continue  # unresolvable specs abort in the engine
            return arches
        return set(plan.arches)

    def local_model_names(self, plan: CampaignPlan) -> Set[str]:
        """The plan's models that only this session knows — the set that
        cannot cross a process-pool boundary or be keyed in a store."""
        names = [plan.source_model]
        names.extend(
            ARCH_MODEL[arch] for arch in self._plan_arches(plan)
            if arch in ARCH_MODEL
        )
        return {
            name for name in names
            if name in self.models and self.models.is_local(name)
        }

    def local_epoch_names(self, plan: CampaignPlan) -> Set[str]:
        """The plan's compiler epochs that only this session knows.

        tv campaigns build default-version profiles, so the relevant
        epochs are ``<compiler>-<default version>``; differential plans
        name their profiles explicitly (a spec may pin any version), so
        the epochs behind each resolved profile count."""
        if plan.mode == "differential" and plan.profiles:
            names = []
            for spec in plan.profiles:
                try:
                    profile = self.profile(spec)
                except ReproError:
                    continue
                names.append(f"{profile.compiler}-{profile.version}")
        else:
            names = [
                f"{compiler}-{DEFAULT_VERSION[compiler]}"
                for compiler in plan.compilers if compiler in DEFAULT_VERSION
            ]
        return {
            name for name in names
            if name in self.epochs and self.epochs.is_local(name)
        }

    def local_stage_names(self, plan: CampaignPlan) -> Set[str]:
        """Tool-chain stages swapped in this session's overlay.

        Like session-local models and epochs, a swapped stage cannot
        cross a process-pool boundary (workers build their toolchain
        from the global registry) and cannot be keyed in a persistent
        store (records key verdicts by name, not by stage identity) —
        the engine refuses both rather than silently running the stock
        stage."""
        return {
            f"stage:{name}" for name in self.stages.names()
            if self.stages.is_local(name)
        }

    def stages_token(self) -> Tuple:
        """An in-memory identity of the session's *effective* stage set.

        Part of the result-cache key, so re-registering a stage
        mid-session re-simulates instead of replaying results the old
        stage computed.  The token holds the stage *objects* (compared
        by identity), not their ``id()``s — a bare id could be recycled
        by a later allocation once the old stage is garbage-collected,
        silently reviving stale cache entries.  The result cache never
        leaves this process, so object identity is sound."""
        return tuple(
            (name, self.stages.get(name)) for name in self.stages.names()
        )

    # ------------------------------------------------------------------ #
    # running things
    # ------------------------------------------------------------------ #
    def test(
        self,
        litmus: CLitmus,
        profile: Union[str, CompilerProfile, tuple],
        *,
        source_model: Union[str, Model] = "rc11",
        target_model: Optional[Union[str, Model]] = None,
        augment: bool = True,
        optimise: bool = True,
        unroll: int = 2,
        budget: Optional[Budget] = None,
        source_result=None,
    ) -> TelechatResult:
        """Run test_tv on one C litmus test — the session-scoped
        replacement for the deprecated module-level ``test_compilation``.
        """
        resolved_profile = self.profile(profile)
        if budget is None and self.budget_candidates is not None:
            budget = Budget(max_candidates=self.budget_candidates)
        target = target_model
        if target is None:
            target = self.arch_model(resolved_profile.arch)
        return run_test_tv(
            litmus,
            resolved_profile,
            source_model=self.model(source_model),
            target_model=self.model(target),
            augment=augment,
            optimise=optimise,
            unroll=unroll,
            budget=budget,
            source_result=source_result,
            toolchain=self._toolchain,
        )

    def differential(
        self,
        litmus: CLitmus,
        profile_a: Union[str, CompilerProfile, tuple],
        profile_b: Union[str, CompilerProfile, tuple],
        *,
        source_model: Optional[Union[str, Model]] = "rc11",
        target_model: Optional[Union[str, Model]] = None,
        augment: bool = True,
        optimise: bool = True,
        unroll: int = 2,
        budget: Optional[Budget] = None,
    ) -> DifferentialResult:
        """Differential-test one C litmus test under two profiles
        (paper §IV-D) through the session's staged toolchain — compile
        and lift artifacts are shared with every other run in this
        session.  ``source_model`` is the undefined-behaviour oracle
        (pass ``None`` to skip the C-source simulation entirely)."""
        if budget is None and self.budget_candidates is not None:
            budget = Budget(max_candidates=self.budget_candidates)
        resolved_source = (
            None if source_model is None else self.model(source_model)
        )
        return run_differential(
            litmus,
            self.profile(profile_a),
            self.profile(profile_b),
            source_model=resolved_source,
            target_model=(
                None if target_model is None else self.model(target_model)
            ),
            augment=augment,
            optimise=optimise,
            unroll=unroll,
            budget=budget,
            toolchain=self._toolchain,
        )

    def toolchain(self) -> "Toolchain":
        """The session's staged tool-chain — run stages individually,
        inspect ``.describe()`` (stage inventory + per-stage cache
        counters), or pass to the bare engine entry points."""
        return self._toolchain

    def explain(
        self,
        litmus: CLitmus,
        profile: Union[str, CompilerProfile, tuple],
        *,
        differential_with: Optional[
            Union[str, CompilerProfile, tuple]
        ] = None,
        source_model: Union[str, Model] = "rc11",
        target_model: Optional[Union[str, Model]] = None,
        augment: bool = True,
        optimise: bool = True,
        unroll: int = 2,
        budget: Optional[Budget] = None,
    ) -> ToolchainTrace:
        """Run the chain with a stage trace (executions kept for the
        herd dot dumps) — the engine behind ``repro explain``."""
        if budget is None and self.budget_candidates is not None:
            budget = Budget(max_candidates=self.budget_candidates)
        return self._toolchain.explain(
            litmus,
            self.profile(profile),
            differential_with=(
                None if differential_with is None
                else self.profile(differential_with)
            ),
            source_model=self.model(source_model),
            target_model=(
                None if target_model is None else self.model(target_model)
            ),
            augment=augment,
            optimise=optimise,
            unroll=unroll,
            budget=budget,
        )

    def campaign(self, plan: CampaignPlan) -> CampaignStream:
        """Run a campaign plan, streaming typed events as cells finish.

        Returns a :class:`CampaignStream`: iterate it for live
        ``CampaignStarted`` / ``CellFinished`` / ``CampaignFinished``
        events, or call ``.report()`` to drain it into the batch
        :class:`CampaignReport` (byte-for-byte the legacy report).
        """
        return CampaignStream(iter_campaign(plan, self))

    def hunt(
        self,
        seeds: Union[TestSource, Iterable[CLitmus], CampaignPlan],
        **plan_fields,
    ) -> CampaignStream:
        """Run a mutation-guided bug hunt from ``seeds`` (see
        :mod:`repro.hunt` and ``CampaignPlan(mode="hunt")``).

        ``seeds`` is a :class:`~repro.tools.sources.TestSource`, an
        iterable of tests — or a ready-made hunt plan, streamed as-is.
        Remaining keyword arguments are plan fields (``mutations=``,
        ``mutation_rounds=``, ``mutation_limit=``, ``reduce=``,
        ``arches=``, …)::

            for event in session.hunt([seed], arches=("aarch64",)):
                if isinstance(event, TestReduced):
                    print("minimal reproducer:", event.reduced_name)
        """
        if isinstance(seeds, CampaignPlan):
            if plan_fields:
                raise PlanError(
                    "pass plan fields on the CampaignPlan, not to hunt()"
                )
            plan = seeds
            if plan.mode != "hunt":
                raise PlanError(
                    f'Session.hunt needs mode="hunt", got {plan.mode!r}'
                )
        else:
            tests = (
                seeds if isinstance(seeds, TestSource) else tuple(seeds)
            )
            plan = CampaignPlan(mode="hunt", tests=tests, **plan_fields)
        return CampaignStream(iter_hunt(plan, self))

    def reduce(
        self,
        litmus: CLitmus,
        profile: Union[str, CompilerProfile, tuple],
        *,
        source_model: Union[str, Model] = "rc11",
        augment: bool = True,
        budget: Optional[Budget] = None,
        max_checks: Optional[int] = None,
    ) -> ReductionResult:
        """Delta-debug ``litmus`` to a 1-minimal test that still gets a
        ``positive`` verdict under ``profile`` (the engine behind
        ``telechat reduce``).  Every candidate re-verifies through this
        session's cached toolchain; raises
        :class:`~repro.hunt.ReductionError` when the input itself is not
        positive — there is no bug to keep."""
        resolved_profile = self.profile(profile)
        if budget is None and self.budget_candidates is not None:
            budget = Budget(max_candidates=self.budget_candidates)

        def check(candidate: CLitmus) -> bool:
            result = self.test(
                candidate,
                resolved_profile,
                source_model=source_model,
                augment=augment,
                budget=budget,
            )
            return result.verdict == "positive"

        return reduce_test(litmus, check, max_checks=max_checks)

    def farm(self, plan: Union[FarmPlan, str, "os.PathLike[str]"]):
        """Run a regression-farm pass over a blessed corpus, streaming
        typed events (:class:`~repro.api.events.FarmStarted`, pass-through
        ``CellFinished`` streams, one ``SuiteFinished`` per baseline cell,
        :class:`~repro.api.events.FarmFinished`).

        ``plan`` is a :class:`~repro.api.plan.FarmPlan` — or just the
        corpus root directory, for an unfiltered single-threaded pass::

            drift = 0
            for event in session.farm("tests/corpus"):
                if event.kind == "farm_finished":
                    drift = event.drift

        See :mod:`repro.pipeline.farm` for the corpus format and
        ``telechat farm`` for the CLI."""
        from .farm import iter_farm

        if not isinstance(plan, FarmPlan):
            plan = FarmPlan(root=os.fspath(plan))
        return iter_farm(plan, self)

    def campaign_sharded(self, plan: CampaignPlan, shards: int) -> CampaignStream:
        """Run all ``shards`` deterministic shards of ``plan`` through
        this session, with a :class:`ShardMerged` checkpoint event after
        each; ``.report()`` folds to the merged single-run Table IV."""
        return CampaignStream(iter_sharded(plan, self, shards))

    def run(self, plan: CampaignPlan) -> CampaignReport:
        """Batch convenience: run ``plan`` and fold the stream."""
        return self.campaign(plan).report()
