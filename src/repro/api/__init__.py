"""``repro.api`` — the supported way to drive the system.

* :class:`Session` — owns per-session registries (models, shapes, ISAs,
  compiler epochs, baselines — as overlays over the shipped globals),
  caches, budgets and an optional persistent store;
* :class:`CampaignPlan` — the frozen, validated campaign description
  that replaced ``run_campaign``'s sixteen keyword arguments;
* the typed event stream — :meth:`Session.campaign` yields
  :class:`CampaignStarted`, :class:`CellFinished`, :class:`ShardMerged`
  and :class:`CampaignFinished`; :func:`fold_events` folds any complete
  stream back into the batch :class:`~repro.pipeline.campaign.CampaignReport`.

The legacy module-level entry points (``run_campaign``,
``test_compilation``) survive as deprecation shims over this package —
see the README's deprecation policy.
"""

from .engine import (
    CampaignStream,
    fold_events,
    iter_campaign,
    iter_hunt,
    iter_sharded,
)
from .events import (
    CampaignEvent,
    CampaignFinished,
    CampaignStarted,
    CellFinished,
    FarmFinished,
    FarmStarted,
    HuntProgress,
    ShardMerged,
    SuiteFinished,
    TestReduced,
)
from .farm import iter_farm
from .plan import CampaignPlan, FarmPlan, PlanError
from .session import Session

__all__ = [
    "CampaignEvent",
    "CampaignFinished",
    "CampaignPlan",
    "CampaignStarted",
    "CampaignStream",
    "CellFinished",
    "FarmFinished",
    "FarmPlan",
    "FarmStarted",
    "HuntProgress",
    "PlanError",
    "Session",
    "ShardMerged",
    "SuiteFinished",
    "TestReduced",
    "fold_events",
    "iter_campaign",
    "iter_farm",
    "iter_hunt",
    "iter_sharded",
]
