"""The farm engine: stream a blessed corpus and report drift.

:func:`iter_farm` is the running half of :mod:`repro.pipeline.farm` —
it loads a corpus manifest, re-verifies suite digests, runs every
selected (suite, profile, model) baseline cell through the ordinary
campaign engine (so caching, the store, linting and every execution
backend behave exactly as in :meth:`Session.campaign`), and diffs the
verdict records against the blessed baseline with
:func:`~repro.tools.mcompare.diff_baselines`.  The stream grammar is::

    FarmStarted (CellFinished* SuiteFinished)* FarmFinished

``CellFinished`` events pass through from the inner campaigns (their
``CampaignStarted``/``CampaignFinished`` bookends are folded away — the
farm's own bookends carry the corpus-level aggregates).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterator, List, Tuple

from ..pipeline.farm import (
    BaselineSpec,
    FarmError,
    FarmManifest,
    SuiteSpec,
    read_baseline,
    write_baseline,
)
from ..tools.mcompare import DELTA_KINDS, diff_baselines
from ..tools.sources import SuiteSource
from .engine import iter_campaign
from .events import (
    CampaignEvent,
    CellFinished,
    FarmFinished,
    FarmStarted,
    SuiteFinished,
)
from .plan import CampaignPlan, FarmPlan


def _select(
    manifest: FarmManifest, plan: FarmPlan
) -> Tuple[Dict[str, SuiteSpec], Tuple[BaselineSpec, ...]]:
    """The verified suites and baseline cells this pass will run.

    Filter names that match nothing in the manifest are errors — a typo
    must not report a green, empty farm pass."""
    suite_names = sorted(manifest.suites)
    if plan.suites is not None:
        unknown = sorted(set(plan.suites) - set(suite_names))
        if unknown:
            raise FarmError(
                f"unknown suites {unknown}; manifest has: {suite_names}"
            )
        suite_names = [s for s in suite_names if s in plan.suites]
    profile_names = sorted({spec.profile for spec in manifest.baselines})
    if plan.profiles is not None:
        unknown = sorted(set(plan.profiles) - set(profile_names))
        if unknown:
            raise FarmError(
                f"unknown profiles {unknown}; manifest has: {profile_names}"
            )
    selected = tuple(
        spec
        for spec in sorted(
            manifest.baselines, key=lambda s: (s.suite, s.profile, s.model)
        )
        if spec.suite in suite_names
        and (plan.profiles is None or spec.profile in plan.profiles)
    )
    if not selected:
        raise FarmError(
            "the manifest has no baseline cells matching the plan filters"
        )
    verified = {name: manifest.verify_suite(name) for name in suite_names}
    return verified, selected


def iter_farm(plan: FarmPlan, session) -> Iterator[CampaignEvent]:
    """Run one farm pass through ``session``, yielding typed events."""
    manifest = FarmManifest.load(plan.root)
    verified, selected = _select(manifest, plan)
    started = time.monotonic()
    yield FarmStarted(
        root=manifest.root,
        suites=tuple(sorted({spec.suite for spec in selected})),
        baselines=len(selected),
        tests_total=sum(
            verified[spec.suite].tests for spec in selected
        ),
        workers=plan.workers,
        processes=plan.processes,
        bless=plan.bless,
    )

    total_cells = 0
    total_drift = 0
    blessed_files = 0
    for spec in selected:
        profile = session.profile(spec.profile)
        model = (
            plan.source_model if plan.source_model is not None else spec.model
        )
        suite = verified[spec.suite]
        campaign = CampaignPlan(
            tests=SuiteSource(manifest.path(suite.file)),
            arches=(profile.arch,),
            opts=(profile.opt,),
            compilers=(profile.compiler,),
            source_model=model,
            workers=plan.workers,
            processes=plan.processes,
        )
        records: List[Dict[str, object]] = []
        for event in iter_campaign(campaign, session):
            if isinstance(event, CellFinished):
                records.append(dict(event.record))
                yield event
        total_cells += len(records)

        baseline_path = manifest.path(spec.file)
        label = f"{spec.suite} @ {spec.profile} [{model}]"
        if plan.bless:
            write_baseline(records, baseline_path)
            blessed_files += 1
            drift_counts: Dict[str, int] = {}
            drift = 0
            report = f"{label}: blessed {len(records)} records"
        else:
            if not os.path.exists(baseline_path):
                raise FarmError(
                    f"baseline not blessed: {baseline_path}; run "
                    f"'telechat farm bless' first"
                )
            diff = diff_baselines(
                read_baseline(baseline_path), records, label=label
            )
            drift_counts = {
                kind: diff.count(kind)
                for kind in DELTA_KINDS
                if diff.count(kind)
            }
            drift = len(diff.deltas)
            total_drift += drift
            report = diff.pretty()
        yield SuiteFinished(
            suite=spec.suite,
            profile=spec.profile,
            model=model,
            tests=suite.tests,
            records=len(records),
            drift=drift,
            drift_counts=drift_counts,
            report=report,
            blessed=plan.bless,
        )

    yield FarmFinished(
        baselines=len(selected),
        cells=total_cells,
        drift=total_drift,
        blessed=blessed_files,
        elapsed_seconds=time.monotonic() - started,
    )


__all__ = ["iter_farm"]
