"""Deprecation plumbing for the legacy entry-point shims.

Policy (see README "Deprecation policy"): legacy entry points keep
working for external callers for at least two releases, emitting
:class:`DeprecationWarning`; *internal* code may never call them — a
shim invoked from inside :mod:`repro` raises immediately, which is how
CI keeps the tree honest without a linter.
"""

from __future__ import annotations

import sys
import warnings


def warn_deprecated(old: str, new: str) -> None:
    """Warn that ``old`` is deprecated in favour of ``new``.

    External callers get a :class:`DeprecationWarning` pointing at their
    call site.  Callers inside the ``repro`` package get the warning
    *promoted to an error*: the supported surface is :mod:`repro.api`,
    and internal layers must not route through the shims they deprecate.
    """
    message = f"{old} is deprecated; use {new} (README: deprecation policy)"
    caller = sys._getframe(2).f_globals.get("__name__", "")
    if caller == "repro" or caller.startswith("repro."):
        raise DeprecationWarning(
            f"{message} — DeprecationWarning promoted to an error inside "
            f"repro (internal code must use repro.api, from {caller})"
        )
    warnings.warn(message, DeprecationWarning, stacklevel=3)
